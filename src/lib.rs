//! Top-level re-exports for the Leviathan reproduction workspace.
pub use levi_isa as isa;
pub use levi_sim as sim;
pub use levi_workloads as workloads;
pub use leviathan as core;
