//! Thin wrapper: `cargo bench --bench fig21_hats_breakdown` dispatches to the `fig21_hats_breakdown`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run fig21_hats_breakdown` executes identically.

fn main() {
    levi_bench::runner::bench_main("fig21_hats_breakdown");
}
