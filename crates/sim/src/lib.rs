//! # levi-sim — a cycle-approximate tiled-multicore simulator
//!
//! This crate is the hardware substrate of the Leviathan reproduction: a
//! deterministic, event-driven model of a tiled multicore with
//!
//! * scoreboarded cores (dependence-limited issue, MSHR-limited MLP, a
//!   gshare branch predictor, and fence semantics),
//! * private L1/L2 caches and a shared, inclusive, NUCA LLC with an
//!   in-tag MESI-style directory,
//! * a 2-D mesh NoC with per-link contention,
//! * bandwidth-limited DRAM controllers with the FIFO line cache used by
//!   Leviathan's DRAM object compaction, and
//! * near-data engines (dataflow fabrics) at every L2 and LLC bank, with
//!   the scheduling hardware for all four NDC paradigms: task offload,
//!   long-lived workloads, data-triggered actions, and streaming.
//!
//! The programming-level interface (actors, allocator, `Morph<T>`,
//! `Stream<T>`, futures) lives in the `leviathan` crate; workloads are
//! LevIR programs from `levi-isa`.
//!
//! ## Example
//!
//! ```
//! use levi_sim::{Machine, MachineConfig};
//! use levi_isa::{ProgramBuilder, Reg};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! // Store 42 to address 0x1000 and halt.
//! f.imm(Reg(1), 0x1000).imm(Reg(2), 42).st8(Reg(1), 0, Reg(2)).halt();
//! let func = f.finish();
//! let prog = Arc::new(pb.finish()?);
//!
//! let mut m = Machine::try_new(MachineConfig::with_tiles(4))?;
//! m.spawn_thread(0, prog, func, &[])?;
//! let result = m.run()?;
//! assert!(result.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod config;
mod core_pipe;
pub mod dram;
pub mod energy;
pub mod engine;
pub mod error;
pub mod fault;
pub mod hist;
pub mod hw;
mod invoke;
pub mod machine;
pub mod ndc;
mod ndc_host;
pub mod noc;
pub mod perf;
pub mod rng;
pub mod sched;
pub mod snapshot;
pub mod span;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod xlat;

pub use config::{CacheConfig, EnergyConfig, MachineConfig, Replacement, LINE_SIZE};
pub use energy::EnergyBreakdown;
pub use engine::{EngineId, EngineLevel};
pub use error::SimError;
pub use fault::{
    CycleWindow, DramFault, EngineFault, FaultPlan, FaultState, InvokeSqueeze, LinkFault,
    LinkFaultKind,
};
pub use hist::Histogram;
pub use hw::{AccessKind, Hw, Walk};
pub use machine::{ActorId, Machine, ParkOwner, ParkedActor, RunError, RunResult};
pub use ndc::{BankMapRange, MorphLevel, MorphRegion, StreamId, StreamMode, StreamState};
pub use perf::{Phase, PhaseProfile};
pub use snapshot::{config_digest, fnv1a, Snapshot, SnapshotError};
pub use span::{CriticalPath, InvokeSpan, SlowInvoke, SpanId, SpanTable, StageCycles};
pub use stats::{Sample, Stats, TimeSeries, TOP_SLOW_INVOKES};
pub use telemetry::{Telemetry, TELEMETRY_VERSION};
pub use trace::{TraceCategory, TraceEvent, Tracer, Track};
pub use xlat::{TenantConfig, TenantMap, TenantPolicy, XlatConfig, XlatState};
