//! A small, dependency-free deterministic PRNG.
//!
//! The workload generators and the fault-injection planner only need a
//! fast, seedable, reproducible source of randomness —
//! statistical-test-grade quality is irrelevant, but *determinism across
//! platforms and builds* is essential (the bench figures, the fault
//! harness, and the determinism test suites diff exact outputs). This
//! module provides a [`SmallRng`] with an xoshiro256++ core seeded via
//! splitmix64, mirroring the `rand::rngs::SmallRng` API surface the
//! workloads use (`seed_from_u64`, `gen_range`, `gen_f64`, `shuffle`) so
//! the workspace builds with no crates.io dependencies. It lives in
//! `levi-sim` (re-exported from `levi_workloads::rng`) so both the
//! simulator and the workload layer share one implementation.

use core::ops::Range;

/// A small deterministic PRNG: xoshiro256++ seeded via splitmix64.
///
/// Not cryptographically secure; intended solely for reproducible input
/// generation.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

/// One step of the splitmix64 sequence (used for seeding).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` with splitmix64 (as the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// The generator's full 256-bit internal state, for checkpointing.
    /// Feed it back through [`SmallRng::from_state`] to resume the exact
    /// random stream (see [`crate::snapshot`]).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`SmallRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }

    /// Returns the next 64 random bits (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a value uniform in `0..bound` (`bound` must be non-zero).
    /// Uses the widening-multiply reduction; the bias is at most
    /// `bound / 2^64`, negligible for the bounds used here.
    #[inline]
    pub fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a value uniform in the half-open `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: RangeInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "gen_range on empty range {lo}..{hi}");
        T::from_u64(lo + self.bounded(hi - lo))
    }

    /// Returns a uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Integer types usable as `gen_range` endpoints.
pub trait RangeInt: Copy {
    /// Widens to `u64`.
    fn to_u64(self) -> u64;
    /// Narrows from `u64` (the value is guaranteed in range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn matches_reference_vector() {
        // xoshiro256++ seeded from splitmix64(0), first outputs, computed
        // once and pinned so cross-platform drift is caught.
        let mut r = SmallRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = SmallRng::seed_from_u64(0);
            (0..4).map(|_| r2.next_u64()).collect()
        };
        assert_eq!(got, again);
        // Outputs must be well-mixed, not echoes of the seed.
        assert!(got.iter().all(|&x| x != 0));
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u64..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_range_covers_small_range() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
