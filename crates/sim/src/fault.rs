//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded, reproducible schedule of hardware fault
//! windows that stresses the failure paths the paper's protocols are built
//! around: invoke NACKs and retries (Sec. VI), engine-context
//! virtualization, and NoC/DRAM contention. Four fault classes are
//! modeled:
//!
//! - **Engine outages** ([`EngineFault`]): an engine refuses new offloaded
//!   tasks for a cycle window. Invokes targeting it NACK and retry with
//!   bounded exponential backoff; past [`FaultPlan::retry_budget`] retries
//!   the action falls back to executing on the issuing core (the paper's
//!   software-fallback virtualization story).
//! - **Invoke-buffer squeezes** ([`InvokeSqueeze`]): the per-core invoke
//!   buffer temporarily shrinks to `entries`, throttling invoke issue.
//! - **NoC link faults** ([`LinkFault`]): a link adds per-hop latency
//!   (slowdown) or is unusable for the window (outage; traffic waits for
//!   the window to end).
//! - **DRAM throttles** ([`DramFault`]): a memory controller's per-line
//!   service time is multiplied by `factor` (bandwidth cap reduction).
//!
//! Plans are either hand-built (`add_*`) or generated from a seed with the
//! `gen_*` builders, which draw from per-class sub-RNGs so the generated
//! windows for one class do not depend on how many faults of another class
//! were requested. Everything is measured in simulated cycles, so a given
//! seed + plan produces *identical* cycles, stats, and traces on every
//! run, and an empty plan leaves every simulator code path untouched
//! (byte-identical stats to running with no plan at all).

use std::fmt;

use crate::config::MachineConfig;
use crate::engine::{EngineId, EngineLevel};
use crate::error::SimError;
use crate::rng::SmallRng;

/// A half-open window of simulated cycles `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleWindow {
    /// First cycle the fault is active.
    pub start: u64,
    /// First cycle after the fault clears.
    pub end: u64,
}

impl CycleWindow {
    /// Creates the window `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        CycleWindow { start, end }
    }

    /// True if `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: u64) -> bool {
        self.start <= t && t < self.end
    }

    /// Window length in cycles.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True if the window covers no cycles.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl fmt::Display for CycleWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// An engine refuses new offloaded tasks for the window (context
/// exhaustion / engine outage). In-flight tasks keep running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineFault {
    /// The refusing engine.
    pub engine: EngineId,
    /// When it refuses.
    pub window: CycleWindow,
}

/// The per-core invoke buffer shrinks to `entries` slots for the window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvokeSqueeze {
    /// When the squeeze is active.
    pub window: CycleWindow,
    /// Effective invoke-buffer capacity during the window (min 1).
    pub entries: u32,
}

/// What a faulted NoC link does to traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// Each hop over the link costs `extra` additional cycles.
    Slowdown {
        /// Added per-hop latency in cycles.
        extra: u64,
    },
    /// The link carries nothing; traffic waits until the window ends.
    Outage,
}

/// A fault on one directed mesh link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFault {
    /// Source node (`y * cols + x`).
    pub node: u32,
    /// Link direction from `node`: 0 = +x, 1 = −x, 2 = +y, 3 = −y
    /// (matching the router's output-port encoding).
    pub dir: u8,
    /// When the fault is active.
    pub window: CycleWindow,
    /// Slowdown or outage.
    pub kind: LinkFaultKind,
}

/// A memory controller's per-line service time is multiplied by `factor`
/// for the window (i.e. bandwidth is cut to `1/factor`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramFault {
    /// The throttled controller.
    pub controller: u32,
    /// When the throttle is active.
    pub window: CycleWindow,
    /// Service-time multiplier (≥ 1; 1 is a no-op).
    pub factor: u64,
}

/// Default invoke retry budget before core fallback.
pub const DEFAULT_RETRY_BUDGET: u32 = 4;
/// Default first-retry backoff in cycles.
pub const DEFAULT_BACKOFF_BASE: u64 = 16;
/// Default backoff ceiling in cycles.
pub const DEFAULT_BACKOFF_CAP: u64 = 1024;

// Per-class seed salts so each gen_* builder draws from an independent
// stream: adding faults of one class never changes another class's draws.
const SALT_ENGINE: u64 = 0x9e1e_6e51_4e00_0001;
const SALT_TENANT: u64 = 0x9e1e_6e51_4e00_0005;
const SALT_SQUEEZE: u64 = 0x9e1e_6e51_4e00_0002;
const SALT_LINK: u64 = 0x9e1e_6e51_4e00_0003;
const SALT_DRAM: u64 = 0x9e1e_6e51_4e00_0004;

/// A seeded, deterministic schedule of fault windows.
///
/// Attach one to a machine via
/// [`MachineConfig::faulted`](crate::MachineConfig::faulted) (or
/// `SystemConfig::with_fault_plan` in `leviathan`). The default plan is
/// empty and injects nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the `gen_*` builders (also recorded for reproducibility).
    pub seed: u64,
    /// Engine refusal windows.
    pub engine_faults: Vec<EngineFault>,
    /// Invoke-buffer squeeze windows.
    pub invoke_squeezes: Vec<InvokeSqueeze>,
    /// NoC link faults.
    pub link_faults: Vec<LinkFault>,
    /// DRAM controller throttles.
    pub dram_faults: Vec<DramFault>,
    /// Invoke retries against a refusing engine before falling back to the
    /// issuing core.
    pub retry_budget: u32,
    /// First-retry backoff in cycles; retry `n` waits
    /// `min(backoff_base << (n-1), backoff_cap)`.
    pub backoff_base: u64,
    /// Backoff ceiling in cycles.
    pub backoff_cap: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// Creates an empty plan with the given seed and default retry policy.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            engine_faults: Vec::new(),
            invoke_squeezes: Vec::new(),
            link_faults: Vec::new(),
            dram_faults: Vec::new(),
            retry_budget: DEFAULT_RETRY_BUDGET,
            backoff_base: DEFAULT_BACKOFF_BASE,
            backoff_cap: DEFAULT_BACKOFF_CAP,
        }
    }

    /// Sets the retry budget (builder style).
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Sets the backoff base and cap (builder style).
    pub fn backoff(mut self, base: u64, cap: u64) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Adds one engine refusal window.
    pub fn add_engine_fault(mut self, engine: EngineId, window: CycleWindow) -> Self {
        self.engine_faults.push(EngineFault { engine, window });
        self
    }

    /// Adds one invoke-buffer squeeze window.
    pub fn add_invoke_squeeze(mut self, window: CycleWindow, entries: u32) -> Self {
        self.invoke_squeezes.push(InvokeSqueeze { window, entries });
        self
    }

    /// Adds one NoC link fault.
    pub fn add_link_fault(
        mut self,
        node: u32,
        dir: u8,
        window: CycleWindow,
        kind: LinkFaultKind,
    ) -> Self {
        self.link_faults.push(LinkFault {
            node,
            dir,
            window,
            kind,
        });
        self
    }

    /// Adds one DRAM controller throttle.
    pub fn add_dram_fault(mut self, controller: u32, window: CycleWindow, factor: u64) -> Self {
        self.dram_faults.push(DramFault {
            controller,
            window,
            factor,
        });
        self
    }

    /// Sub-RNG for one fault class: seeded from `seed ^ salt` so classes
    /// draw independently.
    fn rng_for(&self, salt: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.seed ^ salt)
    }

    /// Draws a window starting in `0..horizon` lasting
    /// `min_len..=max_len` cycles.
    fn gen_window(rng: &mut SmallRng, horizon: u64, min_len: u64, max_len: u64) -> CycleWindow {
        let start = rng.gen_range(0u64..horizon.max(1));
        let len = if max_len > min_len {
            rng.gen_range(min_len..max_len + 1)
        } else {
            min_len
        };
        CycleWindow::new(start, start + len.max(1))
    }

    /// Generates `count` seeded engine refusal windows across `tiles`
    /// tiles (both engine levels), starting within `0..horizon` and
    /// lasting `min_len..=max_len` cycles.
    pub fn gen_engine_outages(
        mut self,
        count: usize,
        tiles: u32,
        horizon: u64,
        min_len: u64,
        max_len: u64,
    ) -> Self {
        let mut rng = self.rng_for(SALT_ENGINE);
        for _ in 0..count {
            let tile = rng.gen_range(0u32..tiles.max(1));
            let level = if rng.next_u64() & 1 == 0 {
                EngineLevel::L2
            } else {
                EngineLevel::Llc
            };
            let window = Self::gen_window(&mut rng, horizon, min_len, max_len);
            self.engine_faults.push(EngineFault {
                engine: EngineId { tile, level },
                window,
            });
        }
        self
    }

    /// Generates `count` seeded engine refusal windows confined to one
    /// tenant's contiguous tile block (tenant `tenant` of `tenant_count`
    /// equal blocks over `tiles` tiles; see [`crate::xlat::TenantMap`]).
    /// Models a fault domain scoped to a single co-runner: the other
    /// tenants' engines keep serving.
    #[allow(clippy::too_many_arguments)]
    pub fn gen_tenant_engine_outages(
        mut self,
        count: usize,
        tenant: u32,
        tenant_count: u32,
        tiles: u32,
        horizon: u64,
        min_len: u64,
        max_len: u64,
    ) -> Self {
        let block = (tiles / tenant_count.max(1)).max(1);
        let base = tenant * block;
        // Separate salt (folded with the tenant) so per-tenant plans draw
        // independently of each other and of global engine outages.
        let mut rng = self.rng_for(SALT_TENANT ^ u64::from(tenant));
        for _ in 0..count {
            let tile = base + rng.gen_range(0u32..block);
            let level = if rng.next_u64() & 1 == 0 {
                EngineLevel::L2
            } else {
                EngineLevel::Llc
            };
            let window = Self::gen_window(&mut rng, horizon, min_len, max_len);
            self.engine_faults.push(EngineFault {
                engine: EngineId { tile, level },
                window,
            });
        }
        self
    }

    /// Generates `count` seeded invoke-buffer squeezes down to `entries`
    /// slots.
    pub fn gen_invoke_squeezes(
        mut self,
        count: usize,
        entries: u32,
        horizon: u64,
        min_len: u64,
        max_len: u64,
    ) -> Self {
        let mut rng = self.rng_for(SALT_SQUEEZE);
        for _ in 0..count {
            let window = Self::gen_window(&mut rng, horizon, min_len, max_len);
            self.invoke_squeezes.push(InvokeSqueeze { window, entries });
        }
        self
    }

    /// Generates `count` seeded link slowdowns adding `extra` cycles per
    /// hop on random links of a `tiles`-node mesh.
    pub fn gen_link_slowdowns(
        mut self,
        count: usize,
        tiles: u32,
        extra: u64,
        horizon: u64,
        min_len: u64,
        max_len: u64,
    ) -> Self {
        let mut rng = self.rng_for(SALT_LINK);
        for _ in 0..count {
            let node = rng.gen_range(0u32..tiles.max(1));
            let dir = rng.gen_range(0u8..4);
            let window = Self::gen_window(&mut rng, horizon, min_len, max_len);
            self.link_faults.push(LinkFault {
                node,
                dir,
                window,
                kind: LinkFaultKind::Slowdown { extra },
            });
        }
        self
    }

    /// Generates `count` seeded link outages on random links of a
    /// `tiles`-node mesh.
    pub fn gen_link_outages(
        mut self,
        count: usize,
        tiles: u32,
        horizon: u64,
        min_len: u64,
        max_len: u64,
    ) -> Self {
        // Same salt as slowdowns (both are link faults) but drawn after a
        // domain-separating skip so the two builders stay independent.
        let mut rng = self.rng_for(SALT_LINK ^ 0xff);
        for _ in 0..count {
            let node = rng.gen_range(0u32..tiles.max(1));
            let dir = rng.gen_range(0u8..4);
            let window = Self::gen_window(&mut rng, horizon, min_len, max_len);
            self.link_faults.push(LinkFault {
                node,
                dir,
                window,
                kind: LinkFaultKind::Outage,
            });
        }
        self
    }

    /// Generates `count` seeded DRAM throttles multiplying service time by
    /// `factor` on random controllers.
    pub fn gen_dram_throttles(
        mut self,
        count: usize,
        controllers: u32,
        factor: u64,
        horizon: u64,
        min_len: u64,
        max_len: u64,
    ) -> Self {
        let mut rng = self.rng_for(SALT_DRAM);
        for _ in 0..count {
            let controller = rng.gen_range(0u32..controllers.max(1));
            let window = Self::gen_window(&mut rng, horizon, min_len, max_len);
            self.dram_faults.push(DramFault {
                controller,
                window,
                factor,
            });
        }
        self
    }

    /// Total fault windows in the plan.
    pub fn total_faults(&self) -> u64 {
        (self.engine_faults.len()
            + self.invoke_squeezes.len()
            + self.link_faults.len()
            + self.dram_faults.len()) as u64
    }

    /// True if the plan injects nothing (retry policy is then irrelevant).
    pub fn is_zero(&self) -> bool {
        self.total_faults() == 0
    }

    /// Checks the plan against a machine shape: windows must be non-empty,
    /// targets must exist, factors must be ≥ 1.
    pub fn validate(&self, cfg: &MachineConfig) -> Result<(), SimError> {
        let bad = |what: String| Err(SimError::InvalidConfig { what });
        for ef in &self.engine_faults {
            if ef.engine.tile >= cfg.tiles {
                return bad(format!(
                    "fault plan: {} does not exist ({} tiles)",
                    ef.engine, cfg.tiles
                ));
            }
            if ef.window.is_empty() {
                return bad(format!(
                    "fault plan: empty engine-fault window {}",
                    ef.window
                ));
            }
        }
        for sq in &self.invoke_squeezes {
            if sq.window.is_empty() {
                return bad(format!(
                    "fault plan: empty invoke-squeeze window {}",
                    sq.window
                ));
            }
        }
        for lf in &self.link_faults {
            if lf.node >= cfg.tiles {
                return bad(format!(
                    "fault plan: link fault on node {} ({} tiles)",
                    lf.node, cfg.tiles
                ));
            }
            if lf.dir >= 4 {
                return bad(format!(
                    "fault plan: link direction {} (must be 0..4)",
                    lf.dir
                ));
            }
            if lf.window.is_empty() {
                return bad(format!("fault plan: empty link-fault window {}", lf.window));
            }
        }
        for df in &self.dram_faults {
            if df.controller >= cfg.mem.controllers {
                return bad(format!(
                    "fault plan: DRAM fault on controller {} ({} controllers)",
                    df.controller, cfg.mem.controllers
                ));
            }
            if df.factor == 0 {
                return bad("fault plan: DRAM throttle factor must be >= 1".to_string());
            }
            if df.window.is_empty() {
                return bad(format!("fault plan: empty DRAM-fault window {}", df.window));
            }
        }
        if !self.is_zero() && self.backoff_base == 0 {
            return bad("fault plan: backoff base must be positive".to_string());
        }
        Ok(())
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault plan (seed {}): {} engine outage(s), {} invoke squeeze(s), \
             {} link fault(s), {} DRAM throttle(s); retry budget {}, backoff {}..{} cycles",
            self.seed,
            self.engine_faults.len(),
            self.invoke_squeezes.len(),
            self.link_faults.len(),
            self.dram_faults.len(),
            self.retry_budget,
            self.backoff_base,
            self.backoff_cap,
        )
    }
}

/// Runtime fault state carried by the hardware model.
///
/// Holds the fault classes the invoke path consults every issue
/// (engine refusals, invoke squeezes) plus the retry policy; link and DRAM
/// faults are installed directly into [`crate::noc::Noc`] and
/// [`crate::dram::Dram`]. The default state is empty and every query
/// early-exits, so unfaulted runs take the exact pre-fault code paths.
#[derive(Clone, Debug, Default)]
pub struct FaultState {
    engine_faults: Vec<EngineFault>,
    invoke_squeezes: Vec<InvokeSqueeze>,
    /// Invoke retries against a refusing engine before core fallback.
    pub retry_budget: u32,
    /// First-retry backoff in cycles.
    pub backoff_base: u64,
    /// Backoff ceiling in cycles.
    pub backoff_cap: u64,
}

impl FaultState {
    /// Builds runtime state from the invoke-path-relevant parts of a plan.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        FaultState {
            engine_faults: plan.engine_faults.clone(),
            invoke_squeezes: plan.invoke_squeezes.clone(),
            retry_budget: plan.retry_budget,
            backoff_base: plan.backoff_base.max(1),
            backoff_cap: plan.backoff_cap.max(plan.backoff_base.max(1)),
        }
    }

    /// True if no invoke-path faults are installed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.engine_faults.is_empty() && self.invoke_squeezes.is_empty()
    }

    /// True if `engine` refuses new offloaded tasks at cycle `now`.
    #[inline]
    pub fn engine_refusing(&self, engine: EngineId, now: u64) -> bool {
        self.engine_faults
            .iter()
            .any(|ef| ef.engine == engine && ef.window.contains(now))
    }

    /// Effective invoke-buffer capacity at `now`: the configured limit,
    /// shrunk by any active squeeze (floor 1).
    #[inline]
    pub fn invoke_buffer_limit(&self, cfg_limit: u32, now: u64) -> u32 {
        if self.invoke_squeezes.is_empty() {
            return cfg_limit;
        }
        let mut limit = cfg_limit;
        for sq in &self.invoke_squeezes {
            if sq.window.contains(now) {
                limit = limit.min(sq.entries.max(1));
            }
        }
        limit
    }

    /// Backoff delay before retry number `retries` (1-based):
    /// `min(base << (retries-1), cap)`.
    #[inline]
    pub fn backoff_delay(&self, retries: u32) -> u64 {
        let shift = retries.saturating_sub(1).min(32);
        self.backoff_base
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mk = |seed| {
            FaultPlan::new(seed)
                .gen_engine_outages(3, 4, 10_000, 100, 500)
                .gen_invoke_squeezes(2, 1, 10_000, 50, 200)
                .gen_link_slowdowns(2, 4, 3, 10_000, 100, 400)
                .gen_link_outages(1, 4, 10_000, 10, 50)
                .gen_dram_throttles(2, 2, 4, 10_000, 100, 400)
        };
        let a = mk(7);
        let b = mk(7);
        let c = mk(8);
        assert_eq!(a, b, "same seed must generate the same plan");
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.total_faults(), 10);
    }

    #[test]
    fn class_generation_is_order_independent() {
        // DRAM draws must not depend on how many engine faults were
        // generated first.
        let a = FaultPlan::new(5)
            .gen_engine_outages(10, 4, 1000, 10, 20)
            .gen_dram_throttles(2, 2, 4, 1000, 10, 20);
        let b = FaultPlan::new(5).gen_dram_throttles(2, 2, 4, 1000, 10, 20);
        assert_eq!(a.dram_faults, b.dram_faults);
    }

    #[test]
    fn tenant_outages_stay_in_the_tenant_block() {
        // 16 tiles, 4 tenants: tenant 2 owns tiles 8..12.
        let p = FaultPlan::new(9).gen_tenant_engine_outages(20, 2, 4, 16, 10_000, 100, 500);
        assert_eq!(p.engine_faults.len(), 20);
        for f in &p.engine_faults {
            assert!(
                (8..12).contains(&f.engine.tile),
                "tile {} escaped tenant 2's block",
                f.engine.tile
            );
        }
        // Deterministic per (seed, tenant); different tenants draw
        // independently.
        let q = FaultPlan::new(9).gen_tenant_engine_outages(20, 2, 4, 16, 10_000, 100, 500);
        assert_eq!(p, q);
        let r = FaultPlan::new(9).gen_tenant_engine_outages(20, 1, 4, 16, 10_000, 100, 500);
        assert!(r
            .engine_faults
            .iter()
            .all(|f| (4..8).contains(&f.engine.tile)));
    }

    #[test]
    fn empty_plan_is_zero() {
        let p = FaultPlan::new(42);
        assert!(p.is_zero());
        assert_eq!(p.total_faults(), 0);
        assert!(FaultState::from_plan(&p).is_empty());
    }

    #[test]
    fn window_contains_half_open() {
        let w = CycleWindow::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let plan = FaultPlan::new(0).backoff(16, 100);
        let st = FaultState::from_plan(&plan);
        assert_eq!(st.backoff_delay(1), 16);
        assert_eq!(st.backoff_delay(2), 32);
        assert_eq!(st.backoff_delay(3), 64);
        assert_eq!(st.backoff_delay(4), 100, "capped");
        assert_eq!(st.backoff_delay(40), 100, "shift saturates");
    }

    #[test]
    fn squeeze_floors_at_one() {
        let plan = FaultPlan::new(0).add_invoke_squeeze(CycleWindow::new(0, 100), 0);
        let st = FaultState::from_plan(&plan);
        assert_eq!(st.invoke_buffer_limit(16, 50), 1);
        assert_eq!(st.invoke_buffer_limit(16, 100), 16, "window over");
    }

    #[test]
    fn refusal_respects_engine_and_window() {
        let e0 = EngineId {
            tile: 0,
            level: EngineLevel::L2,
        };
        let e1 = EngineId {
            tile: 1,
            level: EngineLevel::L2,
        };
        let plan = FaultPlan::new(0).add_engine_fault(e0, CycleWindow::new(100, 200));
        let st = FaultState::from_plan(&plan);
        assert!(st.engine_refusing(e0, 150));
        assert!(!st.engine_refusing(e0, 99));
        assert!(!st.engine_refusing(e0, 200));
        assert!(!st.engine_refusing(e1, 150));
    }

    #[test]
    fn validate_rejects_bad_targets() {
        let cfg = MachineConfig::with_tiles(4);
        let e_bad = EngineId {
            tile: 9,
            level: EngineLevel::L2,
        };
        let p = FaultPlan::new(0).add_engine_fault(e_bad, CycleWindow::new(0, 10));
        assert!(matches!(
            p.validate(&cfg),
            Err(SimError::InvalidConfig { .. })
        ));

        let p = FaultPlan::new(0).add_dram_fault(99, CycleWindow::new(0, 10), 2);
        assert!(p.validate(&cfg).is_err());

        let p =
            FaultPlan::new(0).add_link_fault(0, 7, CycleWindow::new(0, 10), LinkFaultKind::Outage);
        assert!(p.validate(&cfg).is_err());

        let p = FaultPlan::new(0).add_engine_fault(
            EngineId {
                tile: 0,
                level: EngineLevel::Llc,
            },
            CycleWindow::new(10, 10),
        );
        assert!(p.validate(&cfg).is_err(), "empty window rejected");

        let ok = FaultPlan::new(3)
            .gen_engine_outages(2, 4, 1000, 10, 20)
            .gen_dram_throttles(1, 2, 4, 1000, 10, 20);
        assert!(ok.validate(&cfg).is_ok());
    }
}
