//! One descriptor module per figure/table of the paper's evaluation.
//!
//! Every module exposes a single `FIG: Figure` descriptor; [`ALL`] lists
//! them in the paper's presentation order. The `levi-bench` runner and
//! the thin `cargo bench` wrappers both execute figures exclusively
//! through this registry, so each figure has exactly one implementation.

use crate::runner::Figure;

pub mod ablation_mc_cache;
pub mod ablation_phi_policy;
pub mod ablation_scheduling;
pub mod ablation_tenancy;
pub mod ablation_translation;
pub mod fig05_phi;
pub mod fig16_decompress;
pub mod fig18_hashtable;
pub mod fig20_hats;
pub mod fig21_hats_breakdown;
pub mod fig22_invoke_buffer;
pub mod fig23_stream_buffer;
pub mod fig24_input_size;
pub mod fig25_system_size;
pub mod micro_kernels;
pub mod micro_substrate;
pub mod table04_area;
pub mod table05_config;

/// Every figure, in presentation order — the order `levi-bench run all`
/// executes and `levi-bench list` prints.
pub static ALL: &[Figure] = &[
    fig05_phi::FIG,
    fig16_decompress::FIG,
    fig18_hashtable::FIG,
    fig20_hats::FIG,
    fig21_hats_breakdown::FIG,
    fig22_invoke_buffer::FIG,
    fig23_stream_buffer::FIG,
    fig24_input_size::FIG,
    fig25_system_size::FIG,
    ablation_scheduling::FIG,
    ablation_mc_cache::FIG,
    ablation_phi_policy::FIG,
    ablation_translation::FIG,
    ablation_tenancy::FIG,
    micro_kernels::FIG,
    micro_substrate::FIG,
    table04_area::FIG,
    table05_config::FIG,
];
