//! Microbenchmarks for the substrate components: cache-bank operations,
//! NoC sends, LevIR interpretation, allocator planning, and a small
//! end-to-end simulation — wall-clock simulator throughput, not simulated
//! cycles (see `micro_kernels` for those).
//!
//! The timing kernels live in [`crate::micro_timers`]; this descriptor
//! fans them out through a [`crate::Sweep`] like every other figure.
//! Wall-clock numbers are indicative, not statistically rigorous, and a
//! parallel sweep adds scheduling noise — run with `--serial` (or
//! `LEVI_SWEEP_SERIAL`) for the quietest numbers.

use crate::micro_timers::KERNELS;
use crate::runner::{Figure, RunCtx};
use crate::{table_json, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "micro_substrate",
    about: "simulator wall-clock microbenchmarks (cache / NoC / interp / alloc)",
    workloads: &[],
    run,
};

fn run(_ctx: &RunCtx) {
    crate::outln!("{:<28} {:>15}", "benchmark", "median");
    let results = Sweep::new()
        .variants(KERNELS.iter().map(|&(name, timer)| (name, timer)))
        .run(|_, timer| timer());
    let mut rows = Vec::new();
    for (name, ns) in &results {
        crate::outln!("{name:<28} {ns:>10.1} ns/iter");
        rows.push(vec![name.to_string(), format!("{ns:.1}")]);
    }
    crate::emit_json_line(&table_json(
        "micro_substrate",
        &["benchmark", "median ns/iter"],
        &rows,
    ));
}
