//! Byte-addressed memory abstraction.
//!
//! The functional state of the simulated machine is a flat, sparse,
//! byte-addressed memory. Caches in `levi-sim` are *tag-only* (they model
//! timing and coherence); values live here. Data-triggered "phantom" ranges
//! also live here — their contents are (re)materialized by constructors when
//! lines are inserted into the cache.

use crate::fx::FxHashMap;
use crate::inst::{Addr, MemWidth};

const PAGE_SHIFT: u32 = 12;
pub(crate) const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Byte-addressed memory with typed accessors.
///
/// All multi-byte accesses are little-endian. Reads of untouched memory
/// return zero. Implementations may be sparse; a `&mut M where M: Memory`
/// can be passed wherever a `Memory` is needed.
pub trait Memory {
    /// Reads one byte.
    fn read_u8(&self, addr: Addr) -> u8;

    /// Writes one byte.
    fn write_u8(&mut self, addr: Addr, val: u8);

    /// Reads `width` bytes, little-endian, zero-extended to u64.
    fn read(&self, addr: Addr, width: MemWidth) -> u64 {
        let n = width.bytes();
        let mut v: u64 = 0;
        for i in 0..n {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes of `val`, little-endian.
    fn write(&mut self, addr: Addr, val: u64, width: MemWidth) {
        let n = width.bytes();
        for i in 0..n {
            self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }

    /// Reads an unsigned 16-bit value.
    fn read_u16(&self, addr: Addr) -> u16 {
        self.read(addr, MemWidth::B2) as u16
    }

    /// Reads an unsigned 32-bit value.
    fn read_u32(&self, addr: Addr) -> u32 {
        self.read(addr, MemWidth::B4) as u32
    }

    /// Reads an unsigned 64-bit value.
    fn read_u64(&self, addr: Addr) -> u64 {
        self.read(addr, MemWidth::B8)
    }

    /// Writes an unsigned 16-bit value.
    fn write_u16(&mut self, addr: Addr, val: u16) {
        self.write(addr, val as u64, MemWidth::B2)
    }

    /// Writes an unsigned 32-bit value.
    fn write_u32(&mut self, addr: Addr, val: u32) {
        self.write(addr, val as u64, MemWidth::B4)
    }

    /// Writes an unsigned 64-bit value.
    fn write_u64(&mut self, addr: Addr, val: u64) {
        self.write(addr, val, MemWidth::B8)
    }

    /// Copies `len` bytes from `src` to `dst` (regions may not overlap in a
    /// way that matters: the copy proceeds low-to-high).
    fn copy(&mut self, dst: Addr, src: Addr, len: u64) {
        for i in 0..len {
            let b = self.read_u8(src.wrapping_add(i));
            self.write_u8(dst.wrapping_add(i), b);
        }
    }

    /// Fills `[addr, addr+len)` with `byte`.
    fn fill(&mut self, addr: Addr, len: u64, byte: u8) {
        for i in 0..len {
            self.write_u8(addr.wrapping_add(i), byte);
        }
    }
}

impl<M: Memory + ?Sized> Memory for &mut M {
    fn read_u8(&self, addr: Addr) -> u8 {
        (**self).read_u8(addr)
    }
    fn write_u8(&mut self, addr: Addr, val: u8) {
        (**self).write_u8(addr, val)
    }
}

/// Sparse, page-granular memory. The default [`Memory`] implementation.
///
/// Pages (4 KiB) are allocated on first write; reads of unallocated pages
/// return zero without allocating.
#[derive(Clone, Debug, Default)]
pub struct PagedMem {
    pages: FxHashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl PagedMem {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (written-to) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident memory footprint in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// The resident page table, for serialization (see [`crate::codec`]).
    pub(crate) fn pages_ref(&self) -> &FxHashMap<u64, Box<[u8; PAGE_SIZE]>> {
        &self.pages
    }

    /// Rebuilds a memory from a deserialized page table.
    pub(crate) fn from_pages(pages: FxHashMap<u64, Box<[u8; PAGE_SIZE]>>) -> Self {
        PagedMem { pages }
    }
}

impl Memory for PagedMem {
    #[inline]
    fn read_u8(&self, addr: Addr) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    #[inline]
    fn write_u8(&mut self, addr: Addr, val: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = val;
    }

    // Multi-byte accesses are the interpreter's hot path: one page-table
    // lookup per access (instead of one per byte) when the access does not
    // straddle a page boundary, which is the overwhelmingly common case.

    #[inline]
    fn read(&self, addr: Addr, width: MemWidth) -> u64 {
        let n = width.bytes();
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + n as usize <= PAGE_SIZE {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => {
                    let mut buf = [0u8; 8];
                    buf[..n as usize].copy_from_slice(&page[off..off + n as usize]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            // Page-straddling access: fall back to the per-byte path.
            let mut v: u64 = 0;
            for i in 0..n {
                v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
            }
            v
        }
    }

    #[inline]
    fn write(&mut self, addr: Addr, val: u64, width: MemWidth) {
        let n = width.bytes();
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + n as usize <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + n as usize].copy_from_slice(&val.to_le_bytes()[..n as usize]);
        } else {
            for i in 0..n {
                self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let mem = PagedMem::new();
        assert_eq!(mem.read_u64(0xdead_beef), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn little_endian_round_trip() {
        let mut mem = PagedMem::new();
        mem.write_u64(0x100, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(0x100), 0x08);
        assert_eq!(mem.read_u8(0x107), 0x01);
        assert_eq!(mem.read_u32(0x100), 0x0506_0708);
        assert_eq!(mem.read_u16(0x106), 0x0102);
        assert_eq!(mem.read_u64(0x100), 0x0102_0304_0506_0708);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = PagedMem::new();
        let addr = PAGE_SIZE as u64 - 4; // straddles the first page boundary
        mem.write_u64(addr, 0xAABB_CCDD_EEFF_1122);
        assert_eq!(mem.read_u64(addr), 0xAABB_CCDD_EEFF_1122);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn copy_and_fill() {
        let mut mem = PagedMem::new();
        mem.write_u64(0x200, 0x1234_5678_9ABC_DEF0);
        mem.copy(0x300, 0x200, 8);
        assert_eq!(mem.read_u64(0x300), 0x1234_5678_9ABC_DEF0);
        mem.fill(0x300, 4, 0xFF);
        assert_eq!(mem.read_u32(0x300), 0xFFFF_FFFF);
        assert_eq!(mem.read_u32(0x304), 0x1234_5678);
    }

    #[test]
    fn width_write_preserves_neighbors() {
        let mut mem = PagedMem::new();
        mem.write_u64(0x400, u64::MAX);
        mem.write(0x402, 0, MemWidth::B2);
        assert_eq!(mem.read_u64(0x400), 0xFFFF_FFFF_0000_FFFF);
    }
}
