//! The thin client behind `levi-bench run --server`.
//!
//! [`run_remote`] submits one [`Job`] over TCP and replays the streamed
//! transcript through [`crate::out`] — stdout lines via [`crate::out::line`],
//! progress lines via [`crate::out::progress`] — so a remote run's local
//! output is byte-identical to an in-process `levi-bench run`: same
//! lines, same streams, same order. (Tests install an output sink to
//! capture and compare the replayed bytes; the CLI leaves the default
//! sink, which is the process's stdout/stderr.)

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;

use crate::serve::protocol::{Event, Job};

/// What the server reported about a completed remote run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteOutcome {
    /// Canonical figure id the server resolved.
    pub figure: String,
    /// The job's content address, as 16 hex digits.
    pub key: String,
    /// True when the transcript replayed from the server's result cache
    /// (no simulation ran).
    pub cached: bool,
    /// True when the request attached to an identical in-flight run.
    pub coalesced: bool,
    /// Transcript length in lines.
    pub lines: u64,
}

/// Runs `job` on the server at `addr`, replaying its output locally.
///
/// # Errors
/// Connection failures, protocol violations, and typed server errors
/// (`busy`, `timeout`, `failed`, `bad_request`) are returned as text
/// prefixed with their code.
pub fn run_remote(addr: &str, job: &Job) -> Result<RemoteOutcome, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    writer
        .write_all(format!("{}\n", job.request_line()).as_bytes())
        .map_err(|e| format!("send request: {e}"))?;

    let mut start: Option<(String, String, bool, bool)> = None;
    let mut replayed = 0u64;
    for line in BufReader::new(stream).lines() {
        let line = line.map_err(|e| format!("read response: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse(&line)? {
            Event::Start {
                figure,
                key,
                cached,
                coalesced,
            } => {
                start = Some((figure, key, cached, coalesced));
            }
            Event::Line(l) => {
                replayed += 1;
                match l {
                    crate::out::Line::Out(text) => crate::out::line(text),
                    crate::out::Line::Progress(text) => crate::out::progress(text),
                }
            }
            Event::Done { cached, lines } => {
                let (figure, key, start_cached, coalesced) =
                    start.ok_or("server sent done before start")?;
                if lines != replayed {
                    return Err(format!(
                        "transcript incomplete: server sent {lines} lines, received {replayed}"
                    ));
                }
                return Ok(RemoteOutcome {
                    figure,
                    key,
                    cached: cached || start_cached,
                    coalesced,
                    lines,
                });
            }
            Event::Error { code, message } => return Err(format!("{code}: {message}")),
        }
    }
    Err("connection closed before the run finished".into())
}
