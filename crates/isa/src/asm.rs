//! A text assembler for LevIR.
//!
//! [`assemble`] parses an assembly source string into a validated
//! [`Program`]. The syntax mirrors the [`crate::FunctionBuilder`] helpers
//! one-to-one, so actions can be written as readable text instead of
//! builder calls:
//!
//! ```text
//! ; sum the u64s in [r0, r0 + 8*r1)
//! fn sum:
//!     imm   r2, 0
//!     imm   r3, 0
//! loop:
//!     bgeu  r3, r1, done
//!     ld8   r4, [r0+0]
//!     add   r2, r2, r4
//!     addi  r0, r0, 8
//!     addi  r3, r3, 1
//!     jmp   loop
//! done:
//!     mov   r0, r2
//!     ret
//! ```
//!
//! Supported forms (registers `r0`..`r63`; immediates decimal, hex
//! `0x…`, or negative):
//!
//! * `imm rd, imm` · `mov rd, rs`
//! * ALU: `add|sub|mul|divu|remu|and|or|xor|shl|shr|sar|slts|sltu|seq|sne|minu|maxu rd, ra, rb`
//!   and immediate forms with an `i` suffix (`addi rd, ra, imm`, …)
//! * loads/stores: `ld1|ld2|ld4|ld8[s] rd, [ra+off]` ·
//!   `st1|st2|st4|st8 [ra+off], rs`
//! * branches: `beq|bne|bltu|blts|bgeu|bges ra, rb, label` · `jmp label`
//! * `call fn_name` · `ret` · `halt` · `nop` · `trace rs`
//! * atomics: `rmw.add|and|or|xor|minu|maxu|xchg[.relaxed].b1|b2|b4|b8 rd, [ra], rv`
//!   (fenced unless `.relaxed`) · `fence`
//! * NDC: `invoke[.local|.remote|.dynamic][.excl] ractor, @N, (r1, r2, ...)[ -> rfut]`
//!   · `fwait rd, rf` · `fsend rf, rv` · `push rs, rv` · `pop rs` ·
//!   `flush ra, rl`
//!
//! Comments start with `;` or `#`. Functions are introduced with
//! `fn name:` and end at the next `fn` or end of input.

use std::collections::HashMap;
use std::fmt;

use crate::builder::{FunctionBuilder, ProgramBuilder};
use crate::inst::{AluOp, BrCond, Label, Location, MemWidth, Reg, RmwOp};
use crate::program::{ActionId, FuncId, Program};

/// An assembly parse error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Assembles LevIR source into a validated [`Program`].
///
/// # Errors
/// Returns an [`AsmError`] naming the offending line on any syntax
/// problem; program-level validation errors (e.g. unknown call targets)
/// are mapped to line 0.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // Pass 1: collect function names -> ids (for forward calls).
    let mut func_names = Vec::new();
    for (ln, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if let Some(rest) = line.strip_prefix("fn ") {
            let Some(name) = rest.trim().strip_suffix(':').map(str::trim) else {
                return err(ln + 1, format!("expected `fn name:`, got `{line}`"));
            };
            if name.is_empty() {
                return err(ln + 1, "empty function name");
            }
            if name.contains(|c: char| c.is_whitespace() || c == ':') {
                return err(ln + 1, format!("bad function name `{name}`"));
            }
            if func_names.iter().any(|(n, _)| n == name) {
                return err(ln + 1, format!("duplicate function `{name}`"));
            }
            func_names.push((name.to_string(), ln + 1));
        }
    }
    if func_names.is_empty() {
        return err(1, "no functions (expected `fn name:`)");
    }

    let mut pb = ProgramBuilder::new();
    let ids: Vec<FuncId> = func_names.iter().map(|(n, _)| pb.declare(n)).collect();
    let by_name: HashMap<&str, FuncId> = func_names
        .iter()
        .zip(&ids)
        .map(|((n, _), id)| (n.as_str(), *id))
        .collect();

    // Pass 2: assemble each function body.
    let mut lines = src.lines().enumerate().peekable();
    let mut fi = 0usize;
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if !line.starts_with("fn ") {
            if !line.is_empty() {
                return err(ln + 1, "code outside any function");
            }
            continue;
        }
        let mut f = pb.define(ids[fi]);
        fi += 1;
        let mut labels: HashMap<String, Label> = HashMap::new();
        let mut body: Vec<(usize, String)> = Vec::new();
        while let Some(&(_, peek_raw)) = lines.peek() {
            if strip_comment(peek_raw).trim().starts_with("fn ") {
                break;
            }
            let (ln2, raw2) = lines.next().expect("peeked");
            let l = strip_comment(raw2).trim().to_string();
            if !l.is_empty() {
                body.push((ln2 + 1, l));
            }
        }
        // Collect labels first so forward references resolve.
        for (ln2, l) in &body {
            if let Some(name) = l.strip_suffix(':') {
                let name = name.trim();
                if name.contains(char::is_whitespace) {
                    return err(*ln2, format!("bad label `{name}`"));
                }
                let lbl = f.label();
                if labels.insert(name.to_string(), lbl).is_some() {
                    return err(*ln2, format!("duplicate label `{name}`"));
                }
            }
        }
        for (ln2, l) in &body {
            if let Some(name) = l.strip_suffix(':') {
                f.bind(labels[name.trim()]);
                continue;
            }
            parse_inst(&mut f, *ln2, l, &labels, &by_name)?;
        }
        f.finish();
    }

    pb.finish().map_err(|e| AsmError {
        line: 0,
        message: e.to_string(),
    })
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find(';')
        .into_iter()
        .chain(line.find('#'))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

fn parse_reg(line: usize, tok: &str) -> Result<Reg, AsmError> {
    let t = tok.trim();
    let Some(num) = t.strip_prefix('r') else {
        return err(line, format!("expected register, got `{t}`"));
    };
    match num.parse::<u8>() {
        Ok(n) if (n as usize) < crate::inst::NUM_REGS => Ok(Reg(n)),
        _ => err(line, format!("bad register `{t}`")),
    }
}

fn parse_imm(line: usize, tok: &str) -> Result<u64, AsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16)
    } else {
        t.replace('_', "").parse::<u64>()
    };
    match v {
        Ok(v) => Ok(if neg {
            (v as i64).wrapping_neg() as u64
        } else {
            v
        }),
        Err(_) => err(line, format!("bad immediate `{tok}`")),
    }
}

/// Parses `[ra+off]` / `[ra-off]` / `[ra]`.
fn parse_mem(line: usize, tok: &str) -> Result<(Reg, i32), AsmError> {
    let t = tok.trim();
    let inner = t
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| AsmError {
            line,
            message: format!("expected [reg+off], got `{t}`"),
        })?;
    if let Some(pos) = inner.find(['+', '-']) {
        let (r, rest) = inner.split_at(pos);
        let reg = parse_reg(line, r)?;
        let off = parse_imm(line, rest.trim_start_matches('+'))? as i64;
        let off = i32::try_from(off).map_err(|_| AsmError {
            line,
            message: format!("offset out of range in `{t}`"),
        })?;
        Ok((reg, off))
    } else {
        Ok((parse_reg(line, inner)?, 0))
    }
}

fn alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "divu" => AluOp::DivU,
        "remu" => AluOp::RemU,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sar" => AluOp::Sar,
        "slts" => AluOp::SltS,
        "sltu" => AluOp::SltU,
        "seq" => AluOp::Seq,
        "sne" => AluOp::Sne,
        "minu" => AluOp::MinU,
        "maxu" => AluOp::MaxU,
        _ => return None,
    })
}

fn rmw_op(m: &str) -> Option<RmwOp> {
    Some(match m {
        "add" => RmwOp::Add,
        "and" => RmwOp::And,
        "or" => RmwOp::Or,
        "xor" => RmwOp::Xor,
        "minu" => RmwOp::MinU,
        "maxu" => RmwOp::MaxU,
        "xchg" => RmwOp::Xchg,
        _ => return None,
    })
}

fn br_cond(m: &str) -> Option<BrCond> {
    Some(match m {
        "beq" => BrCond::Eq,
        "bne" => BrCond::Ne,
        "bltu" => BrCond::LtU,
        "blts" => BrCond::LtS,
        "bgeu" => BrCond::GeU,
        "bges" => BrCond::GeS,
        _ => return None,
    })
}

fn width(suffix: &str) -> Option<MemWidth> {
    Some(match suffix {
        "1" | "b1" => MemWidth::B1,
        "2" | "b2" => MemWidth::B2,
        "4" | "b4" => MemWidth::B4,
        "8" | "b8" => MemWidth::B8,
        _ => return None,
    })
}

#[allow(clippy::too_many_lines)]
fn parse_inst(
    f: &mut FunctionBuilder<'_>,
    line: usize,
    text: &str,
    labels: &HashMap<String, Label>,
    funcs: &HashMap<&str, FuncId>,
) -> Result<(), AsmError> {
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        split_args(rest)
    };
    let need = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!("`{mnemonic}` expects {n} operand(s), got {}", args.len()),
            )
        }
    };
    let label_of = |name: &str| -> Result<Label, AsmError> {
        labels.get(name.trim()).copied().ok_or_else(|| AsmError {
            line,
            message: format!("unknown label `{name}`"),
        })
    };

    match mnemonic {
        "imm" => {
            need(2)?;
            let rd = parse_reg(line, args[0])?;
            let v = parse_imm(line, args[1])?;
            f.imm(rd, v);
        }
        "mov" => {
            need(2)?;
            f.mov(parse_reg(line, args[0])?, parse_reg(line, args[1])?);
        }
        "jmp" => {
            need(1)?;
            let l = label_of(args[0])?;
            f.jmp(l);
        }
        "call" => {
            need(1)?;
            let callee = funcs.get(args[0].trim()).copied().ok_or_else(|| AsmError {
                line,
                message: format!("unknown function `{}`", args[0]),
            })?;
            f.call(callee);
        }
        "ret" => {
            need(0)?;
            f.ret();
        }
        "halt" => {
            need(0)?;
            f.halt();
        }
        "nop" => {
            need(0)?;
            f.nop();
        }
        "fence" => {
            need(0)?;
            f.fence();
        }
        "trace" => {
            need(1)?;
            let r = parse_reg(line, args[0])?;
            f.trace(r);
        }
        "fwait" => {
            need(2)?;
            let rd = parse_reg(line, args[0])?;
            let rf = parse_reg(line, args[1])?;
            f.future_wait(rd, rf);
        }
        "fsend" => {
            need(2)?;
            let rf = parse_reg(line, args[0])?;
            let rv = parse_reg(line, args[1])?;
            f.future_send(rf, rv);
        }
        "push" => {
            need(2)?;
            let s = parse_reg(line, args[0])?;
            let rv = parse_reg(line, args[1])?;
            f.push(s, rv);
        }
        "pop" => {
            need(1)?;
            let s = parse_reg(line, args[0])?;
            f.pop(s);
        }
        "flush" => {
            need(2)?;
            let ra = parse_reg(line, args[0])?;
            let rl = parse_reg(line, args[1])?;
            f.flush(ra, rl);
        }
        m if br_cond(m).is_some() => {
            need(3)?;
            let c = br_cond(m).expect("checked");
            let ra = parse_reg(line, args[0])?;
            let rb = parse_reg(line, args[1])?;
            let l = label_of(args[2])?;
            f.br(c, ra, rb, l);
        }
        m if m.starts_with("ld") => {
            need(2)?;
            let spec = &m[2..];
            let (wtok, sext) = match spec.strip_suffix('s') {
                Some(w) => (w, true),
                None => (spec, false),
            };
            let w = width(wtok).ok_or_else(|| AsmError {
                line,
                message: format!("bad load `{m}`"),
            })?;
            let rd = parse_reg(line, args[0])?;
            let (ra, off) = parse_mem(line, args[1])?;
            f.ld(rd, ra, off, w, sext);
        }
        m if m.starts_with("st") => {
            need(2)?;
            let w = width(&m[2..]).ok_or_else(|| AsmError {
                line,
                message: format!("bad store `{m}`"),
            })?;
            let (ra, off) = parse_mem(line, args[0])?;
            let rs = parse_reg(line, args[1])?;
            f.st(ra, off, rs, w);
        }
        m if m.starts_with("rmw.") => {
            need(3)?;
            let parts: Vec<&str> = m.split('.').collect();
            // rmw.<op>[.relaxed].<width>
            if parts.len() < 3 {
                return err(line, format!("bad rmw `{m}` (want rmw.op[.relaxed].b8)"));
            }
            let op = rmw_op(parts[1]).ok_or_else(|| AsmError {
                line,
                message: format!("bad rmw op in `{m}`"),
            })?;
            let relaxed = parts.contains(&"relaxed");
            let w = width(parts.last().expect("nonempty")).ok_or_else(|| AsmError {
                line,
                message: format!("bad rmw width in `{m}`"),
            })?;
            let rd = parse_reg(line, args[0])?;
            let (ra, off) = parse_mem(line, args[1])?;
            if off != 0 {
                return err(line, "rmw takes [reg] without an offset");
            }
            let rv = parse_reg(line, args[2])?;
            if relaxed {
                f.rmw_relaxed(op, rd, ra, rv, w);
            } else {
                f.rmw_fenced(op, rd, ra, rv, w);
            }
        }
        m if m.starts_with("invoke") => {
            parse_invoke(f, line, m, rest)?;
        }
        m => {
            // Immediate-ALU (suffix i), then plain ALU.
            if let Some(base) = m.strip_suffix('i') {
                if let Some(op) = alu_op(base) {
                    need(3)?;
                    let rd = parse_reg(line, args[0])?;
                    let ra = parse_reg(line, args[1])?;
                    let v = parse_imm(line, args[2])?;
                    f.alui(op, rd, ra, v);
                    return Ok(());
                }
            }
            if let Some(op) = alu_op(m) {
                need(3)?;
                let rd = parse_reg(line, args[0])?;
                let ra = parse_reg(line, args[1])?;
                let rb = parse_reg(line, args[2])?;
                f.alu(op, rd, ra, rb);
                return Ok(());
            }
            return err(line, format!("unknown mnemonic `{m}`"));
        }
    }
    Ok(())
}

/// `invoke[.local|.remote|.dynamic][.excl] ractor, @N, (r1, ...)[ -> rfut]`
fn parse_invoke(
    f: &mut FunctionBuilder<'_>,
    line: usize,
    mnemonic: &str,
    rest: &str,
) -> Result<(), AsmError> {
    let mut loc = Location::Dynamic;
    let mut exclusive = false;
    for part in mnemonic.split('.').skip(1) {
        match part {
            "local" => loc = Location::Local,
            "remote" => loc = Location::Remote,
            "dynamic" => loc = Location::Dynamic,
            "excl" => exclusive = true,
            other => return err(line, format!("bad invoke modifier `.{other}`")),
        }
    }
    let (body, fut) = match rest.split_once("->") {
        Some((b, f)) => (b.trim(), Some(parse_reg(line, f)?)),
        None => (rest, None),
    };
    // ractor, @N, (args)
    let mut parts = body.splitn(3, ',');
    let actor = parse_reg(line, parts.next().unwrap_or(""))?;
    let action_tok = parts.next().map(str::trim).unwrap_or("");
    let action = action_tok
        .strip_prefix('@')
        .and_then(|n| n.parse::<u32>().ok())
        .map(ActionId)
        .ok_or_else(|| AsmError {
            line,
            message: format!("expected `@N` action id, got `{action_tok}`"),
        })?;
    let args_tok = parts.next().map(str::trim).unwrap_or("()");
    let inner = args_tok
        .strip_prefix('(')
        .and_then(|x| x.strip_suffix(')'))
        .ok_or_else(|| AsmError {
            line,
            message: format!("expected `(args)`, got `{args_tok}`"),
        })?;
    let mut arg_regs = Vec::new();
    for a in inner.split(',') {
        let a = a.trim();
        if a.is_empty() {
            continue;
        }
        arg_regs.push(parse_reg(line, a)?);
    }
    use crate::inst::Inst;
    f.emit(Inst::Invoke {
        actor,
        action,
        args: arg_regs,
        future: fut,
        loc,
        exclusive,
    });
    Ok(())
}

/// Splits top-level comma-separated operands, keeping `(...)`, `[...]`,
/// and `-> reg` intact for `invoke` (which parses its own tail).
fn split_args(rest: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(rest[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(rest[start..].trim());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::mem::{Memory, PagedMem};

    #[test]
    fn assembles_and_runs_sum() {
        let prog = assemble(
            r"
            ; sum the u64s in [r0, r0 + 8*r1)
            fn sum:
                imm   r2, 0
                imm   r3, 0
            loop:
                bgeu  r3, r1, done
                ld8   r4, [r0+0]
                add   r2, r2, r4
                addi  r0, r0, 8
                addi  r3, r3, 1
                jmp   loop
            done:
                mov   r0, r2
                ret
            ",
        )
        .unwrap();
        let sum = prog.func_by_name("sum").unwrap();
        let mut mem = PagedMem::new();
        for (i, v) in [5u64, 10, 15].iter().enumerate() {
            mem.write_u64(0x100 + 8 * i as u64, *v);
        }
        let got = Interpreter::new(&prog)
            .run(sum, &[0x100, 3], &mut mem)
            .unwrap();
        assert_eq!(got, 30);
    }

    #[test]
    fn calls_between_functions() {
        let prog = assemble(
            r"
            fn main:
                imm r0, 20
                call double  ; forward reference
                ret
            fn double:
                add r0, r0, r0
                ret
            ",
        )
        .unwrap();
        let main = prog.func_by_name("main").unwrap();
        let mut mem = PagedMem::new();
        let got = Interpreter::new(&prog).run(main, &[], &mut mem).unwrap();
        assert_eq!(got, 40);
    }

    #[test]
    fn memory_and_immediates() {
        let prog = assemble(
            r"
            fn kit:
                imm  r1, 0x10
                imm  r2, -1
                st8  [r1+8], r2
                ld4  r0, [r1+8]
                ld1s r3, [r1+8]
                add  r0, r0, r3
                ret
            ",
        )
        .unwrap();
        let f = prog.func_by_name("kit").unwrap();
        let mut mem = PagedMem::new();
        let got = Interpreter::new(&prog).run(f, &[], &mut mem).unwrap();
        // ld4 of -1 = 0xFFFF_FFFF; ld1s = -1 (sign-extended).
        assert_eq!(got, 0xFFFF_FFFEu64);
        assert_eq!(mem.read_u64(0x18), u64::MAX);
    }

    #[test]
    fn rmw_and_fence() {
        let prog = assemble(
            r"
            fn bump:
                imm r1, 3
                rmw.add.relaxed.b8 r2, [r0], r1
                fence
                rmw.xchg.b8 r3, [r0], r2
                ret
            ",
        )
        .unwrap();
        let f = prog.func_by_name("bump").unwrap();
        let mut mem = PagedMem::new();
        mem.write_u64(0x40, 10);
        Interpreter::new(&prog).run(f, &[0x40], &mut mem).unwrap();
        // old=10, [0x40]=13, then xchg back to old (10).
        assert_eq!(mem.read_u64(0x40), 10);
    }

    #[test]
    fn invoke_forms_parse() {
        let prog = assemble(
            r"
            fn caller:
                invoke.remote r1, @0, (r2, r3)
                invoke.dynamic.excl r1, @2, () -> r5
                invoke r1, @1, (r2)
                halt
            ",
        )
        .unwrap();
        let f = prog.func_by_name("caller").unwrap();
        let insts = prog.func(f).insts();
        match &insts[0] {
            crate::inst::Inst::Invoke {
                action,
                args,
                loc,
                exclusive,
                future,
                ..
            } => {
                assert_eq!(*action, ActionId(0));
                assert_eq!(args.len(), 2);
                assert_eq!(*loc, Location::Remote);
                assert!(!exclusive);
                assert!(future.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        match &insts[1] {
            crate::inst::Inst::Invoke {
                loc,
                exclusive,
                future,
                args,
                ..
            } => {
                assert_eq!(*loc, Location::Dynamic);
                assert!(*exclusive);
                assert_eq!(*future, Some(Reg(5)));
                assert!(args.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stream_and_future_mnemonics() {
        let prog = assemble(
            r"
            fn s:
                push  r0, r1
                pop   r0
                fsend r2, r3
                fwait r4, r2
                flush r5, r6
                trace r4
                halt
            ",
        )
        .unwrap();
        assert_eq!(prog.func(prog.func_by_name("s").unwrap()).len(), 7);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("fn a:\n    bogus r1, r2\n    ret\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("fn a:\n    jmp nowhere\n    ret\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("nowhere"));

        let e = assemble("    add r1, r2, r3\n").unwrap_err();
        assert!(e.message.contains("no functions"));

        let e = assemble("    add r1, r2, r3\nfn a:\n    ret\n").unwrap_err();
        assert!(e.message.contains("outside"));

        let e = assemble("fn a:\n    imm r99, 1\n    ret\n").unwrap_err();
        assert!(e.message.contains("r99"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog =
            assemble("; leading comment\n\nfn a:  ; trailing\n    # hash comment\n    ret\n")
                .unwrap();
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn duplicate_function_rejected() {
        let e = assemble("fn a:\n    ret\nfn a:\n    ret\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn falls_off_end_reported() {
        let e = assemble("fn a:\n    imm r0, 1\n").unwrap_err();
        assert!(e.message.contains("falls off"));
    }
}
