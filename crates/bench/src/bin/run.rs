//! `levi-bench` — the unified experiment runner.
//!
//! One binary regenerates any figure or table of the paper's evaluation
//! from the figure registry, replacing per-figure driver binaries:
//!
//! ```text
//! levi-bench list
//! levi-bench run <figure|all> [--quick] [--serial] [--json PATH]
//!                             [--telemetry PATH] [--resume PATH]
//!                             [--checkpoint-every N] [--snapshot-verify]
//!                             [--fault-plan SEED[:HORIZON]] [--filter VARIANT]
//!                             [--server ADDR] [--job-timeout-ms N]
//! levi-bench serve [--addr ADDR] [--cache PATH] [--workers N]
//!                  [--queue-depth N]
//! levi-bench check-report <PATH>
//! levi-bench perf <run|compare|accept> [options]
//! ```
//!
//! `run all --json PATH` truncates `PATH`, appends one JSON line per
//! figure, and finishes with a roll-up manifest line; `check-report`
//! validates such a file (parses, one manifest, every manifest figure
//! present, every registry workload covered).
//!
//! `run ... --resume PATH` journals every completed sweep variant to
//! `PATH` and, when the journal already holds records (from a run that was
//! killed or crashed part-way), loads them instead of re-running: the
//! merged report is identical to an uninterrupted run, because every run
//! is a pure function of its configuration. `--checkpoint-every N` arms
//! the in-simulation snapshot hook, and `--snapshot-verify` restores each
//! run's last checkpoint afterwards and replays it to the end, failing on
//! divergence.
//!
//! `run ... --telemetry PATH` additionally records invoke-lifecycle spans
//! and trace events in every run and appends one self-describing
//! JSON-lines registry dump per run to `PATH` (see
//! `levi_sim::Telemetry::to_jsonl`); the printed tables are byte-identical
//! with or without the flag. `check-report` recognizes such dumps by their
//! `{"telemetry":...}` header lines and validates them structurally.
//!
//! `serve` starts the long-running experiment service (`levi_bench::serve`):
//! a std-only TCP server that executes figures through the same engine,
//! dedupes identical requests against a content-addressed result cache,
//! and streams output lines over the wire. `run ... --server ADDR` becomes
//! a thin client of such a server, replaying the streamed transcript
//! byte-identically to an in-process run.

use levi_bench::figures::ALL;
use levi_bench::json::{parse, Json};
use levi_bench::runner::{find_figure, manifest_json, run_figure, RunCtx};
use levi_workloads::harness::FaultSpec;
use levi_workloads::REGISTRY;

fn usage() -> ! {
    eprintln!("usage: levi-bench <command>");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  list                         list figures and the workloads they exercise");
    eprintln!("  run <figure|all> [options]   regenerate one figure, or all in order");
    eprintln!("  serve [options]              run the experiment service (TCP, cached)");
    eprintln!("  check-report <path>          validate a --json report file");
    eprintln!("  perf <run|compare|accept>    host-performance measurement and");
    eprintln!("                               regression gating ('perf' for details)");
    eprintln!();
    eprintln!("run options:");
    eprintln!("  --quick              reduced scales (sets LEVI_BENCH_QUICK)");
    eprintln!("  --serial             run sweeps serially (sets LEVI_SWEEP_SERIAL)");
    eprintln!("  --json PATH          append per-figure JSON lines to PATH");
    eprintln!("                       ('all' truncates PATH and adds a manifest)");
    eprintln!("  --telemetry PATH     record spans + traces in every run and dump");
    eprintln!("                       the full telemetry registry to PATH (JSONL);");
    eprintln!("                       printed output is identical with or without");
    eprintln!("  --resume PATH        journal completed variants to PATH and skip");
    eprintln!("                       the ones already on record (crash recovery)");
    eprintln!("  --checkpoint-every N snapshot the machine every N cycles");
    eprintln!("  --snapshot-verify    restore each run's last checkpoint and replay");
    eprintln!("                       it to the end; fail on divergence");
    eprintln!("  --fault-plan SEED[:HORIZON]");
    eprintln!("                       inject a seeded fault plan into every run");
    eprintln!("  --filter VARIANT     only run variants whose label contains VARIANT");
    eprintln!("                       (baselines always run; knob sweeps ignore this)");
    eprintln!("  --server ADDR        submit the run to a levi-bench serve instance");
    eprintln!("                       and replay its output (byte-identical)");
    eprintln!("  --job-timeout-ms N   with --server: fail if still queued after N ms");
    eprintln!();
    eprintln!("serve options:");
    eprintln!("  --addr ADDR          listen address (default 127.0.0.1:0)");
    eprintln!("  --cache PATH         result cache file (default levi-serve.cache)");
    eprintln!("  --workers N          executor threads (default 2)");
    eprintln!("  --queue-depth N      bounded queue depth before 'busy' (default 8)");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("levi-bench: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("check-report") => cmd_check(&args[1..]),
        Some("perf") => levi_bench::perf_cli::cmd_perf(&args[1..]),
        _ => usage(),
    }
}

fn cmd_list() {
    println!("{:<22} {:<28} about", "figure", "workloads");
    for f in ALL {
        println!(
            "{:<22} {:<28} {}",
            f.id,
            if f.workloads.is_empty() {
                "-".to_string()
            } else {
                f.workloads.join(", ")
            },
            f.about
        );
    }
}

fn parse_fault_plan(spec: &str) -> FaultSpec {
    let (seed_s, horizon_s) = match spec.split_once(':') {
        Some((s, h)) => (s, Some(h)),
        None => (spec, None),
    };
    let seed = seed_s
        .parse()
        .unwrap_or_else(|_| fail(&format!("--fault-plan: bad seed {seed_s:?}")));
    let mut fault = FaultSpec::new(seed);
    if let Some(h) = horizon_s {
        fault.horizon = h
            .parse()
            .unwrap_or_else(|_| fail(&format!("--fault-plan: bad horizon {h:?}")));
        if fault.horizon == 0 {
            fail("--fault-plan: horizon must be nonzero");
        }
    }
    fault
}

fn cmd_run(args: &[String]) {
    let mut target = None;
    let mut ctx = RunCtx::from_env();
    let mut serial = false;
    let mut json: Option<String> = None;
    let mut telemetry: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut server: Option<String> = None;
    let mut job_timeout_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--quick" => ctx.quick = true,
            "--serial" => serial = true,
            "--json" => json = Some(value("--json")),
            "--telemetry" => telemetry = Some(value("--telemetry")),
            "--resume" => resume = Some(value("--resume")),
            "--checkpoint-every" => {
                let v = value("--checkpoint-every");
                ctx.env.checkpoint_every = v.parse().unwrap_or_else(|_| {
                    fail(&format!("--checkpoint-every: bad cycle count {v:?}"))
                });
            }
            "--snapshot-verify" => ctx.env.snapshot_verify = true,
            "--fault-plan" => ctx.env.fault = Some(parse_fault_plan(&value("--fault-plan"))),
            "--filter" => ctx.filter = Some(value("--filter")),
            "--server" => server = Some(value("--server")),
            "--job-timeout-ms" => {
                let v = value("--job-timeout-ms");
                job_timeout_ms = Some(v.parse().unwrap_or_else(|_| {
                    fail(&format!("--job-timeout-ms: bad millisecond count {v:?}"))
                }));
            }
            other if other.starts_with('-') => fail(&format!("unknown option {other}")),
            other => {
                if target.replace(other.to_string()).is_some() {
                    fail("run takes one figure (or 'all')");
                }
            }
        }
    }
    let Some(target) = target else {
        fail("run needs a figure id (see 'levi-bench list') or 'all'");
    };

    if let Some(addr) = server {
        // Thin-client mode: the run happens on the server, which owns
        // its own journal-free engine; client-local file side channels
        // don't apply.
        for (flag, set) in [
            ("--json", json.is_some()),
            ("--telemetry", telemetry.is_some()),
            ("--resume", resume.is_some()),
            ("--serial", serial),
            ("--checkpoint-every", ctx.env.checkpoint_every > 0),
            ("--snapshot-verify", ctx.env.snapshot_verify),
        ] {
            if set {
                fail(&format!("{flag} cannot be combined with --server"));
            }
        }
        return run_remote_target(&addr, &target, &ctx, job_timeout_ms);
    }
    if job_timeout_ms.is_some() {
        fail("--job-timeout-ms only applies with --server");
    }

    // The workload layer reads these switches wherever a figure runs, so
    // the flags just set the environment the bench wrappers already honor.
    if ctx.quick {
        std::env::set_var("LEVI_BENCH_QUICK", "1");
    }
    if serial {
        std::env::set_var("LEVI_SWEEP_SERIAL", "1");
    }
    if let Some(path) = &json {
        if target == "all" {
            // A fresh roll-up: figures append to a truncated file.
            std::fs::write(path, "").unwrap_or_else(|e| fail(&format!("--json {path}: {e}")));
        }
        std::env::set_var("LEVI_BENCH_JSON", path);
    }
    if let Some(path) = &telemetry {
        // Each invocation starts a fresh dump; runs append blocks.
        std::fs::write(path, "").unwrap_or_else(|e| fail(&format!("--telemetry {path}: {e}")));
        std::env::set_var("LEVI_TELEMETRY", path);
        ctx.env.telemetry = true;
    }
    if let Some(path) = &resume {
        // Validate (and create, if absent) the journal up front so a bad
        // path or scale mismatch fails before any simulation starts. The
        // runner re-opens it lazily through LEVI_BENCH_JOURNAL.
        if let Err(e) = levi_bench::journal::Journal::open(path, ctx.quick) {
            fail(&format!("--resume {path}: {e}"));
        }
        std::env::set_var("LEVI_BENCH_JOURNAL", path);
    }

    if target == "all" {
        for fig in ALL {
            run_figure(fig, &ctx);
        }
        levi_bench::emit_json_line(&manifest_json(ctx.quick));
    } else {
        let Some(fig) = find_figure(&target) else {
            fail(&format!("unknown figure {target:?}; see 'levi-bench list'"));
        };
        run_figure(fig, &ctx);
    }
}

/// Submits `target` (one figure or `all`) to a levi-serve instance and
/// replays the streamed output locally.
fn run_remote_target(addr: &str, target: &str, ctx: &RunCtx, timeout_ms: Option<u64>) {
    let job_for = |figure: &str| {
        let mut job = levi_bench::serve::Job::new(figure);
        job.quick = ctx.quick;
        job.filter = ctx.filter.clone();
        job.fault = ctx.env.fault;
        job.timeout_ms = timeout_ms;
        job
    };
    let run_one = |figure: &str| match levi_bench::serve::run_remote(addr, &job_for(figure)) {
        Ok(outcome) => {
            if outcome.cached {
                eprintln!(
                    "levi-serve: cache hit (key {}, {} lines replayed)",
                    outcome.key, outcome.lines
                );
            }
        }
        Err(e) => fail(&format!("--server {addr}: {e}")),
    };
    if target == "all" {
        for fig in ALL {
            run_one(fig.id);
        }
    } else {
        let Some(fig) = find_figure(target) else {
            fail(&format!("unknown figure {target:?}; see 'levi-bench list'"));
        };
        run_one(fig.id);
    }
}

/// Starts the experiment service and blocks until killed.
fn cmd_serve(args: &[String]) {
    let mut cfg = levi_bench::serve::ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--cache" => cfg.cache_path = value("--cache"),
            "--workers" => {
                let v = value("--workers");
                cfg.workers = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--workers: bad count {v:?}")));
            }
            "--queue-depth" => {
                let v = value("--queue-depth");
                cfg.queue_depth = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--queue-depth: bad depth {v:?}")));
            }
            other => fail(&format!("unknown serve option {other}")),
        }
    }
    let handle = levi_bench::serve::Server::start(
        &cfg,
        std::sync::Arc::new(levi_bench::serve::FigureExecutor),
    )
    .unwrap_or_else(|e| fail(&format!("serve: {e}")));
    // Scripts parse this line for the bound port; flush it eagerly.
    println!("levi-serve listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait();
}

fn cmd_check(args: &[String]) {
    let [path] = args else {
        fail("check-report takes exactly one path");
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{path}: {e}")));

    // A telemetry dump announces itself with a `{"telemetry":...}` header
    // on its first line; everything else is a figure report.
    if let Some(first) = text.lines().find(|l| !l.trim().is_empty()) {
        if parse(first)
            .ok()
            .is_some_and(|doc| doc.get("telemetry").is_some())
        {
            check_telemetry(path, &text);
            return;
        }
    }

    let mut figures_seen = Vec::new();
    let mut manifest = None;
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let doc =
            parse(line).unwrap_or_else(|e| fail(&format!("{path}:{}: invalid JSON: {e}", i + 1)));
        if let Some(fig) = doc.get("figure").and_then(Json::as_str) {
            figures_seen.push(fig.to_string());
        } else if let Some(m) = doc.get("manifest") {
            if manifest.replace(m.clone()).is_some() {
                fail(&format!("{path}: more than one manifest line"));
            }
        } else {
            fail(&format!(
                "{path}:{}: line is neither a figure nor a manifest",
                i + 1
            ));
        }
    }

    let Some(manifest) = manifest else {
        fail(&format!(
            "{path}: no manifest line (reports come from 'levi-bench run all --json')"
        ));
    };
    let figures = manifest
        .get("figures")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail(&format!("{path}: manifest has no figures array")));
    let mut covered_workloads = Vec::new();
    for fig in figures {
        let id = fig
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("{path}: manifest figure without id")));
        if !figures_seen.iter().any(|seen| seen == id) {
            fail(&format!(
                "{path}: manifest figure {id:?} emitted no JSON line"
            ));
        }
        for w in fig.get("workloads").and_then(Json::as_arr).unwrap_or(&[]) {
            if let Some(name) = w.as_str() {
                covered_workloads.push(name.to_string());
            }
        }
    }
    for fig in &figures_seen {
        if !figures
            .iter()
            .any(|f| f.get("id").and_then(Json::as_str) == Some(fig))
        {
            fail(&format!("{path}: figure {fig:?} missing from the manifest"));
        }
    }
    for w in REGISTRY {
        if !covered_workloads.iter().any(|c| c == w.name()) {
            fail(&format!(
                "{path}: registry workload {:?} covered by no figure",
                w.name()
            ));
        }
    }
    println!(
        "report OK: {} lines, {} figures, {} registry workloads covered",
        lines,
        figures.len(),
        REGISTRY.len()
    );
}

/// Structurally validates a `--telemetry` registry dump: every line
/// parses, every line is a known kind, every block starts with a
/// version-1 header carrying a scope, and data lines only appear inside a
/// block.
fn check_telemetry(path: &str, text: &str) {
    let line_fail = |i: usize, msg: &str| -> ! { fail(&format!("{path}:{}: {msg}", i + 1)) };
    let mut blocks = 0usize;
    let mut lines = 0usize;
    let mut metrics = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let doc =
            parse(line).unwrap_or_else(|e| fail(&format!("{path}:{}: invalid JSON: {e}", i + 1)));
        if let Some(header) = doc.get("telemetry") {
            if header.get("version").and_then(Json::as_num) != Some(1.0) {
                line_fail(i, "unsupported telemetry version (expected 1)");
            }
            if header.get("scope").and_then(Json::as_str).is_none() {
                line_fail(i, "telemetry header without a scope string");
            }
            blocks += 1;
            continue;
        }
        if blocks == 0 {
            line_fail(i, "data line before any telemetry header");
        }
        if doc.get("metric").is_some() {
            if doc.get("metric").and_then(Json::as_str).is_none() {
                line_fail(i, "metric name is not a string");
            }
            let ty = doc
                .get("type")
                .and_then(Json::as_str)
                .unwrap_or_else(|| line_fail(i, "metric line without a type"));
            match ty {
                "counter" | "gauge" => {
                    if doc.get("value").and_then(Json::as_num).is_none() {
                        line_fail(i, "counter/gauge without a numeric value");
                    }
                }
                "histogram" => {
                    for key in ["count", "sum", "min", "max", "mean", "p50", "p90", "p99"] {
                        if doc.get(key).and_then(Json::as_num).is_none() {
                            line_fail(i, &format!("histogram missing numeric {key:?}"));
                        }
                    }
                }
                other => line_fail(i, &format!("unknown metric type {other:?}")),
            }
            metrics += 1;
        } else if let Some(slow) = doc.get("slow_invoke") {
            for key in [
                "rank", "span", "rtt", "offload", "noc", "queue", "exec", "response",
            ] {
                if slow.get(key).and_then(Json::as_num).is_none() {
                    line_fail(i, &format!("slow_invoke missing numeric {key:?}"));
                }
            }
        } else if let Some(stage) = doc.get("span_stage") {
            if stage.get("stage").and_then(Json::as_str).is_none()
                || stage.get("cycles").and_then(Json::as_num).is_none()
            {
                line_fail(i, "span_stage needs a stage string and cycle count");
            }
        } else if doc.get("sample").is_none() && doc.get("span_summary").is_none() {
            line_fail(i, "unknown telemetry line kind");
        }
    }
    if blocks == 0 {
        fail(&format!(
            "{path}: no telemetry blocks (dumps come from 'levi-bench run --telemetry')"
        ));
    }
    println!("telemetry OK: {lines} lines, {blocks} run blocks, {metrics} metrics");
}
