//! Fig. 21 — HATS performance breakdown.
//!
//! Left: DRAM accesses split by PageRank phase (edge vs vertex) — BDFS
//! variants cut edge-phase accesses ~40%. Middle: branch mispredictions
//! per edge — streaming eliminates them. Right: average engine
//! instructions per edge — tākō's per-line restarts cost more than
//! Leviathan's continuously running producer.

use levi_workloads::hats::HatsWorkload;
use levi_workloads::Workload;

use crate::runner::{sweep_variants, Figure, RunCtx};
use crate::{header, table_report};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "fig21_hats_breakdown",
    about: "HATS DRAM-by-phase / mispredict / engine-work breakdown (paper Fig. 21)",
    workloads: &["hats"],
    run,
};

fn run(ctx: &RunCtx) {
    let w = &HatsWorkload;
    let scale = w.scale(ctx.kind());
    header(
        "Fig. 21 — HATS breakdown (DRAM by phase / mispredicts / engine work)",
        "paper: BDFS cuts edge-phase DRAM ~40%; streams eliminate mispredicts;\ntako needs more engine instructions per edge than Leviathan",
    );
    let outcomes = sweep_variants(w, &scale, ctx);
    let mut rows = Vec::new();
    let mut base_edge_dram = 0u64;
    for (label, o) in outcomes.iter() {
        let s = &o.metrics.stats;
        if label == "Baseline" {
            base_edge_dram = s.dram_by_phase[0];
        }
        let edges = o
            .aux_value("edges")
            .expect("HATS runs report their edge count");
        rows.push(vec![
            label.to_string(),
            s.dram_by_phase[0].to_string(),
            format!(
                "{:+.0}%",
                (s.dram_by_phase[0] as f64 / base_edge_dram as f64 - 1.0) * 100.0
            ),
            s.dram_by_phase[1].to_string(),
            format!("{:.3}", s.mispredicts as f64 / edges as f64),
            format!("{:.1}", s.engine_instrs as f64 / edges as f64),
            s.stream_stall_cycles.to_string(),
        ]);
    }
    table_report(
        "fig21_hats_breakdown",
        &[
            "variant",
            "DRAM(edge)",
            "vs base",
            "DRAM(vertex)",
            "mispred/edge",
            "engine instr/edge",
            "stream stalls",
        ],
        &rows,
    );
}
