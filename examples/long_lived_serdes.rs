//! Long-lived workloads: near-memory serialization (the paradigm's
//! canonical example, paper Sec. II-A / SerDes).
//!
//! A long-lived engine task varint-encodes an array of integers into an
//! output buffer while the core continues with unrelated work, then polls
//! a mailbox for completion — background processing that never pollutes
//! the cores' private caches.
//!
//! Run with: `cargo run --release --example long_lived_serdes`

use std::sync::Arc;

use levi_isa::{Memory, ProgramBuilder, Reg};
use levi_sim::EngineLevel;
use leviathan::{System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut pb = ProgramBuilder::new();

    // Long-lived serializer: varint-encode n u64s from src to dst;
    // write the output length to the mailbox when done.
    let serializer = {
        let mut f = pb.function("serialize");
        let (src, n, dst, mailbox) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let (i, v, b, out, c127, start) = (Reg(8), Reg(9), Reg(10), Reg(11), Reg(12), Reg(13));
        f.imm(i, 0).imm(c127, 127).mov(out, dst).mov(start, dst);
        let top = f.label();
        let done = f.label();
        let enc = f.label();
        let last = f.label();
        f.bind(top);
        f.bge_u(i, n, done);
        f.ld8(v, src, 0);
        f.addi(src, src, 8);
        f.bind(enc);
        // while v > 127: emit (v & 0x7f) | 0x80; v >>= 7
        f.bge_u(c127, v, last);
        f.andi(b, v, 0x7f);
        f.ori(b, b, 0x80);
        f.st1(out, 0, b);
        f.addi(out, out, 1);
        f.shri(v, v, 7);
        f.jmp(enc);
        f.bind(last);
        f.st1(out, 0, v);
        f.addi(out, out, 1);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(done);
        f.sub(out, out, start);
        f.st8(mailbox, 0, out); // completion + encoded length
        f.halt();
        f.finish()
    };

    // The core does unrelated compute, then polls the mailbox.
    let main_fn = {
        let mut f = pb.function("main");
        let (mailbox, acc, i, n, len, zero) = (Reg(0), Reg(8), Reg(9), Reg(10), Reg(11), Reg(12));
        f.imm(acc, 1).imm(i, 0).imm(n, 2000).imm(zero, 0);
        let work = f.label();
        let poll = f.label();
        let done = f.label();
        f.bind(work);
        f.bge_u(i, n, poll);
        f.muli(acc, acc, 31);
        f.addi(acc, acc, 7);
        f.addi(i, i, 1);
        f.jmp(work);
        f.bind(poll);
        f.ld8(len, mailbox, 0);
        f.beq(len, zero, poll);
        f.bind(done);
        f.st8(mailbox, 8, acc); // publish the core's own result
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish()?);

    let mut sys = System::try_new(SystemConfig::small())?;
    let n = 512u64;
    let src = sys.alloc_raw(8 * n, 64);
    let dst = sys.alloc_raw(10 * n, 64);
    let mailbox = sys.alloc_raw(16, 64);
    let mut expect_len = 0u64;
    for k in 0..n {
        let v = k * k * 31 + 5;
        sys.write_u64(src + 8 * k, v);
        let mut x = v;
        loop {
            expect_len += 1;
            if x <= 127 {
                break;
            }
            x >>= 7;
        }
    }

    sys.spawn_long_lived(
        1,
        EngineLevel::Llc,
        &prog,
        serializer,
        &[src, n, dst, mailbox],
    );
    sys.spawn_thread(0, &prog, main_fn, &[mailbox]).unwrap();
    sys.run()?;

    let got_len = sys.read_u64(mailbox);
    assert_eq!(got_len, expect_len, "varint length");
    // Spot-check a decode of the first value.
    let mut v = 0u64;
    let mut shift = 0;
    let mut p = dst;
    loop {
        let b = sys.machine().mem().read_u8(p);
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        p += 1;
    }
    assert_eq!(v, 5, "first encoded value decodes");

    println!("serialized {n} integers into {got_len} bytes near the LLC");
    println!(
        "core kept busy meanwhile (result {:#x})",
        sys.read_u64(mailbox + 8)
    );
    println!("engine instructions: {}", sys.stats().engine_instrs);
    println!(
        "core L1 misses:      {} (the encoder's data never entered it)",
        sys.stats().l1.misses
    );
    Ok(())
}
