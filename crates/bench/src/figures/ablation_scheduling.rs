//! Ablation — DYNAMIC invoke scheduling and the 1/32 migrate-local policy
//! (DESIGN.md §4, paper Sec. VI-B1).
//!
//! Compares REMOTE-only placement against DYNAMIC placement (which probes
//! the hierarchy and occasionally migrates tasks up to let hot actors
//! settle in private caches) on the hash-table workload, whose buckets
//! have skewed popularity under Zipfian keys.

use levi_workloads::hashtable::{HashtableWorkload, HtVariant};
use levi_workloads::Workload;

use crate::runner::{Figure, RunCtx};
use crate::{header, table_report, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "ablation_scheduling",
    about: "invoke placement ablation: REMOTE vs DYNAMIC + migrate-local",
    workloads: &["hashtable"],
    run,
};

fn run(ctx: &RunCtx) {
    header(
        "Ablation — invoke placement (REMOTE vs DYNAMIC + migrate-local)",
        "paper: DYNAMIC locates the actor wherever it currently is",
    );
    let w = &HashtableWorkload;
    let scale = w.scale(ctx.kind());
    let jobs: &[(&str, HtVariant)] = &[
        ("baseline (core walk)", HtVariant::Baseline),
        ("REMOTE placement", HtVariant::Leviathan),
        ("DYNAMIC placement", HtVariant::LeviathanDynamic),
    ];
    let env = &ctx.env;
    let scale_ref = &scale;
    let results = Sweep::new()
        .variants(jobs.iter().map(|&(name, v)| (name, v)))
        .run(|name, &v| {
            let o = w.run(v, scale_ref, &(), env).expect_done(name);
            assert_eq!(
                o.checksum,
                w.golden(v, scale_ref, &()),
                "{name} diverged from the golden model"
            );
            o
        });
    let mut rows = Vec::new();
    for (name, o) in &results {
        crate::progressln!("  ran {name}");
        rows.push(vec![
            name.to_string(),
            o.metrics.cycles.to_string(),
            o.metrics.stats.invoke_migrations.to_string(),
            o.metrics.stats.noc_flit_hops.to_string(),
        ]);
    }
    table_report(
        "ablation_scheduling",
        &["placement", "cycles", "migrations", "NoC flit-hops"],
        &rows,
    );
}
