//! Thin wrapper: `cargo bench --bench fig25_system_size` dispatches to the `fig25_system_size`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run fig25_system_size` executes identically.

fn main() {
    levi_bench::runner::bench_main("fig25_system_size");
}
