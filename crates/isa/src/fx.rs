//! Hermetic Fx hashing: a fast, non-cryptographic hasher for hot-path maps.
//!
//! The simulator's inner loops are dominated by small-key hash lookups —
//! page-table probes on every functional memory access, wait-condition
//! lookups on every park/wake, future fills on every NDC send. The
//! standard library's default `SipHash13` is DoS-resistant but costs tens
//! of cycles per lookup; simulation state is never attacker-controlled,
//! so we trade that resistance away.
//!
//! This is a from-scratch reimplementation of the well-known "Fx" scheme
//! (a multiply–rotate–xor construction used by Firefox and the Rust
//! compiler), kept in-repo so the workspace stays dependency-free and the
//! build stays offline. Determinism note: like every `HashMap` in this
//! workspace, iteration order is *never* observable in simulator output —
//! all serialization paths sort before emitting (see `levi-sim`'s
//! snapshot module) — so swapping hashers cannot change golden bytes.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: `2^64 / φ`, the 64-bit golden-ratio mix used
/// by the original FxHasher. Odd, so multiplication is a bijection.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Bits to rotate the running state by before each mix. Spreads low-entropy
/// input bits (small integers, aligned addresses) across the word.
const ROTATE: u32 = 5;

/// A fast, non-cryptographic streaming hasher.
///
/// Each written word is folded into the state as
/// `state = (rotl(state, 5) ^ word) * SEED`. Quality is adequate for the
/// simulator's key distributions (dense integers, page indices, addresses);
/// it is *not* collision-resistant against adversarial keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Folds one 64-bit word into the running state.
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, so `Default` works).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Drop-in for `std::collections::HashMap`
/// wherever keys are simulator-internal (never attacker-controlled).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Builds an [`FxHashMap`] with room for `n` entries.
pub fn map_with_capacity<K, V>(n: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(n, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_one<T: std::hash::Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_one(0xdead_beefu64), hash_one(0xdead_beefu64));
        assert_eq!(hash_one("stream"), hash_one("stream"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Dense small integers (actor ids, page indices) must not collide
        // in the low bits HashMap actually uses.
        let mut low7 = HashSet::new();
        for i in 0u64..128 {
            low7.insert(hash_one(i) & 0x7f);
        }
        assert!(low7.len() > 100, "low bits too clumpy: {}", low7.len());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let a = {
            let mut h = FxHasher::default();
            h.write(b"abcdefgh-tail");
            h.finish()
        };
        let b = {
            let mut h = FxHasher::default();
            h.write(b"abcdefgh-tail!");
            h.finish()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
        assert!(map_with_capacity::<u64, u64>(32).capacity() >= 32);
    }
}
