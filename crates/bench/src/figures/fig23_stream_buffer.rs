//! Fig. 23 — sensitivity to the stream-buffer size (HATS).
//!
//! Paper: performance plateaus at 64 entries; the buffer lives in shared
//! memory so its capacity is nearly free.

use levi_workloads::hats::{HatsVariant, HatsWorkload};
use levi_workloads::Workload;

use crate::runner::{Figure, RunCtx};
use crate::{header, table_report, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "fig23_stream_buffer",
    about: "HATS sensitivity to stream-buffer entries (paper Fig. 23)",
    workloads: &["hats"],
    run,
};

fn run(ctx: &RunCtx) {
    let w = &HatsWorkload;
    let scale = w.scale(ctx.kind());
    header(
        "Fig. 23 — HATS sensitivity to stream-buffer entries",
        "paper: plateau at 64 entries",
    );
    // One graph shared across the sweep: only the buffer capacity changes.
    let graph = w.build_input(&scale);
    let jobs: Vec<(String, _)> = [8u64, 16, 32, 64, 128, 256]
        .iter()
        .map(|&cap| {
            let mut s = scale.clone();
            s.stream_capacity = cap;
            (format!("capacity={cap}"), (cap, s))
        })
        .collect();
    let env = &ctx.env;
    let graph_ref = &graph;
    let results = Sweep::new()
        .variants(jobs.iter().map(|(label, job)| (label.as_str(), job)))
        .run(|label, job| {
            let o = w
                .run(HatsVariant::Leviathan, &job.1, graph_ref, env)
                .expect_done(label);
            assert_eq!(
                o.checksum,
                w.golden(HatsVariant::Leviathan, &job.1, graph_ref),
                "{label} diverged from the golden model"
            );
            (job.0, o)
        });
    let mut rows = Vec::new();
    let mut best = u64::MAX;
    let mut cycles_at = Vec::new();
    for (_, (cap, o)) in &results {
        crate::progressln!("  ran capacity={cap}");
        best = best.min(o.metrics.cycles);
        cycles_at.push(o.metrics.cycles);
        rows.push(vec![
            cap.to_string(),
            o.metrics.cycles.to_string(),
            o.metrics.stats.stream_stall_cycles.to_string(),
        ]);
    }
    for (row, c) in rows.iter_mut().zip(&cycles_at) {
        row.push(format!("{:.2}x", best as f64 / *c as f64));
    }
    table_report(
        "fig23_stream_buffer",
        &["entries", "cycles", "consumer stalls", "rel. perf"],
        &rows,
    );
}
