//! Probe stage: the private-cache walks on the core and engine paths.
//!
//! [`Hw::access_core`] and [`Hw::access_engine`] are the two entry points
//! of the hierarchy walk. This stage resolves stream-stall gates, probes
//! the private caches (core L1/L2, engine L1d), and hands misses to the
//! shared-LLC stage in [`super::directory`]. The L2 stride prefetcher also
//! lives here — it observes demand L2 misses on the core path.

use levi_isa::Addr;

use crate::cache::PrivState;
use crate::config::LINE_SHIFT;
use crate::engine::{EngineId, EngineLevel};
use crate::ndc::{MorphLevel, WaitCond};

use super::{AccessKind, Hw, Walk, CTRL_MSG};

impl Hw {
    // ------------------------------------------------------------------
    // Core-side walk
    // ------------------------------------------------------------------

    /// Resolves a core access. `allow_phantom` is false only when called
    /// from within an inline (data-triggered) action, which must not nest.
    pub fn access_core(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        kind: AccessKind,
        addr: Addr,
        now: u64,
        allow_phantom: bool,
    ) -> Walk {
        let line = addr >> LINE_SHIFT;

        // Stream stall check (Sec. VI-B3): loads to a stream's phantom
        // range stall while the entry at the head has not been pushed —
        // on every access, cached or not (the engine's tail register
        // gates the load, not the cache).
        if allow_phantom && !self.ndc.morphs.is_empty() {
            if let Some(mi) = self.ndc.morph_at(addr) {
                if let Some(sid) = self.ndc.morphs[mi].stream {
                    let st = self.ndc.stream(sid);
                    if st.is_empty() && !st.closed {
                        return Walk::Blocked(WaitCond::StreamData(sid));
                    }
                }
            }
        }

        // Address translation ahead of the L1 probe (crate::xlat): a TLB
        // hit folds into the L1 latency; a miss advances `now` by a timed
        // page walk. Disabled configs pay one predictable branch.
        let now = self.translate(tile, addr, now);

        // L1 probe, outside the profiling scope: hits are the
        // overwhelmingly common case and two clock reads would dominate
        // the probe itself (Phase::Cache self-time covers the miss walk;
        // hit time lands in the caller's phase). Pinning is only
        // victim-selection protection for nested fills, so the hit path —
        // which inserts nothing — safely skips it.
        if let Some(l) = self.l1[tile as usize].probe(line) {
            if !kind.wants_ownership() || l.state == PrivState::Owned {
                if kind.wants_ownership() {
                    l.dirty = true;
                }
                self.stats.l1.hits += 1;
                return Walk::Done {
                    at: now + self.cfg.l1.latency,
                };
            }
            // Present but shared and we need ownership: upgrade miss.
        }
        crate::perf::prof_scope!(crate::perf::Phase::Cache);
        self.pin(line);
        let w = self.access_core_miss(mem, tile, kind, addr, now, allow_phantom);
        self.unpin();
        w
    }

    /// The core walk past a missed (or ownership-upgrading) L1 probe.
    /// The L1 replacement state was already touched by the caller's probe;
    /// this must not probe L1 again.
    fn access_core_miss(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        kind: AccessKind,
        addr: Addr,
        now: u64,
        allow_phantom: bool,
    ) -> Walk {
        let line = addr >> LINE_SHIFT;
        let t = tile as usize;
        self.stats.l1.misses += 1;
        let mut now = now + self.cfg.l1.latency;

        // L2 probe.
        if let Some(l) = self.l2[t].probe(line) {
            if !kind.wants_ownership() || l.state == PrivState::Owned {
                self.stats.l2.hits += 1;
                if kind.wants_ownership() {
                    l.dirty = true;
                }
                let state = l.state;
                now += self.cfg.l2.latency;
                self.fill_l1(mem, tile, line, state, kind, now);
                return Walk::Done { at: now };
            }
        }
        self.stats.l2.misses += 1;
        now += self.cfg.l2.latency;

        // L2-level phantom?
        if allow_phantom {
            if let Some(mi) = self.ndc.morph_at(addr) {
                if self.ndc.morphs[mi].level == MorphLevel::L2 {
                    return self.phantom_fill_l2(mem, tile, mi, addr, kind, now);
                }
            }
        }

        // Prefetcher observes demand L2 misses.
        if self.cfg.prefetcher {
            self.maybe_prefetch(mem, tile, line, now);
        }

        // Shared LLC.
        let at = match self.llc_stage(mem, tile, Some(tile), kind, addr, now, allow_phantom) {
            Walk::Done { at } => at,
            blocked => return blocked,
        };
        // Fill private hierarchy.
        let state = if kind.wants_ownership() {
            PrivState::Owned
        } else {
            PrivState::Shared
        };
        self.fill_l2(mem, tile, line, state, kind, at);
        self.fill_l1(mem, tile, line, state, kind, at);
        Walk::Done { at }
    }

    // ------------------------------------------------------------------
    // Engine-side walk
    // ------------------------------------------------------------------

    /// Resolves an engine access.
    pub fn access_engine(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        kind: AccessKind,
        addr: Addr,
        now: u64,
        allow_phantom: bool,
    ) -> Walk {
        let line = addr >> LINE_SHIFT;
        let e = eid.index();
        let l1d_lat = self.engines[e].l1d_latency;

        // Stream stall gate (same as the core path): loads to an empty
        // stream's range park before any resources are charged.
        if allow_phantom && !self.ndc.morphs.is_empty() {
            if let Some(mi) = self.ndc.morph_at(addr) {
                if let Some(sid) = self.ndc.morphs[mi].stream {
                    let st = self.ndc.stream(sid);
                    if st.is_empty() && !st.closed && kind == AccessKind::Read {
                        return Walk::Blocked(WaitCond::StreamData(sid));
                    }
                }
            }
        }

        // Address translation ahead of the engine probe path, covering
        // the L1d probes *and* the memory-side bypass below (the engine's
        // rTLB faces the same walk cost as the core MMU).
        let now = self.translate(eid.tile, addr, now);

        // Memory-side data bypasses the cache hierarchy entirely: the
        // engine issues the access to the memory controller (the MC's
        // FIFO line cache still absorbs same-line bursts). No cache
        // insert happens on this path, so pinning is unnecessary.
        if !self.ndc.mem_side_ranges.is_empty() && self.ndc.is_mem_side(addr) {
            crate::perf::prof_scope!(crate::perf::Phase::Cache);
            let mc_home = self.bank_of(addr);
            let t = self
                .noc
                .send(eid.tile, mc_home, CTRL_MSG, now, &mut self.stats);
            let at = self
                .dram
                .access_cache_line(&self.translator, line, t, &mut self.stats);
            return Walk::Done { at };
        }

        // Engine L1d: read-allocate; reads hit, and writes to resident
        // lines coalesce in place (write-back — the engine's private
        // working state, e.g. a stream producer's traversal stack and
        // cursors, stays local). Write misses and RMWs go through. Hits
        // resolve outside the profiling scope, like the core L1 path.
        if kind == AccessKind::Read {
            if self.engines[e].l1d.probe(line).is_some() {
                self.stats.engine_l1.hits += 1;
                return Walk::Done { at: now + l1d_lat };
            }
            self.stats.engine_l1.misses += 1;
        } else if kind == AccessKind::Write {
            if let Some(l) = self.engines[e].l1d.probe(line) {
                l.dirty = true;
                self.stats.engine_l1.hits += 1;
                return Walk::Done { at: now + l1d_lat };
            }
        }
        crate::perf::prof_scope!(crate::perf::Phase::Cache);
        self.pin(line);
        let w = self.access_engine_miss(mem, eid, kind, addr, now, allow_phantom);
        self.unpin();
        w
    }

    /// The engine walk past a missed L1d probe (or an RMW, which never
    /// probes L1d). The L1d replacement state was already touched by the
    /// caller for reads and writes; this must not probe it again.
    fn access_engine_miss(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        kind: AccessKind,
        addr: Addr,
        now: u64,
        allow_phantom: bool,
    ) -> Walk {
        let line = addr >> LINE_SHIFT;
        let l1d_lat = self.engines[eid.index()].l1d_latency;
        let now = now + l1d_lat;

        let at = match eid.level {
            EngineLevel::L2 => {
                let t = eid.tile as usize;
                if let Some(l) = self.l2[t].probe(line) {
                    if !kind.wants_ownership() || l.state == PrivState::Owned {
                        self.stats.l2.hits += 1;
                        if kind.wants_ownership() {
                            l.dirty = true;
                        }
                        let at = now + self.cfg.l2.latency;
                        self.fill_engine_l1d(mem, eid, line, kind, at);
                        return Walk::Done { at };
                    }
                }
                self.stats.l2.misses += 1;
                let now = now + self.cfg.l2.latency;
                let at = match self.llc_stage(
                    mem,
                    eid.tile,
                    Some(eid.tile),
                    kind,
                    addr,
                    now,
                    allow_phantom,
                ) {
                    Walk::Done { at } => at,
                    blocked => return blocked,
                };
                let state = if kind.wants_ownership() {
                    PrivState::Owned
                } else {
                    PrivState::Shared
                };
                self.fill_l2(mem, eid.tile, line, state, kind, at);
                at
            }
            EngineLevel::Llc => {
                // LLC engines access their home bank directly; other banks
                // over the NoC (the cost Leviathan's mapping avoids).
                match self.llc_stage(mem, eid.tile, None, kind, addr, now, allow_phantom) {
                    Walk::Done { at } => at,
                    blocked => return blocked,
                }
            }
        };
        self.fill_engine_l1d(mem, eid, line, kind, at);
        Walk::Done { at }
    }

    pub(super) fn fill_engine_l1d(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        line: u64,
        kind: AccessKind,
        _now: u64,
    ) {
        let _ = mem;
        if kind != AccessKind::Read {
            return;
        }
        let e = eid.index();
        if self.engines[e].l1d.contains(line) {
            return;
        }
        let (_, victim) = self.engines[e].l1d.insert(line, &[]);
        if let Some(v) = victim {
            if v.dirty {
                // Write back coalesced engine writes to the attached level
                // (timing/energy accounting only; values live in flat mem).
                self.stats.llc.hits += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Prefetcher
    // ------------------------------------------------------------------

    pub(super) fn maybe_prefetch(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        line: u64,
        now: u64,
    ) {
        let Some(stride) = self.prefetchers[tile as usize].observe(line) else {
            return;
        };
        for d in 1..=self.cfg.prefetch_degree as i64 {
            let pf_line = line.wrapping_add((stride * d) as u64);
            let pf_addr = pf_line << LINE_SHIFT;
            if self.l2[tile as usize].contains(pf_line) {
                continue;
            }
            // Never prefetch phantom data (the hardware NACKs those).
            if self.ndc.morph_at(pf_addr).is_some() {
                continue;
            }
            self.stats.prefetches += 1;
            if let Walk::Done { .. } =
                self.llc_stage(mem, tile, Some(tile), AccessKind::Read, pf_addr, now, false)
            {
                self.fill_l2(mem, tile, pf_line, PrivState::Shared, AccessKind::Read, now);
            }
        }
    }
}
