//! Randomized tests on the core data structures and invariants: cache
//! banks, FU windows, the allocator's layout guarantees, the DRAM
//! compaction translation, memory semantics, and the NoC. Formerly
//! proptest-based; now driven by fixed seeds through the in-repo
//! [`levi_workloads::SmallRng`] so the suite is deterministic and needs no
//! external crates.

use levi_isa::{Memory, PagedMem};
use levi_sim::cache::CacheBank;
use levi_sim::dram::{TranslationEntry, Translator};
use levi_sim::engine::{EngineId, EngineLevel, EngineState, WindowFu};
use levi_sim::{CacheConfig, MachineConfig, Replacement, Stats};
use levi_workloads::SmallRng;
use leviathan::alloc::{padded_size, Allocator, ArraySpec};

/// PagedMem behaves exactly like a map of bytes.
#[test]
fn paged_mem_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0x11);
    for _ in 0..20 {
        let mut mem = PagedMem::new();
        let mut model = std::collections::HashMap::new();
        let n_ops = 1 + rng.gen_range(0usize..200);
        for _ in 0..n_ops {
            let a = rng.next_u64() & 0xffff_ffff;
            let val = rng.gen_range(0u64..256) as u8;
            if rng.next_u64() & 1 == 0 {
                mem.write_u8(a, val);
                model.insert(a, val);
            } else {
                let expect = model.get(&a).copied().unwrap_or(0);
                assert_eq!(mem.read_u8(a), expect);
            }
        }
    }
}

/// Multi-byte accesses round-trip for every width.
#[test]
fn mem_width_round_trip() {
    use levi_isa::MemWidth::*;
    let mut rng = SmallRng::seed_from_u64(0x22);
    for _ in 0..100 {
        let addr = rng.gen_range(0u64..1_000_000);
        let val = rng.next_u64();
        let mut mem = PagedMem::new();
        for w in [B1, B2, B4, B8] {
            mem.write(addr, val, w);
            assert_eq!(mem.read(addr, w), w.truncate(val));
        }
    }
}

/// A cache bank never exceeds its capacity and never loses a line it
/// did not report evicted.
#[test]
fn cache_bank_capacity_and_conservation() {
    let mut rng = SmallRng::seed_from_u64(0x33);
    for _ in 0..20 {
        let cfg = CacheConfig {
            size_bytes: 16 * 64, // 16 lines
            ways: 4,
            latency: 1,
            replacement: Replacement::Srrip,
        };
        let mut bank = CacheBank::new(&cfg);
        let mut resident = std::collections::HashSet::new();
        let n_lines = 1 + rng.gen_range(0usize..300);
        for _ in 0..n_lines {
            let line = rng.gen_range(0u64..4096);
            if resident.contains(&line) {
                assert!(bank.probe(line).is_some());
                continue;
            }
            let (_, victim) = bank.insert(line, &[]);
            resident.insert(line);
            if let Some(v) = victim {
                assert!(resident.remove(&v.line), "evicted a non-resident line");
            }
            assert!(bank.resident() <= 16);
            assert_eq!(bank.resident(), resident.len());
        }
        for &l in &resident {
            assert!(bank.contains(l), "line {:#x} silently lost", l);
        }
    }
}

/// Pinned lines are never chosen as victims.
#[test]
fn pinned_lines_survive() {
    let mut rng = SmallRng::seed_from_u64(0x44);
    for _ in 0..20 {
        let cfg = CacheConfig {
            size_bytes: 8 * 64, // 2 sets x 4 ways
            ways: 4,
            latency: 1,
            replacement: Replacement::Lru,
        };
        let mut bank = CacheBank::new(&cfg);
        let pinned = 2u64; // set 0
        bank.insert(pinned, &[]);
        let n_fill = 8 + rng.gen_range(0usize..56);
        for _ in 0..n_fill {
            let line = rng.gen_range(0u64..64);
            if !bank.contains(line) {
                bank.insert(line, &[pinned]);
            }
            assert!(bank.contains(pinned), "pinned line evicted");
        }
    }
}

/// WindowFu grants at most `limit` slots per cycle.
#[test]
fn window_fu_respects_limit() {
    let mut rng = SmallRng::seed_from_u64(0x55);
    for _ in 0..20 {
        let limit = 1 + rng.gen_range(0u32..7);
        let mut fu = WindowFu::new(limit);
        let mut per_cycle = std::collections::HashMap::new();
        let n_times = 1 + rng.gen_range(0usize..300);
        for _ in 0..n_times {
            let t = rng.gen_range(0u64..2000);
            let got = fu.reserve(t);
            assert!(got >= t.min(got), "grant in the deep past");
            let c = per_cycle.entry(got).or_insert(0u32);
            *c += 1;
            assert!(*c <= limit, "cycle {} over-subscribed", got);
        }
    }
}

/// Padded sizes are powers of two (up to the 4-line cap), at least the
/// object size, and at least 8.
#[test]
fn padded_size_properties() {
    for obj in 1u64..256 {
        let p = padded_size(obj);
        assert!(p >= obj);
        assert!(p >= 8);
        assert!(p.is_power_of_two());
        assert!(p <= 256);
    }
}

/// Allocator layouts: objects never straddle lines when padded, arrays
/// from one allocator never overlap, and compaction translations map
/// distinct backed bytes to distinct DRAM bytes.
#[test]
fn allocator_layout_invariants() {
    let mut rng = SmallRng::seed_from_u64(0x66);
    for _ in 0..25 {
        let n_arrays = 1 + rng.gen_range(0usize..7);
        let sizes: Vec<u64> = (0..n_arrays)
            .map(|_| 1 + rng.gen_range(0u64..299))
            .collect();
        let mut alloc = Allocator::new();
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for (k, obj) in sizes.iter().enumerate() {
            let layout = alloc.plan_array(&ArraySpec::new(&format!("a{k}"), *obj, 16));
            let arr = &layout.array;
            // No overlap with prior regions.
            for &(b, e) in &regions {
                assert!(arr.bound() <= b || arr.base >= e);
            }
            regions.push((arr.base, arr.bound()));
            // No line straddling for supported sizes.
            if arr.stride <= 256 && arr.stride.is_power_of_two() {
                for i in 0..arr.count {
                    let a = arr.addr(i);
                    let first = a / 64;
                    let last = (a + arr.obj_size.min(arr.stride) - 1) / 64;
                    if arr.stride <= 64 {
                        assert_eq!(first, last, "object {} straddles a line", i);
                    }
                }
            }
            // Translation is injective over backed bytes.
            if let Some(t) = layout.translation {
                let mut seen = std::collections::HashSet::new();
                for i in 0..arr.count {
                    for off in 0..arr.obj_size {
                        let d = t.translate(arr.addr(i) + off).expect("backed byte");
                        assert!(seen.insert(d), "DRAM byte collision");
                    }
                }
            }
        }
    }
}

/// The translator maps every backed cache line to at most 4 DRAM lines
/// and never panics across sizes.
#[test]
fn translator_line_mapping_total() {
    for obj in 1u64..=128 {
        let padded = padded_size(obj);
        if padded == obj {
            continue; // only compacted layouts translate
        }
        let mut tr = Translator::new();
        tr.register(TranslationEntry {
            cache_base: 0x10000,
            cache_bound: 0x10000 + padded * 64,
            dram_base: 0x100000,
            padded_size: padded,
            packed_size: obj,
        });
        for line in (0x10000 / 64)..((0x10000 + padded * 64) / 64) {
            let lines = tr.dram_lines_for(line);
            assert!(!lines.as_slice().is_empty());
            assert!(lines.as_slice().len() <= 4);
        }
    }
}

/// Engine contexts: reserve/release is balanced and capped.
#[test]
fn engine_contexts_balanced() {
    let mut rng = SmallRng::seed_from_u64(0x77);
    for _ in 0..20 {
        let cfg = MachineConfig::paper_default().engine;
        let mut e = EngineState::new(
            EngineId {
                tile: 0,
                level: EngineLevel::Llc,
            },
            &cfg,
        );
        let cap = e.offload_ctxs_cap;
        let mut held = 0u32;
        let n_ops = 1 + rng.gen_range(0usize..200);
        for _ in 0..n_ops {
            if rng.next_u64() & 1 == 0 {
                if e.try_reserve_ctx() {
                    held += 1;
                    assert!(held <= cap);
                } else {
                    assert_eq!(held, cap, "NACK only when full");
                }
            } else if held > 0 {
                e.release_ctx();
                held -= 1;
            }
        }
    }
}

/// NoC: hop counts are symmetric and bounded by the mesh diameter;
/// sending never decreases time.
#[test]
fn noc_properties() {
    let mut rng = SmallRng::seed_from_u64(0x88);
    for _ in 0..500 {
        let from = rng.gen_range(0u32..16);
        let to = rng.gen_range(0u32..16);
        let bytes = 1 + rng.gen_range(0u32..255);
        let now = rng.gen_range(0u64..10_000);
        let cfg = MachineConfig::paper_default();
        let (c, r) = cfg.mesh_dims();
        let mut noc = levi_sim::noc::Noc::new(c, r, cfg.noc);
        assert_eq!(noc.hops(from, to), noc.hops(to, from));
        assert!(noc.hops(from, to) <= (c - 1) + (r - 1));
        let mut stats = Stats::new();
        let t = noc.send(from, to, bytes, now, &mut stats);
        assert!(t >= now);
        if from == to {
            assert_eq!(t, now);
        }
    }
}
