//! The machine facade: construction, spawning, and host-side control.
//!
//! Execution is *functional-first*: each context interprets its LevIR
//! program in order via [`levi_isa::exec::step`], while a scoreboard
//! (per-register ready cycles) and the synchronous memory-system walk in
//! [`crate::hw`] compute timing. Contexts run ahead of the global clock by
//! at most a configurable quantum, then yield; blocking operations
//! (futures, stream push/pop, invoke backpressure) park a context until a
//! wake condition fires. The result is a deterministic, fast,
//! cycle-approximate simulation that models exactly the effects the
//! paper's evaluation measures: locality, coherence ping-pong, NoC
//! traffic, fences, MLP, branch mispredictions, and DRAM bandwidth.
//!
//! This module holds the [`Machine`] itself — construction, actor
//! spawning, stream management, and the host-side accessors. The layers
//! behind it:
//!
//! * [`crate::sched`] — the deterministic run queue, park/wake
//!   conditions, and deadlock diagnostics ([`Machine::run`] lives there);
//! * `core_pipe` (crate-private) — per-instruction issue with scoreboard,
//!   MSHR, fence, and branch timing;
//! * `ndc_host` (crate-private) — the timed NDC host (futures, streams,
//!   flush);
//! * `invoke` (crate-private) — the task-offload scheduler (placement,
//!   NACK, backpressure, migrate-local);
//! * [`crate::hw`] — the memory-system walk (probe → directory → phantom
//!   → evict stages).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use levi_isa::fx::FxHashMap;
use levi_isa::{Addr, FuncId, PagedMem, Program};

use crate::config::MachineConfig;
use crate::energy::{self, EnergyBreakdown};
use crate::engine::EngineId;
use crate::error::SimError;
use crate::hw::Hw;
use crate::ndc::{StreamId, StreamMode, WaitCond};
use crate::sched::Actor;
use crate::stats::Stats;

pub use crate::sched::{ActorId, ParkOwner, ParkedActor, RunError, RunResult};

/// The simulated machine.
pub struct Machine {
    /// All hardware state (caches, NoC, DRAM, engines, NDC tables, stats).
    pub hw: Hw,
    pub(crate) mem: PagedMem,
    pub(crate) actors: Vec<Actor>,
    pub(crate) runq: BinaryHeap<Reverse<(u64, u64, ActorId)>>,
    pub(crate) seq: u64,
    pub(crate) now: u64,
    pub(crate) waiters: FxHashMap<WaitCond, Vec<ActorId>>,
    /// Emptied waiter lists recycled between park/wake cycles, so parking
    /// doesn't allocate in steady state.
    pub(crate) waiter_pool: Vec<Vec<ActorId>>,
    pub(crate) live_core_threads: u32,
    pub(crate) traces: Vec<u64>,
    /// Recycled actor slots (finished engine tasks); bounds memory when a
    /// workload offloads millions of short tasks.
    pub(crate) free_slots: Vec<ActorId>,
    /// Scratch buffers for per-instruction spawn/wake requests, reused
    /// across `run_actor` iterations (always empty between instructions).
    pub(crate) scratch_spawns: Vec<crate::ndc_host::SpawnReq>,
    pub(crate) scratch_wakes: Vec<(WaitCond, u64)>,
    /// The next cycle at which the periodic checkpoint hook fires
    /// (`u64::MAX` when [`MachineConfig::checkpoint_every`] is 0, so the
    /// disabled hook is a single always-false compare).
    pub(crate) next_ckpt: u64,
    /// The most recent periodic checkpoint: `(cycle, bytes)`.
    pub(crate) last_checkpoint: Option<(u64, Vec<u8>)>,
}

impl Machine {
    /// Builds a machine, returning a typed error on an invalid
    /// configuration (see [`MachineConfig::validate`]).
    pub fn try_new(mut cfg: MachineConfig) -> Result<Self, SimError> {
        crate::perf::prof_scope!(crate::perf::Phase::Build);
        cfg.validate()?;
        if cfg.engine.idealized {
            // Idealized engines are energy-free (paper Sec. VII).
            cfg.energy.engine_inst_pj = 0.0;
        }
        let next_ckpt = if cfg.checkpoint_every == 0 {
            u64::MAX
        } else {
            cfg.checkpoint_every
        };
        Ok(Machine {
            hw: Hw::new(cfg),
            mem: PagedMem::new(),
            actors: Vec::new(),
            runq: BinaryHeap::new(),
            seq: 0,
            now: 0,
            waiters: FxHashMap::default(),
            waiter_pool: Vec::new(),
            live_core_threads: 0,
            traces: Vec::new(),
            free_slots: Vec::new(),
            scratch_spawns: Vec::new(),
            scratch_wakes: Vec::new(),
            next_ckpt,
            last_checkpoint: None,
        })
    }

    /// Serializes the complete machine state — programs, memory,
    /// scheduler, actors, caches, engines, NoC, DRAM, NDC tables, and
    /// statistics — into the versioned, CRC-guarded snapshot container
    /// (see [`crate::snapshot`]).
    pub fn checkpoint(&self) -> Vec<u8> {
        crate::perf::prof_scope!(crate::perf::Phase::Build);
        crate::snapshot::seal(
            crate::snapshot::config_digest(&self.hw.cfg),
            crate::snapshot::encode_machine(self),
        )
    }

    /// Rebuilds a machine from `cfg` plus snapshot bytes. The config must
    /// digest-match the one the snapshot was taken under, with one
    /// deliberate exception: the fault plan may differ, enabling
    /// time-travel fault replay (restore the same cycle under different
    /// fault seeds).
    ///
    /// # Errors
    /// Corrupted, truncated, version-mismatched, or config-mismatched
    /// bytes are rejected with a typed [`crate::snapshot::SnapshotError`];
    /// restore never panics on bad input.
    pub fn restore(
        cfg: MachineConfig,
        bytes: &[u8],
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let mut m = Machine::try_new(cfg).map_err(crate::snapshot::SnapshotError::InvalidConfig)?;
        let payload =
            crate::snapshot::open(bytes, crate::snapshot::config_digest(&m.hw.cfg))?.to_vec();
        crate::snapshot::decode_machine_into(&mut m, &payload)?;
        // Re-arm the periodic hook relative to the restored clock.
        let every = m.hw.cfg.checkpoint_every;
        m.next_ckpt = match m.now.checked_div(every) {
            None => u64::MAX, // hook disabled (every == 0)
            Some(periods) => (periods + 1).saturating_mul(every),
        };
        Ok(m)
    }

    /// The most recent periodic checkpoint taken by the scheduler hook
    /// (see [`MachineConfig::checkpoint_every`]): `(cycle, bytes)`.
    pub fn last_checkpoint(&self) -> Option<(u64, &[u8])> {
        self.last_checkpoint.as_ref().map(|(c, b)| (*c, &b[..]))
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.hw.cfg
    }

    /// Drops and returns the last periodic checkpoint, transferring
    /// ownership of the bytes (e.g. to persist them to disk).
    pub fn take_last_checkpoint(&mut self) -> Option<(u64, Vec<u8>)> {
        self.last_checkpoint.take()
    }

    /// Functional memory (for workload setup and result checking).
    pub fn mem(&self) -> &PagedMem {
        &self.mem
    }

    /// Mutable functional memory.
    pub fn mem_mut(&mut self) -> &mut PagedMem {
        &mut self.mem
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.hw.stats
    }

    /// Sets the workload phase tag on the statistics.
    pub fn set_phase(&mut self, phase: usize) {
        self.hw.stats.set_phase(phase);
    }

    /// Energy consumed so far.
    pub fn energy(&self) -> EnergyBreakdown {
        energy::compute(&self.hw.stats, &self.hw.cfg.energy)
    }

    /// Values traced by `Trace` instructions, in execution order.
    pub fn traces(&self) -> &[u64] {
        &self.traces
    }

    /// The current global cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Spawns a software thread on `core`, entering `func(args…)`.
    ///
    /// # Errors
    /// Returns [`SimError::CoreOutOfRange`] if `core` is not a valid tile
    /// and [`SimError::TooManyArgs`] for more than 8 entry arguments.
    pub fn spawn_thread(
        &mut self,
        core: u32,
        prog: Arc<Program>,
        func: FuncId,
        args: &[u64],
    ) -> Result<ActorId, SimError> {
        if core >= self.hw.cfg.tiles {
            return Err(SimError::CoreOutOfRange {
                core,
                tiles: self.hw.cfg.tiles,
            });
        }
        if args.len() > 8 {
            return Err(SimError::TooManyArgs {
                given: args.len(),
                max: 8,
            });
        }
        let aid = self.spawn_core_actor(core, prog, func, args, self.now);
        self.enqueue(aid, self.now);
        Ok(aid)
    }

    /// Installs a core-thread actor starting at `clock` (shared by
    /// [`Machine::spawn_thread`] and the fault-fallback path).
    pub(crate) fn spawn_core_actor(
        &mut self,
        core: u32,
        prog: Arc<Program>,
        func: FuncId,
        args: &[u64],
        clock: u64,
    ) -> ActorId {
        let cfg = self.hw.cfg.core;
        let aid = self.install_actor(Actor::core_thread(core, cfg, prog, func, args, clock));
        self.live_core_threads += 1;
        aid
    }

    /// Spawns a long-lived task directly on an engine (the "long-lived
    /// workloads" paradigm, and stream producers). Does not consume an
    /// offloaded-task context.
    pub fn spawn_engine_task(
        &mut self,
        engine: EngineId,
        prog: Arc<Program>,
        func: FuncId,
        args: &[u64],
        stream: Option<StreamId>,
    ) -> ActorId {
        let aid = self.install_actor(Actor::engine_task(
            engine, prog, func, args, stream, self.now,
        ));
        self.enqueue(aid, self.now);
        aid
    }

    /// Creates a stream and returns its id. The phantom/Morph registration
    /// for the consumer side is the caller's responsibility (the
    /// `leviathan` crate's `Stream<T>` does both).
    ///
    /// # Errors
    /// Returns [`SimError::UnsupportedEntrySize`] for entry sizes other
    /// than 8 bytes and [`SimError::ZeroStreamCapacity`] for an empty
    /// ring.
    pub fn create_stream(
        &mut self,
        buffer: Addr,
        entry_size: u64,
        capacity: u64,
        engine: EngineId,
        consumer: u32,
        mode: StreamMode,
    ) -> Result<StreamId, SimError> {
        if entry_size != 8 {
            return Err(SimError::UnsupportedEntrySize { entry_size });
        }
        if capacity == 0 {
            return Err(SimError::ZeroStreamCapacity);
        }
        let id = StreamId(self.hw.ndc.streams.len() as u32);
        // The ring is a hardware-managed sequential write target: pushes
        // fully overwrite lines, so write misses skip the write-allocate
        // fetch (the engine's stream scheduler owns the buffer).
        self.hw
            .ndc
            .stream_store_ranges
            .push((buffer, buffer + capacity * entry_size));
        self.hw.ndc.streams.push(crate::ndc::StreamState {
            id,
            buffer,
            entry_size,
            capacity,
            tail: 0,
            head: 0,
            engine,
            consumer,
            mode,
            closed: false,
        });
        Ok(id)
    }

    /// Marks a stream closed (producer finished or terminated), waking any
    /// blocked consumer.
    pub fn close_stream(&mut self, id: StreamId) {
        self.hw.ndc.stream_mut(id).closed = true;
        let at = self.now;
        self.wake(WaitCond::StreamData(id), at);
    }

    /// Flushes `[base, base+len)` from all caches at the current time,
    /// running destructors for tagged lines (the host-side counterpart of
    /// the `flush` instruction, used when unregistering a Morph between
    /// run segments). Returns the completion time.
    pub fn flush_morph_range(&mut self, base: Addr, len: u64) -> u64 {
        crate::perf::prof_scope!(crate::perf::Phase::Flush);
        let now = self.now;
        let Machine { hw, mem, .. } = self;
        hw.flush_range(mem, base, len, now)
    }
}
