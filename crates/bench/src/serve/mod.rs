//! `levi-serve`: the simulation-as-a-service core.
//!
//! Every figure run is a pure function of `(figure, scale, environment)`
//! — the same determinism the golden checksums and the crash journal
//! already rely on — which makes experiment execution perfectly
//! cacheable and dedupable. This module turns the shared figure engine
//! ([`crate::runner`]) into a long-running, hermetic, std-only service:
//!
//! * [`protocol`] — the one-JSON-object-per-line wire protocol, the
//!   canonical [`protocol::Job`] description, and the content-addressed
//!   cache key (levi-serve schema version + canonical job text + the
//!   `levi-sim` FNV config digest of the default machine shape + the
//!   golden checksum of every workload the figure exercises).
//! * [`cache`] — the content-addressed result cache, framed on the same
//!   [`crate::codec::LineStore`] as the crash journal: crash-safe
//!   appends, torn-tail tolerant, any damaged record is a miss.
//! * [`server`] — `std::net::TcpListener` + a fixed worker pool over
//!   the existing sweep engine; coalesces identical in-flight requests,
//!   applies bounded-queue back-pressure (typed `busy` rejection), and
//!   streams per-run progress and report lines as they are produced.
//! * [`client`] — the thin client behind `levi-bench run --server`:
//!   replays streamed stdout/stderr lines locally, byte-identically to
//!   an in-process run.
//!
//! No async runtime is involved: one OS thread per connection plus a
//! fixed executor pool keeps the build offline and the behavior
//! deterministic. See DESIGN.md §9 for the request lifecycle.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::ResultCache;
pub use client::{run_remote, RemoteOutcome};
pub use protocol::{Event, Job, SCHEMA_VERSION};
pub use server::{FigureExecutor, JobExecutor, ServeConfig, Server, ServerHandle};
