//! Tests for the task-offload scheduler (paper Sec. VI-B1): LOCAL,
//! REMOTE, and DYNAMIC placement, the EXCLUSIVE hint, and the 1/32
//! migrate-local policy.

use std::sync::Arc;

use levi_isa::{ActionId, FuncId, Location, Memory, Program, ProgramBuilder, Reg};
use levi_sim::{Machine, MachineConfig};

/// Builds (program, tag_action, invoker): the action stores the id of the
/// engine it ran on (via a unique per-spawn tag argument) into a mailbox.
fn build(loc: Location, n: u64) -> (Arc<Program>, FuncId) {
    let mut pb = ProgramBuilder::new();
    {
        // Action: increment the counter at [actor].
        let mut f = pb.function("bump");
        let (actor, one, old) = (Reg(0), Reg(1), Reg(2));
        f.imm(one, 1);
        f.rmw_relaxed(
            levi_isa::RmwOp::Add,
            old,
            actor,
            one,
            levi_isa::MemWidth::B8,
        );
        f.halt();
        f.finish();
    }
    let main = {
        let mut f = pb.function("main");
        let (actor, i, nn) = (Reg(0), Reg(1), Reg(2));
        f.imm(i, 0).imm(nn, n);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, nn, out);
        f.invoke(actor, ActionId(0), &[], loc);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    (Arc::new(pb.finish().unwrap()), main)
}

fn run(loc: Location) -> (u64, levi_sim::Stats) {
    let (prog, main) = build(loc, 64);
    let mut cfg = MachineConfig::with_tiles(4);
    cfg.prefetcher = false;
    let mut m = Machine::try_new(cfg).unwrap();
    let action_fn = prog.func_by_name("bump").unwrap();
    m.hw.ndc
        .actions
        .register(ActionId(0), prog.clone(), action_fn);
    let counter = 0x4040u64; // bank 1, invoked from core 0
    m.spawn_thread(0, prog, main, &[counter]).unwrap();
    m.run().unwrap();
    (m.mem().read_u64(counter), m.stats().clone())
}

#[test]
fn all_placements_execute_all_tasks() {
    for loc in [Location::Local, Location::Remote, Location::Dynamic] {
        let (count, stats) = run(loc);
        assert_eq!(count, 64, "{loc:?} lost tasks");
        assert_eq!(stats.invokes, 64);
    }
}

#[test]
fn local_caches_hot_actors_remote_wins_scattered() {
    // One hot actor hammered repeatedly: LOCAL pulls the line into the
    // tile's L2 once and then hits locally, while REMOTE pays an invoke
    // packet per task.
    let (_, local) = run(Location::Local);
    let (_, remote) = run(Location::Remote);
    assert!(
        local.noc_flit_hops < remote.noc_flit_hops,
        "a single hot actor favors LOCAL: {} vs {}",
        local.noc_flit_hops,
        remote.noc_flit_hops
    );

    // Many single-use actors scattered across banks: LOCAL must fetch a
    // full line per actor; REMOTE sends one small packet per actor and
    // touches the data at its home bank.
    let build_scatter = |loc: Location| {
        let mut pb = ProgramBuilder::new();
        {
            let mut f = pb.function("bump");
            let (actor, one, old) = (Reg(0), Reg(1), Reg(2));
            f.imm(one, 1);
            f.rmw_relaxed(
                levi_isa::RmwOp::Add,
                old,
                actor,
                one,
                levi_isa::MemWidth::B8,
            );
            f.halt();
            f.finish();
        }
        let main = {
            let mut f = pb.function("main");
            let (base, i, n, actor) = (Reg(0), Reg(1), Reg(2), Reg(3));
            f.imm(i, 0).imm(n, 64);
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.bge_u(i, n, out);
            f.muli(actor, i, 64); // one actor per line, striped over banks
            f.add(actor, actor, base);
            f.invoke(actor, ActionId(0), &[], loc);
            f.addi(i, i, 1);
            f.jmp(top);
            f.bind(out);
            f.halt();
            f.finish()
        };
        (Arc::new(pb.finish().unwrap()), main)
    };
    let run_scatter = |loc: Location| {
        let (prog, main) = build_scatter(loc);
        let mut cfg = MachineConfig::with_tiles(4);
        cfg.prefetcher = false;
        let mut m = Machine::try_new(cfg).unwrap();
        let action_fn = prog.func_by_name("bump").unwrap();
        m.hw.ndc
            .actions
            .register(ActionId(0), prog.clone(), action_fn);
        m.spawn_thread(0, prog, main, &[0x10_0000]).unwrap();
        m.run().unwrap();
        m.stats().clone()
    };
    let local_s = run_scatter(Location::Local);
    let remote_s = run_scatter(Location::Remote);
    assert!(
        remote_s.noc_flit_hops < local_s.noc_flit_hops,
        "scattered single-use actors favor REMOTE: {} vs {}",
        remote_s.noc_flit_hops,
        local_s.noc_flit_hops
    );
}

#[test]
fn dynamic_migrates_one_in_32() {
    let (_, stats) = run(Location::Dynamic);
    // 64 would-be-remote dynamic invokes -> exactly 2 migrate-local.
    assert_eq!(stats.invoke_migrations, 2, "1/32 policy");
}

#[test]
fn exclusive_follows_the_owner() {
    // Core 1 dirties the actor line (takes ownership), then core 0 issues
    // an EXCLUSIVE dynamic invoke: the scheduler must send it to tile 1's
    // L2 engine rather than the LLC bank.
    let mut pb = ProgramBuilder::new();
    {
        let mut f = pb.function("bump");
        let (actor, one, old) = (Reg(0), Reg(1), Reg(2));
        f.imm(one, 1);
        f.rmw_relaxed(
            levi_isa::RmwOp::Add,
            old,
            actor,
            one,
            levi_isa::MemWidth::B8,
        );
        f.halt();
        f.finish();
    }
    let owner_thread = {
        let mut f = pb.function("owner");
        // args: r0 = actor, r1 = flag.
        let (actor, flag, one, two, tmp) = (Reg(0), Reg(1), Reg(8), Reg(9), Reg(10));
        f.imm(one, 1).imm(two, 2);
        f.st8(actor, 0, one); // take ownership (dirty)
        f.st8(flag, 0, one); // signal readiness
                             // Spin until the invoker writes 2 to the flag.
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.ld8(tmp, flag, 0);
        f.beq(tmp, two, out);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let invoker = {
        let mut f = pb.function("invoker");
        // args: r0 = actor, r1 = flag.
        let (actor, flag, one, two, tmp) = (Reg(0), Reg(1), Reg(8), Reg(9), Reg(10));
        f.imm(one, 1).imm(two, 2);
        // Wait for the owner to take the line.
        let top = f.label();
        let go = f.label();
        f.bind(top);
        f.ld8(tmp, flag, 0);
        f.beq(tmp, one, go);
        f.jmp(top);
        f.bind(go);
        f.invoke_exclusive(actor, ActionId(0), &[], Location::Dynamic);
        f.st8(flag, 0, two);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());
    let mut cfg = MachineConfig::with_tiles(4);
    cfg.prefetcher = false;
    let mut m = Machine::try_new(cfg).unwrap();
    let action_fn = prog.func_by_name("bump").unwrap();
    m.hw.ndc
        .actions
        .register(ActionId(0), prog.clone(), action_fn);
    let actor = 0x4040u64;
    let flag = 0x8000u64;
    m.spawn_thread(1, prog.clone(), owner_thread, &[actor, flag])
        .unwrap();
    m.spawn_thread(0, prog, invoker, &[actor, flag]).unwrap();
    m.run().unwrap();
    // Owner stored 1, action added 1.
    assert_eq!(m.mem().read_u64(actor), 2);
    assert_eq!(m.stats().invokes, 1);
}
