//! Gshare branch predictor for the core model.
//!
//! A classic gshare: the global history register is XORed with the branch
//! PC to index a table of 2-bit saturating counters. This is enough to
//! capture the effect the paper leans on in Fig. 21 — loop-closing branches
//! in streaming consumers predict nearly perfectly, while data-dependent
//! BDFS traversal branches mispredict heavily.

/// A gshare predictor with 2-bit saturating counters.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    mask: u64,
}

impl Gshare {
    /// Creates a predictor with `2^bits` counters, initialized weakly taken.
    pub fn new(bits: u32) -> Self {
        let size = 1usize << bits;
        Gshare {
            table: vec![2u8; size],
            history: 0,
            mask: (size as u64) - 1,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Updates the predictor with the actual outcome and returns whether
    /// the prediction was correct.
    #[inline]
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.table[idx] >= 2;
        let ctr = &mut self.table[idx];
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
        predicted == taken
    }
}

impl Gshare {
    /// Serializes predictor state (see [`crate::snapshot`]).
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        w.u64(self.history);
        w.u64(self.mask);
        w.bytes(&self.table);
    }

    /// Restores predictor state written by [`Gshare::snap_write`].
    pub(crate) fn snap_read(
        r: &mut levi_isa::codec::Reader,
    ) -> Result<Self, levi_isa::codec::CodecError> {
        let history = r.u64()?;
        let mask = r.u64()?;
        let table = r.bytes()?.to_vec();
        if table.len() as u64 != mask + 1 {
            return Err(levi_isa::codec::CodecError::Invalid("gshare table size"));
        }
        Ok(Gshare {
            table,
            history,
            mask,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = Gshare::new(8);
        let pc = 0x40;
        let mut correct = 0;
        for _ in 0..100 {
            if p.update(pc, true) {
                correct += 1;
            }
        }
        assert!(
            correct >= 98,
            "always-taken should be near-perfect, got {correct}"
        );
    }

    #[test]
    fn learns_loop_pattern() {
        // Loop branch: taken 7 times, not taken once, repeated. With
        // history the predictor should learn the exit too.
        let mut p = Gshare::new(12);
        let pc = 0x88;
        let mut correct = 0;
        let mut total = 0;
        for _rep in 0..64 {
            for i in 0..8 {
                let taken = i != 7;
                if p.update(pc, taken) {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "loop pattern accuracy {acc}");
    }

    #[test]
    fn random_data_mispredicts_often() {
        // A deterministic pseudo-random sequence; gshare cannot learn it.
        let mut p = Gshare::new(12);
        let pc = 0x100;
        let mut x = 0x12345678u64;
        let mut correct = 0;
        let total = 2000;
        for _ in 0..total {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            if p.update(pc, taken) {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc < 0.7, "random data should hover near chance, got {acc}");
    }

    #[test]
    fn predict_matches_update_verdict() {
        let mut p = Gshare::new(6);
        for i in 0..200u64 {
            let pc = 0x10 + (i % 5) * 4;
            let taken = i % 3 == 0;
            let predicted = p.predict(pc);
            let was_correct = p.update(pc, taken);
            assert_eq!(was_correct, predicted == taken);
        }
    }
}
