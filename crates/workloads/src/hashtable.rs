//! Hash-table lookups via task offload (paper Sec. VIII-B, Figs. 17, 18,
//! 24, 25).
//!
//! A bucketed chaining hash table with ~32 nodes per bucket. Lookups walk
//! the per-bucket linked list. The baseline walks chains from the core —
//! every node is a round trip to the LLC. Leviathan offloads a `Lookup`
//! task to the head node's LLC bank; the task compares the key and either
//! answers the waiting future or re-invokes itself on the next node in
//! continuation-passing style (Fig. 17), so the chain walk stays inside
//! the LLC.
//!
//! Node size is a parameter (24/64/128 B). Leviathan's allocator pads
//! 24 B nodes to 32 B (compacting them back in DRAM) and maps 2-line
//! 128 B nodes to a single bank; the `NoPadding`/`NoMapping` ablations
//! disable exactly those features to model Livia-style prior work.

use std::sync::Arc;

use levi_isa::{ActionId, Location, Program, ProgramBuilder, Reg};
use leviathan::{ArraySpec, System, SystemConfig};

use crate::gen::Uniform;
use crate::harness::{RunEnv, RunOutcome, RunStatus, ScaleKind, Workload};
use crate::metrics::RunMetrics;

/// Node field offsets. Per Fig. 17 the node is
/// `{ key, value, metadata[N], next }` — `next` sits at the *end*, so for
/// multi-line nodes the chain walk touches both the first and the last
/// line (which is why LLC bank mapping matters).
const KEY_OFF: i32 = 0;
const VAL_OFF: i32 = 8;

/// Offset of the `next` pointer for a given logical node size.
fn next_off(node_bytes: u64) -> i32 {
    (node_bytes - 8) as i32
}

/// Hash-table variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HtVariant {
    /// Core-side chain walk.
    Baseline,
    /// Offloaded continuation-passing lookups with full layout support.
    Leviathan,
    /// Offloaded lookups, nodes unpadded (Livia-like; hurts 24 B nodes).
    NoPadding,
    /// Offloaded lookups, no LLC bank mapping (hurts 128 B nodes).
    NoMapping,
    /// Offloaded lookups with DYNAMIC placement (probes the hierarchy and
    /// occasionally migrates hot actors up; Sec. VI-B1 ablation).
    LeviathanDynamic,
    /// Leviathan with idealized engines.
    Ideal,
}

impl HtVariant {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            HtVariant::Baseline => "Baseline",
            HtVariant::Leviathan => "Leviathan",
            HtVariant::NoPadding => "w/o padding",
            HtVariant::NoMapping => "w/o LLC mapping",
            HtVariant::LeviathanDynamic => "Leviathan (DYNAMIC)",
            HtVariant::Ideal => "Ideal",
        }
    }

    /// All variants in presentation order.
    pub fn all() -> [HtVariant; 6] {
        [
            HtVariant::Baseline,
            HtVariant::Leviathan,
            HtVariant::NoPadding,
            HtVariant::NoMapping,
            HtVariant::LeviathanDynamic,
            HtVariant::Ideal,
        ]
    }
}

/// Scale knobs.
#[derive(Clone, Debug)]
pub struct HtScale {
    /// Logical node payload size in bytes (24, 64, or 128).
    pub node_bytes: u64,
    /// Total nodes in the table.
    pub nodes: u64,
    /// Average chain length (nodes per bucket).
    pub nodes_per_bucket: u64,
    /// Tiles (= threads).
    pub tiles: u32,
    /// Lookups per thread.
    pub lookups_per_thread: u64,
    /// RNG seed.
    pub seed: u64,
}

impl HtScale {
    /// The paper's setup for a given node size: ≈4 MB of padded nodes,
    /// 32 nodes/bucket, 16 threads × 1 K lookups.
    pub fn paper(node_bytes: u64) -> Self {
        let padded = leviathan::alloc::padded_size(node_bytes);
        HtScale {
            node_bytes,
            nodes: 4 * 1024 * 1024 / padded,
            nodes_per_bucket: 32,
            tiles: 16,
            lookups_per_thread: 1024,
            seed: 0x47,
        }
    }

    /// Tiny scale for unit tests.
    pub fn test(node_bytes: u64) -> Self {
        HtScale {
            node_bytes,
            nodes: 4096,
            nodes_per_bucket: 16,
            tiles: 4,
            lookups_per_thread: 64,
            seed: 0x47,
        }
    }

    /// Overrides the total table size in (padded) bytes — Fig. 24's sweep.
    pub fn with_table_bytes(mut self, bytes: u64) -> Self {
        let padded = leviathan::alloc::padded_size(self.node_bytes);
        self.nodes = (bytes / padded).max(self.nodes_per_bucket);
        self
    }
}

/// Result of a hash-table run.
#[derive(Clone, Debug)]
pub struct HtResult {
    /// Measured metrics.
    pub metrics: RunMetrics,
    /// XOR-checksum over all looked-up values.
    pub checksum: u64,
}

struct Programs {
    prog: Arc<Program>,
    baseline: levi_isa::FuncId,
    driver: levi_isa::FuncId,
    lookup: levi_isa::FuncId,
}

fn build_programs(node_bytes: u64, first_loc: Location) -> Programs {
    let nxt = next_off(node_bytes);
    let mut pb = ProgramBuilder::new();

    // Offloaded Lookup action (Fig. 17): r0 = node, r1 = key, r2 = fut.
    let lookup = {
        let mut f = pb.function("lookup");
        let (node, key, fut) = (Reg(0), Reg(1), Reg(2));
        let (nkey, next, val, zero, miss) = (Reg(3), Reg(4), Reg(5), Reg(6), Reg(7));
        let found = f.label();
        let not_here = f.label();
        f.imm(zero, 0);
        f.ld8(nkey, node, KEY_OFF);
        f.beq(nkey, key, found);
        f.jmp(not_here);
        f.bind(found);
        f.ld8(val, node, VAL_OFF);
        f.future_send(fut, val);
        f.halt();
        f.bind(not_here);
        f.ld8(next, node, nxt);
        let chain = f.label();
        f.bne(next, zero, chain);
        f.imm(miss, u64::MAX);
        f.future_send(fut, miss);
        f.halt();
        f.bind(chain);
        // Continuation: run Lookup near the next node.
        f.mov(node, next);
        f.invoke_future(node, ActionId(0), &[key, fut], fut, Location::Remote);
        f.halt();
        f.finish()
    };

    // Baseline lookup loop on the core:
    // r0 = ctx {heads, nbuckets, keys, result}, r1 = count.
    let baseline = {
        let mut f = pb.function("baseline_lookups");
        let (ctx, n) = (Reg(0), Reg(1));
        let (heads, nbuckets, keys, result) = (Reg(10), Reg(11), Reg(12), Reg(13));
        let (i, key, h, node, nkey, next, val, acc, zero, haddr) = (
            Reg(14),
            Reg(15),
            Reg(16),
            Reg(17),
            Reg(18),
            Reg(19),
            Reg(20),
            Reg(21),
            Reg(22),
            Reg(23),
        );
        f.ld8(heads, ctx, 0)
            .ld8(nbuckets, ctx, 8)
            .ld8(keys, ctx, 16)
            .ld8(result, ctx, 24);
        f.imm(i, 0).imm(acc, 0).imm(zero, 0);
        let top = f.label();
        let out = f.label();
        let walk = f.label();
        let found = f.label();
        let next_i = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.muli(key, i, 8).add(key, key, keys);
        f.ld8(key, key, 0);
        // h = (key * K) % nbuckets
        f.alui(levi_isa::AluOp::Mul, h, key, 0x9E37_79B9_7F4A_7C15u64);
        f.shri(h, h, 17);
        f.remu(h, h, nbuckets);
        f.muli(haddr, h, 8).add(haddr, haddr, heads);
        f.ld8(node, haddr, 0);
        f.bind(walk);
        f.beq(node, zero, next_i); // empty / missing
        f.ld8(nkey, node, KEY_OFF);
        f.beq(nkey, key, found);
        f.ld8(next, node, nxt);
        f.mov(node, next);
        f.jmp(walk);
        f.bind(found);
        f.ld8(val, node, VAL_OFF);
        f.xor(acc, acc, val);
        f.bind(next_i);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.st8(result, 0, acc);
        f.halt();
        f.finish()
    };

    // Offload driver: r0 = ctx {heads, nbuckets, keys, result, fut}, r1 = n.
    let driver = {
        let mut f = pb.function("offload_lookups");
        let (ctx, n) = (Reg(0), Reg(1));
        let (heads, nbuckets, keys, result, fut) = (Reg(10), Reg(11), Reg(12), Reg(13), Reg(24));
        let (i, key, h, node, val, acc, zero, haddr, miss) = (
            Reg(14),
            Reg(15),
            Reg(16),
            Reg(17),
            Reg(20),
            Reg(21),
            Reg(22),
            Reg(23),
            Reg(25),
        );
        f.ld8(heads, ctx, 0)
            .ld8(nbuckets, ctx, 8)
            .ld8(keys, ctx, 16)
            .ld8(result, ctx, 24)
            .ld8(fut, ctx, 32);
        f.imm(i, 0).imm(acc, 0).imm(zero, 0).imm(miss, u64::MAX);
        let top = f.label();
        let out = f.label();
        let next_i = f.label();
        let got = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.muli(key, i, 8).add(key, key, keys);
        f.ld8(key, key, 0);
        f.alui(levi_isa::AluOp::Mul, h, key, 0x9E37_79B9_7F4A_7C15u64);
        f.shri(h, h, 17);
        f.remu(h, h, nbuckets);
        f.muli(haddr, h, 8).add(haddr, haddr, heads);
        f.ld8(node, haddr, 0);
        f.beq(node, zero, next_i);
        // Reset the future, offload, wait.
        f.st8(fut, 0, zero);
        f.st8(fut, 8, zero);
        f.invoke_future(node, ActionId(0), &[key, fut], fut, first_loc);
        f.future_wait(val, fut);
        f.beq(val, miss, next_i);
        f.jmp(got);
        f.bind(got);
        f.xor(acc, acc, val);
        f.bind(next_i);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.st8(result, 0, acc);
        f.halt();
        f.finish()
    };

    Programs {
        prog: Arc::new(pb.finish().expect("hash-table programs validate")),
        baseline,
        driver,
        lookup,
    }
}

#[inline]
fn bucket_of(key: u64, nbuckets: u64) -> u64 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % nbuckets
}

/// Runs one hash-table variant.
pub fn run_hashtable(variant: HtVariant, scale: &HtScale) -> HtResult {
    run_hashtable_cfg(variant, scale, None)
}

/// Runs one variant with an optional LLC-size override in KB per tile
/// (Fig. 24 shrinks the effective LLC-to-table ratio via table growth, but
/// sensitivity tests may also pin the LLC).
pub fn run_hashtable_cfg(
    variant: HtVariant,
    scale: &HtScale,
    llc_kb_per_tile: Option<u64>,
) -> HtResult {
    run_hashtable_with(variant, scale, |cfg| {
        if let Some(kb) = llc_kb_per_tile {
            cfg.machine.llc.size_bytes = kb * 1024;
        }
    })
}

/// Runs one variant with arbitrary configuration customization (used by
/// the ablation benches, e.g. to disable the MC FIFO cache).
pub fn run_hashtable_with(
    variant: HtVariant,
    scale: &HtScale,
    customize: impl FnOnce(&mut SystemConfig),
) -> HtResult {
    let mut cfg = SystemConfig::with_tiles(scale.tiles);
    customize(&mut cfg);
    if variant == HtVariant::Ideal {
        cfg = cfg.idealized();
    }
    let mut sys = System::try_new(cfg).expect("hash-table system config is valid");

    // ---- allocate nodes per the variant's layout support ----
    let mut spec = ArraySpec::new("nodes", scale.node_bytes, scale.nodes);
    match variant {
        HtVariant::NoPadding => spec = spec.without_padding(),
        HtVariant::NoMapping => spec = spec.without_bank_mapping(),
        _ => {}
    }
    let nodes = sys.alloc_array(&spec);
    let nbuckets = (scale.nodes / scale.nodes_per_bucket).max(1);
    let heads = sys.alloc_raw(8 * nbuckets, 64);

    // ---- build chains host-side (insert at head) ----
    let mut checksum_all = 0u64;
    for k in 0..scale.nodes {
        let key = k;
        let value = key.wrapping_mul(31).wrapping_add(7);
        let b = bucket_of(key, nbuckets);
        let node = nodes.addr(k);
        let old_head = sys.read_u64(heads + 8 * b);
        sys.write_u64(node + KEY_OFF as u64, key);
        sys.write_u64(node + VAL_OFF as u64, value);
        sys.write_u64(node + next_off(scale.node_bytes) as u64, old_head);
        sys.write_u64(heads + 8 * b, node);
        checksum_all = checksum_all.wrapping_add(value);
    }

    // ---- lookup keys (uniform over existing keys) ----
    let total_lookups = scale.lookups_per_thread * scale.tiles as u64;
    let keys_arr = sys.alloc_raw(8 * total_lookups, 64);
    let mut uni = Uniform::new(scale.nodes, scale.seed);
    for i in 0..total_lookups {
        sys.write_u64(keys_arr + 8 * i, uni.sample());
    }
    let golden = golden_checksum(scale);

    let first_loc = if variant == HtVariant::LeviathanDynamic {
        Location::Dynamic
    } else {
        Location::Remote
    };
    let progs = build_programs(scale.node_bytes, first_loc);
    let lookup_action = sys.register_action(&progs.prog, progs.lookup);
    assert_eq!(lookup_action, ActionId(0));

    // ---- spawn ----
    let results = sys.alloc_raw(8 * scale.tiles as u64, 64);
    for t in 0..scale.tiles {
        let my_keys = keys_arr + 8 * scale.lookups_per_thread * t as u64;
        let res = results + 8 * t as u64;
        let ctx = sys.alloc_raw(48, 64);
        sys.write_u64(ctx, heads);
        sys.write_u64(ctx + 8, nbuckets);
        sys.write_u64(ctx + 16, my_keys);
        sys.write_u64(ctx + 24, res);
        match variant {
            HtVariant::Baseline => {
                sys.spawn_thread(
                    t,
                    &progs.prog,
                    progs.baseline,
                    &[ctx, scale.lookups_per_thread],
                )
                .unwrap();
            }
            _ => {
                let fut = sys.alloc_future();
                sys.write_u64(ctx + 32, fut.addr);
                sys.spawn_thread(
                    t,
                    &progs.prog,
                    progs.driver,
                    &[ctx, scale.lookups_per_thread],
                )
                .unwrap();
            }
        }
    }
    sys.run().expect("hash-table run deadlocked");

    let mut checksum = 0u64;
    for t in 0..scale.tiles {
        checksum ^= sys.read_u64(results + 8 * t as u64);
    }
    assert_eq!(
        checksum,
        golden,
        "{} returned wrong lookup values",
        variant.label()
    );

    HtResult {
        metrics: RunMetrics::capture(variant.label(), &sys),
        checksum,
    }
}

/// Host-side golden model: the XOR of `value(key)` over the seeded lookup
/// stream. Every key in `0..nodes` is present in the table, so every
/// lookup hits; `value(key) = key * 31 + 7` matches the insertion loop.
pub fn golden_checksum(scale: &HtScale) -> u64 {
    let total = scale.lookups_per_thread * scale.tiles as u64;
    let mut uni = Uniform::new(scale.nodes, scale.seed);
    let mut golden = 0u64;
    for _ in 0..total {
        golden ^= uni.sample().wrapping_mul(31).wrapping_add(7);
    }
    golden
}

/// Registry entry for the hash-table study (see [`crate::harness`]).
/// Registry runs use 64 B nodes; the node-size figure (Fig. 18) sweeps
/// sizes through the typed [`Workload`] interface with custom scales.
pub struct HashtableWorkload;

impl Workload for HashtableWorkload {
    type Variant = HtVariant;
    type Scale = HtScale;
    type Input = ();

    fn name(&self) -> &'static str {
        "hashtable"
    }

    fn variants(&self) -> Vec<(&'static str, HtVariant)> {
        HtVariant::all().iter().map(|&v| (v.label(), v)).collect()
    }

    fn scale(&self, kind: ScaleKind) -> HtScale {
        match kind {
            ScaleKind::Paper => HtScale::paper(64),
            ScaleKind::Test | ScaleKind::Quick => HtScale::test(64),
        }
    }

    fn build_input(&self, _scale: &HtScale) {}

    fn describe(&self, scale: &HtScale) -> String {
        format!(
            "{} nodes of {} B, {} per bucket, {} tiles x {} lookups",
            scale.nodes,
            scale.node_bytes,
            scale.nodes_per_bucket,
            scale.tiles,
            scale.lookups_per_thread
        )
    }

    fn run(&self, variant: HtVariant, scale: &HtScale, _input: &(), env: &RunEnv) -> RunStatus {
        let r = run_hashtable_with(variant, scale, |cfg| env.customize(cfg));
        RunStatus::Done(Box::new(RunOutcome::new(r.metrics, r.checksum)))
    }

    fn golden(&self, _variant: HtVariant, scale: &HtScale, _input: &()) -> u64 {
        golden_checksum(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_return_correct_values_all_variants() {
        for node_bytes in [24u64, 64, 128] {
            let scale = HtScale::test(node_bytes);
            for v in [HtVariant::Baseline, HtVariant::Leviathan] {
                let r = run_hashtable(v, &scale);
                assert!(r.checksum != 0);
            }
        }
    }

    #[test]
    fn offload_beats_baseline_on_chain_walks() {
        let scale = HtScale::test(64);
        let base = run_hashtable(HtVariant::Baseline, &scale);
        let lev = run_hashtable(HtVariant::Leviathan, &scale);
        let speedup = lev.metrics.speedup_vs(&base.metrics);
        assert!(
            speedup > 1.1,
            "offloaded pointer chasing should win: {speedup:.2}x"
        );
        // The win comes from NoC traffic (paper Sec. VIII-B).
        assert!(
            lev.metrics.stats.noc_flit_hops < base.metrics.stats.noc_flit_hops,
            "offload must reduce NoC traffic: {} vs {}",
            lev.metrics.stats.noc_flit_hops,
            base.metrics.stats.noc_flit_hops
        );
    }

    #[test]
    fn padding_matters_for_24b_nodes() {
        let scale = HtScale::test(24);
        let lev = run_hashtable(HtVariant::Leviathan, &scale);
        let nopad = run_hashtable(HtVariant::NoPadding, &scale);
        assert!(
            lev.metrics.cycles <= nopad.metrics.cycles,
            "padding should help 24B nodes: {} vs {}",
            lev.metrics.cycles,
            nopad.metrics.cycles
        );
    }

    #[test]
    fn mapping_matters_for_128b_nodes() {
        let scale = HtScale::test(128);
        let lev = run_hashtable(HtVariant::Leviathan, &scale);
        let nomap = run_hashtable(HtVariant::NoMapping, &scale);
        assert!(
            lev.metrics.cycles < nomap.metrics.cycles,
            "bank mapping should help 2-line nodes: {} vs {}",
            lev.metrics.cycles,
            nomap.metrics.cycles
        );
    }

    #[test]
    fn compaction_saves_dram_footprint() {
        // 24B nodes padded to 32B: DRAM stores them at 24B stride.
        let scale = HtScale::test(24);
        let sys_cfg = SystemConfig::with_tiles(scale.tiles);
        let mut sys = System::try_new(sys_cfg).expect("compaction test config is valid");
        let spec = ArraySpec::new("nodes", 24, scale.nodes);
        let arr = sys.alloc_array(&spec);
        assert_eq!(arr.stride, 32);
        assert_eq!(sys.machine().hw.translator.len(), 1, "compaction installed");
    }
}
