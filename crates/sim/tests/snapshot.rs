//! Checkpoint/restore correctness, exercised through the public API.
//!
//! The pivotal property: a run is a pure function of (config, workload,
//! seed), so restoring a mid-run snapshot and running to completion must
//! reproduce the uninterrupted run *exactly* — same final cycle, same
//! stats digest — at any checkpoint cycle, including inside NACK-backoff
//! and engine-outage windows. The hook itself must be observationally
//! free: a run with periodic checkpointing enabled produces the same
//! outcome as one without.

use std::sync::Arc;

use levi_isa::{ActionId, Location, Memory, ProgramBuilder, Reg};
use levi_sim::ndc::{MorphLevel, MorphRegion};
use levi_sim::snapshot::{MAGIC, VERSION};
use levi_sim::{
    CycleWindow, EngineId, EngineLevel, FaultPlan, Machine, MachineConfig, RunError, SnapshotError,
    StreamMode, TenantConfig, TenantPolicy, XlatConfig,
};

fn small_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::with_tiles(4);
    cfg.prefetcher = false;
    cfg
}

/// A busy mixed workload: three cores run invoke loops (futures, NACK
/// backoff under faults), while core 0 consumes a stream produced by an
/// LLC engine task. Mid-run snapshots catch actors parked on futures,
/// stream conditions, and engine-context backpressure.
fn setup(cfg: MachineConfig) -> Machine {
    let mut pb = ProgramBuilder::new();
    let action = {
        let mut f = pb.function("add_action");
        let (actor, amt, fut, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
        f.ld8(v, actor, 0);
        f.add(v, v, amt);
        f.st8(actor, 0, v);
        f.future_send(fut, v);
        f.halt();
        f.finish()
    };
    let invoker = {
        let mut f = pb.function("invoker");
        // r0 = actor base, r1 = future base, r2 = iterations
        let (abase, fbase, n) = (Reg(0), Reg(1), Reg(2));
        let (i, amt, r) = (Reg(3), Reg(4), Reg(5));
        f.imm(i, 0).imm(amt, 5);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.invoke_future(abase, ActionId(0), &[amt, fbase], fbase, Location::Dynamic);
        f.future_wait(r, fbase);
        f.addi(abase, abase, 4096);
        f.addi(fbase, fbase, 8);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let producer = {
        let mut f = pb.function("producer");
        let (handle, i, n) = (Reg(0), Reg(1), Reg(2));
        f.imm(i, 0).imm(n, 80);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.push(handle, i);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let consumer = {
        let mut f = pb.function("consumer");
        // r0 = handle, r1 = buffer base, r2 = capacity, r3 = n
        let (handle, base, cap, n) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let (i, idx, addr, v, acc) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(8));
        f.imm(i, 0).imm(acc, 0);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.remu(idx, i, cap);
        f.muli(idx, idx, 8);
        f.add(addr, base, idx);
        f.ld8(v, addr, 0);
        f.pop(handle);
        f.add(acc, acc, v);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.st8(base, 4096, acc);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());

    let mut m = Machine::try_new(cfg).unwrap();
    m.hw.ndc.actions.register(ActionId(0), prog.clone(), action);
    for t in 1..4u32 {
        let abase = 0x10_0000 + t as u64 * 0x40_000;
        let fbase = 0x50_0000 + t as u64 * 0x1000;
        for k in 0..24u64 {
            m.mem_mut().write_u64(abase + k * 4096, k);
        }
        m.spawn_thread(t, prog.clone(), invoker, &[abase, fbase, 24])
            .unwrap();
    }
    let buffer = 0x80_0000u64;
    let cap = 16u64;
    let engine = EngineId {
        tile: 0,
        level: EngineLevel::Llc,
    };
    let sid = m
        .create_stream(buffer, 8, cap, engine, 0, StreamMode::RunAhead)
        .unwrap();
    m.hw.ndc.register_morph(MorphRegion {
        base: buffer,
        bound: buffer + cap * 8,
        level: MorphLevel::L2,
        obj_size: 8,
        ctor: None,
        dtor: None,
        view: 0,
        stream: Some(sid),
    });
    m.spawn_engine_task(engine, prog.clone(), producer, &[sid.0 as u64], Some(sid));
    m.spawn_thread(0, prog, consumer, &[sid.0 as u64, buffer, cap, 80])
        .unwrap();
    m
}

/// An always-faulted variant: every engine refuses during a mid-run
/// window, so checkpoints land inside NACK-backoff and outage windows.
fn faulted_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(1).retry_budget(3).backoff(8, 64);
    for tile in 0..4 {
        for level in [EngineLevel::L2, EngineLevel::Llc] {
            plan = plan.add_engine_fault(EngineId { tile, level }, CycleWindow::new(200, 4000));
        }
    }
    plan
}

/// `(final cycle, stats digest)` — the outcome identity used throughout.
fn outcome(m: &Machine) -> (u64, u64) {
    (m.now(), m.stats().digest())
}

#[test]
fn restore_at_arbitrary_cycles_reproduces_the_run() {
    let mut base = setup(small_cfg());
    base.run().unwrap();
    let want = outcome(&base);

    // Periods chosen to land checkpoints at scattered mid-run cycles;
    // each must stay below the run length so a checkpoint is taken.
    for every in [300u64, 701, 1100] {
        assert!(
            every < want.0,
            "period {every} exceeds run length {}",
            want.0
        );
        let mut m = setup(small_cfg().checkpoint_every(every));
        m.run().unwrap();
        assert_eq!(
            outcome(&m),
            want,
            "checkpoint hook must not perturb the run (every={every})"
        );
        let (at, bytes) = m.take_last_checkpoint().expect("checkpoint taken mid-run");
        assert!(at > 0 && at < want.0, "mid-run checkpoint at {at}");

        let mut replica = Machine::restore(small_cfg(), &bytes).unwrap();
        assert_eq!(replica.now(), at, "restored clock");
        // Re-checkpointing the restored machine must reproduce the exact
        // bytes: the codec is canonical and lossless.
        assert_eq!(replica.checkpoint(), bytes, "re-checkpoint byte-identity");
        replica.run().unwrap();
        assert_eq!(
            outcome(&replica),
            want,
            "resumed run diverged (checkpoint at cycle {at})"
        );
    }
}

#[test]
fn restore_inside_fault_windows_reproduces_the_run() {
    let mut base = setup(small_cfg().faulted(faulted_plan()));
    base.run().unwrap();
    let want = outcome(&base);
    assert!(
        base.stats().fault_nack_retries > 0,
        "workload must actually hit the fault windows"
    );

    // Small periods land checkpoints inside backoff and outage windows.
    for every in [64u64, 257, 900] {
        let mut m = setup(small_cfg().faulted(faulted_plan()).checkpoint_every(every));
        m.run().unwrap();
        assert_eq!(outcome(&m), want, "hook-free outcome under faults");
        let (at, bytes) = m.take_last_checkpoint().expect("checkpoint taken");
        let mut replica = Machine::restore(small_cfg().faulted(faulted_plan()), &bytes).unwrap();
        replica.run().unwrap();
        assert_eq!(
            outcome(&replica),
            want,
            "faulted resume diverged (checkpoint at cycle {at}, every={every})"
        );
    }
}

#[test]
fn restore_under_a_different_fault_plan_is_permitted() {
    // The config digest deliberately excludes the fault plan: the same
    // snapshot restores under a different fault seed (time-travel
    // replay). The restored run completes and stays self-consistent.
    let mut m = setup(small_cfg().faulted(faulted_plan()).checkpoint_every(500));
    m.run().unwrap();
    let (_, bytes) = m.take_last_checkpoint().expect("checkpoint taken");

    let other = FaultPlan::new(99).retry_budget(2).backoff(4, 32);
    let mut replica = Machine::restore(small_cfg().faulted(other), &bytes).unwrap();
    assert!(replica.run().is_ok());
}

#[test]
fn checkpoint_verified_run_passes() {
    let mut m = setup(small_cfg().checkpoint_every(700).checkpoint_verified());
    let res = m.run();
    assert!(
        res.is_ok(),
        "self-verification must accept its own checkpoint: {res:?}"
    );
}

#[test]
fn verified_multi_phase_run_skips_stale_checkpoints() {
    // Phase 1 takes checkpoints; phase 2 is shorter than the checkpoint
    // period, so no new checkpoint fires during it. Verification must
    // then skip the phase-1 checkpoint rather than replay it: a replica
    // quiesces at the end of the phase it was captured in and cannot
    // reproduce host actions (the spawn below) between the two runs.
    let mut m = setup(small_cfg().checkpoint_every(700).checkpoint_verified());
    m.run().expect("phase 1");
    assert!(
        m.last_checkpoint().is_some(),
        "phase 1 must have taken a checkpoint"
    );

    let mut pb = ProgramBuilder::new();
    let tick = {
        let mut f = pb.function("tick");
        let (base, v) = (Reg(0), Reg(1));
        f.ld8(v, base, 0);
        f.addi(v, v, 1);
        f.st8(base, 0, v);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());
    m.spawn_thread(0, prog, tick, &[0x90_0000]).unwrap();
    m.run()
        .expect("a short second phase must not be checked against a stale phase-1 checkpoint");
}

fn restore_err(cfg: MachineConfig, bytes: &[u8]) -> SnapshotError {
    match Machine::restore(cfg, bytes) {
        Err(e) => e,
        Ok(_) => panic!("restore unexpectedly succeeded"),
    }
}

#[test]
fn malformed_bytes_are_rejected_with_typed_errors() {
    let mut m = setup(small_cfg().checkpoint_every(400));
    m.run().unwrap();
    let (_, bytes) = m.take_last_checkpoint().expect("checkpoint taken");

    // Sanity: pristine bytes restore.
    assert!(Machine::restore(small_cfg(), &bytes).is_ok());

    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert_eq!(restore_err(small_cfg(), &bad), SnapshotError::BadMagic);

    // Unsupported version.
    let mut bad = bytes.clone();
    bad[MAGIC.len()] = (VERSION + 1) as u8;
    assert_eq!(
        restore_err(small_cfg(), &bad),
        SnapshotError::UnsupportedVersion(VERSION + 1)
    );

    // Config mismatch: more tiles than the snapshot was taken under.
    match restore_err(MachineConfig::with_tiles(8), &bytes) {
        SnapshotError::ConfigMismatch { expected, found } => assert_ne!(expected, found),
        other => panic!("expected ConfigMismatch, got {other}"),
    }

    // Truncation at every structural boundary and a few interior points.
    for cut in [0, 4, 7, 11, 19, 27, bytes.len() / 2, bytes.len() - 1] {
        let err = restore_err(small_cfg(), &bytes[..cut]);
        assert!(
            matches!(
                err,
                SnapshotError::Truncated | SnapshotError::BadMagic | SnapshotError::Corrupted(_)
            ),
            "cut at {cut} gave {err}"
        );
    }

    // Payload corruption must fail the CRC, never panic.
    for offset in [28usize, 40, bytes.len() / 2, bytes.len() - 8] {
        let mut bad = bytes.clone();
        bad[offset] ^= 0x55;
        let err = restore_err(small_cfg(), &bad);
        assert!(
            matches!(
                err,
                SnapshotError::Corrupted(_)
                    | SnapshotError::ConfigMismatch { .. }
                    | SnapshotError::Truncated
            ),
            "corruption at {offset} gave {err}"
        );
    }
}

/// Translation + tenancy enabled (DESIGN.md §11): TLBs fill and tenant
/// line tags spread mid-run, so snapshots carry real xlat state.
fn xlat_cfg(policy: TenantPolicy) -> MachineConfig {
    let mut cfg = small_cfg();
    cfg.xlat = Some(XlatConfig::paper_default());
    cfg.tenants = Some(TenantConfig::new(2, policy));
    cfg
}

#[test]
fn restore_with_translation_and_tenancy_reproduces_the_run() {
    for policy in [
        TenantPolicy::Unpartitioned,
        TenantPolicy::LlcWayPartition,
        TenantPolicy::EngineSlotQuota,
    ] {
        let mut base = setup(xlat_cfg(policy));
        base.run().unwrap();
        let want = outcome(&base);
        assert!(
            base.stats().tlb_misses > 0,
            "workload must actually walk ({policy:?})"
        );

        for every in [300u64, 1100] {
            let mut m = setup(xlat_cfg(policy).checkpoint_every(every));
            m.run().unwrap();
            assert_eq!(outcome(&m), want, "hook-free outcome ({policy:?})");
            let (at, bytes) = m.take_last_checkpoint().expect("checkpoint taken");
            assert!(at > 0 && at < want.0, "mid-run checkpoint at {at}");

            let mut replica = Machine::restore(xlat_cfg(policy), &bytes).unwrap();
            assert!(
                replica
                    .hw
                    .xlat
                    .as_ref()
                    .is_some_and(|x| (0..4).any(|t| x.tlb(t).occupancy() > 0)),
                "restored TLBs must carry mid-flight entries"
            );
            assert_eq!(replica.checkpoint(), bytes, "re-checkpoint byte-identity");
            replica.run().unwrap();
            assert_eq!(
                outcome(&replica),
                want,
                "xlat resume diverged ({policy:?}, checkpoint at {at})"
            );
        }
    }
}

#[test]
fn restore_with_tenant_scoped_outages_reproduces_the_run() {
    // Tenant 0 (tiles 0-1) loses engines mid-run; tenant 1 keeps serving.
    let plan = || {
        FaultPlan::new(1)
            .retry_budget(3)
            .backoff(8, 64)
            .gen_tenant_engine_outages(6, 0, 2, 4, 4000, 200, 1000)
    };
    let cfg = || xlat_cfg(TenantPolicy::EngineSlotQuota).faulted(plan());
    let mut base = setup(cfg());
    base.run().unwrap();
    let want = outcome(&base);

    let mut m = setup(cfg().checkpoint_every(500));
    m.run().unwrap();
    assert_eq!(outcome(&m), want, "hook-free outcome under tenant faults");
    let (at, bytes) = m.take_last_checkpoint().expect("checkpoint taken");
    let mut replica = Machine::restore(cfg(), &bytes).unwrap();
    replica.run().unwrap();
    assert_eq!(
        outcome(&replica),
        want,
        "tenant-fault resume diverged at {at}"
    );
}

/// Recomputes the container CRC after in-place payload surgery, so the
/// decoder reaches the section codec instead of failing the CRC gate.
fn reseal(bytes: &mut [u8]) {
    let len = bytes.len();
    let crc = levi_sim::snapshot::crc32(&bytes[8..len - 4]);
    bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn tampered_tlb_section_is_rejected_with_typed_errors() {
    let cfg = || xlat_cfg(TenantPolicy::Unpartitioned);
    let mut m = setup(cfg().checkpoint_every(400));
    m.run().unwrap();
    let (_, bytes) = m.take_last_checkpoint().expect("checkpoint taken");
    assert!(Machine::restore(cfg(), &bytes).is_ok(), "pristine restores");
    let pos = bytes
        .windows(4)
        .position(|w| w == b"TLBX")
        .expect("snapshot carries the TLBX section");

    // Presence flag flipped (valid CRC): the decoder must catch the
    // mismatch against the config-built machine, not panic.
    let mut bad = bytes.clone();
    bad[pos + 4] ^= 1;
    reseal(&mut bad);
    assert_eq!(
        restore_err(cfg(), &bad),
        SnapshotError::Corrupted("tlb presence mismatch")
    );

    // Tile-count corruption (valid CRC): typed codec error, no panic.
    let mut bad = bytes.clone();
    bad[pos + 5] ^= 0xFF;
    reseal(&mut bad);
    assert!(
        matches!(
            restore_err(cfg(), &bad),
            SnapshotError::Corrupted(_) | SnapshotError::Truncated
        ),
        "corrupted TLB count must fail typed"
    );

    // Truncation inside the section, with the header length and CRC
    // rewritten to match: the codec runs dry mid-TLB and reports it.
    let mut cut = bytes[..pos + 8].to_vec();
    let plen = (cut.len() - 28) as u64;
    cut[20..28].copy_from_slice(&plen.to_le_bytes());
    let crc = levi_sim::snapshot::crc32(&cut[8..]);
    cut.extend_from_slice(&crc.to_le_bytes());
    assert!(
        matches!(
            restore_err(cfg(), &cut),
            SnapshotError::Truncated | SnapshotError::Corrupted(_)
        ),
        "mid-section truncation must fail typed"
    );
}

#[test]
fn disabled_hook_takes_no_checkpoints() {
    let mut m = setup(small_cfg());
    m.run().unwrap();
    assert!(m.last_checkpoint().is_none());
    assert!(m.take_last_checkpoint().is_none());
}

#[test]
fn watchdog_and_deadlock_still_reported_with_hook_enabled() {
    // The hook re-pushes the popped entry; the watchdog must still fire.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let (p, i, n, v) = (Reg(1), Reg(2), Reg(3), Reg(4));
    f.imm(p, 0x10000).imm(i, 0).imm(n, 10_000);
    let top = f.label();
    let out = f.label();
    f.bind(top);
    f.bge_u(i, n, out);
    f.ld8(v, p, 0);
    f.addi(p, p, 64);
    f.addi(i, i, 1);
    f.jmp(top);
    f.bind(out);
    f.halt();
    let main = f.finish();
    let prog = Arc::new(pb.finish().unwrap());

    let mut cfg = small_cfg().checkpoint_every(100);
    cfg.max_cycles = 5_000;
    let mut m = Machine::try_new(cfg).unwrap();
    m.spawn_thread(0, prog, main, &[]).unwrap();
    match m.run() {
        Err(RunError::Watchdog { limit, .. }) => assert_eq!(limit, 5_000),
        other => panic!("expected watchdog, got {other:?}"),
    }
    assert!(
        m.last_checkpoint().is_some(),
        "checkpoints taken before abort"
    );
}
