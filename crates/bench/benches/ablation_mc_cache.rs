//! Thin wrapper: `cargo bench --bench ablation_mc_cache` dispatches to the `ablation_mc_cache`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run ablation_mc_cache` executes identically.

fn main() {
    levi_bench::runner::bench_main("ablation_mc_cache");
}
