//! Dynamic-energy model.
//!
//! Energy is derived after the fact from the event counters in
//! [`Stats`] and the per-event parameters in
//! [`EnergyConfig`]. The paper reports dynamic
//! execution energy relative to the baseline; this model mirrors that.

use crate::config::EnergyConfig;
use crate::stats::Stats;

/// Dynamic energy, broken down by component, in picojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core instruction energy.
    pub core_pj: f64,
    /// Engine instruction energy.
    pub engine_pj: f64,
    /// All cache accesses (L1 + L2 + LLC + engine L1d + directory).
    pub cache_pj: f64,
    /// NoC flit-hop energy.
    pub noc_pj: f64,
    /// DRAM access energy (including the MC FIFO cache).
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.core_pj + self.engine_pj + self.cache_pj + self.noc_pj + self.dram_pj
    }

    /// Total dynamic energy in microjoules (readability helper).
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }

    /// This breakdown's total relative to another's (e.g. vs. a baseline).
    pub fn relative_to(&self, baseline: &EnergyBreakdown) -> f64 {
        if baseline.total_pj() == 0.0 {
            0.0
        } else {
            self.total_pj() / baseline.total_pj()
        }
    }
}

/// Computes the energy breakdown for a finished run.
pub fn compute(stats: &Stats, cfg: &EnergyConfig) -> EnergyBreakdown {
    let cache_accesses_l1 = stats.l1.accesses() + stats.engine_l1.accesses();
    EnergyBreakdown {
        core_pj: stats.core_instrs as f64 * cfg.core_inst_pj,
        engine_pj: stats.engine_instrs as f64 * cfg.engine_inst_pj,
        cache_pj: cache_accesses_l1 as f64 * cfg.l1_pj
            + stats.l2.accesses() as f64 * cfg.l2_pj
            + stats.llc.accesses() as f64 * cfg.llc_pj
            + stats.dir_lookups as f64 * cfg.dir_pj,
        noc_pj: stats.noc_flit_hops as f64 * cfg.noc_flit_hop_pj,
        dram_pj: stats.dram_accesses as f64 * cfg.dram_line_pj
            + stats.mc_cache_hits as f64 * cfg.mc_cache_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_accumulates_all_components() {
        let mut stats = Stats::new();
        stats.core_instrs = 100;
        stats.engine_instrs = 10;
        stats.l1.hits = 50;
        stats.l2.misses = 5;
        stats.llc.hits = 5;
        stats.dir_lookups = 5;
        stats.noc_flit_hops = 20;
        stats.dram_accesses = 2;
        stats.mc_cache_hits = 1;
        let cfg = EnergyConfig::default();
        let e = compute(&stats, &cfg);
        assert!(e.core_pj > 0.0);
        assert!(e.engine_pj > 0.0);
        assert!(e.cache_pj > 0.0);
        assert!(e.noc_pj > 0.0);
        assert!(e.dram_pj > 0.0);
        let expected_core = 100.0 * cfg.core_inst_pj;
        assert!((e.core_pj - expected_core).abs() < 1e-9);
        assert!(
            (e.total_pj() - (e.core_pj + e.engine_pj + e.cache_pj + e.noc_pj + e.dram_pj)).abs()
                < 1e-9
        );
    }

    #[test]
    fn relative_comparison() {
        let base = EnergyBreakdown {
            core_pj: 100.0,
            ..Default::default()
        };
        let half = EnergyBreakdown {
            core_pj: 50.0,
            ..Default::default()
        };
        assert!((half.relative_to(&base) - 0.5).abs() < 1e-12);
        assert_eq!(half.relative_to(&EnergyBreakdown::default()), 0.0);
    }

    #[test]
    fn zero_stats_zero_energy() {
        let e = compute(&Stats::new(), &EnergyConfig::default());
        assert_eq!(e.total_pj(), 0.0);
    }
}
