//! Fault injection demo: a seeded, fully deterministic fault plan.
//!
//! Builds the quickstart-style RMO counter workload, injects a seeded
//! [`FaultPlan`] covering all four fault classes (engine refusal windows,
//! invoke-buffer squeezes, NoC link slowdowns/outages, DRAM throttles),
//! and prints the plan and the resulting stats. The output depends only
//! on the seed: running this twice with the same seed must print
//! byte-identical text (the CI smoke test diffs two runs).
//!
//! Run with: `cargo run --release --example fault_demo -- [seed]`

use std::sync::Arc;

use levi_isa::{ActionId, Location, MemWidth, ProgramBuilder, Reg, RmwOp};
use levi_sim::FaultPlan;
use leviathan::{System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(3);

    let mut pb = ProgramBuilder::new();
    let action = {
        let mut f = pb.function("counter_add");
        let (actor, amount, old) = (Reg(0), Reg(1), Reg(2));
        f.rmw_relaxed(RmwOp::Add, old, actor, amount, MemWidth::B8);
        f.halt();
        f.finish()
    };
    let main_fn = {
        let mut f = pb.function("main");
        let (counters, n, stride) = (Reg(0), Reg(1), Reg(2));
        let (i, idx, actor, amount) = (Reg(8), Reg(9), Reg(10), Reg(11));
        f.imm(i, 0).imm(amount, 1);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.muli(idx, i, 7);
        f.remu(idx, idx, stride);
        f.muli(actor, idx, 8);
        f.add(actor, actor, counters);
        f.invoke(actor, ActionId(0), &[amount], Location::Remote);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish()?);

    let base = SystemConfig::small();
    let tiles = base.machine.tiles;
    let controllers = base.machine.mem.controllers;
    let plan = FaultPlan::new(seed)
        .gen_engine_outages(4, tiles, 10_000, 1_000, 5_000)
        .gen_invoke_squeezes(2, 1, 10_000, 1_000, 4_000)
        .gen_link_slowdowns(3, tiles, 8, 10_000, 1_000, 5_000)
        .gen_link_outages(1, tiles, 10_000, 500, 2_000)
        .gen_dram_throttles(2, controllers, 4, 10_000, 1_000, 5_000)
        .retry_budget(3)
        .backoff(16, 256);
    println!("seed {seed}: {plan}");

    // Watchdog: a plan bug must terminate the demo, not hang it.
    let mut sys = System::try_new(base.with_fault_plan(plan).with_watchdog(10_000_000))?;
    let n_counters = 64u64;
    let counters = sys.alloc_raw(8 * n_counters, 64);
    sys.register_action(&prog, action);
    let per_thread = 500u64;
    for t in 0..sys.tiles() {
        sys.spawn_thread(t, &prog, main_fn, &[counters, per_thread, n_counters])?;
    }
    sys.run()?;

    let total: u64 = (0..n_counters)
        .map(|i| sys.read_u64(counters + 8 * i))
        .sum();
    assert_eq!(
        total,
        per_thread * sys.tiles() as u64,
        "all updates must land despite the faults"
    );

    let s = sys.stats();
    println!("counters sum:      {total} (correct under faults)");
    println!("total cycles:      {}", s.cycles);
    println!("offloaded tasks:   {}", s.invokes);
    println!("invoke NACKs:      {}", s.invoke_nacks);
    println!("faults injected:   {}", s.faults_injected);
    println!("NACK retries:      {}", s.fault_nack_retries);
    println!("core fallbacks:    {}", s.fault_fallbacks);
    println!("degraded cycles:   {}", s.fault_degraded_cycles);
    if !s.fault_backoff.is_empty() {
        println!("backoff delays:    {}", s.fault_backoff);
    }
    Ok(())
}
