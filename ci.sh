#!/usr/bin/env bash
# Local CI: exactly what .github/workflows/ci.yml runs.
# Everything is offline — the workspace has no crates.io dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt ==";    cargo fmt --all -- --check
echo "== clippy =="; cargo clippy --workspace --all-targets -- -D warnings
echo "== build ==";  cargo build --workspace --release
echo "== test ==";   cargo test --workspace -q
echo "== ok =="
