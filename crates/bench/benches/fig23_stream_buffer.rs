//! Fig. 23 — sensitivity to the stream-buffer size (HATS).
//!
//! Paper: performance plateaus at 64 entries; the buffer lives in shared
//! memory so its capacity is nearly free.

use levi_bench::{header, quick_mode, table};
use levi_workloads::gen::Graph;
use levi_workloads::hats::{run_hats_on, HatsScale, HatsVariant};

fn main() {
    let mut scale = HatsScale::paper();
    if quick_mode() {
        scale = HatsScale::test();
    }
    header(
        "Fig. 23 — HATS sensitivity to stream-buffer entries",
        "paper: plateau at 64 entries",
    );
    let graph = Graph::community(
        scale.vertices,
        scale.avg_degree,
        scale.community,
        scale.intra_pct,
        scale.seed,
    );
    let mut rows = Vec::new();
    let mut best = u64::MAX;
    let mut cycles_at = Vec::new();
    for cap in [8u64, 16, 32, 64, 128, 256] {
        let mut s = scale.clone();
        s.stream_capacity = cap;
        let r = run_hats_on(HatsVariant::Leviathan, &s, &graph);
        eprintln!("  ran capacity={cap}");
        best = best.min(r.metrics.cycles);
        cycles_at.push(r.metrics.cycles);
        rows.push(vec![
            cap.to_string(),
            r.metrics.cycles.to_string(),
            r.metrics.stats.stream_stall_cycles.to_string(),
        ]);
    }
    for (row, c) in rows.iter_mut().zip(&cycles_at) {
        row.push(format!("{:.2}x", best as f64 / *c as f64));
    }
    table(
        &["entries", "cycles", "consumer stalls", "rel. perf"],
        &rows,
    );
}
