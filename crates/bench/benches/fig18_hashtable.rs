//! Fig. 18 — hash-table lookups across object sizes (24/64/128 B).
//!
//! Paper: Leviathan up to 2.0×, −77% energy; without padding 24 B drops
//! to 1.5×; without LLC mapping 128 B drops to 0.91× (below baseline).

use levi_bench::{header, quick_mode, table, Sweep};
use levi_workloads::hashtable::{run_hashtable, HtScale, HtVariant};

fn main() {
    header(
        "Fig. 18 — hash-table lookups (32 nodes/bucket, uniform keys)",
        "per node size: Baseline vs Leviathan vs layout ablations",
    );
    let paper: &[(u64, f64, f64, &str)] = &[
        (24, 2.0, 1.5, "w/o padding: 1.5x (paper)"),
        (64, 1.9, f64::NAN, ""),
        (128, 1.8, 0.91, "w/o LLC mapping: 0.91x (paper)"),
    ];

    // Every (node size, variant) pair is an independent simulation, so
    // the whole figure fans out as one flat sweep; results come back in
    // declaration order, which the per-size loop below relies on.
    let scale_for = |size: u64| {
        if quick_mode() {
            HtScale::test(size)
        } else {
            HtScale::paper(size)
        }
    };
    let mut jobs: Vec<(&str, (u64, HtVariant))> = Vec::new();
    for &(size, _, _, _) in paper {
        jobs.push(("base", (size, HtVariant::Baseline)));
        jobs.push(("lev", (size, HtVariant::Leviathan)));
        jobs.push(("ideal", (size, HtVariant::Ideal)));
        match size {
            24 => jobs.push(("w/o padding", (size, HtVariant::NoPadding))),
            128 => jobs.push(("w/o mapping", (size, HtVariant::NoMapping))),
            _ => {}
        }
    }
    let mut runs = Sweep::new()
        .variants(jobs)
        .run(|_, &(size, v)| run_hashtable(v, &scale_for(size)))
        .into_iter();

    let mut rows = Vec::new();
    for &(size, paper_lev, paper_ablation, _) in paper {
        let base = runs.next().unwrap().1;
        let lev = runs.next().unwrap().1;
        let ideal = runs.next().unwrap().1;
        eprintln!("  ran size {size}B base/lev/ideal");
        let ablation = match size {
            24 | 128 => runs.next(),
            _ => None,
        };
        let s = |m: &levi_workloads::RunMetrics| base.metrics.cycles as f64 / m.cycles as f64;
        let e = |m: &levi_workloads::RunMetrics| m.energy.relative_to(&base.metrics.energy);
        rows.push(vec![
            format!("{size} B"),
            format!("{:.2}x", s(&lev.metrics)),
            format!("{paper_lev:.2}x"),
            format!("{:.0}%", e(&lev.metrics) * 100.0),
            ablation
                .as_ref()
                .map_or("-".into(), |(n, r)| format!("{n}: {:.2}x", s(&r.metrics))),
            if paper_ablation.is_nan() {
                "-".into()
            } else {
                format!("{paper_ablation:.2}x")
            },
            format!("{:.2}x", s(&ideal.metrics)),
        ]);
    }
    table(
        &[
            "node",
            "Leviathan",
            "(paper)",
            "energy",
            "ablation",
            "(paper)",
            "Ideal",
        ],
        &rows,
    );
    println!();
    println!("Paper: up to 2.0x speedup, up to 77% energy savings; padding and");
    println!("LLC object mapping are both required for cross-size robustness.");
}
