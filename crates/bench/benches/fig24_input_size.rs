//! Thin wrapper: `cargo bench --bench fig24_input_size` dispatches to the `fig24_input_size`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run fig24_input_size` executes identically.

fn main() {
    levi_bench::runner::bench_main("fig24_input_size");
}
