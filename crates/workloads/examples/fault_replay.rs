//! Time-travel fault replay: checkpoint a faulted run mid-flight, then
//! restore the same snapshot under *different* fault plans and watch the
//! timelines diverge.
//!
//! The snapshot config digest deliberately excludes the fault plan, so a
//! checkpoint taken under plan A may be restored under plan B: identical
//! architectural state, different injected future. Replaying both from
//! the same cycle shows exactly when — and through which metric — the
//! fault schedule first bends the execution, which is how one separates
//! "the fault plan caused this" from "the workload was always going to
//! do this".
//!
//! Run with: `cargo run --example fault_replay [-p levi-workloads]`

use std::sync::Arc;

use levi_isa::{ActionId, Location, Memory, ProgramBuilder, Reg};
use levi_sim::{FaultPlan, Machine, MachineConfig};

const TILES: u32 = 4;
const SAMPLE_INTERVAL: u64 = 200;
const CHECKPOINT_EVERY: u64 = 8_000;

fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .retry_budget(3)
        .backoff(8, 64)
        .gen_engine_outages(24, TILES, 14_000, 300, 1_200)
}

fn config(seed: u64) -> MachineConfig {
    let mut cfg = MachineConfig::with_tiles(TILES)
        .faulted(plan(seed))
        .sampled(SAMPLE_INTERVAL)
        .checkpoint_every(CHECKPOINT_EVERY);
    cfg.prefetcher = false;
    cfg
}

/// A fig. 5-style scatter kernel: every core runs an invoke loop that
/// scatters commutative updates to remote actors through the NDC engines,
/// waiting on a future per update. Engine outage windows force NACK
/// backoff and retries, so the fault schedule shapes the timeline.
fn build(cfg: MachineConfig) -> Machine {
    let mut pb = ProgramBuilder::new();
    let action = {
        let mut f = pb.function("scatter_add");
        let (actor, amt, fut, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
        f.ld8(v, actor, 0);
        f.add(v, v, amt);
        f.st8(actor, 0, v);
        f.future_send(fut, v);
        f.halt();
        f.finish()
    };
    let invoker = {
        let mut f = pb.function("invoker");
        let (abase, fbase, n) = (Reg(0), Reg(1), Reg(2));
        let (i, amt, r) = (Reg(3), Reg(4), Reg(5));
        f.imm(i, 0).imm(amt, 7);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.invoke_future(abase, ActionId(0), &[amt, fbase], fbase, Location::Dynamic);
        f.future_wait(r, fbase);
        f.addi(abase, abase, 4096);
        f.addi(fbase, fbase, 8);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());

    let mut m = Machine::try_new(cfg).unwrap();
    m.hw.ndc.actions.register(ActionId(0), prog.clone(), action);
    for t in 0..TILES {
        let abase = 0x10_0000 + t as u64 * 0x40_000;
        let fbase = 0x50_0000 + t as u64 * 0x1000;
        for k in 0..144u64 {
            m.mem_mut().write_u64(abase + k * 4096, k);
        }
        m.spawn_thread(t, prog.clone(), invoker, &[abase, fbase, 144])
            .unwrap();
    }
    m
}

fn finish(mut m: Machine, label: &str) -> Machine {
    m.run()
        .unwrap_or_else(|e| panic!("{label} run failed: {e}"));
    m
}

fn main() {
    // The original run, under fault plan A, with periodic checkpoints.
    let original = finish(build(config(1)), "original");

    // The checkpoint period exceeds half the run, so exactly one
    // checkpoint fires — mid-run, with plenty of faulted future ahead.
    let (at, bytes) = original
        .last_checkpoint()
        .expect("checkpoint period shorter than the run");
    let bytes = bytes.to_vec();
    println!(
        "original (plan seed 1): {} cycles, {} NACK retries, checkpoint at cycle {at}",
        original.now(),
        original.stats().fault_nack_retries,
    );

    // Restore the same snapshot twice: once under the original plan, once
    // under a different seed. The digest ignores the plan, so both load.
    let same = finish(
        Machine::restore(config(1), &bytes).expect("restore under plan A"),
        "plan-A replica",
    );
    let other = finish(
        Machine::restore(config(99), &bytes).expect("restore under plan B"),
        "plan-B replica",
    );

    println!(
        "replay under plan seed  1: {} cycles, {} NACK retries (digest {})",
        same.now(),
        same.stats().fault_nack_retries,
        if (same.now(), same.stats().digest()) == (original.now(), original.stats().digest()) {
            "matches the original — same plan, same future"
        } else {
            "DIVERGED — determinism bug"
        }
    );
    println!(
        "replay under plan seed 99: {} cycles, {} NACK retries",
        other.now(),
        other.stats().fault_nack_retries,
    );

    // Walk the sampled timelines for the first interval where the two
    // futures differ. Samples up to the checkpoint ride in the snapshot,
    // so any divergence is strictly after the restore point.
    let a = same.stats().timeline.samples();
    let b = other.stats().timeline.samples();
    let diverged = a.iter().zip(b).find(|(x, y)| {
        (
            x.core_instrs,
            x.engine_instrs,
            x.noc_flit_hops,
            x.dram_accesses,
        ) != (
            y.core_instrs,
            y.engine_instrs,
            y.noc_flit_hops,
            y.dram_accesses,
        )
    });
    match diverged {
        Some((x, y)) => {
            assert!(
                x.cycle > at,
                "divergence at cycle {} must postdate the checkpoint at {at}",
                x.cycle
            );
            println!(
                "timelines diverge at cycle {} ({} cycles after the checkpoint):",
                x.cycle,
                x.cycle - at
            );
            println!(
                "  plan  1: core={:>6} engine={:>5} noc_hops={:>6} dram={:>4}",
                x.core_instrs, x.engine_instrs, x.noc_flit_hops, x.dram_accesses
            );
            println!(
                "  plan 99: core={:>6} engine={:>5} noc_hops={:>6} dram={:>4}",
                y.core_instrs, y.engine_instrs, y.noc_flit_hops, y.dram_accesses
            );
        }
        None => println!(
            "timelines identical over {} shared samples (plans agree on this window)",
            a.len().min(b.len())
        ),
    }
}
