//! Observability layer: structured tracing, latency histograms, and
//! time-series sampling on a multi-tile run that mixes task offload and
//! streaming.
//!
//! Checks the properties the tooling relies on:
//! * the Chrome/Perfetto trace JSON is well-formed and carries the
//!   invoke-lifecycle and stream events on per-tile tracks,
//! * instrumentation is purely observational — recorded cycles are
//!   identical with tracing on and off,
//! * two identical runs produce byte-identical traces, histogram buckets,
//!   and time-series samples.

use std::sync::Arc;

use levi_isa::{ActionId, Location, MemWidth, ProgramBuilder, Reg, RmwOp};
use leviathan::{StreamSpec, System, SystemConfig};

/// Builds and runs a 4-tile system: 50 remote invokes on a counter actor
/// plus a 64-entry stream of which the main thread consumes 20.
fn run_mixed(trace: bool, sample_interval: u64) -> System {
    let mut pb = ProgramBuilder::new();

    let add_action = {
        let mut f = pb.function("add_action");
        let (actor, amt, old) = (Reg(0), Reg(1), Reg(2));
        f.rmw_relaxed(RmwOp::Add, old, actor, amt, MemWidth::B8);
        f.halt();
        f.finish()
    };

    let producer = {
        let mut f = pb.function("producer");
        let (handle, n, i) = (Reg(0), Reg(1), Reg(2));
        f.imm(i, 1);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.push(handle, i);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };

    let main_fn = {
        let mut f = pb.function("main");
        // r0=ctx {counter, stream_buffer, cap, out, stream_id}
        let ctx = Reg(0);
        let (counter, sbuf, cap, out, sid) = (Reg(8), Reg(9), Reg(10), Reg(11), Reg(12));
        let (i, n, amt, addr, v, acc) = (Reg(16), Reg(17), Reg(18), Reg(19), Reg(20), Reg(21));
        f.ld8(counter, ctx, 0)
            .ld8(sbuf, ctx, 8)
            .ld8(cap, ctx, 16)
            .ld8(out, ctx, 24)
            .ld8(sid, ctx, 32);
        // 50 offloaded increments scattered over 8 line-strided counters,
        // so the invokes fan out across LLC banks (and tiles).
        f.imm(i, 0).imm(n, 50).imm(amt, 1);
        let t1 = f.label();
        let d1 = f.label();
        f.bind(t1);
        f.bge_u(i, n, d1);
        f.andi(addr, i, 7);
        f.muli(addr, addr, 64);
        f.add(addr, addr, counter);
        f.invoke(addr, ActionId(0), &[amt], Location::Remote);
        f.addi(i, i, 1);
        f.jmp(t1);
        f.bind(d1);
        // Consume 20 stream entries.
        f.imm(i, 0).imm(n, 20).imm(acc, 0);
        let t2 = f.label();
        let d2 = f.label();
        let nowrap = f.label();
        f.mov(addr, sbuf);
        f.muli(cap, cap, 8);
        f.add(cap, cap, sbuf);
        f.bind(t2);
        f.bge_u(i, n, d2);
        f.ld8(v, addr, 0);
        f.pop(sid);
        f.add(acc, acc, v);
        f.addi(addr, addr, 8);
        f.blt_u(addr, cap, nowrap);
        f.mov(addr, sbuf);
        f.bind(nowrap);
        f.addi(i, i, 1);
        f.jmp(t2);
        f.bind(d2);
        f.st8(out, 0, acc);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().expect("program validates"));

    let mut cfg = SystemConfig::small();
    if trace {
        cfg.machine = cfg.machine.traced();
    }
    if sample_interval != 0 {
        cfg.machine = cfg.machine.sampled(sample_interval);
    }
    let mut sys = System::try_new(cfg).expect("config is valid");
    let a = sys.register_action(&prog, add_action);
    assert_eq!(a, ActionId(0));

    let counter = sys.alloc_raw(8 * 64, 64);
    let stream = sys
        .create_stream(&StreamSpec::new("nums", 8, 0, &prog, producer).with_args(&[64]))
        .unwrap();
    let out = sys.alloc_raw(8, 64);
    let ctx = sys.alloc_raw(40, 64);
    sys.write_u64(ctx, counter);
    sys.write_u64(ctx + 8, stream.buffer);
    sys.write_u64(ctx + 16, stream.capacity);
    sys.write_u64(ctx + 24, out);
    sys.write_u64(ctx + 32, stream.reg_value());
    sys.spawn_thread(0, &prog, main_fn, &[ctx]).unwrap();
    sys.run().expect("run completes");

    let total: u64 = (0..8).map(|k| sys.read_u64(counter + 64 * k)).sum();
    assert_eq!(total, 50);
    assert_eq!(sys.read_u64(out), (1..=20u64).sum());
    sys
}

#[test]
fn trace_json_is_perfetto_loadable_with_lifecycle_events() {
    let sys = run_mixed(true, 0);
    let json = sys.stats().trace.to_chrome_json();

    // Structurally valid JSON object (hand-rolled writer, so check the
    // balance invariants Perfetto's parser depends on).
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("\"displayTimeUnit\""));

    // Invoke lifecycle + stream events made it into the buffer.
    for name in [
        "invoke.issue",
        "task.dispatch",
        "task.retire",
        "stream.push",
        "stream.pop",
    ] {
        assert!(
            json.contains(&format!("\"name\":\"{name}\"")),
            "missing {name} events in trace"
        );
    }

    // Per-tile tracks: metadata names at least tile0 (main thread) and the
    // tiles the invokes were scattered across.
    assert!(json.contains("\"process_name\""));
    assert!(json.contains("\"tile0\""));
    assert!(json.contains("\"tile1\""));
    assert!(json.contains("\"engine.llc\"") || json.contains("\"engine.l2\""));
}

#[test]
fn tracing_does_not_perturb_timing() {
    let traced = run_mixed(true, 0);
    let plain = run_mixed(false, 0);
    assert_eq!(traced.stats().cycles, plain.stats().cycles);
    assert_eq!(traced.stats().invokes, plain.stats().invokes);
    assert_eq!(traced.stats().noc_flit_hops, plain.stats().noc_flit_hops);
    assert!(plain.stats().trace.is_empty(), "tracing is opt-in");
    assert!(!traced.stats().trace.is_empty());
}

#[test]
fn histograms_capture_invoke_rtt_and_stream_stall() {
    let sys = run_mixed(false, 0);
    let s = sys.stats();
    assert_eq!(s.invoke_rtt.count(), 50, "one RTT sample per ACKed invoke");
    assert!(s.invoke_rtt.p50() <= s.invoke_rtt.p90());
    assert!(s.invoke_rtt.p90() <= s.invoke_rtt.p99());
    assert!(s.invoke_rtt.p99() <= s.invoke_rtt.max());
    assert!(s.invoke_rtt.max() > 0, "cross-tile invokes take > 0 cycles");
    assert!(
        s.load_to_use.count() > 0,
        "loads record load-to-use latency"
    );
    // Histograms render in the human-readable stats dump.
    let dump = format!("{s}");
    assert!(dump.contains("invoke RTT:"));
}

#[test]
fn time_series_sampler_records_interval_deltas() {
    let sys = run_mixed(false, 128);
    let s = sys.stats();
    let samples = s.timeline.samples();
    assert!(
        samples.len() >= 2,
        "expected multiple samples, got {}",
        samples.len()
    );
    let mut prev = 0;
    let mut instrs: u64 = 0;
    for smp in samples {
        assert!(smp.cycle > prev, "sample cycles strictly increase");
        prev = smp.cycle;
        assert!(smp.ipc >= 0.0);
        assert!(smp.l1_miss_ratio >= 0.0 && smp.l1_miss_ratio <= 1.0);
        instrs += smp.core_instrs;
    }
    // Interval deltas sum to (at most) the cumulative total — the tail
    // after the last sample boundary is not sampled.
    assert!(instrs <= s.core_instrs);
    assert!(instrs > 0, "the run executed instructions while sampling");
}

#[test]
fn identical_runs_are_byte_identical() {
    let a = run_mixed(true, 64);
    let b = run_mixed(true, 64);
    assert_eq!(
        a.stats().trace.to_chrome_json(),
        b.stats().trace.to_chrome_json(),
        "trace JSON must be byte-identical across identical runs"
    );
    assert_eq!(a.stats().invoke_rtt, b.stats().invoke_rtt);
    assert_eq!(a.stats().load_to_use, b.stats().load_to_use);
    assert_eq!(a.stats().dram_queue, b.stats().dram_queue);
    assert_eq!(a.stats().stream_stall, b.stats().stream_stall);
    assert_eq!(a.stats().timeline.samples(), b.stats().timeline.samples());
}
