//! Thin wrapper: `cargo bench --bench fig05_phi` dispatches to the `fig05_phi`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run fig05_phi` executes identically.

fn main() {
    levi_bench::runner::bench_main("fig05_phi");
}
