//! Shared reporting utilities for the benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper's
//! evaluation and prints the measured values next to the paper's reported
//! numbers. We reproduce *shape* — who wins, by roughly what factor,
//! where crossovers fall — not absolute cycle counts (the substrate is a
//! from-scratch simulator, not the authors' testbed). See EXPERIMENTS.md
//! for the recorded comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use levi_workloads::metrics::RunMetrics;

/// True when `LEVI_BENCH_QUICK` is set: benches drop to reduced scales
/// (useful for smoke-testing the harness).
pub fn quick_mode() -> bool {
    std::env::var("LEVI_BENCH_QUICK").is_ok()
}

/// Prints a figure/table header.
pub fn header(title: &str, description: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("{description}");
    println!("==================================================================");
}

/// One measured variant row against the baseline, with the paper's numbers.
pub struct Row<'a> {
    /// Variant label.
    pub label: &'a str,
    /// Measured metrics.
    pub metrics: &'a RunMetrics,
    /// The paper's speedup for this bar (None if not reported).
    pub paper_speedup: Option<f64>,
    /// The paper's relative energy (1.0 = baseline) if reported.
    pub paper_energy: Option<f64>,
}

/// Prints a speedup/energy comparison table. `rows\[0\]` is the baseline.
pub fn speedup_table(rows: &[Row<'_>]) {
    let base = rows[0].metrics;
    println!(
        "{:<22} {:>12} {:>9} {:>9} {:>10} {:>10}",
        "variant", "cycles", "speedup", "(paper)", "energy", "(paper)"
    );
    for r in rows {
        let speedup = base.cycles as f64 / r.metrics.cycles as f64;
        let energy = r.metrics.energy.relative_to(&base.energy);
        println!(
            "{:<22} {:>12} {:>8.2}x {:>9} {:>9.0}% {:>10}",
            r.label,
            r.metrics.cycles,
            speedup,
            r.paper_speedup
                .map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
            energy * 100.0,
            r.paper_energy
                .map_or_else(|| "-".into(), |e| format!("{:.0}%", e * 100.0)),
        );
    }
}

/// Prints a generic column table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pct_formats() {
        assert_eq!(super::pct(0.064), "6.4%");
    }
}
