//! Thin wrapper: `cargo bench --bench ablation_phi_policy` dispatches to the `ablation_phi_policy`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run ablation_phi_policy` executes identically.

fn main() {
    levi_bench::runner::bench_main("ablation_phi_policy");
}
