//! Differential validation of the unified experiment harness: for every
//! registered workload × variant at test scale, the timed-simulator
//! checksum must equal the synchronous-host golden model's. This extends
//! the ad-hoc spot checks the bench binaries used to carry into one
//! uniform, registry-driven sweep — a new workload gets this coverage by
//! appearing in [`levi_workloads::harness::REGISTRY`], nothing else.

use levi_workloads::harness::{find_workload, RunEnv, RunStatus, ScaleKind};

/// Runs every variant of `name` at test scale and checks it against the
/// golden model. Returns how many variants actually ran.
fn check(name: &str) -> usize {
    let w = find_workload(name).unwrap_or_else(|| panic!("workload {name} not registered"));
    let prepared = w.prepare(ScaleKind::Test);
    let env = RunEnv::default();
    let mut ran = 0;
    for label in w.variant_labels() {
        match prepared.run(label, &env) {
            RunStatus::Done(outcome) => {
                assert_eq!(
                    outcome.checksum,
                    prepared.golden(label),
                    "{name}/{label} diverged from the golden model"
                );
                assert!(outcome.metrics.cycles > 0, "{name}/{label} ran no cycles");
                ran += 1;
            }
            RunStatus::Unsupported(reason) => {
                assert!(
                    !reason.is_empty(),
                    "{name}/{label} must explain why it is unsupported"
                );
            }
        }
    }
    ran
}

#[test]
fn phi_matches_golden_across_variants() {
    assert_eq!(check("phi"), 5);
}

#[test]
fn decompress_matches_golden_across_variants() {
    // NoPadding is unsupported (6 B objects straddle lines), as in the paper.
    assert_eq!(check("decompress"), 4);
}

#[test]
fn hashtable_matches_golden_across_variants() {
    assert_eq!(check("hashtable"), 6);
}

#[test]
fn hats_matches_golden_across_variants() {
    assert_eq!(check("hats"), 5);
}

#[test]
fn micro_matches_golden_across_variants() {
    assert_eq!(check("micro"), 3);
}

/// The periodic checkpoint hook must be purely observational: for every
/// registered workload × variant, a run with `checkpoint_every` armed
/// (and each run's last checkpoint replay-verified against the original)
/// produces the same cycles, checksum, and stats digest as the plain run.
fn check_checkpointed(name: &str) {
    let w = find_workload(name).unwrap_or_else(|| panic!("workload {name} not registered"));
    let prepared = w.prepare(ScaleKind::Test);
    let plain = RunEnv::default();
    let hooked = RunEnv {
        checkpoint_every: 5_000,
        snapshot_verify: true,
        ..RunEnv::default()
    };
    for label in w.variant_labels() {
        let (a, b) = (prepared.run(label, &plain), prepared.run(label, &hooked));
        match (a, b) {
            (RunStatus::Done(plain), RunStatus::Done(hooked)) => {
                assert_eq!(
                    (
                        plain.metrics.cycles,
                        plain.checksum,
                        plain.metrics.stats.digest()
                    ),
                    (
                        hooked.metrics.cycles,
                        hooked.checksum,
                        hooked.metrics.stats.digest()
                    ),
                    "{name}/{label}: the checkpoint hook perturbed the run"
                );
            }
            (RunStatus::Unsupported(_), RunStatus::Unsupported(_)) => {}
            _ => panic!("{name}/{label}: support status changed under the checkpoint hook"),
        }
    }
}

#[test]
fn checkpoint_hook_is_observational_for_every_workload() {
    for name in ["phi", "decompress", "hashtable", "hats", "micro"] {
        check_checkpointed(name);
    }
}

/// With translation and tenancy disabled (the default), the xlat
/// subsystem must be invisible: for every registered workload × variant,
/// a run through an env that carries the (disabled) xlat/tenant knobs is
/// byte-identical — cycles, checksum, stats digest — to the plain run,
/// and none of the new counters ever fire. This is the zero-cost
/// disabled-path guarantee (DESIGN.md §11) pinned registry-wide.
fn check_xlat_disabled(name: &str) {
    let w = find_workload(name).unwrap_or_else(|| panic!("workload {name} not registered"));
    let prepared = w.prepare(ScaleKind::Test);
    let plain = RunEnv::default();
    let disabled = RunEnv {
        xlat: None,
        tenants: None,
        ..RunEnv::default()
    };
    for label in w.variant_labels() {
        let (a, b) = (prepared.run(label, &plain), prepared.run(label, &disabled));
        match (a, b) {
            (RunStatus::Done(plain), RunStatus::Done(disabled)) => {
                assert_eq!(
                    (
                        plain.metrics.cycles,
                        plain.checksum,
                        plain.metrics.stats.digest()
                    ),
                    (
                        disabled.metrics.cycles,
                        disabled.checksum,
                        disabled.metrics.stats.digest()
                    ),
                    "{name}/{label}: disabled xlat/tenancy perturbed the run"
                );
                let s = &plain.metrics.stats;
                assert_eq!(
                    s.tlb_hits + s.tlb_misses + s.tlb_walk_cycles + s.tenant_quota_nacks,
                    0,
                    "{name}/{label}: translation counters fired while disabled"
                );
                assert_eq!(
                    s.xlat_walk.count(),
                    0,
                    "{name}/{label}: walk histogram fired"
                );
                assert!(
                    s.tenant_llc_misses.is_empty()
                        && s.tenant_invokes.is_empty()
                        && s.tenant_finish.is_empty(),
                    "{name}/{label}: tenant attribution allocated while disabled"
                );
            }
            (RunStatus::Unsupported(_), RunStatus::Unsupported(_)) => {}
            _ => panic!("{name}/{label}: support status changed under disabled xlat"),
        }
    }
}

#[test]
fn disabled_xlat_is_invisible_for_every_workload() {
    for name in ["phi", "decompress", "hashtable", "hats", "micro"] {
        check_xlat_disabled(name);
    }
}
