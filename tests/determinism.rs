//! Determinism: the simulator is a pure function of its inputs. Identical
//! seeds and configurations must produce bit-identical cycle counts and
//! statistics across runs — a property every experiment in the paper's
//! reproduction relies on.

use levi_workloads::decompress::{run_decompress, DecompressScale, DecompressVariant};
use levi_workloads::gen::Graph;
use levi_workloads::hashtable::{run_hashtable, HtScale, HtVariant};
use levi_workloads::hats::{run_hats_on, HatsScale, HatsVariant};
use levi_workloads::phi::{phi_graph, run_phi_on, PhiScale, PhiVariant};

#[test]
fn phi_is_deterministic() {
    let scale = PhiScale::test();
    let graph = phi_graph(&scale);
    let a = run_phi_on(PhiVariant::Leviathan, &scale, &graph);
    let b = run_phi_on(PhiVariant::Leviathan, &scale, &graph);
    assert_eq!(a.metrics.cycles, b.metrics.cycles);
    assert_eq!(a.rank_checksum, b.rank_checksum);
    assert_eq!(a.metrics.stats.dram_accesses, b.metrics.stats.dram_accesses);
    assert_eq!(a.metrics.stats.noc_flit_hops, b.metrics.stats.noc_flit_hops);
}

#[test]
fn hats_is_deterministic() {
    let mut scale = HatsScale::test();
    scale.vertices = 2048;
    let graph = Graph::community(
        scale.vertices,
        scale.avg_degree,
        scale.community,
        scale.intra_pct,
        scale.seed,
    );
    let a = run_hats_on(HatsVariant::Leviathan, &scale, &graph);
    let b = run_hats_on(HatsVariant::Leviathan, &scale, &graph);
    assert_eq!(a.metrics.cycles, b.metrics.cycles);
    assert_eq!(a.metrics.stats.stream_pushes, b.metrics.stats.stream_pushes);
}

#[test]
fn hashtable_is_deterministic() {
    let scale = HtScale::test(64);
    let a = run_hashtable(HtVariant::Leviathan, &scale);
    let b = run_hashtable(HtVariant::Leviathan, &scale);
    assert_eq!(a.metrics.cycles, b.metrics.cycles);
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn decompress_is_deterministic() {
    let scale = DecompressScale::test();
    let a = run_decompress(DecompressVariant::Leviathan, &scale).unwrap();
    let b = run_decompress(DecompressVariant::Leviathan, &scale).unwrap();
    assert_eq!(a.metrics.cycles, b.metrics.cycles);
    assert_eq!(a.access_sum, b.access_sum);
}

#[test]
fn different_seeds_differ() {
    let mut s1 = PhiScale::test();
    s1.vertices = 1024;
    let mut s2 = s1.clone();
    s2.seed ^= 0xFFFF;
    let a = run_phi_on(PhiVariant::Baseline, &s1, &phi_graph(&s1));
    let b = run_phi_on(PhiVariant::Baseline, &s2, &phi_graph(&s2));
    assert_ne!(
        a.rank_checksum, b.rank_checksum,
        "different graphs must differ"
    );
}
