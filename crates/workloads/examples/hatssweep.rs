// Probe stream-buffer sensitivity at bench scale (Fig. 23 shape check).
use levi_workloads::gen::Graph;
use levi_workloads::hats::*;

fn main() {
    let scale0 = HatsScale::paper();
    let graph = Graph::community(
        scale0.vertices,
        scale0.avg_degree,
        scale0.community,
        scale0.intra_pct,
        scale0.seed,
    );
    for cap in [8u64, 32, 128] {
        let mut scale = scale0.clone();
        scale.stream_capacity = cap;
        let r = run_hats_on(HatsVariant::Leviathan, &scale, &graph);
        println!(
            "cap={cap:>4}: {} cycles, stalls {}",
            r.metrics.cycles, r.metrics.stats.stream_stall_cycles
        );
    }
}
