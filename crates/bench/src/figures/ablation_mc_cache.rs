//! Ablation — the memory-controller FIFO line cache (DESIGN.md §4).
//!
//! Leviathan stores objects compacted in DRAM, so consecutive cache lines
//! often map into one DRAM line; the small per-controller FIFO cache
//! absorbs the repeats (paper Sec. VI-A3: "can reduce DRAM accesses by up
//! to ≈3x"). Measured on the 24 B-node hash table, whose nodes are padded
//! 32 B in cache and packed 24 B in DRAM.

use levi_workloads::hashtable::{run_hashtable_with, HtScale, HtVariant};

use crate::runner::{Figure, RunCtx};
use crate::{header, table_report, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "ablation_mc_cache",
    about: "memory-controller FIFO cache ablation for compacted DRAM",
    workloads: &["hashtable"],
    run,
};

fn run(ctx: &RunCtx) {
    header(
        "Ablation — memory-controller FIFO cache for compacted DRAM",
        "paper: the 32-entry FIFO cache absorbs split-line refetches (up to ~3x)",
    );
    let mut scale = if ctx.quick {
        HtScale::test(24)
    } else {
        HtScale::paper(24)
    };
    // Grow the table past the LLC so lookups actually reach DRAM.
    scale = scale.with_table_bytes(if ctx.quick { 2 << 20 } else { 32 << 20 });

    let jobs: &[(&str, u32)] = &[("with FIFO cache (32)", 32), ("without FIFO cache", 0)];
    let env = &ctx.env;
    let scale_ref = &scale;
    // The FIFO size needs a config override, threaded through the machine
    // config via the workload's `customize` hook — composed with the run
    // environment so fault plans apply here too.
    let results = Sweep::new()
        .variants(jobs.iter().map(|&(name, lines)| (name, lines)))
        .run(|_, &fifo_lines| {
            run_hashtable_with(HtVariant::Leviathan, scale_ref, |cfg| {
                cfg.machine.mem.fifo_cache_lines = fifo_lines;
                env.customize(cfg);
            })
        });
    let mut rows = Vec::new();
    for (name, r) in &results {
        crate::progressln!("  ran {name}");
        rows.push(vec![
            name.to_string(),
            r.metrics.cycles.to_string(),
            r.metrics.stats.dram_accesses.to_string(),
            r.metrics.stats.mc_cache_hits.to_string(),
        ]);
    }
    table_report(
        "ablation_mc_cache",
        &["config", "cycles", "DRAM accesses", "FIFO hits"],
        &rows,
    );
    crate::outln!();
    crate::outln!("DRAM accesses avoided = FIFO hits; disabling the cache converts");
    crate::outln!("them back into DRAM traffic on the compacted node array.");
}
