//! Failure-injection and edge-case tests for the machine: backpressure
//! storms, context exhaustion, stream termination, flush-while-dirty, and
//! deadlock reporting.

use std::sync::Arc;

use levi_isa::{ActionId, Location, Memory, ProgramBuilder, Reg};
use levi_sim::ndc::{MorphLevel, MorphRegion};
use levi_sim::{EngineId, EngineLevel, Machine, MachineConfig, RunError, StreamMode};

fn small_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::with_tiles(4);
    cfg.prefetcher = false;
    cfg
}

/// Fire-and-forget invoke storms from every core must complete with
/// buffer backpressure and context NACKs, not deadlock or lose tasks.
#[test]
fn invoke_storm_all_cores_one_engine() {
    let mut pb = ProgramBuilder::new();
    let action = {
        let mut f = pb.function("slow_add");
        let (actor, amt, v, i, n) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
        // Busy work, then one relaxed add.
        f.imm(i, 0).imm(n, 30);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.rmw_relaxed(levi_isa::RmwOp::Add, v, actor, amt, levi_isa::MemWidth::B8);
        f.halt();
        f.finish()
    };
    let main = {
        let mut f = pb.function("main");
        let (actor, amt, i, n) = (Reg(0), Reg(1), Reg(2), Reg(3));
        f.imm(amt, 1).imm(i, 0).imm(n, 200);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        // All cores target the SAME actor => same engine.
        f.invoke(actor, ActionId(0), &[amt], Location::Remote);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());
    let mut cfg = small_cfg();
    cfg.core.invoke_buffer = 2;
    let mut m = Machine::try_new(cfg).unwrap();
    let counter = 0x5000u64;
    m.hw.ndc.actions.register(ActionId(0), prog.clone(), action);
    for t in 0..4 {
        m.spawn_thread(t, prog.clone(), main, &[counter]).unwrap();
    }
    m.run().expect("storm must complete");
    assert_eq!(m.mem().read_u64(counter), 4 * 200, "no task lost");
    assert!(m.stats().invoke_nacks > 0, "context NACKs expected");
}

/// A consumer popping exactly as many entries as the producer pushes
/// terminates cleanly even when the producer halts first.
#[test]
fn stream_producer_halts_before_consumer_finishes() {
    let mut pb = ProgramBuilder::new();
    let producer = {
        let mut f = pb.function("gen3");
        let (h, v) = (Reg(0), Reg(1));
        f.imm(v, 11).push(h, v);
        f.imm(v, 22).push(h, v);
        f.imm(v, 33).push(h, v);
        f.halt();
        f.finish()
    };
    let consumer = {
        let mut f = pb.function("eat3");
        let (h, buf, acc, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
        f.imm(acc, 0);
        for k in 0..3 {
            f.ld8(v, buf, 8 * k);
            f.pop(h);
            f.add(acc, acc, v);
        }
        f.st8(buf, 64, acc); // result one line after the ring
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());
    let mut m = Machine::try_new(small_cfg()).unwrap();
    let buf = 0x8000u64;
    let eng = EngineId {
        tile: 0,
        level: EngineLevel::Llc,
    };
    let sid = m
        .create_stream(buf, 8, 8, eng, 0, StreamMode::RunAhead)
        .unwrap();
    m.hw.ndc.register_morph(MorphRegion {
        base: buf,
        bound: buf + 64,
        level: MorphLevel::L2,
        obj_size: 8,
        ctor: None,
        dtor: None,
        view: 0,
        stream: Some(sid),
    });
    m.spawn_engine_task(eng, prog.clone(), producer, &[sid.0 as u64], Some(sid));
    m.spawn_thread(0, prog, consumer, &[sid.0 as u64, buf])
        .unwrap();
    m.run().unwrap();
    assert_eq!(m.mem().read_u64(buf + 64), 66);
}

/// A consumer waiting on a stream whose producer never produces is
/// reported as a deadlock, naming the condition.
#[test]
fn starved_consumer_reports_deadlock() {
    let mut pb = ProgramBuilder::new();
    let producer = {
        let mut f = pb.function("lazy");
        f.halt(); // closes the stream immediately
        f.finish()
    };
    let consumer = {
        let mut f = pb.function("hungry");
        let (h, buf, v) = (Reg(0), Reg(1), Reg(2));
        f.ld8(v, buf, 0);
        f.pop(h);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());
    let mut m = Machine::try_new(small_cfg()).unwrap();
    let buf = 0x9000u64;
    let eng = EngineId {
        tile: 1,
        level: EngineLevel::Llc,
    };
    let sid = m
        .create_stream(buf, 8, 8, eng, 1, StreamMode::RunAhead)
        .unwrap();
    m.hw.ndc.register_morph(MorphRegion {
        base: buf,
        bound: buf + 64,
        level: MorphLevel::L2,
        obj_size: 8,
        ctor: None,
        dtor: None,
        view: 0,
        stream: Some(sid),
    });
    m.spawn_engine_task(eng, prog.clone(), producer, &[sid.0 as u64], Some(sid));
    m.spawn_thread(1, prog, consumer, &[sid.0 as u64, buf])
        .unwrap();
    // Producer halts => stream closes => consumer proceeds reading zeros
    // (closed streams do not stall). The pop past the tail is a program
    // bug; with debug assertions this panics, in release it is benign.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.run()));
    match result {
        Ok(Ok(_)) => {}
        Ok(Err(RunError::Deadlock(_))) => {}
        Ok(Err(e)) => panic!("unexpected run error: {e}"),
        Err(_) => {} // debug_assert tripped on pop-past-tail: acceptable
    }
}

/// Flushing a dirty Morph range runs destructors exactly once per
/// resident object and leaves the caches empty of the range.
#[test]
fn flush_is_exactly_once() {
    let mut pb = ProgramBuilder::new();
    // dtor increments a counter in the view.
    let dtor = {
        let mut f = pb.function("count_dtor");
        let (_obj, view, c) = (Reg(0), Reg(1), Reg(3));
        f.ld8(c, view, 0);
        f.addi(c, c, 1);
        f.st8(view, 0, c);
        f.halt();
        f.finish()
    };
    let writer = {
        let mut f = pb.function("writer");
        let (base, v) = (Reg(0), Reg(1));
        f.imm(v, 7);
        for k in 0..16 {
            f.st8(base, 8 * k, v); // touches 2 lines of phantom objects
        }
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());
    let mut m = Machine::try_new(small_cfg()).unwrap();
    let dtor_id = ActionId(0);
    m.hw.ndc.actions.register(dtor_id, prog.clone(), dtor);
    let view = 0xA000u64;
    let base = 0x20_0000u64;
    m.hw.ndc.register_morph(MorphRegion {
        base,
        bound: base + 4096,
        level: MorphLevel::Llc,
        obj_size: 8,
        ctor: None,
        dtor: Some(dtor_id),
        view,
        stream: None,
    });
    m.spawn_thread(0, prog, writer, &[base]).unwrap();
    m.run().unwrap();
    let before = m.mem().read_u64(view);
    m.flush_morph_range(base, 4096);
    let after = m.mem().read_u64(view);
    // 16 stores cover 2 lines = 16 objects; dtors may also have run for
    // earlier natural evictions (none expected here).
    assert_eq!(after - before, 16, "one dtor per resident object");
    // Second flush: nothing resident, no more dtors.
    m.flush_morph_range(base, 4096);
    assert_eq!(m.mem().read_u64(view), after, "flush is idempotent");
}

/// Engine task spawned on every engine level and tile completes.
#[test]
fn long_lived_tasks_on_every_engine() {
    let mut pb = ProgramBuilder::new();
    let worker = {
        let mut f = pb.function("mark");
        let (slot, v) = (Reg(0), Reg(1));
        f.imm(v, 1);
        f.st8(slot, 0, v);
        f.halt();
        f.finish()
    };
    let idle = {
        let mut f = pb.function("idle");
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());
    let mut m = Machine::try_new(small_cfg()).unwrap();
    let marks = 0xB000u64;
    let mut k = 0u64;
    for tile in 0..4 {
        for level in [EngineLevel::L2, EngineLevel::Llc] {
            m.spawn_engine_task(
                EngineId { tile, level },
                prog.clone(),
                worker,
                &[marks + 8 * k],
                None,
            );
            k += 1;
        }
    }
    m.spawn_thread(0, prog, idle, &[]).unwrap();
    m.run().unwrap();
    for i in 0..k {
        assert_eq!(m.mem().read_u64(marks + 8 * i), 1, "engine task {i} ran");
    }
}
