//! The machine: execution contexts (core threads and engine tasks), the
//! run loop, and the timed NDC host.
//!
//! Execution is *functional-first*: each context interprets its LevIR
//! program in order via [`levi_isa::exec::step`], while a scoreboard
//! (per-register ready cycles) and the synchronous memory-system walk in
//! [`crate::hw`] compute timing. Contexts run ahead of the global clock by
//! at most a configurable quantum, then yield; blocking operations
//! (futures, stream push/pop, invoke backpressure) park a context until a
//! wake condition fires. The result is a deterministic, fast,
//! cycle-approximate simulation that models exactly the effects the
//! paper's evaluation measures: locality, coherence ping-pong, NoC
//! traffic, fences, MLP, branch mispredictions, and DRAM bandwidth.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use levi_isa::interp::future_layout;
use levi_isa::{
    exec, Addr, Control, ExecCtx, FuncId, Inst, InstClass, Location, MemOrder, Memory, NdcHost,
    NdcRequest, PagedMem, Poll, Program, NUM_REGS,
};

use crate::branch::Gshare;
use crate::config::MachineConfig;
use crate::energy::{self, EnergyBreakdown};
use crate::engine::{EngineId, EngineLevel, FuCursor};
use crate::error::SimError;
use crate::hw::{AccessKind, Hw, Walk, CTRL_MSG};
use crate::ndc::{StreamId, StreamMode, WaitCond};
use crate::stats::Stats;
use crate::trace::{TraceCategory, TraceEvent, Track};

/// Identifies an execution context (a core thread or an engine task).
pub type ActorId = u32;

/// What kind of context an actor is.
#[derive(Clone, Debug)]
enum ActorKind {
    /// A software thread pinned to a core.
    CoreThread { core: u32 },
    /// An offloaded task or long-lived action on an engine.
    EngineTask {
        engine: EngineId,
        /// Whether a task context was reserved (released on halt).
        reserved_ctx: bool,
        /// The producer side of this stream, if this is a `genStream` task.
        stream: Option<StreamId>,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ActorState {
    Runnable,
    Parked(WaitCond),
    Done,
}

struct Actor {
    kind: ActorKind,
    prog: Arc<Program>,
    ctx: ExecCtx,
    /// Local clock: the cycle of the last issued instruction.
    clock: u64,
    reg_ready: [u64; NUM_REGS],
    /// Completion times of outstanding memory accesses (for MSHR limits
    /// and fences).
    pending_mem: Vec<u64>,
    /// Core issue-width cursor (cores only).
    issue: FuCursor,
    /// Branch predictor (cores only).
    predictor: Option<Gshare>,
    /// In-flight invoke ACK times (cores' invoke buffer).
    invoke_acks: VecDeque<u64>,
    /// Deterministic counter for the 1/32 DYNAMIC migrate-local policy.
    invoke_count: u32,
    /// Consecutive fault-induced NACK retries on the current invoke
    /// (reset on a successful issue or a core fallback).
    invoke_retries: u32,
    state: ActorState,
    sched_seq: u64,
    /// Cycle at which the current park began (for stall accounting).
    parked_at: u64,
}

/// Result of [`Machine::run`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Absolute cycle count when every core thread had halted.
    pub cycles: u64,
}

/// The unit a parked actor belongs to (deadlock diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParkOwner {
    /// A software thread on the given core.
    Core(u32),
    /// A task on the given engine.
    Engine(EngineId),
}

impl fmt::Display for ParkOwner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParkOwner::Core(c) => write!(f, "core {c}"),
            ParkOwner::Engine(e) => write!(f, "{e}"),
        }
    }
}

/// One actor found parked when the run queue drained (deadlock
/// diagnostics): what it waits on, where it lives, and for how long it has
/// been stuck.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParkedActor {
    /// The parked actor.
    pub actor: ActorId,
    /// The condition it is waiting on.
    pub cond: WaitCond,
    /// The core or engine the actor runs on.
    pub owner: ParkOwner,
    /// Cycle the park began.
    pub parked_at: u64,
    /// Cycles parked when the deadlock was detected.
    pub parked_for: u64,
}

impl fmt::Display for ParkedActor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "actor {} on {}: waiting on {}, parked {} cycles (since cycle {})",
            self.actor, self.owner, self.cond, self.parked_for, self.parked_at
        )
    }
}

/// Errors from [`Machine::run`].
#[derive(Clone, Debug)]
pub enum RunError {
    /// The run queue drained while core threads were still parked — a
    /// deadlock. Reports every parked actor (cores first by id, then any
    /// parked engine tasks for context).
    Deadlock(Vec<ParkedActor>),
    /// The watchdog fired: the simulated clock passed
    /// [`MachineConfig::max_cycles`](crate::MachineConfig::max_cycles)
    /// without the run completing.
    Watchdog {
        /// The configured limit.
        limit: u64,
        /// The clock value that tripped it.
        at: u64,
    },
    /// A typed simulator error surfaced mid-run (e.g. a program invoked an
    /// unregistered action).
    Fault(SimError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock(v) => {
                let cores = v
                    .iter()
                    .filter(|p| matches!(p.owner, ParkOwner::Core(_)))
                    .count();
                write!(f, "deadlock: {cores} core context(s) parked")?;
                for p in v {
                    write!(f, "\n  {p}")?;
                }
                Ok(())
            }
            RunError::Watchdog { limit, at } => write!(
                f,
                "watchdog: simulated clock reached cycle {at} without completing (limit {limit})"
            ),
            RunError::Fault(e) => write!(f, "simulation fault: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// A request (from the NDC host) to create an engine task — or, for
/// fault-degraded invokes past the retry budget, a core-fallback thread.
struct SpawnReq {
    engine: EngineId,
    func: FuncId,
    prog: Arc<Program>,
    args: Vec<u64>,
    start: u64,
    /// When set, spawn as a software handler thread on this core instead
    /// of as an engine task (fault fallback).
    fallback_core: Option<u32>,
}

/// The simulated machine.
pub struct Machine {
    /// All hardware state (caches, NoC, DRAM, engines, NDC tables, stats).
    pub hw: Hw,
    mem: PagedMem,
    actors: Vec<Actor>,
    runq: BinaryHeap<Reverse<(u64, u64, ActorId)>>,
    seq: u64,
    now: u64,
    waiters: HashMap<WaitCond, Vec<ActorId>>,
    live_core_threads: u32,
    traces: Vec<u64>,
    /// Recycled actor slots (finished engine tasks); bounds memory when a
    /// workload offloads millions of short tasks.
    free_slots: Vec<ActorId>,
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`MachineConfig::validate`]); use [`Machine::try_new`] for the
    /// fallible path.
    pub fn new(cfg: MachineConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a machine, returning a typed error on an invalid
    /// configuration.
    pub fn try_new(mut cfg: MachineConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        if cfg.engine.idealized {
            // Idealized engines are energy-free (paper Sec. VII).
            cfg.energy.engine_inst_pj = 0.0;
        }
        Ok(Machine {
            hw: Hw::new(cfg),
            mem: PagedMem::new(),
            actors: Vec::new(),
            runq: BinaryHeap::new(),
            seq: 0,
            now: 0,
            waiters: HashMap::new(),
            live_core_threads: 0,
            traces: Vec::new(),
            free_slots: Vec::new(),
        })
    }

    /// Installs `actor` into a recycled slot or appends a new one.
    fn install_actor(&mut self, actor: Actor) -> ActorId {
        match self.free_slots.pop() {
            Some(aid) => {
                self.actors[aid as usize] = actor;
                aid
            }
            None => {
                let aid = self.actors.len() as ActorId;
                self.actors.push(actor);
                aid
            }
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.hw.cfg
    }

    /// Functional memory (for workload setup and result checking).
    pub fn mem(&self) -> &PagedMem {
        &self.mem
    }

    /// Mutable functional memory.
    pub fn mem_mut(&mut self) -> &mut PagedMem {
        &mut self.mem
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.hw.stats
    }

    /// Sets the workload phase tag on the statistics.
    pub fn set_phase(&mut self, phase: usize) {
        self.hw.stats.set_phase(phase);
    }

    /// Energy consumed so far.
    pub fn energy(&self) -> EnergyBreakdown {
        energy::compute(&self.hw.stats, &self.hw.cfg.energy)
    }

    /// Values traced by `Trace` instructions, in execution order.
    pub fn traces(&self) -> &[u64] {
        &self.traces
    }

    /// The current global cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Spawns a software thread on `core`, entering `func(args…)`.
    ///
    /// # Errors
    /// Returns [`SimError::CoreOutOfRange`] if `core` is not a valid tile
    /// and [`SimError::TooManyArgs`] for more than 8 entry arguments.
    pub fn spawn_thread(
        &mut self,
        core: u32,
        prog: Arc<Program>,
        func: FuncId,
        args: &[u64],
    ) -> Result<ActorId, SimError> {
        if core >= self.hw.cfg.tiles {
            return Err(SimError::CoreOutOfRange {
                core,
                tiles: self.hw.cfg.tiles,
            });
        }
        if args.len() > 8 {
            return Err(SimError::TooManyArgs {
                given: args.len(),
                max: 8,
            });
        }
        let aid = self.spawn_core_actor(core, prog, func, args, self.now);
        self.enqueue(aid, self.now);
        Ok(aid)
    }

    /// Installs a core-thread actor starting at `clock` (shared by
    /// [`Machine::spawn_thread`] and the fault-fallback path).
    fn spawn_core_actor(
        &mut self,
        core: u32,
        prog: Arc<Program>,
        func: FuncId,
        args: &[u64],
        clock: u64,
    ) -> ActorId {
        let cfg = self.hw.cfg.core;
        let aid = self.install_actor(Actor {
            kind: ActorKind::CoreThread { core },
            prog,
            ctx: ExecCtx::new(func, args),
            clock,
            reg_ready: [clock; NUM_REGS],
            pending_mem: Vec::new(),
            issue: FuCursor::new(cfg.issue_width),
            predictor: Some(Gshare::new(cfg.predictor_bits)),
            invoke_acks: VecDeque::new(),
            invoke_count: 0,
            invoke_retries: 0,
            state: ActorState::Runnable,
            sched_seq: 0,
            parked_at: 0,
        });
        self.live_core_threads += 1;
        aid
    }

    /// Spawns a long-lived task directly on an engine (the "long-lived
    /// workloads" paradigm, and stream producers). Does not consume an
    /// offloaded-task context.
    pub fn spawn_engine_task(
        &mut self,
        engine: EngineId,
        prog: Arc<Program>,
        func: FuncId,
        args: &[u64],
        stream: Option<StreamId>,
    ) -> ActorId {
        let aid = self.install_actor(Actor {
            kind: ActorKind::EngineTask {
                engine,
                reserved_ctx: false,
                stream,
            },
            prog,
            ctx: ExecCtx::new(func, args),
            clock: self.now,
            reg_ready: [self.now; NUM_REGS],
            pending_mem: Vec::new(),
            issue: FuCursor::new(64),
            predictor: None,
            invoke_acks: VecDeque::new(),
            invoke_count: 0,
            invoke_retries: 0,
            state: ActorState::Runnable,
            sched_seq: 0,
            parked_at: 0,
        });
        self.enqueue(aid, self.now);
        aid
    }

    /// Creates a stream and returns its id. The phantom/Morph registration
    /// for the consumer side is the caller's responsibility (the
    /// `leviathan` crate's `Stream<T>` does both).
    ///
    /// # Errors
    /// Returns [`SimError::UnsupportedEntrySize`] for entry sizes other
    /// than 8 bytes and [`SimError::ZeroStreamCapacity`] for an empty
    /// ring.
    pub fn create_stream(
        &mut self,
        buffer: Addr,
        entry_size: u64,
        capacity: u64,
        engine: EngineId,
        consumer: u32,
        mode: StreamMode,
    ) -> Result<StreamId, SimError> {
        if entry_size != 8 {
            return Err(SimError::UnsupportedEntrySize { entry_size });
        }
        if capacity == 0 {
            return Err(SimError::ZeroStreamCapacity);
        }
        let id = StreamId(self.hw.ndc.streams.len() as u32);
        // The ring is a hardware-managed sequential write target: pushes
        // fully overwrite lines, so write misses skip the write-allocate
        // fetch (the engine's stream scheduler owns the buffer).
        self.hw
            .ndc
            .stream_store_ranges
            .push((buffer, buffer + capacity * entry_size));
        self.hw.ndc.streams.push(crate::ndc::StreamState {
            id,
            buffer,
            entry_size,
            capacity,
            tail: 0,
            head: 0,
            engine,
            consumer,
            mode,
            closed: false,
        });
        Ok(id)
    }

    /// Marks a stream closed (producer finished or terminated), waking any
    /// blocked consumer.
    pub fn close_stream(&mut self, id: StreamId) {
        self.hw.ndc.stream_mut(id).closed = true;
        let at = self.now;
        self.wake(WaitCond::StreamData(id), at);
    }

    /// Flushes `[base, base+len)` from all caches at the current time,
    /// running destructors for tagged lines (the host-side counterpart of
    /// the `flush` instruction, used when unregistering a Morph between
    /// run segments). Returns the completion time.
    pub fn flush_morph_range(&mut self, base: Addr, len: u64) -> u64 {
        let now = self.now;
        let Machine { hw, mem, .. } = self;
        hw.flush_range(mem, base, len, now)
    }

    fn enqueue(&mut self, aid: ActorId, at: u64) {
        self.seq += 1;
        let a = &mut self.actors[aid as usize];
        a.sched_seq = self.seq;
        a.state = ActorState::Runnable;
        self.runq.push(Reverse((at, self.seq, aid)));
    }

    fn wake(&mut self, cond: WaitCond, at: u64) {
        let Some(list) = self.waiters.remove(&cond) else {
            return;
        };
        for aid in list {
            let a = &mut self.actors[aid as usize];
            if a.state == ActorState::Parked(cond) {
                if let WaitCond::StreamData(sid) = cond {
                    let stall = at.saturating_sub(a.parked_at);
                    self.hw.stats.stream_stall_cycles += stall;
                    self.hw.stats.stream_stall.record(stall);
                    let track = match a.kind {
                        ActorKind::CoreThread { core } => Track::Core(core),
                        ActorKind::EngineTask { engine, .. } => Track::Engine(engine),
                    };
                    let parked_at = a.parked_at;
                    self.hw.stats.trace.record(|| {
                        TraceEvent::span(
                            parked_at,
                            stall,
                            TraceCategory::Stream,
                            "stream.stall",
                            track,
                            &[("sid", sid.0 as u64)],
                        )
                    });
                }
                a.clock = a.clock.max(at);
                // Miss-triggered pseudo-stream producers pay a
                // re-initialization cost on every activation
                // (paper Sec. VIII-C: tako must rebuild its BDFS state per
                // triggered line).
                if let WaitCond::StreamSpace(sid) = cond {
                    if let ActorKind::EngineTask {
                        stream: Some(s), ..
                    } = a.kind
                    {
                        if s == sid {
                            if let StreamMode::MissTriggered { reinit_instrs } =
                                self.hw.ndc.streams[sid.0 as usize].mode
                            {
                                self.hw.stats.engine_instrs += reinit_instrs as u64;
                                a.clock += (reinit_instrs as u64).div_ceil(4);
                            }
                        }
                    }
                }
                let clock = a.clock;
                self.enqueue(aid, clock);
            }
        }
    }

    /// Runs until every spawned core thread has halted (engine tasks may
    /// remain parked, e.g. stream producers blocked on a full buffer).
    ///
    /// # Errors
    /// Returns [`RunError::Deadlock`] if the run queue drains while a core
    /// thread is still parked, [`RunError::Watchdog`] if the clock passes
    /// [`MachineConfig::max_cycles`] (when non-zero), and
    /// [`RunError::Fault`] when a typed error surfaces mid-run.
    pub fn run(&mut self) -> Result<RunResult, RunError> {
        let max_cycles = self.hw.cfg.max_cycles;
        while let Some(Reverse((t, seq, aid))) = self.runq.pop() {
            {
                let a = &self.actors[aid as usize];
                if a.sched_seq != seq || a.state != ActorState::Runnable {
                    continue;
                }
            }
            self.now = self.now.max(t);
            if max_cycles != 0 && self.now > max_cycles {
                return Err(RunError::Watchdog {
                    limit: max_cycles,
                    at: self.now,
                });
            }
            self.hw.maybe_sample(self.now);
            self.run_actor(aid);
            if let Some(e) = self.hw.fatal.take() {
                return Err(RunError::Fault(e));
            }
            if self.live_core_threads == 0 && self.no_runnable_engine_tasks() {
                break;
            }
        }
        // Deadlock check: parked core threads with an empty queue. The
        // report also lists parked engine tasks — a blocked producer or
        // consumer is usually the other half of the cycle.
        let mut stuck = Vec::new();
        for (i, a) in self.actors.iter().enumerate() {
            if let ActorState::Parked(c) = a.state {
                stuck.push(ParkedActor {
                    actor: i as ActorId,
                    cond: c,
                    owner: match a.kind {
                        ActorKind::CoreThread { core } => ParkOwner::Core(core),
                        ActorKind::EngineTask { engine, .. } => ParkOwner::Engine(engine),
                    },
                    parked_at: a.parked_at,
                    parked_for: self.now.saturating_sub(a.parked_at),
                });
            }
        }
        let core_stuck = stuck.iter().any(|p| matches!(p.owner, ParkOwner::Core(_)));
        if core_stuck && self.live_core_threads > 0 {
            return Err(RunError::Deadlock(stuck));
        }
        let cycles = self
            .actors
            .iter()
            .map(|a| a.clock)
            .max()
            .unwrap_or(self.now)
            .max(self.now);
        self.now = cycles;
        self.hw.stats.cycles = cycles;
        Ok(RunResult { cycles })
    }

    fn no_runnable_engine_tasks(&self) -> bool {
        // After cores finish we still drain runnable engine work (offloaded
        // tasks in flight) but not parked producers.
        self.runq.iter().all(|Reverse((_, seq, aid))| {
            let a = &self.actors[*aid as usize];
            a.sched_seq != *seq || a.state != ActorState::Runnable
        })
    }

    // ------------------------------------------------------------------
    // The dispatch loop
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn run_actor(&mut self, aid: ActorId) {
        let prog = self.actors[aid as usize].prog.clone();
        let quantum = self.hw.cfg.quantum;
        let quantum_end = self.actors[aid as usize].clock + quantum;

        loop {
            // -------- per-instruction outcome, gathered under a scoped
            // borrow of the actor --------
            use StepOutcome as Outcome;
            let mut spawns: Vec<SpawnReq> = Vec::new();
            let mut wakes: Vec<(WaitCond, u64)> = Vec::new();

            let outcome = {
                let Machine {
                    actors,
                    hw,
                    mem,
                    traces,
                    ..
                } = self;
                let a = &mut actors[aid as usize];
                if a.ctx.halted {
                    Outcome::Finished
                } else if a.clock > quantum_end {
                    Outcome::Yield(a.clock)
                } else {
                    let inst = prog.func(a.ctx.pc.func).insts()[a.ctx.pc.idx as usize].clone();
                    let is_core = matches!(a.kind, ActorKind::CoreThread { .. });
                    let (tile, engine) = match a.kind {
                        ActorKind::CoreThread { core } => (core, None),
                        ActorKind::EngineTask { engine, .. } => (engine.tile, Some(engine)),
                    };

                    // Operand readiness.
                    let mut ready = a.clock;
                    inst.for_each_use(|r| ready = ready.max(a.reg_ready[r.index()]));

                    // Issue slot.
                    let class = inst.class();
                    let slot = if is_core {
                        a.issue.reserve(ready)
                    } else {
                        let e = &mut hw.engines[engine.expect("engine task").index()];
                        match class {
                            InstClass::Mem => e.reserve_mem(ready),
                            _ => e.reserve_int(ready),
                        }
                    };

                    step_one(
                        StepEnv {
                            hw,
                            mem,
                            traces,
                            is_core,
                            tile,
                            engine,
                            prog: &prog,
                        },
                        a,
                        &inst,
                        slot,
                        &mut spawns,
                        &mut wakes,
                    )
                }
            };

            // -------- apply side effects gathered during the step --------
            for s in spawns {
                let start = s.start;
                if let Some(core) = s.fallback_core {
                    // Fault fallback: run the action as a software handler
                    // thread on the issuing core instead of an engine task.
                    let id = self.spawn_core_actor(core, s.prog, s.func, &s.args, start);
                    self.hw.stats.trace.record(|| {
                        TraceEvent::instant(
                            start,
                            TraceCategory::Fault,
                            "fault.core_fallback_task",
                            Track::Core(core),
                            &[("actor", id as u64)],
                        )
                    });
                    self.enqueue(id, start);
                    continue;
                }
                let target = s.engine;
                let id = self.spawn_engine_task(s.engine, s.prog, s.func, &s.args, None);
                self.hw.stats.trace.record(|| {
                    TraceEvent::instant(
                        start,
                        TraceCategory::Invoke,
                        "task.dispatch",
                        Track::Engine(target),
                        &[("actor", id as u64)],
                    )
                });
                let a = &mut self.actors[id as usize];
                a.clock = start;
                // Mark that this task holds a reserved context.
                if let ActorKind::EngineTask { reserved_ctx, .. } = &mut a.kind {
                    *reserved_ctx = true;
                }
                self.enqueue(id, start);
            }
            for (cond, at) in wakes {
                self.wake(cond, at);
            }

            match outcome {
                Outcome::Continue => {}
                Outcome::Finished => {
                    self.finish_actor(aid);
                    return;
                }
                Outcome::Yield(at) => {
                    self.enqueue(aid, at);
                    return;
                }
                Outcome::Park(cond) => {
                    let a = &mut self.actors[aid as usize];
                    a.state = ActorState::Parked(cond);
                    a.parked_at = a.clock;
                    self.waiters.entry(cond).or_default().push(aid);
                    return;
                }
                Outcome::SleepUntil(at) => {
                    self.enqueue(aid, at);
                    return;
                }
            }
        }
    }

    fn finish_actor(&mut self, aid: ActorId) {
        let clock = self.actors[aid as usize].clock;
        let (is_core, engine_task, engine_release, stream) = {
            let a = &mut self.actors[aid as usize];
            a.state = ActorState::Done;
            match a.kind {
                ActorKind::CoreThread { .. } => (true, None, None, None),
                ActorKind::EngineTask {
                    engine,
                    reserved_ctx,
                    stream,
                } => (false, Some(engine), reserved_ctx.then_some(engine), stream),
            }
        };
        if is_core {
            self.live_core_threads -= 1;
        }
        if let Some(engine) = engine_task {
            self.hw.stats.trace.record(|| {
                TraceEvent::instant(
                    clock,
                    TraceCategory::Invoke,
                    "task.retire",
                    Track::Engine(engine),
                    &[("actor", aid as u64)],
                )
            });
        }
        if let Some(engine) = engine_release {
            self.hw.engines[engine.index()].release_ctx();
            self.wake(WaitCond::EngineCtx(engine), clock);
        }
        if let Some(sid) = stream {
            self.hw.ndc.stream_mut(sid).closed = true;
            self.wake(WaitCond::StreamData(sid), clock);
        }
        self.now = self.now.max(clock);
        if !is_core {
            // Recycle the slot so offload-heavy workloads stay bounded.
            self.free_slots.push(aid);
        }
    }
}

// ----------------------------------------------------------------------
// Single-instruction execution with timing
// ----------------------------------------------------------------------

struct StepEnv<'a> {
    hw: &'a mut Hw,
    mem: &'a mut PagedMem,
    traces: &'a mut Vec<u64>,
    is_core: bool,
    tile: u32,
    engine: Option<EngineId>,
    prog: &'a Arc<Program>,
}

/// Executes one instruction of `a` with issue slot `slot`; returns the
/// outcome. Kept as a free function so borrows of the machine's fields
/// stay disjoint.
#[allow(clippy::too_many_lines)]
fn step_one(
    env: StepEnv<'_>,
    a: &mut Actor,
    inst: &Inst,
    slot: u64,
    spawns: &mut Vec<SpawnReq>,
    wakes: &mut Vec<(WaitCond, u64)>,
) -> StepOutcome {
    use StepOutcome as O;
    let StepEnv {
        hw,
        mem,
        traces,
        is_core,
        tile,
        engine,
        prog,
    } = env;

    let count_instr = |hw: &mut Hw| {
        if is_core {
            hw.stats.core_instrs += 1;
        } else {
            hw.stats.engine_instrs += 1;
        }
    };

    match inst {
        // ---- memory instructions: pre-walk, then step ----
        Inst::Ld { ra, off, .. } | Inst::St { ra, off, .. } => {
            let addr = a.ctx.reg(*ra).wrapping_add(*off as i64 as u64);
            let is_load = matches!(inst, Inst::Ld { .. });
            let kind = if is_load {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let mut slot = slot;
            if is_core {
                slot = mshr_limit(a, hw.cfg.core.mshrs, slot);
            }
            let walk = match engine {
                None => hw.access_core(mem, tile, kind, addr, slot, true),
                Some(eid) => hw.access_engine(mem, eid, kind, addr, slot, true),
            };
            let at = match walk {
                Walk::Done { at } => at,
                Walk::Blocked(cond) => {
                    if let WaitCond::StreamData(sid) = cond {
                        // A consumer miss (re)triggers a miss-triggered
                        // producer.
                        if matches!(hw.ndc.stream(sid).mode, StreamMode::MissTriggered { .. }) {
                            wakes.push((WaitCond::StreamSpace(sid), slot));
                        }
                    }
                    return O::Park(cond);
                }
            };
            if is_load {
                hw.stats.load_to_use.record(at.saturating_sub(slot));
            }
            let info =
                exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost).expect("mem step failed");
            debug_assert!(info.retired());
            count_instr(hw);
            if let Some(rd) = inst.def() {
                a.reg_ready[rd.index()] = at;
            }
            a.pending_mem.push(at);
            if a.pending_mem.len() > 128 {
                // Engines have no MSHR pruning; bound the drain set.
                let c = a.clock;
                a.pending_mem.retain(|&t| t > c);
            }
            a.clock = a.clock.max(slot);
            O::Continue
        }
        Inst::AtomicRmw { ordering, addr, .. } => {
            let target = a.ctx.reg(*addr);
            let fenced = *ordering == MemOrder::Fenced;
            let mut slot = slot;
            if fenced {
                // Drain all outstanding accesses first.
                for &p in &a.pending_mem {
                    slot = slot.max(p);
                }
            } else if is_core {
                slot = mshr_limit(a, hw.cfg.core.mshrs, slot);
            }
            let walk = match engine {
                None => hw.access_core(mem, tile, AccessKind::Rmw, target, slot, true),
                Some(eid) => hw.access_engine(mem, eid, AccessKind::Rmw, target, slot, true),
            };
            let at = match walk {
                Walk::Done { at } => at,
                Walk::Blocked(cond) => {
                    if let WaitCond::StreamData(sid) = cond {
                        if matches!(hw.ndc.stream(sid).mode, StreamMode::MissTriggered { .. }) {
                            wakes.push((WaitCond::StreamSpace(sid), slot));
                        }
                    }
                    return O::Park(cond);
                }
            };
            if fenced {
                hw.stats.fences += 1;
            }
            let info =
                exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost).expect("rmw step failed");
            debug_assert!(info.retired());
            count_instr(hw);
            if is_core {
                hw.stats.core_rmws += 1;
            }
            if let Some(rd) = inst.def() {
                a.reg_ready[rd.index()] = at;
            }
            if fenced {
                // The RMW completes before anything younger issues.
                a.clock = at;
                a.pending_mem.clear();
            } else {
                a.pending_mem.push(at);
                a.clock = a.clock.max(slot);
            }
            O::Continue
        }
        Inst::Fence => {
            let mut t = slot;
            for &p in &a.pending_mem {
                t = t.max(p);
            }
            a.pending_mem.clear();
            hw.stats.fences += 1;
            let _ = exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost);
            count_instr(hw);
            a.clock = t;
            O::Continue
        }

        // ---- control flow ----
        Inst::Br { .. } => {
            let pc_sig = ((a.ctx.pc.func.0 as u64) << 20) | a.ctx.pc.idx as u64;
            let info =
                exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost).expect("branch step failed");
            count_instr(hw);
            let taken = matches!(info.control, Control::Branch { taken: true });
            if let Some(pred) = a.predictor.as_mut() {
                hw.stats.branches += 1;
                let correct = pred.update(pc_sig, taken);
                if correct {
                    a.clock = a.clock.max(slot);
                } else {
                    hw.stats.mispredicts += 1;
                    a.clock = slot + hw.cfg.core.mispredict_penalty;
                }
            } else {
                a.clock = a.clock.max(slot);
            }
            O::Continue
        }
        Inst::Jmp { .. } | Inst::Call { .. } | Inst::Ret | Inst::Halt => {
            let info =
                exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost).expect("ctrl step failed");
            count_instr(hw);
            a.clock = a.clock.max(slot);
            if info.control == Control::Halt {
                // Commit semantics: outstanding stores drain before the
                // context retires.
                for &p in &a.pending_mem {
                    a.clock = a.clock.max(p);
                }
                a.pending_mem.clear();
                return O::Finished;
            }
            O::Continue
        }

        // ---- plain ALU ----
        Inst::Imm { .. } | Inst::Mov { .. } | Inst::Alu { .. } | Inst::AluI { .. } | Inst::Nop => {
            let class = inst.class();
            let _ = exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost);
            count_instr(hw);
            let lat = if is_core {
                match class {
                    InstClass::Mul => hw.cfg.core.mul_latency,
                    InstClass::Div => hw.cfg.core.div_latency,
                    _ => 1,
                }
            } else {
                let e = &hw.engines[engine.expect("engine").index()];
                e.latency().max(match class {
                    InstClass::Mul => 3,
                    InstClass::Div => 12,
                    _ => e.latency(),
                })
            };
            if let Some(rd) = inst.def() {
                a.reg_ready[rd.index()] = slot + lat;
            }
            a.clock = a.clock.max(slot);
            O::Continue
        }

        Inst::Trace { rs } => {
            traces.push(a.ctx.reg(*rs));
            let _ = exec::step(prog, &mut a.ctx, mem, &mut NoBlockHost);
            count_instr(hw);
            a.clock = a.clock.max(slot);
            O::Continue
        }

        // ---- NDC instructions: run through the timed host ----
        Inst::Invoke { .. }
        | Inst::FutureWait { .. }
        | Inst::FutureSend { .. }
        | Inst::Push { .. }
        | Inst::Pop { .. }
        | Inst::Flush { .. } => {
            let mut host = TimedHost {
                hw,
                is_core,
                tile,
                engine,
                now: slot,
                invoke_acks: &mut a.invoke_acks,
                invoke_count: &mut a.invoke_count,
                invoke_retries: &mut a.invoke_retries,
                spawns,
                wakes,
                block: None,
                sleep_until: None,
                op_done: slot + 1,
                wait_fill: slot,
            };
            let info = exec::step(prog, &mut a.ctx, mem, &mut host).expect("ndc step failed");
            let block = host.block;
            let sleep = host.sleep_until;
            let op_done = host.op_done;
            let wait_fill = host.wait_fill;
            if !info.retired() {
                if let Some(at) = sleep {
                    return O::SleepUntil(at.max(a.clock + 1));
                }
                return O::Park(block.expect("blocked NDC op must set a condition"));
            }
            count_instr(hw);
            if let Some(rd) = inst.def() {
                // FutureWait: value usable once the store-update arrives.
                a.reg_ready[rd.index()] = wait_fill.max(slot) + 1;
            }
            a.clock = a.clock.max(op_done.max(slot + 1) - 1);
            O::Continue
        }
    }
}

enum StepOutcome {
    Continue,
    Finished,
    /// Produced by the quantum check: requeue at the given cycle.
    Yield(u64),
    Park(WaitCond),
    SleepUntil(u64),
}

/// Applies the core MSHR limit: delays `slot` until an outstanding-miss
/// slot frees, pruning completed entries.
fn mshr_limit(a: &mut Actor, mshrs: u32, slot: u64) -> u64 {
    a.pending_mem.retain(|&t| t > slot);
    let mut slot = slot;
    while a.pending_mem.len() >= mshrs as usize {
        let min = *a.pending_mem.iter().min().expect("nonempty");
        slot = slot.max(min);
        a.pending_mem.retain(|&t| t > slot);
    }
    slot
}

/// Host used for non-NDC instructions (they never call host methods).
struct NoBlockHost;

impl NdcHost for NoBlockHost {
    fn invoke(&mut self, _mem: &mut dyn Memory, _req: NdcRequest) -> Poll<()> {
        unreachable!("invoke outside TimedHost")
    }
    fn future_wait(&mut self, _mem: &mut dyn Memory, _fut: Addr) -> Poll<u64> {
        unreachable!("future_wait outside TimedHost")
    }
    fn future_send(&mut self, _mem: &mut dyn Memory, _fut: Addr, _val: u64) {
        unreachable!("future_send outside TimedHost")
    }
    fn push(&mut self, _mem: &mut dyn Memory, _stream: u64, _val: u64) -> Poll<()> {
        unreachable!("push outside TimedHost")
    }
    fn pop(&mut self, _mem: &mut dyn Memory, _stream: u64) {
        unreachable!("pop outside TimedHost")
    }
    fn flush(&mut self, _mem: &mut dyn Memory, _addr: Addr, _len: u64) {
        unreachable!("flush outside TimedHost")
    }
}

/// The timed NDC host: implements Table III's microarchitectural support.
struct TimedHost<'a> {
    hw: &'a mut Hw,
    is_core: bool,
    tile: u32,
    /// The issuing engine when this context is an engine task.
    engine: Option<EngineId>,
    now: u64,
    invoke_acks: &'a mut VecDeque<u64>,
    invoke_count: &'a mut u32,
    invoke_retries: &'a mut u32,
    spawns: &'a mut Vec<SpawnReq>,
    wakes: &'a mut Vec<(WaitCond, u64)>,
    block: Option<WaitCond>,
    sleep_until: Option<u64>,
    op_done: u64,
    wait_fill: u64,
}

impl TimedHost<'_> {
    /// The trace track of the issuing context.
    fn track(&self) -> Track {
        match self.engine {
            Some(e) => Track::Engine(e),
            None => Track::Core(self.tile),
        }
    }

    /// Picks the engine an invoke should run on (Sec. VI-B1).
    fn schedule_invoke(&mut self, req: &NdcRequest) -> EngineId {
        let line = req.actor >> crate::config::LINE_SHIFT;
        let local_l2 = EngineId {
            tile: self.tile,
            level: EngineLevel::L2,
        };
        let target = match req.loc {
            Location::Local => local_l2,
            Location::Remote => EngineId {
                tile: self.hw.bank_of(req.actor),
                level: EngineLevel::Llc,
            },
            Location::Dynamic => {
                if self.is_core
                    && (self.hw.l1[self.tile as usize].contains(line)
                        || self.hw.l2[self.tile as usize].contains(line))
                {
                    local_l2
                } else {
                    let bank = self.hw.bank_of(req.actor);
                    let mut t = EngineId {
                        tile: bank,
                        level: EngineLevel::Llc,
                    };
                    if req.exclusive {
                        if let Some(l) = self.hw.llc[bank as usize].peek(line) {
                            if let Some(o) = l.owner {
                                if o as u32 != self.tile {
                                    t = EngineId {
                                        tile: o as u32,
                                        level: EngineLevel::L2,
                                    };
                                }
                            }
                        }
                    }
                    t
                }
            }
        };
        // 1/32 migrate-local policy: occasionally execute a would-be
        // remote DYNAMIC task locally to let hot data settle upward.
        if req.loc == Location::Dynamic && target.tile != self.tile {
            *self.invoke_count += 1;
            if (*self.invoke_count).is_multiple_of(32) {
                self.hw.stats.invoke_migrations += 1;
                return local_l2;
            }
        }
        target
    }
}

impl NdcHost for TimedHost<'_> {
    fn invoke(&mut self, _mem: &mut dyn Memory, req: NdcRequest) -> Poll<()> {
        // Invoke-buffer backpressure (skipped for future-carrying invokes).
        if self.is_core && req.future.is_none() {
            while let Some(&front) = self.invoke_acks.front() {
                if front <= self.now {
                    self.invoke_acks.pop_front();
                } else {
                    break;
                }
            }
            let cfg_limit = self.hw.cfg.core.invoke_buffer;
            let limit = self.hw.faults.invoke_buffer_limit(cfg_limit, self.now);
            if self.invoke_acks.len() >= limit as usize {
                let earliest = *self.invoke_acks.front().expect("nonempty");
                if limit < cfg_limit {
                    // This stall only exists because a squeeze shrank the
                    // buffer below its configured capacity.
                    let wait = earliest.saturating_sub(self.now);
                    self.hw.stats.fault_degraded_cycles += wait;
                    let (now, track) = (self.now, self.track());
                    self.hw.stats.trace.record(|| {
                        TraceEvent::instant(
                            now,
                            TraceCategory::Fault,
                            "fault.invoke_squeeze",
                            track,
                            &[("limit", limit as u64), ("wait", wait)],
                        )
                    });
                }
                self.sleep_until = Some(earliest);
                return Poll::Pending;
            }
        }

        // Resolve the action first: an unregistered id is a typed
        // mid-run fault, not a panic.
        let aref = match self.hw.ndc.actions.get(req.action) {
            Ok(a) => a.clone(),
            Err(e) => {
                self.hw.fatal = Some(e);
                self.op_done = self.now + 1;
                return Poll::Ready(());
            }
        };

        let target = self.schedule_invoke(&req);

        // Fault window: the engine refuses new tasks. Retry with bounded
        // exponential backoff; past the budget, fall back to running the
        // action on the issuing core (software-fallback virtualization).
        if !self.hw.faults.is_empty() && self.hw.faults.engine_refusing(target, self.now) {
            self.hw.stats.invoke_nacks += 1;
            *self.invoke_retries += 1;
            let retries = *self.invoke_retries;
            let (now, track) = (self.now, self.track());
            if retries <= self.hw.faults.retry_budget {
                let delay = self.hw.faults.backoff_delay(retries);
                self.hw.stats.fault_nack_retries += 1;
                self.hw.stats.fault_degraded_cycles += delay;
                self.hw.stats.fault_backoff.record(delay);
                self.hw.stats.trace.record(|| {
                    TraceEvent::instant(
                        now,
                        TraceCategory::Fault,
                        "fault.invoke_backoff",
                        track,
                        &[
                            ("target", target.tile as u64),
                            ("retry", retries as u64),
                            ("delay", delay),
                        ],
                    )
                });
                self.sleep_until = Some(now + delay);
                return Poll::Pending;
            }
            *self.invoke_retries = 0;
            self.hw.stats.fault_fallbacks += 1;
            self.hw.stats.trace.record(|| {
                TraceEvent::instant(
                    now,
                    TraceCategory::Fault,
                    "fault.core_fallback",
                    track,
                    &[("target", target.tile as u64), ("actor_addr", req.actor)],
                )
            });
            let mut args = Vec::with_capacity(1 + req.args.len());
            args.push(req.actor);
            args.extend_from_slice(&req.args);
            self.spawns.push(SpawnReq {
                engine: target,
                func: aref.func,
                prog: aref.prog,
                args,
                start: now + 1,
                fallback_core: Some(self.tile),
            });
            self.op_done = now + 1;
            return Poll::Ready(());
        }
        if *self.invoke_retries != 0 {
            *self.invoke_retries = 0;
        }

        if !self.hw.engines[target.index()].try_reserve_ctx() {
            self.hw.stats.invoke_nacks += 1;
            let (now, track) = (self.now, self.track());
            self.hw.stats.trace.record(|| {
                TraceEvent::instant(
                    now,
                    TraceCategory::Invoke,
                    "invoke.nack",
                    track,
                    &[("target", target.tile as u64)],
                )
            });
            self.block = Some(WaitCond::EngineCtx(target));
            return Poll::Pending;
        }
        self.hw.stats.invokes += 1;
        let (now, track) = (self.now, self.track());
        self.hw.stats.trace.record(|| {
            TraceEvent::instant(
                now,
                TraceCategory::Invoke,
                "invoke.issue",
                track,
                &[("target", target.tile as u64), ("actor_addr", req.actor)],
            )
        });

        // Invoke packet: header + actor + action + args (+ future).
        let bytes = 24 + 8 * req.args.len() as u32 + if req.future.is_some() { 8 } else { 0 };
        let arrival = self
            .hw
            .noc
            .send(self.tile, target.tile, bytes, self.now, &mut self.hw.stats);

        let mut args = Vec::with_capacity(1 + req.args.len());
        args.push(req.actor);
        args.extend_from_slice(&req.args);
        self.spawns.push(SpawnReq {
            engine: target,
            func: aref.func,
            prog: aref.prog,
            args,
            start: arrival,
            fallback_core: None,
        });
        if self.is_core && req.future.is_none() {
            // ACK returns once the engine accepts the task.
            let ack = self.hw.noc.send(
                target.tile,
                self.tile,
                INVOKE_ACK,
                arrival,
                &mut self.hw.stats,
            );
            self.hw
                .stats
                .invoke_rtt
                .record(ack.saturating_sub(self.now));
            self.invoke_acks.push_back(ack);
        }
        self.op_done = self.now + 1;
        Poll::Ready(())
    }

    fn future_wait(&mut self, mem: &mut dyn Memory, fut: Addr) -> Poll<u64> {
        if future_layout::is_filled(mem, fut) {
            let arrival = self
                .hw
                .ndc
                .futures
                .get(&fut)
                .map_or(self.now, |f| f.arrival);
            self.wait_fill = arrival;
            Poll::Ready(future_layout::value(mem, fut))
        } else {
            self.block = Some(WaitCond::FutureFill(fut));
            Poll::Pending
        }
    }

    fn future_send(&mut self, mem: &mut dyn Memory, fut: Addr, val: u64) {
        future_layout::fill(mem, fut, val);
        // store-update: the value travels to the waiter's core; we use the
        // future's home bank as the destination proxy when no waiter is
        // parked yet.
        let dest = self.hw.bank_of(fut);
        let arrival = self
            .hw
            .noc
            .send(self.tile, dest, CTRL_MSG, self.now, &mut self.hw.stats);
        self.hw
            .ndc
            .futures
            .insert(fut, crate::ndc::FutureFill { arrival });
        self.wakes.push((WaitCond::FutureFill(fut), arrival));
        self.op_done = self.now + 1;
    }

    fn push(&mut self, mem: &mut dyn Memory, stream: u64, val: u64) -> Poll<()> {
        let sid = StreamId(stream as u32);
        let s = self.hw.ndc.stream(sid);
        if s.is_full() {
            self.block = Some(WaitCond::StreamSpace(sid));
            return Poll::Pending;
        }
        let addr = s.entry_addr(s.tail);
        let eng = s.engine;
        mem.write_u64(addr, val);
        let done = match self
            .hw
            .access_engine(mem, eng, AccessKind::Write, addr, self.now, false)
        {
            Walk::Done { at } => at,
            Walk::Blocked(_) => unreachable!("buffer writes cannot block"),
        };
        let s = self.hw.ndc.stream_mut(sid);
        s.tail += 1;
        let depth = s.len();
        self.hw.stats.stream_pushes += 1;
        self.hw.stats.trace.record(|| {
            TraceEvent::instant(
                done,
                TraceCategory::Stream,
                "stream.push",
                Track::Engine(eng),
                &[("sid", sid.0 as u64), ("depth", depth)],
            )
        });
        self.wakes.push((WaitCond::StreamData(sid), done));
        self.op_done = self.now + 1;
        Poll::Ready(())
    }

    fn pop(&mut self, _mem: &mut dyn Memory, stream: u64) {
        let sid = StreamId(stream as u32);
        let (old_addr, new_addr, engine, consumer) = {
            let s = self.hw.ndc.stream_mut(sid);
            debug_assert!(s.head < s.tail, "pop past the stream tail");
            let old = s.entry_addr(s.head);
            s.head += 1;
            let new = s.entry_addr(s.head);
            (old, new, s.engine, s.consumer)
        };
        self.hw.stats.stream_pops += 1;
        let depth = self.hw.ndc.stream(sid).len();
        let (now, track) = (self.now, self.track());
        self.hw.stats.trace.record(|| {
            TraceEvent::instant(
                now,
                TraceCategory::Stream,
                "stream.pop",
                track,
                &[("sid", sid.0 as u64), ("depth", depth)],
            )
        });
        let run_ahead = matches!(self.hw.ndc.stream(sid).mode, StreamMode::RunAhead);
        let old_line = old_addr >> crate::config::LINE_SHIFT;
        let new_line = new_addr >> crate::config::LINE_SHIFT;
        if old_line != new_line {
            // Head crossed a line: invalidate the dead line at the consumer
            // and notify the producing engine.
            self.hw.l1[consumer as usize].invalidate(old_line);
            self.hw.l2[consumer as usize].invalidate(old_line);
            let arrival = self.hw.noc.send(
                consumer,
                engine.tile,
                INVAL_NOTIFY,
                self.now,
                &mut self.hw.stats,
            );
            if run_ahead {
                self.wakes.push((WaitCond::StreamSpace(sid), arrival));
            }
        } else if run_ahead {
            self.wakes.push((WaitCond::StreamSpace(sid), self.now + 1));
        }
        // Miss-triggered producers are only re-activated by consumer
        // misses (they cannot run ahead of demand, Sec. VIII-C).
        self.op_done = self.now + 1;
    }

    fn flush(&mut self, mem: &mut dyn Memory, addr: Addr, len: u64) {
        let t = self.hw.flush_range(mem, addr, len, self.now);
        self.op_done = t.max(self.now + 1);
    }
}

/// ACK message size for invoke backpressure.
const INVOKE_ACK: u32 = 8;
/// Pop-notification message size.
const INVAL_NOTIFY: u32 = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use levi_isa::{ActionId, ProgramBuilder, Reg, RmwOp};

    fn small_cfg() -> MachineConfig {
        let mut cfg = MachineConfig::with_tiles(4);
        cfg.prefetcher = false;
        cfg
    }

    #[test]
    fn single_thread_store_load() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let (p, v, r) = (Reg(1), Reg(2), Reg(3));
        f.imm(p, 0x1000).imm(v, 77);
        f.st8(p, 0, v);
        f.ld8(r, p, 0);
        f.mov(Reg(0), r).halt();
        let func = f.finish();
        let prog = Arc::new(pb.finish().unwrap());

        let mut m = Machine::new(small_cfg());
        m.spawn_thread(0, prog, func, &[]).unwrap();
        let res = m.run().unwrap();
        assert!(
            res.cycles > 100,
            "cold miss pays DRAM latency: {}",
            res.cycles
        );
        assert_eq!(m.mem().read_u64(0x1000), 77);
        assert!(m.stats().core_instrs >= 5);
    }

    #[test]
    fn parallel_threads_on_different_cores() {
        // Each thread sums a private array; runs should overlap.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("sum");
        let (base, n, acc, i, v) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
        let top = f.label();
        let out = f.label();
        f.imm(acc, 0).imm(i, 0);
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld8(v, base, 0);
        f.add(acc, acc, v);
        f.addi(base, base, 8);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.mov(Reg(0), acc).halt();
        let func = f.finish();
        let prog = Arc::new(pb.finish().unwrap());

        let mut m = Machine::new(small_cfg());
        for t in 0..4u32 {
            let base = 0x10_0000 + t as u64 * 0x1000;
            for k in 0..64u64 {
                m.mem_mut().write_u64(base + 8 * k, k);
            }
            m.spawn_thread(t, prog.clone(), func, &[base, 64]).unwrap();
        }
        let res = m.run().unwrap();
        assert!(res.cycles > 0);
        assert!(m.stats().core_instrs > 4 * 64 * 5);
        assert!(m.stats().l1.hits > 0, "spatial locality in the arrays");
    }

    #[test]
    fn fenced_rmw_is_slower_than_relaxed() {
        fn build(relaxed: bool) -> (Arc<Program>, FuncId) {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("updates");
            let (p, v, i, n, old) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
            f.imm(v, 1).imm(i, 0).imm(n, 64);
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.bge_u(i, n, out);
            if relaxed {
                f.rmw_relaxed(RmwOp::Add, old, p, v, levi_isa::MemWidth::B8);
            } else {
                f.rmw_fenced(RmwOp::Add, old, p, v, levi_isa::MemWidth::B8);
            }
            // Independent work that fences serialize against.
            f.ld8(Reg(5), p, 64);
            f.addi(i, i, 1);
            f.jmp(top);
            f.bind(out);
            f.halt();
            let func = f.finish();
            (Arc::new(pb.finish().unwrap()), func)
        }
        let run = |relaxed: bool| {
            let (prog, func) = build(relaxed);
            let mut m = Machine::new(small_cfg());
            m.spawn_thread(0, prog, func, &[0x2000]).unwrap();
            let r = m.run().unwrap();
            (r.cycles, m.mem().read_u64(0x2000), m.stats().fences)
        };
        let (fenced_cycles, fenced_val, fences) = run(false);
        let (relaxed_cycles, relaxed_val, no_fences) = run(true);
        assert_eq!(fenced_val, 64);
        assert_eq!(relaxed_val, 64);
        assert_eq!(fences, 64);
        assert_eq!(no_fences, 0);
        assert!(
            fenced_cycles > relaxed_cycles,
            "fences must cost cycles: {fenced_cycles} vs {relaxed_cycles}"
        );
    }

    #[test]
    fn rmw_ping_pong_between_cores() {
        // Two cores hammer the same counter with relaxed RMWs.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("hammer");
        let (p, v, i, n, old) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
        f.imm(v, 1).imm(i, 0).imm(n, 32);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.rmw_relaxed(RmwOp::Add, old, p, v, levi_isa::MemWidth::B8);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        let func = f.finish();
        let prog = Arc::new(pb.finish().unwrap());

        // A tiny quantum interleaves the two cores finely, exposing the
        // line's ownership ping-pong.
        let mut cfg = small_cfg();
        cfg.quantum = 4;
        let mut m = Machine::new(cfg);
        m.spawn_thread(0, prog.clone(), func, &[0x3000]).unwrap();
        m.spawn_thread(1, prog, func, &[0x3000]).unwrap();
        m.run().unwrap();
        assert_eq!(m.mem().read_u64(0x3000), 64, "no update lost");
        assert!(
            m.stats().ownership_transfers > 5,
            "ping-pong visible: {}",
            m.stats().ownership_transfers
        );
    }

    #[test]
    fn invoke_runs_action_on_engine_and_future_returns() {
        let mut pb = ProgramBuilder::new();
        // Action: add r1 to the actor's u64, send new value to future r2.
        let action = {
            let mut f = pb.function("add_action");
            let (actor, amt, fut, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
            f.ld8(v, actor, 0);
            f.add(v, v, amt);
            f.st8(actor, 0, v);
            f.future_send(fut, v);
            f.halt();
            f.finish()
        };
        let mut mn = pb.function("main");
        let (actor, fut, amt, r) = (Reg(1), Reg(2), Reg(3), Reg(4));
        mn.imm(actor, 0x4000).imm(fut, 0x5000).imm(amt, 5);
        mn.invoke_future(actor, ActionId(0), &[amt, fut], fut, Location::Dynamic);
        mn.future_wait(r, fut);
        mn.mov(Reg(0), r).halt();
        let main = mn.finish();
        let prog = Arc::new(pb.finish().unwrap());

        let mut m = Machine::new(small_cfg());
        m.mem_mut().write_u64(0x4000, 37);
        m.hw.ndc.actions.register(ActionId(0), prog.clone(), action);
        m.spawn_thread(0, prog, main, &[]).unwrap();
        m.run().unwrap();
        assert_eq!(m.mem().read_u64(0x4000), 42);
        assert_eq!(m.stats().invokes, 1);
        assert!(m.stats().engine_instrs >= 4);
    }

    #[test]
    fn invoke_buffer_backpressure_applies() {
        // Fire-and-forget invokes far faster than engines can run them:
        // the invoke buffer must throttle the core, not error.
        let mut pb = ProgramBuilder::new();
        let action = {
            let mut f = pb.function("slow_action");
            let (actor, v, i, n) = (Reg(0), Reg(1), Reg(2), Reg(3));
            f.imm(i, 0).imm(n, 20);
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.bge_u(i, n, out);
            f.ld8(v, actor, 0);
            f.addi(i, i, 1);
            f.jmp(top);
            f.bind(out);
            f.halt();
            f.finish()
        };
        let mut mn = pb.function("main");
        let (actor, i, n) = (Reg(1), Reg(2), Reg(3));
        mn.imm(actor, 0x6000).imm(i, 0).imm(n, 100);
        let top = mn.label();
        let out = mn.label();
        mn.bind(top);
        mn.bge_u(i, n, out);
        mn.invoke(actor, ActionId(0), &[], Location::Remote);
        mn.addi(i, i, 1);
        mn.jmp(top);
        mn.bind(out);
        mn.halt();
        let main = mn.finish();
        let prog = Arc::new(pb.finish().unwrap());

        let mut m = Machine::new(small_cfg());
        m.hw.ndc.actions.register(ActionId(0), prog.clone(), action);
        m.spawn_thread(0, prog, main, &[]).unwrap();
        let res = m.run().unwrap();
        assert_eq!(m.stats().invokes, 100);
        assert!(res.cycles > 100);
    }

    #[test]
    fn stream_push_pop_round_trip() {
        // Producer pushes 0..N on an engine; consumer reads each entry from
        // the phantom/buffer range and pops.
        let mut pb = ProgramBuilder::new();
        let producer = {
            let mut f = pb.function("producer");
            let (handle, i, n) = (Reg(0), Reg(1), Reg(2));
            f.imm(i, 0).imm(n, 100);
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.bge_u(i, n, out);
            f.push(handle, i);
            f.addi(i, i, 1);
            f.jmp(top);
            f.bind(out);
            f.halt();
            f.finish()
        };
        let consumer = {
            let mut f = pb.function("consumer");
            // r0 = handle, r1 = buffer base, r2 = capacity, r3 = n
            let (handle, base, cap, n) = (Reg(0), Reg(1), Reg(2), Reg(3));
            let (i, idx, addr, v, acc) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(8));
            f.imm(i, 0).imm(acc, 0);
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.bge_u(i, n, out);
            f.remu(idx, i, cap);
            f.muli(idx, idx, 8);
            f.add(addr, base, idx);
            f.ld8(v, addr, 0);
            f.pop(handle);
            f.add(acc, acc, v);
            f.addi(i, i, 1);
            f.jmp(top);
            f.bind(out);
            f.mov(Reg(0), acc).halt();
            f.finish()
        };
        let prog = Arc::new(pb.finish().unwrap());

        let mut m = Machine::new(small_cfg());
        let buffer = 0x8000u64;
        let cap = 16u64;
        let engine = EngineId {
            tile: 0,
            level: EngineLevel::Llc,
        };
        let sid = m
            .create_stream(buffer, 8, cap, engine, 0, StreamMode::RunAhead)
            .unwrap();
        // Consumer reads via a stream-backed L2 morph over the buffer.
        m.hw.ndc.register_morph(crate::ndc::MorphRegion {
            base: buffer,
            bound: buffer + cap * 8,
            level: crate::ndc::MorphLevel::L2,
            obj_size: 8,
            ctor: None,
            dtor: None,
            view: 0,
            stream: Some(sid),
        });
        m.spawn_engine_task(engine, prog.clone(), producer, &[sid.0 as u64], Some(sid));
        m.spawn_thread(0, prog, consumer, &[sid.0 as u64, buffer, cap, 100])
            .unwrap();
        m.run().unwrap();
        let expect: u64 = (0..100).sum();
        // The consumer's r0 is gone; check via stats instead + memory sum.
        assert_eq!(m.stats().stream_pushes, 100);
        assert_eq!(m.stats().stream_pops, 100);
        let _ = expect;
    }

    #[test]
    fn deadlock_detected_for_never_filled_future() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(Reg(1), 0x9000);
        f.future_wait(Reg(0), Reg(1));
        f.halt();
        let main = f.finish();
        let prog = Arc::new(pb.finish().unwrap());
        let mut m = Machine::new(small_cfg());
        m.spawn_thread(0, prog, main, &[]).unwrap();
        match m.run() {
            Err(ref e @ RunError::Deadlock(ref v)) => {
                assert_eq!(v.len(), 1);
                assert!(matches!(v[0].cond, WaitCond::FutureFill(0x9000)));
                assert!(matches!(v[0].owner, ParkOwner::Core(0)));
                // Display is one readable line per parked actor, not a
                // debug dump.
                let text = e.to_string();
                assert!(
                    text.contains("actor 0 on core 0: waiting on future-fill @0x9000"),
                    "{text}"
                );
                assert!(text.contains("parked"), "{text}");
                assert!(!text.contains("FutureFill"), "no Debug output: {text}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_aborts_long_runs() {
        // A long (but finite) pointer-chase loop; with a tiny max_cycles
        // the watchdog must fire long before completion.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let (p, i, n, v) = (Reg(1), Reg(2), Reg(3), Reg(4));
        f.imm(p, 0x10000).imm(i, 0).imm(n, 10_000);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld8(v, p, 0);
        f.addi(p, p, 64);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        let main = f.finish();
        let prog = Arc::new(pb.finish().unwrap());

        let mut cfg = small_cfg();
        cfg.max_cycles = 5_000;
        let mut m = Machine::new(cfg);
        m.spawn_thread(0, prog.clone(), main, &[]).unwrap();
        match m.run() {
            Err(RunError::Watchdog { limit, at }) => {
                assert_eq!(limit, 5_000);
                assert!(at > 5_000);
            }
            other => panic!("expected watchdog, got {other:?}"),
        }
        // Without the watchdog the same program completes.
        let mut m = Machine::new(small_cfg());
        m.spawn_thread(0, prog, main, &[]).unwrap();
        assert!(m.run().is_ok());
    }

    #[test]
    fn spawn_and_stream_errors_are_typed() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.halt();
        let main = f.finish();
        let prog = Arc::new(pb.finish().unwrap());
        let mut m = Machine::new(small_cfg());
        assert_eq!(
            m.spawn_thread(99, prog.clone(), main, &[]),
            Err(SimError::CoreOutOfRange { core: 99, tiles: 4 })
        );
        assert_eq!(
            m.spawn_thread(0, prog.clone(), main, &[0; 9]),
            Err(SimError::TooManyArgs { given: 9, max: 8 })
        );
        let engine = EngineId {
            tile: 0,
            level: EngineLevel::Llc,
        };
        assert_eq!(
            m.create_stream(0x8000, 4, 16, engine, 0, StreamMode::RunAhead),
            Err(SimError::UnsupportedEntrySize { entry_size: 4 })
        );
        assert_eq!(
            m.create_stream(0x8000, 8, 0, engine, 0, StreamMode::RunAhead),
            Err(SimError::ZeroStreamCapacity)
        );
        // A failed spawn must not leave a live thread behind.
        m.spawn_thread(0, prog, main, &[]).unwrap();
        assert!(m.run().is_ok());
    }

    #[test]
    fn unregistered_action_is_a_run_fault() {
        let mut pb = ProgramBuilder::new();
        let mut mn = pb.function("main");
        let actor = Reg(1);
        mn.imm(actor, 0x6000);
        mn.invoke(actor, ActionId(7), &[], Location::Remote);
        mn.halt();
        let main = mn.finish();
        let prog = Arc::new(pb.finish().unwrap());
        let mut m = Machine::new(small_cfg());
        m.spawn_thread(0, prog, main, &[]).unwrap();
        match m.run() {
            Err(RunError::Fault(SimError::UnknownAction(id))) => assert_eq!(id, ActionId(7)),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn faulted_engine_backs_off_then_falls_back() {
        use crate::fault::{CycleWindow, FaultPlan};
        // Same invoke workload as invoke_runs_action_on_engine..., but
        // every engine refuses for the whole run: the invoke must retry
        // with backoff, fall back to the core, and still compute the right
        // answer.
        let mut pb = ProgramBuilder::new();
        let action = {
            let mut f = pb.function("add_action");
            let (actor, amt, fut, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
            f.ld8(v, actor, 0);
            f.add(v, v, amt);
            f.st8(actor, 0, v);
            f.future_send(fut, v);
            f.halt();
            f.finish()
        };
        let mut mn = pb.function("main");
        let (actor, fut, amt, r) = (Reg(1), Reg(2), Reg(3), Reg(4));
        mn.imm(actor, 0x4000).imm(fut, 0x5000).imm(amt, 5);
        mn.invoke_future(actor, ActionId(0), &[amt, fut], fut, Location::Dynamic);
        mn.future_wait(r, fut);
        mn.mov(Reg(0), r).halt();
        let main = mn.finish();
        let prog = Arc::new(pb.finish().unwrap());

        let mut plan = FaultPlan::new(1).retry_budget(3).backoff(8, 64);
        for tile in 0..4 {
            for level in [EngineLevel::L2, EngineLevel::Llc] {
                plan =
                    plan.add_engine_fault(EngineId { tile, level }, CycleWindow::new(0, u64::MAX));
            }
        }
        let mut m = Machine::new(small_cfg().faulted(plan));
        m.mem_mut().write_u64(0x4000, 37);
        m.hw.ndc.actions.register(ActionId(0), prog.clone(), action);
        m.spawn_thread(0, prog, main, &[]).unwrap();
        m.run().unwrap();
        assert_eq!(m.mem().read_u64(0x4000), 42, "fallback still computes");
        let s = m.stats();
        assert_eq!(s.fault_nack_retries, 3, "full retry budget consumed");
        assert_eq!(s.fault_fallbacks, 1);
        assert_eq!(s.invoke_nacks, 4, "3 retries + the final refusal");
        assert_eq!(s.invokes, 0, "nothing was offloaded");
        assert_eq!(s.fault_backoff.count(), 3);
        assert!(s.fault_degraded_cycles >= 8 + 16 + 32);
    }

    #[test]
    fn trace_reaches_machine() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(Reg(1), 123).trace(Reg(1)).halt();
        let main = f.finish();
        let prog = Arc::new(pb.finish().unwrap());
        let mut m = Machine::new(small_cfg());
        m.spawn_thread(0, prog, main, &[]).unwrap();
        m.run().unwrap();
        assert_eq!(m.traces(), &[123]);
    }

    #[test]
    fn determinism_same_seed_same_cycles() {
        let build = || {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("main");
            let (p, i, n, v) = (Reg(1), Reg(2), Reg(3), Reg(4));
            f.imm(p, 0x10000).imm(i, 0).imm(n, 200);
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.bge_u(i, n, out);
            f.ld8(v, p, 0);
            f.addi(p, p, 64);
            f.addi(i, i, 1);
            f.jmp(top);
            f.bind(out);
            f.halt();
            let func = f.finish();
            (Arc::new(pb.finish().unwrap()), func)
        };
        let run = || {
            let (prog, func) = build();
            let mut m = Machine::new(small_cfg());
            m.spawn_thread(0, prog.clone(), func, &[]).unwrap();
            m.spawn_thread(1, prog, func, &[]).unwrap();
            m.run().unwrap().cycles
        };
        assert_eq!(run(), run(), "simulation must be deterministic");
    }
}
