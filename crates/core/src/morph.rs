//! Morphs: data-triggered actors (paper Sec. V-B2, Fig. 11).
//!
//! A `Morph` gathers the state for an address range of *phantom* actors:
//! objects that exist only in the cache. The actors' constructor runs on
//! the near-cache engine when a line of the range is inserted; the
//! destructor runs on eviction (receiving a dirty flag). Phantom data is
//! never fetched from or written back to DRAM.
//!
//! Unlike prior work (tākō), actions execute on **objects**, not cache
//! lines: Leviathan's allocator pads objects so the engine can trigger one
//! action per object (sub-line objects) or one action per multi-line
//! object, and the programmer never reasons about alignment.

use levi_isa::{ActionId, Addr};
use levi_sim::{MorphLevel, StreamId};

use crate::alloc::ObjectArray;

/// Specification of a Morph registration.
#[derive(Clone, Debug)]
pub struct MorphSpec {
    /// Diagnostic name.
    pub name: String,
    /// Logical object size (padded by the allocator).
    pub obj_size: u64,
    /// Number of phantom actors.
    pub count: u64,
    /// Cache level whose insertions/evictions trigger the actions.
    pub level: MorphLevel,
    /// Constructor action, if any (`None` zero-fills objects).
    pub ctor: Option<ActionId>,
    /// Destructor action, if any (`None` drops lines on eviction).
    pub dtor: Option<ActionId>,
    /// Bytes of per-Morph view state (the `Morph::view` the actions get
    /// in `r1`; holds e.g. the compressed-array pointers in Fig. 15).
    pub view_bytes: u64,
}

impl MorphSpec {
    /// A Morph with the given geometry and no actions.
    pub fn new(name: &str, obj_size: u64, count: u64, level: MorphLevel) -> Self {
        MorphSpec {
            name: name.to_string(),
            obj_size,
            count,
            level,
            ctor: None,
            dtor: None,
            view_bytes: 64,
        }
    }

    /// Sets the constructor action.
    pub fn with_ctor(mut self, a: ActionId) -> Self {
        self.ctor = Some(a);
        self
    }

    /// Sets the destructor action.
    pub fn with_dtor(mut self, a: ActionId) -> Self {
        self.dtor = Some(a);
        self
    }

    /// Sets the view size.
    pub fn with_view_bytes(mut self, bytes: u64) -> Self {
        self.view_bytes = bytes;
        self
    }
}

/// A registered Morph: the phantom actor array plus its view state.
///
/// `getActor`/`getOffset` of the paper's Fig. 11 correspond to
/// [`ObjectArray::addr`] and [`ObjectArray::index_of`] on
/// [`MorphHandle::actors`].
#[derive(Clone, Debug)]
pub struct MorphHandle {
    /// The phantom actor array (padded, bank-mapped).
    pub actors: ObjectArray,
    /// Address of the view object passed to actions in `r1`.
    pub view: Addr,
    /// Trigger level.
    pub level: MorphLevel,
    /// Stream backing, if this Morph implements a stream's consumer side.
    pub stream: Option<StreamId>,
}

impl MorphHandle {
    /// Address of phantom actor `i` (the paper's `getActor`).
    pub fn actor(&self, i: u64) -> Addr {
        self.actors.addr(i)
    }

    /// Index of the actor at `addr` (the paper's `getOffset`).
    pub fn offset_of(&self, addr: Addr) -> u64 {
        self.actors.index_of(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_chain() {
        let s = MorphSpec::new("deltas", 8, 100, MorphLevel::Llc)
            .with_ctor(ActionId(1))
            .with_dtor(ActionId(2))
            .with_view_bytes(128);
        assert_eq!(s.ctor, Some(ActionId(1)));
        assert_eq!(s.dtor, Some(ActionId(2)));
        assert_eq!(s.view_bytes, 128);
        assert_eq!(s.level, MorphLevel::Llc);
    }

    #[test]
    fn handle_actor_math() {
        let h = MorphHandle {
            actors: ObjectArray {
                base: 0x4000,
                obj_size: 6,
                stride: 8,
                count: 16,
            },
            view: 0x100,
            level: MorphLevel::L2,
            stream: None,
        };
        assert_eq!(h.actor(0), 0x4000);
        assert_eq!(h.actor(2), 0x4010);
        assert_eq!(h.offset_of(0x4012), 2);
    }
}
