//! # levi-perf — host-performance measurement for the simulator
//!
//! Execution-driven NDC evaluation lives or dies on simulator throughput,
//! so this crate makes host performance a measured, tracked quantity. It
//! is a hermetic, dependency-free benchmark harness (the workspace has no
//! crates.io dependencies) with three layers:
//!
//! * [`measure`] — the repetition engine: N warmup + M measured reps
//!   grouped into rounds, with robust statistics (median, MAD, min) so
//!   scheduler noise does not masquerade as signal. Samples are bucketed
//!   into the *same* log2 [`Histogram`] the simulator uses for latencies,
//!   so perf and sim distributions cannot drift apart.
//! * [`suite`] — the benchmark definitions: substrate micro-benchmarks
//!   (cache lookup, NoC flit hop, scoreboard issue, DRAM queue) and macro
//!   runs of every registry workload, reporting simulated kilocycles per
//!   host second (KIPS) and — when `levi-sim`'s `self-profile` feature is
//!   on — a per-phase host-time breakdown.
//! * [`report`] — the machine-readable report: one JSON document the
//!   `levi-bench perf` subcommands parse for baseline comparison and
//!   regression gating.
//!
//! Tracking and gating (baselines, thresholds, CI wiring) live in
//! `levi-bench`; this crate only measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measure;
pub mod report;
pub mod suite;

pub use levi_sim::{Histogram, Phase, PhaseProfile};
pub use measure::{median, median_abs_deviation, median_ns, BenchOpts, Measurement};
pub use report::{render_report, report_json};
pub use suite::{run_suite, PerfCfg};
