//! Phantom stage: data-triggered fills and the inline-action interpreter.
//!
//! Misses inside a Morph-registered phantom range do not fetch from the
//! next level — they run the Morph's constructor action on the nearby
//! engine and install the constructed line(s) directly (paper Secs. V-B2,
//! VI-B2). This module holds the L2- and LLC-level phantom fill paths,
//! constructor dispatch (including the built-in stream and zero-fill
//! constructors), and [`Hw::run_inline_action`] — the synchronous
//! interpreter that executes short ctor/dtor actions on an engine's
//! dataflow fabric, charging FU slots and hierarchy walks as it goes.

use levi_isa::{exec, Addr, ExecCtx, InstClass, MemEffect, NoNdc, Program};

use crate::cache::PrivState;
use crate::config::{LINE_SHIFT, LINE_SIZE};
use crate::engine::{EngineId, EngineLevel};
use crate::ndc::{NdcState, WaitCond};

use super::{AccessKind, Hw, Walk};

impl Hw {
    /// L2-level phantom miss: run constructors on the tile's L2 engine and
    /// install the object's line(s) into L2 (and the missed line into L1).
    pub(super) fn phantom_fill_l2(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        tile: u32,
        mi: usize,
        addr: Addr,
        kind: AccessKind,
        now: u64,
    ) -> Walk {
        let m = self.ndc.morphs[mi].clone();
        // Stream-backed phantoms stall when the producer has not yet
        // pushed the entry being read (paper Sec. VI-B3).
        if let Some(sid) = m.stream {
            let s = self.ndc.stream(sid);
            if s.is_empty() && !s.closed {
                return Walk::Blocked(WaitCond::StreamData(sid));
            }
        }
        let eid = EngineId {
            tile,
            level: EngineLevel::L2,
        };
        let mut t = now;
        let (obj, lines) = if m.is_multiline() {
            (m.obj_base(addr), m.obj_size / LINE_SIZE)
        } else {
            (addr & !(LINE_SIZE - 1), 1)
        };

        t = self.run_ctors(mem, eid, &m, obj, t);

        // Install all lines of the object (or the one line) into L2.
        let has_dtor = m.dtor.is_some();
        for k in 0..lines {
            let line = (obj >> LINE_SHIFT) + k;
            if self.l2[tile as usize].contains(line) {
                continue;
            }
            let (l, victim) = self.l2[tile as usize].insert(line, &self.pins);
            l.state = PrivState::Owned;
            l.dtor = has_dtor;
            l.dirty = false;
            if let Some(v) = victim {
                self.handle_l2_victim(mem, tile, v, t);
            }
        }
        self.fill_l1(mem, tile, addr >> LINE_SHIFT, PrivState::Owned, kind, t);
        if kind.wants_ownership() {
            if let Some(l) = self.l2[tile as usize].peek_mut(addr >> LINE_SHIFT) {
                l.dirty = true;
            }
        }
        Walk::Done {
            at: t + self.cfg.l2.latency,
        }
    }

    /// LLC-level phantom miss: run constructors on the bank's engine and
    /// install the object's line(s) into the LLC.
    pub(super) fn phantom_fill_llc(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        bank: u32,
        mi: usize,
        addr: Addr,
        now: u64,
    ) -> Walk {
        let m = self.ndc.morphs[mi].clone();
        if let Some(sid) = m.stream {
            let s = self.ndc.stream(sid);
            if s.is_empty() && !s.closed {
                return Walk::Blocked(WaitCond::StreamData(sid));
            }
        }
        let eid = EngineId {
            tile: bank,
            level: EngineLevel::Llc,
        };
        let (obj, lines) = if m.is_multiline() {
            (m.obj_base(addr), m.obj_size / LINE_SIZE)
        } else {
            (addr & !(LINE_SIZE - 1), 1)
        };
        let t = self.run_ctors(mem, eid, &m, obj, now);
        let has_dtor = m.dtor.is_some();
        for k in 0..lines {
            let line = (obj >> LINE_SHIFT) + k;
            let b = self.bank_of(line << LINE_SHIFT) as usize;
            if self.llc[b].contains(line) {
                continue;
            }
            let (l, victim) = self.llc[b].insert(line, &self.pins);
            l.dtor = has_dtor;
            l.dirty = false;
            if let Some(v) = victim {
                self.handle_llc_victim(mem, b as u32, v, t);
            }
        }
        Walk::Done { at: t }
    }

    /// Runs the constructor(s) covering the line/object at `obj`.
    fn run_ctors(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        m: &crate::ndc::MorphRegion,
        obj: Addr,
        now: u64,
    ) -> u64 {
        let mut t = now;
        match m.ctor {
            Some(ctor) => {
                let aref = m_action(&self.ndc, ctor);
                if m.is_multiline() {
                    self.stats.ctor_actions += 1;
                    let span = (obj, obj + m.obj_size);
                    t = self.run_inline_action(mem, eid, &aref, &[obj, m.view], t, Some(span));
                } else {
                    // Parallel per-object constructors (see destructors).
                    let span = (obj, obj + LINE_SIZE);
                    let objs = LINE_SIZE / m.obj_size.min(LINE_SIZE);
                    let mut t_max = t;
                    for k in 0..objs.max(1) {
                        let oa = obj + k * m.obj_size;
                        if oa >= m.bound {
                            break;
                        }
                        self.stats.ctor_actions += 1;
                        t_max = t_max.max(self.run_inline_action(
                            mem,
                            eid,
                            &aref,
                            &[oa, m.view],
                            t,
                            Some(span),
                        ));
                    }
                    t = t_max;
                }
            }
            None => {
                if let Some(sid) = m.stream {
                    // Built-in stream constructor: read the buffer line
                    // through the hierarchy and copy it into the phantom
                    // line (2 engine memory ops per word).
                    self.stats.ctor_actions += 1;
                    let words = LINE_SIZE / 8;
                    let mut done = t;
                    for _ in 0..words {
                        let slot = self.engines[eid.index()].reserve_mem(t);
                        done = done.max(slot + self.engines[eid.index()].latency());
                        self.stats.engine_instrs += 2;
                    }
                    // One read of the underlying buffer line.
                    let buf_line_addr = obj; // phantom range *is* the ring buffer
                    if let Walk::Done { at } =
                        self.access_engine(mem, eid, AccessKind::Read, buf_line_addr, t, false)
                    {
                        done = done.max(at);
                    }
                    let _ = sid;
                    t = done;
                } else {
                    // Default constructor: zero-fill the constructed
                    // span, clamped to the Morph's bound (the tail line
                    // may be shared with unrelated allocations).
                    let span = m.obj_size.max(LINE_SIZE).min(m.bound.saturating_sub(obj));
                    mem.fill(obj, span, 0);
                    self.stats.ctor_actions += 1;
                    let slot = self.engines[eid.index()].reserve_mem(t);
                    t = slot + self.engines[eid.index()].latency();
                    self.stats.engine_instrs += LINE_SIZE / 8;
                }
            }
        }
        t
    }

    // ------------------------------------------------------------------
    // Inline action execution (data-triggered ctors/dtors)
    // ------------------------------------------------------------------

    /// Executes a short action to completion on `eid`'s dataflow fabric,
    /// charging FU slots and walking the hierarchy for its memory accesses
    /// (with phantom triggering disabled — data-triggered actions must not
    /// nest). Returns the completion time.
    ///
    /// `local` is the byte range of the line(s) being constructed or
    /// destructed: accesses inside it hit the engine's line buffer
    /// directly (the data is in flight through the engine) instead of
    /// walking the hierarchy.
    pub fn run_inline_action(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        eid: EngineId,
        aref: &crate::ndc::ActionRef,
        args: &[u64],
        start: u64,
        local: Option<(Addr, Addr)>,
    ) -> u64 {
        let prog: &Program = &aref.prog;
        let mut ctx = ExecCtx::new(aref.func, args);
        let mut reg_ready = [start; levi_isa::NUM_REGS];
        let mut done_max = start;
        let mut host = NoNdc;
        let mut fuel: u64 = 5_000_000;
        self.inline_depth += 1;
        while !ctx.halted {
            assert!(
                fuel > 0,
                "inline action ran out of fuel: {}",
                prog.func(aref.func).name()
            );
            fuel -= 1;
            let inst = &prog.func(ctx.pc.func).insts()[ctx.pc.idx as usize];
            let mut ready = start;
            inst.for_each_use(|r| ready = ready.max(reg_ready[r.index()]));
            let class = inst.class();
            let def = inst.def();
            let is_mem = class == InstClass::Mem;

            // Compute the memory address before stepping (the walk may run
            // nothing here — phantom is disabled — but must charge time).
            let slot = if is_mem {
                self.engines[eid.index()].reserve_mem(ready)
            } else {
                self.engines[eid.index()].reserve_int(ready)
            };
            let info =
                exec::step(prog, &mut ctx, mem, &mut host).expect("inline action execution failed");
            debug_assert!(info.retired(), "inline actions cannot block");
            self.stats.engine_instrs += 1;

            let mut complete = slot + self.engines[eid.index()].latency();
            if let Some(effect) = info.mem {
                let (kind, addr) = match effect {
                    MemEffect::Load { addr, .. } => (AccessKind::Read, addr),
                    MemEffect::Store { addr, .. } => (AccessKind::Write, addr),
                    MemEffect::Rmw { addr, .. } => (AccessKind::Rmw, addr),
                    MemEffect::Fence => (AccessKind::Read, 0),
                };
                let is_local = local.is_some_and(|(lo, hi)| addr >= lo && addr < hi);
                if !matches!(effect, MemEffect::Fence) && !is_local {
                    match self.access_engine(mem, eid, kind, addr, slot, false) {
                        Walk::Done { at } => complete = at,
                        Walk::Blocked(_) => unreachable!("non-phantom walks cannot block"),
                    }
                }
            } else {
                match class {
                    InstClass::Mul => complete += 2,
                    InstClass::Div => complete += 11,
                    _ => {}
                }
            }
            if let Some(rd) = def {
                reg_ready[rd.index()] = complete;
            }
            done_max = done_max.max(complete);
        }
        self.inline_depth -= 1;
        if self.inline_depth == 0 {
            // Destructors deferred by this action's own evictions must run
            // now — leaving them queued would let a later constructor
            // zero-fill their unapplied data.
            self.drain_pending_dtors(mem);
        }
        done_max
    }
}

/// Clones the action reference out of the table (the borrow checker
/// requires ending the `ndc` borrow before running the action).
pub(super) fn m_action(ndc: &NdcState, id: levi_isa::ActionId) -> crate::ndc::ActionRef {
    ndc.actions
        .get(id)
        .expect("morph ctor/dtor action not registered")
        .clone()
}
