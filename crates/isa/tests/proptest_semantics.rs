//! Property-based tests of the LevIR semantics against native Rust
//! evaluation: random straight-line ALU programs, memory round trips, and
//! control-flow invariants.

use levi_isa::interp::Interpreter;
use levi_isa::{
    AluOp, BrCond, ExecCtx, Memory, NoNdc, PagedMem, ProgramBuilder, Reg, RmwOp,
};
use proptest::prelude::*;

/// The ALU operations under test.
const OPS: [AluOp; 17] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::DivU,
    AluOp::RemU,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sar,
    AluOp::SltS,
    AluOp::SltU,
    AluOp::Seq,
    AluOp::Sne,
    AluOp::MinU,
    AluOp::MaxU,
];

proptest! {
    /// A random straight-line ALU program computes the same result as a
    /// direct Rust evaluation over a model register file.
    #[test]
    fn straight_line_alu_matches_model(
        seed0: u64,
        seed1: u64,
        steps in proptest::collection::vec((0usize..17, 0u8..8, 0u8..8, 0u8..8), 1..60),
    ) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("rand");
        let mut model = [0u64; 8];
        model[0] = seed0;
        model[1] = seed1;
        for (op_i, rd, ra, rb) in steps {
            let op = OPS[op_i];
            f.alu(op, Reg(rd), Reg(ra), Reg(rb));
            model[rd as usize] = op.apply(model[ra as usize], model[rb as usize]);
        }
        // Fold all model registers into r0 for comparison.
        for r in 1..8u8 {
            f.xor(Reg(0), Reg(0), Reg(r));
        }
        f.ret();
        let func = f.finish();
        let prog = pb.finish().unwrap();
        let mut mem = PagedMem::new();
        let got = Interpreter::new(&prog)
            .run(func, &[seed0, seed1], &mut mem)
            .unwrap();
        let want = model.iter().fold(0u64, |a, &b| a ^ b) ^ model[0] ^ model[0];
        let mut fold = model[0];
        for r in 1..8 {
            fold ^= model[r];
        }
        prop_assert_eq!(got, fold);
        let _ = want;
    }

    /// Store-then-load round-trips arbitrary values at arbitrary widths.
    #[test]
    fn store_load_round_trip(addr in 0u64..1_000_000, val: u64) {
        use levi_isa::MemWidth::*;
        for w in [B1, B2, B4, B8] {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("rt");
            f.st(Reg(0), 0, Reg(1), w);
            f.ld(Reg(0), Reg(0), 0, w, false);
            f.ret();
            let func = f.finish();
            let prog = pb.finish().unwrap();
            let mut mem = PagedMem::new();
            let got = Interpreter::new(&prog)
                .run(func, &[addr, val], &mut mem)
                .unwrap();
            prop_assert_eq!(got, w.truncate(val));
        }
    }

    /// Branch conditions agree with their Rust counterparts.
    #[test]
    fn branch_semantics_match(a: u64, b: u64) {
        let cases: [(BrCond, bool); 6] = [
            (BrCond::Eq, a == b),
            (BrCond::Ne, a != b),
            (BrCond::LtU, a < b),
            (BrCond::GeU, a >= b),
            (BrCond::LtS, (a as i64) < (b as i64)),
            (BrCond::GeS, (a as i64) >= (b as i64)),
        ];
        for (cond, expect) in cases {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("b");
            let taken = f.label();
            f.br(cond, Reg(0), Reg(1), taken);
            f.imm(Reg(0), 0u64);
            f.ret();
            f.bind(taken);
            f.imm(Reg(0), 1u64);
            f.ret();
            let func = f.finish();
            let prog = pb.finish().unwrap();
            let mut mem = PagedMem::new();
            let got = Interpreter::new(&prog).run(func, &[a, b], &mut mem).unwrap();
            prop_assert_eq!(got == 1, expect, "{:?}({}, {})", cond, a, b);
        }
    }

    /// A chain of atomic RMWs leaves memory in the state a sequential fold
    /// produces, and each returns the previous value.
    #[test]
    fn rmw_chain_folds(init: u64, vals in proptest::collection::vec(any::<u64>(), 1..20)) {
        let ops = [RmwOp::Add, RmwOp::And, RmwOp::Or, RmwOp::Xor, RmwOp::MinU, RmwOp::MaxU, RmwOp::Xchg];
        for op in ops {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("chain");
            // r0 = addr, r1.. not enough regs for all vals; loop via memory.
            // Simpler: unroll with imm.
            for &v in &vals {
                f.imm(Reg(2), v);
                f.rmw_relaxed(op, Reg(3), Reg(0), Reg(2), levi_isa::MemWidth::B8);
            }
            f.ret();
            let func = f.finish();
            let prog = pb.finish().unwrap();
            let mut mem = PagedMem::new();
            mem.write_u64(0x100, init);
            Interpreter::new(&prog).run(func, &[0x100], &mut mem).unwrap();
            let want = vals.iter().fold(init, |acc, &v| op.apply(acc, v));
            prop_assert_eq!(mem.read_u64(0x100), want, "{:?}", op);
        }
    }

    /// Every instruction's `def` register is the only register a step may
    /// change (NDC-free instructions).
    #[test]
    fn step_writes_only_def(seed: u64, op_i in 0usize..17, rd in 0u8..16, ra in 0u8..16, rb in 0u8..16) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("one");
        f.alu(OPS[op_i], Reg(rd), Reg(ra), Reg(rb));
        f.ret();
        let func = f.finish();
        let prog = pb.finish().unwrap();
        let mut ctx = ExecCtx::new(func, &[]);
        for (i, r) in ctx.regs.iter_mut().enumerate() {
            *r = seed.wrapping_mul(i as u64 + 1);
        }
        let before = ctx.regs;
        let mut mem = PagedMem::new();
        let mut host = NoNdc;
        levi_isa::exec::step(&prog, &mut ctx, &mut mem, &mut host).unwrap();
        for i in 0..levi_isa::NUM_REGS {
            if i != rd as usize {
                prop_assert_eq!(ctx.regs[i], before[i], "register r{} changed", i);
            }
        }
    }
}
