//! Integration tests for the levi-serve service layer: coalescing,
//! content-addressed caching, damage handling, back-pressure, and
//! byte-identity between in-process and remote runs.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use levi_bench::out::{self, Line};
use levi_bench::serve::{
    Event, FigureExecutor, Job, JobExecutor, ServeConfig, Server, ServerHandle,
};

fn temp_cache(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("levi-serve-test-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("results.cache").to_str().unwrap().to_string()
}

fn start(
    name: &str,
    workers: usize,
    queue_depth: usize,
    exec: Arc<dyn JobExecutor>,
) -> ServerHandle {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_path: temp_cache(name),
        workers,
        queue_depth,
    };
    Server::start(&cfg, exec).expect("server starts")
}

/// A raw protocol connection: one request out, events in.
struct Conn {
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn submit(addr: std::net::SocketAddr, job: &Job) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut w = stream.try_clone().unwrap();
        w.write_all(format!("{}\n", job.request_line()).as_bytes())
            .unwrap();
        Conn {
            reader: BufReader::new(stream),
        }
    }

    fn next_event(&mut self) -> Event {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read event");
        Event::parse(line.trim_end()).expect("parse event")
    }

    /// Reads to the final event, returning (transcript, final event).
    fn drain(mut self, mut first: Option<Event>) -> (Vec<Line>, Event) {
        let mut lines = Vec::new();
        loop {
            let event = match first.take() {
                Some(e) => e,
                None => self.next_event(),
            };
            match event {
                Event::Start { .. } => {}
                Event::Line(l) => lines.push(l),
                done @ (Event::Done { .. } | Event::Error { .. }) => return (lines, done),
            }
        }
    }
}

/// An executor that counts executions and blocks on a gate mid-run, so
/// tests can hold a job in the "executing" state deterministically.
struct GateExec {
    executions: AtomicU64,
    gate: Mutex<bool>,
    opened: Condvar,
}

impl GateExec {
    fn new() -> Arc<GateExec> {
        Arc::new(GateExec {
            executions: AtomicU64::new(0),
            gate: Mutex::new(false),
            opened: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.gate.lock().unwrap() = true;
        self.opened.notify_all();
    }
}

impl JobExecutor for GateExec {
    fn execute(&self, job: &Job, emit: &mut dyn FnMut(Line)) -> Result<(), String> {
        let n = self.executions.fetch_add(1, Ordering::SeqCst) + 1;
        emit(Line::Progress(format!("  execution {n} of {}", job.figure)));
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
        drop(open);
        emit(Line::Out(format!("report for {}", job.figure)));
        Ok(())
    }
}

fn quick_job(figure: &str) -> Job {
    let mut job = Job::new(figure);
    job.quick = true;
    job
}

/// Captures everything [`out`] emits on this thread while `f` runs.
fn capture<F: FnOnce()>(f: F) -> Vec<Line> {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink_ref = Arc::clone(&lines);
    let guard = out::install_sink(Box::new(move |l| sink_ref.lock().unwrap().push(l)));
    f();
    drop(guard);
    Arc::try_unwrap(lines).unwrap().into_inner().unwrap()
}

#[test]
fn concurrent_identical_requests_coalesce_into_one_execution() {
    let exec = GateExec::new();
    let server = start("coalesce", 1, 8, Arc::clone(&exec) as Arc<dyn JobExecutor>);
    let addr = server.addr();
    let job = quick_job("table05_config");

    // Four identical requests; read each one's start event so all four
    // are subscribed before the gate opens.
    let mut conns = Vec::new();
    let mut coalesced_flags = Vec::new();
    for _ in 0..4 {
        let mut conn = Conn::submit(addr, &job);
        match conn.next_event() {
            Event::Start {
                cached, coalesced, ..
            } => {
                assert!(!cached);
                coalesced_flags.push(coalesced);
            }
            other => panic!("expected start, got {other:?}"),
        }
        conns.push(conn);
    }
    assert_eq!(
        coalesced_flags.iter().filter(|&&c| !c).count(),
        1,
        "exactly one request owns the execution: {coalesced_flags:?}"
    );

    exec.open();
    let mut transcripts = Vec::new();
    for conn in conns {
        let (lines, done) = conn.drain(None);
        assert!(
            matches!(done, Event::Done { cached: false, .. }),
            "{done:?}"
        );
        transcripts.push(lines);
    }
    for t in &transcripts[1..] {
        assert_eq!(t, &transcripts[0], "every subscriber sees identical bytes");
    }
    assert_eq!(exec.executions.load(Ordering::SeqCst), 1);
    assert_eq!(server.executions(), 1);

    // A fifth request after completion replays from the cache.
    let (lines, done) = Conn::submit(addr, &job).drain(None);
    assert!(matches!(done, Event::Done { cached: true, .. }), "{done:?}");
    assert_eq!(lines, transcripts[0], "cache replay is byte-identical");
    assert_eq!(server.executions(), 1, "the cache hit executed nothing");
    server.shutdown();
}

#[test]
fn remote_run_is_byte_identical_to_in_process_and_second_hits_cache() {
    let server = start("figure", 2, 8, Arc::new(FigureExecutor));
    let addr = server.addr().to_string();
    let job = quick_job("table05_config");

    // In-process reference: the same engine, captured locally.
    let fig = levi_bench::runner::find_figure("table05_config").unwrap();
    let local = capture(|| levi_bench::runner::run_figure(fig, &job.run_ctx()));
    assert!(!local.is_empty());

    let mut first = None;
    let remote_cold = capture(|| {
        first = Some(levi_bench::serve::run_remote(&addr, &job).expect("cold run"));
    });
    let first = first.unwrap();
    assert!(!first.cached);
    assert_eq!(first.figure, "table05_config");
    assert_eq!(remote_cold, local, "remote replay is byte-identical");

    let mut second = None;
    let remote_warm = capture(|| {
        second = Some(levi_bench::serve::run_remote(&addr, &job).expect("warm run"));
    });
    let second = second.unwrap();
    assert!(second.cached, "identical job replays from the cache");
    assert_eq!(second.key, first.key, "same content address");
    assert_eq!(remote_warm, local, "cached replay is byte-identical too");
    assert_eq!(server.executions(), 1);
    server.shutdown();
}

#[test]
fn corrupted_or_truncated_cache_is_a_miss_and_reexecutes() {
    let path = temp_cache("damage");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_path: path.clone(),
        workers: 1,
        queue_depth: 8,
    };
    let job = quick_job("table05_config");

    // Warm the cache with one real execution.
    let exec = GateExec::new();
    exec.open();
    let server = Server::start(&cfg, Arc::clone(&exec) as Arc<dyn JobExecutor>).unwrap();
    let (cold, done) = Conn::submit(server.addr(), &job).drain(None);
    assert!(matches!(done, Event::Done { cached: false, .. }));
    assert_eq!(server.executions(), 1);
    server.shutdown();

    // Flip one hex digit inside the entry blob on disk.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    assert_eq!(lines.len(), 2, "header + one entry: {text:?}");
    let flip = lines[1].len() - 8;
    let flipped = if lines[1].as_bytes()[flip] == b'0' {
        "1"
    } else {
        "0"
    };
    lines[1].replace_range(flip..flip + 1, flipped);
    std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

    // A new server on the same cache must treat the entry as a miss.
    let exec2 = GateExec::new();
    exec2.open();
    let server = Server::start(&cfg, Arc::clone(&exec2) as Arc<dyn JobExecutor>).unwrap();
    let (rerun, done) = Conn::submit(server.addr(), &job).drain(None);
    assert!(
        matches!(done, Event::Done { cached: false, .. }),
        "damaged entry must never be served: {done:?}"
    );
    assert_eq!(server.executions(), 1, "the job re-executed");
    assert_eq!(rerun, cold, "re-execution reproduces the original bytes");
    server.shutdown();

    // Truncate the (re-written) entry mid-blob, as a kill would.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() - 11]).unwrap();
    let exec3 = GateExec::new();
    exec3.open();
    let server = Server::start(&cfg, Arc::clone(&exec3) as Arc<dyn JobExecutor>).unwrap();
    let (_, done) = Conn::submit(server.addr(), &job).drain(None);
    assert!(
        matches!(done, Event::Done { cached: false, .. }),
        "{done:?}"
    );
    assert_eq!(server.executions(), 1, "torn entry re-executed");
    server.shutdown();
}

#[test]
fn full_queue_answers_busy_and_queued_timeout_expires() {
    let exec = GateExec::new();
    let server = start("busy", 1, 1, Arc::clone(&exec) as Arc<dyn JobExecutor>);
    let addr = server.addr();

    // Job A occupies the single worker (gated mid-run). Reading its
    // first output line proves execution started, i.e. the queue is
    // empty again.
    let mut a = Conn::submit(addr, &quick_job("table05_config"));
    assert!(matches!(a.next_event(), Event::Start { .. }));
    let a_first = a.next_event();
    assert!(matches!(a_first, Event::Line(_)), "{a_first:?}");

    // Job B (distinct key) fills the depth-1 queue, with a 1 ms queue
    // deadline it is guaranteed to miss while A holds the worker.
    let mut b_job = quick_job("table04_area");
    b_job.timeout_ms = Some(1);
    let mut b = Conn::submit(addr, &b_job);
    assert!(matches!(b.next_event(), Event::Start { .. }));

    // Job C (a third key) finds the queue full: typed busy, immediately.
    let c_job = Job::new("table04_area"); // full-scale: different key
    let (_, c_done) = Conn::submit(addr, &c_job).drain(None);
    match c_done {
        Event::Error { code, message } => {
            assert_eq!(code, "busy");
            assert!(message.contains("queue full"), "{message}");
        }
        other => panic!("expected busy, got {other:?}"),
    }

    // Let B's deadline lapse, then release A. The worker finishes A,
    // then retires B as timed out without executing it.
    std::thread::sleep(std::time::Duration::from_millis(25));
    exec.open();
    let (_, a_done) = a.drain(None);
    assert!(matches!(a_done, Event::Done { .. }), "{a_done:?}");
    let (b_lines, b_done) = b.drain(None);
    match b_done {
        Event::Error { code, .. } => assert_eq!(code, "timeout"),
        other => panic!("expected timeout, got {other:?}"),
    }
    assert!(b_lines.is_empty(), "a timed-out job never ran");
    assert_eq!(server.executions(), 1, "only A executed");
    server.shutdown();
}

#[test]
fn bad_requests_get_typed_errors() {
    let server = start("bad", 1, 2, Arc::new(FigureExecutor));
    let addr = server.addr();

    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    BufReader::new(raw).read_line(&mut line).unwrap();
    match Event::parse(line.trim_end()).unwrap() {
        Event::Error { code, .. } => assert_eq!(code, "bad_request"),
        other => panic!("expected bad_request, got {other:?}"),
    }

    let (_, done) = Conn::submit(addr, &Job::new("no_such_figure")).drain(None);
    match done {
        Event::Error { code, message } => {
            assert_eq!(code, "bad_request");
            assert!(message.contains("no_such_figure"), "{message}");
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    assert_eq!(server.executions(), 0);
    server.shutdown();
}

#[test]
fn prefix_figure_ids_resolve_to_one_cache_entry() {
    let server = start("prefix", 1, 4, Arc::new(FigureExecutor));
    let addr = server.addr().to_string();

    let full = levi_bench::serve::run_remote(&addr, &quick_job("table05_config")).unwrap();
    let prefixed = levi_bench::serve::run_remote(&addr, &quick_job("table05")).unwrap();
    assert_eq!(prefixed.figure, "table05_config");
    assert_eq!(prefixed.key, full.key, "canonicalization precedes keying");
    assert!(prefixed.cached);
    assert_eq!(server.executions(), 1);
    server.shutdown();
}
