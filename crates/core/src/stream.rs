//! Streams: decoupled near-data producers (paper Sec. V-B3, Fig. 10).
//!
//! A Leviathan stream combines two paradigms under the hood: a
//! **long-lived** producer action (`genStream`) running on an engine
//! pushes entries into a circular buffer in shared memory, and the
//! consumer reads entries through a **data-triggered** phantom range whose
//! built-in constructor copies buffer lines up the hierarchy — stalling
//! the consumer's loads if it runs past the stream tail. The consumer's
//! `pop` bumps the head pointer, invalidates the dead line, and unblocks
//! the producer.

use levi_isa::{Addr, FuncId, Program};
use levi_sim::{EngineLevel, StreamId, StreamMode};
use std::sync::Arc;

/// Specification of a stream.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// Diagnostic name.
    pub name: String,
    /// Buffer capacity in entries (Fig. 23 sweeps this; paper default 64+).
    pub capacity: u64,
    /// The core that consumes the stream.
    pub consumer: u32,
    /// Which of the consumer tile's engines hosts the producer.
    pub engine_level: EngineLevel,
    /// Producer program.
    pub producer_prog: Arc<Program>,
    /// Producer entry function (`genStream`); receives the stream handle
    /// in `r0` and [`StreamSpec::producer_args`] in `r1..`.
    pub producer_func: FuncId,
    /// Extra arguments for the producer.
    pub producer_args: Vec<u64>,
    /// Run-ahead (Leviathan) or miss-triggered (tākō pseudo-streaming).
    pub mode: StreamMode,
}

impl StreamSpec {
    /// A run-ahead stream on the consumer tile's LLC engine.
    pub fn new(
        name: &str,
        capacity: u64,
        consumer: u32,
        prog: &Arc<Program>,
        func: FuncId,
    ) -> Self {
        StreamSpec {
            name: name.to_string(),
            capacity,
            consumer,
            engine_level: EngineLevel::Llc,
            producer_prog: Arc::clone(prog),
            producer_func: func,
            producer_args: Vec::new(),
            mode: StreamMode::RunAhead,
        }
    }

    /// Adds producer arguments.
    pub fn with_args(mut self, args: &[u64]) -> Self {
        self.producer_args = args.to_vec();
        self
    }

    /// Switches to tākō-style miss-triggered pseudo-streaming.
    pub fn miss_triggered(mut self, reinit_instrs: u32) -> Self {
        self.mode = StreamMode::MissTriggered { reinit_instrs };
        self
    }
}

/// A live stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamHandle {
    /// The stream id (pass as the handle register to `push`/`pop`).
    pub id: StreamId,
    /// Base address of the circular buffer (= the phantom range the
    /// consumer loads entries from).
    pub buffer: Addr,
    /// Capacity in entries.
    pub capacity: u64,
    /// Entry size in bytes.
    pub entry_size: u64,
}

impl StreamHandle {
    /// The handle value to place in the stream register.
    pub fn reg_value(&self) -> u64 {
        self.id.0 as u64
    }

    /// Address the consumer loads entry number `n` from (ring addressing).
    pub fn entry_addr(&self, n: u64) -> Addr {
        self.buffer + (n % self.capacity) * self.entry_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levi_isa::ProgramBuilder;

    #[test]
    fn spec_builder() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("gen");
        f.halt();
        let func = f.finish();
        let prog = Arc::new(pb.finish().unwrap());
        let s = StreamSpec::new("edges", 64, 3, &prog, func)
            .with_args(&[7, 8])
            .miss_triggered(15);
        assert_eq!(s.capacity, 64);
        assert_eq!(s.consumer, 3);
        assert_eq!(s.producer_args, vec![7, 8]);
        assert!(matches!(
            s.mode,
            StreamMode::MissTriggered { reinit_instrs: 15 }
        ));
    }

    #[test]
    fn handle_ring_addressing() {
        let h = StreamHandle {
            id: StreamId(2),
            buffer: 0x8000,
            capacity: 16,
            entry_size: 8,
        };
        assert_eq!(h.reg_value(), 2);
        assert_eq!(h.entry_addr(0), 0x8000);
        assert_eq!(h.entry_addr(16), 0x8000, "wraps at capacity");
        assert_eq!(h.entry_addr(17), 0x8008);
    }
}
