//! Fault-injection integration tests: determinism, byte-identity of the
//! zero-fault path, graceful degradation under each fault class, the
//! watchdog, and the Fig. 22 invoke-buffer backpressure path.

use std::sync::Arc;

use levi_isa::{ActionId, Location, MemWidth, ProgramBuilder, Reg, RmwOp};
use levi_sim::{CycleWindow, EngineId, EngineLevel, FaultPlan, LinkFaultKind, RunError, Stats};
use levi_workloads::phi::{golden_checksum, phi_graph, run_phi_on, PhiScale, PhiVariant};
use leviathan::{System, SystemConfig};

/// The quickstart RMO workload: `threads` cores each push `per_thread`
/// remote atomic adds onto 64 shared counters. Returns the finished
/// system; the counter sum must equal `threads * per_thread`.
fn run_counters(cfg: SystemConfig, per_thread: u64) -> System {
    let mut pb = ProgramBuilder::new();
    let action = {
        let mut f = pb.function("counter_add");
        let (actor, amount, old) = (Reg(0), Reg(1), Reg(2));
        f.rmw_relaxed(RmwOp::Add, old, actor, amount, MemWidth::B8);
        f.halt();
        f.finish()
    };
    let main_fn = {
        let mut f = pb.function("main");
        let (counters, n, stride) = (Reg(0), Reg(1), Reg(2));
        let (i, idx, actor, amount) = (Reg(8), Reg(9), Reg(10), Reg(11));
        f.imm(i, 0).imm(amount, 1);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.muli(idx, i, 7);
        f.remu(idx, idx, stride);
        f.muli(actor, idx, 8);
        f.add(actor, actor, counters);
        f.invoke(actor, ActionId(0), &[amount], Location::Remote);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());
    let mut sys = System::try_new(cfg).expect("config is valid");
    let counters = sys.alloc_raw(8 * 64, 64);
    sys.register_action(&prog, action);
    for t in 0..sys.tiles() {
        sys.spawn_thread(t, &prog, main_fn, &[counters, per_thread, 64])
            .unwrap();
    }
    sys.run().expect("counter workload must complete");
    let total: u64 = (0..64).map(|i| sys.read_u64(counters + 8 * i)).sum();
    assert_eq!(total, per_thread * sys.tiles() as u64, "updates lost");
    sys
}

/// A seeded plan covering all four fault classes at the counter
/// workload's scale.
fn demo_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .gen_engine_outages(4, 4, 10_000, 1_000, 5_000)
        .gen_invoke_squeezes(2, 1, 10_000, 1_000, 4_000)
        .gen_link_slowdowns(3, 4, 8, 10_000, 1_000, 5_000)
        .gen_link_outages(1, 4, 10_000, 500, 2_000)
        .gen_dram_throttles(2, 4, 4, 10_000, 1_000, 5_000)
        .retry_budget(3)
        .backoff(16, 256)
}

/// Stats snapshot used for byte-identity comparison: the full Display
/// rendering plus the trace serialization.
fn snapshot(s: &Stats) -> (String, String) {
    (s.to_string(), s.trace.to_chrome_json())
}

#[test]
fn same_seed_and_plan_give_identical_runs() {
    let mk = || {
        let mut cfg = SystemConfig::small().with_fault_plan(demo_plan(3));
        cfg.machine.trace = true;
        run_counters(cfg, 300)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.stats().cycles, b.stats().cycles);
    assert_eq!(snapshot(a.stats()), snapshot(b.stats()));
    // The plan actually perturbed the run (faults were live, not a no-op).
    assert!(a.stats().fault_degraded_cycles > 0 || a.stats().fault_nack_retries > 0);
}

#[test]
fn zero_fault_plan_is_byte_identical_to_no_plan() {
    let clean = run_counters(SystemConfig::small(), 200);
    // An empty plan (whatever its seed) must not perturb anything: every
    // fault hook early-exits, no stats line changes, no trace event lands.
    let empty = FaultPlan::new(99).retry_budget(7).backoff(32, 512);
    assert!(empty.is_zero());
    let planned = run_counters(SystemConfig::small().with_fault_plan(empty), 200);
    assert_eq!(clean.stats().cycles, planned.stats().cycles);
    assert_eq!(snapshot(clean.stats()), snapshot(planned.stats()));
}

#[test]
fn engine_outages_degrade_gracefully() {
    // Refuse every engine for the whole run: each invoke burns its retry
    // budget, then falls back to the issuing core. The answer must still
    // be exact.
    let mut plan = FaultPlan::new(1).retry_budget(2).backoff(8, 64);
    for tile in 0..4 {
        for level in [EngineLevel::L2, EngineLevel::Llc] {
            plan = plan.add_engine_fault(EngineId { tile, level }, CycleWindow::new(0, u64::MAX));
        }
    }
    let sys = run_counters(SystemConfig::small().with_fault_plan(plan), 50);
    let s = sys.stats();
    assert_eq!(s.invokes, 0, "no invoke may land on a refusing engine");
    assert_eq!(s.fault_fallbacks, 4 * 50, "every invoke fell back");
    assert_eq!(s.fault_nack_retries, 2 * 4 * 50, "full budget per invoke");
    assert!(s.invoke_nacks >= s.fault_nack_retries);
    assert!(!s.fault_backoff.is_empty());
}

#[test]
fn link_outage_shows_up_as_degraded_cycles() {
    let clean = run_counters(SystemConfig::small(), 100);
    // Slow every link so any remote traffic pays the penalty.
    let mut plan = FaultPlan::new(2);
    for node in 0..4 {
        for dir in 0..4 {
            plan = plan.add_link_fault(
                node,
                dir,
                CycleWindow::new(0, u64::MAX),
                LinkFaultKind::Slowdown { extra: 6 },
            );
        }
    }
    let slow = run_counters(SystemConfig::small().with_fault_plan(plan), 100);
    assert!(slow.stats().fault_degraded_cycles > 0);
    assert!(
        slow.stats().cycles > clean.stats().cycles,
        "degraded mesh must cost wall-clock: {} vs {}",
        slow.stats().cycles,
        clean.stats().cycles
    );
}

#[test]
fn dram_throttle_slows_cold_misses() {
    let clean = run_counters(SystemConfig::small(), 100);
    let mut plan = FaultPlan::new(4);
    for mc in 0..4 {
        plan = plan.add_dram_fault(mc, CycleWindow::new(0, u64::MAX), 8);
    }
    let slow = run_counters(SystemConfig::small().with_fault_plan(plan), 100);
    assert!(
        slow.stats().fault_degraded_cycles > 0,
        "cold misses throttled"
    );
    // The throttled misses overlap with offloaded work, so the end-to-end
    // time may absorb them — but it can never improve.
    assert!(slow.stats().cycles >= clean.stats().cycles);
}

#[test]
fn watchdog_converts_runaway_into_error() {
    let mut pb = ProgramBuilder::new();
    let main_fn = {
        let mut f = pb.function("spin");
        let top = f.label();
        f.bind(top);
        f.jmp(top); // never halts
        f.finish()
    };
    let prog = Arc::new(pb.finish().unwrap());
    let mut sys =
        System::try_new(SystemConfig::small().with_watchdog(20_000)).expect("config is valid");
    sys.spawn_thread(0, &prog, main_fn, &[]).unwrap();
    match sys.run() {
        Err(RunError::Watchdog { limit, at }) => {
            assert_eq!(limit, 20_000);
            assert!(at > 20_000);
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

#[test]
fn fig22_invoke_buffer_backpressure_nacks_and_drains() {
    // The Fig. 22 path: a single-context engine NACKs bursts of invokes
    // (the cores' ACK queues park and drain at the buffer boundary), and
    // a 1-entry invoke buffer serializes issue without losing updates.
    let mut nacked = SystemConfig::small();
    nacked.machine.engine.contexts = 1;
    nacked.machine.core.invoke_buffer = 16;
    let sys = run_counters(nacked, 150);
    assert!(
        sys.stats().invoke_nacks > 0,
        "a 1-context engine under 4-core fire must NACK"
    );
    assert_eq!(sys.stats().invokes, 4 * 150);

    let mut tight = SystemConfig::small();
    tight.machine.core.invoke_buffer = 1;
    let sys = run_counters(tight, 150);
    assert_eq!(
        sys.stats().invokes,
        4 * 150,
        "1-entry ACK queue drains at the boundary without losing invokes"
    );
}

#[test]
fn fig22_phi_leviathan_survives_tiny_invoke_buffer() {
    // The actual Fig. 22 sweep workload at its smallest point: PHI's
    // Leviathan variant with a 1-entry invoke buffer must still compute
    // golden ranks (backpressure only stalls, never drops).
    let mut scale = PhiScale::test();
    scale.invoke_buffer = 1;
    let graph = phi_graph(&scale);
    let r = run_phi_on(PhiVariant::Leviathan, &scale, &graph);
    assert_eq!(r.rank_checksum, golden_checksum(&graph));
    assert_eq!(r.leftover_deltas, 0);
}
