//! # LevIR — the Leviathan intermediate representation
//!
//! `levi-isa` defines **LevIR**, a small RISC-like virtual instruction set
//! used throughout the Leviathan reproduction. Both *core threads* (the
//! application code running on the simulated multicore) and *near-data
//! actions* (the code Leviathan executes on engines next to cache banks) are
//! expressed as LevIR programs.
//!
//! The crate provides four things:
//!
//! 1. **The instruction set** ([`Inst`] and friends): ALU operations, memory
//!    accesses, control flow, and the NDC instructions from the paper's
//!    Table III (`invoke`, future send/wait, stream push/pop, atomic RMW,
//!    fences, and flushes).
//! 2. **Programs** ([`Program`], [`Function`]): validated containers of
//!    functions with resolved labels.
//! 3. **A builder** ([`ProgramBuilder`], [`FunctionBuilder`]): an
//!    assembler-style API with labels used by all workloads and actions.
//! 4. **Execution semantics** ([`exec::step`]): a single-step functional
//!    semantics parameterized over a [`Memory`] and an [`NdcHost`]. The
//!    timing simulator in `levi-sim` wraps this function with a cycle model;
//!    the [`interp`] module wraps it into a plain run-to-completion
//!    interpreter for tests.
//!
//! # Example
//!
//! Build and run a function that sums the 64-bit integers in an array:
//!
//! ```
//! use levi_isa::{ProgramBuilder, Reg, interp::Interpreter, mem::{Memory, PagedMem}};
//!
//! # fn main() -> Result<(), levi_isa::ProgramError> {
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("sum");
//! // args: r0 = base address, r1 = element count; returns sum in r0.
//! let (base, n, acc, i, v) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
//! let loop_top = f.label();
//! let done = f.label();
//! f.imm(acc, 0).imm(i, 0);
//! f.bind(loop_top);
//! f.bge_u(i, n, done);
//! f.ld8(v, base, 0);
//! f.add(acc, acc, v);
//! f.addi(base, base, 8);
//! f.addi(i, i, 1);
//! f.jmp(loop_top);
//! f.bind(done);
//! f.mov(Reg(0), acc).ret();
//! let sum = f.finish();
//! let prog = pb.finish()?;
//!
//! let mut mem = PagedMem::new();
//! for (k, x) in [3u64, 5, 7].iter().enumerate() {
//!     mem.write_u64(0x1000 + 8 * k as u64, *x);
//! }
//! let mut interp = Interpreter::new(&prog);
//! let ret = interp.run(sum, &[0x1000, 3], &mut mem).unwrap();
//! assert_eq!(ret, 15);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod codec;
pub mod exec;
pub mod fx;
pub mod inst;
pub mod interp;
pub mod mem;
pub mod program;

pub use asm::{assemble, AsmError};
pub use builder::{FunctionBuilder, ProgramBuilder};
pub use exec::{
    Control, ExecCtx, ExecError, MemEffect, NdcHost, NdcRequest, NoNdc, Poll, StepInfo,
};
pub use inst::{
    Addr, AluOp, BrCond, Inst, InstClass, Label, Location, MemOrder, MemWidth, Reg, RmwOp, NUM_REGS,
};
pub use mem::{Memory, PagedMem};
pub use program::{ActionId, FuncId, Function, Program, ProgramError};
