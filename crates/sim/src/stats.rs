//! Execution statistics.
//!
//! A single [`Stats`] struct accumulates every counter the evaluation
//! needs: per-level cache hits/misses, NoC traffic, DRAM accesses (broken
//! down by workload *phase* for Fig. 21), branch predictor outcomes,
//! instruction counts, and NDC bookkeeping.

use std::fmt;

use crate::hist::Histogram;
use crate::span::SpanTable;
use crate::trace::Tracer;

/// Slowest invokes listed by the `Display` critical-path report.
pub const TOP_SLOW_INVOKES: usize = 5;

/// Workload phase tag for phase-attributed counters (e.g. Fig. 21 splits
/// DRAM accesses between PageRank's edge and vertex phases).
pub const MAX_PHASES: usize = 4;

/// Per-cache-level access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines written back out of this level.
    pub writebacks: u64,
}

impl LevelStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in \[0, 1\]; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// All counters accumulated during a run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Final simulated cycle (set when the run finishes).
    pub cycles: u64,
    /// Instructions retired by cores.
    pub core_instrs: u64,
    /// Instructions retired by engines (all contexts + inline actions).
    pub engine_instrs: u64,

    /// L1 data caches (cores).
    pub l1: LevelStats,
    /// Private L2 caches.
    pub l2: LevelStats,
    /// Shared LLC banks.
    pub llc: LevelStats,
    /// Engine L1d caches.
    pub engine_l1: LevelStats,

    /// Directory lookups at the LLC.
    pub dir_lookups: u64,
    /// Invalidation messages sent to private caches.
    pub invalidations: u64,
    /// Cache-to-cache ownership transfers (the "ping-pong" the paper's
    /// task offload eliminates).
    pub ownership_transfers: u64,

    /// NoC messages sent.
    pub noc_messages: u64,
    /// NoC flit-hops (flits × hops), the traffic/energy metric.
    pub noc_flit_hops: u64,

    /// DRAM line accesses (reads + writes), total.
    pub dram_accesses: u64,
    /// DRAM accesses attributed per phase (see [`Stats::set_phase`]).
    pub dram_by_phase: [u64; MAX_PHASES],
    /// Memory-controller FIFO-cache hits (avoided DRAM accesses).
    pub mc_cache_hits: u64,

    /// Conditional branches executed on cores.
    pub branches: u64,
    /// Mispredicted conditional branches on cores.
    pub mispredicts: u64,

    /// Memory fences executed (including fenced atomics' implied fences).
    pub fences: u64,
    /// Atomic RMWs executed by cores.
    pub core_rmws: u64,

    /// Tasks offloaded via `invoke`.
    pub invokes: u64,
    /// Invokes that were NACKed (engine context buffer full) and retried.
    pub invoke_nacks: u64,
    /// Invokes that executed on the local tile due to the 1/32 migrate-up
    /// policy.
    pub invoke_migrations: u64,
    /// Data-triggered constructor actions executed.
    pub ctor_actions: u64,
    /// Data-triggered destructor actions executed.
    pub dtor_actions: u64,
    /// Stream entries pushed by producers.
    pub stream_pushes: u64,
    /// Stream entries popped by consumers.
    pub stream_pops: u64,
    /// Cycles consumer loads stalled waiting for stream data.
    pub stream_stall_cycles: u64,
    /// L2 prefetches issued.
    pub prefetches: u64,

    /// Fault windows injected by the configured
    /// [`FaultPlan`](crate::fault::FaultPlan) (0 when no plan is set).
    pub faults_injected: u64,
    /// Invoke retries caused by fault-refused engines (backoff path).
    pub fault_nack_retries: u64,
    /// Invokes that exhausted the retry budget and fell back to executing
    /// on the issuing core.
    pub fault_fallbacks: u64,
    /// Extra cycles attributable to injected faults: backoff waits,
    /// squeeze stalls, NoC slowdown/outage delay, DRAM throttle delay.
    pub fault_degraded_cycles: u64,

    /// Invoke round-trip latency (issue to acknowledgment) in cycles.
    pub invoke_rtt: Histogram,
    /// Load-to-use latency (issue of a core load to data return) in cycles.
    pub load_to_use: Histogram,
    /// DRAM controller queueing delay (arrival to service start) in cycles.
    pub dram_queue: Histogram,
    /// Duration of individual stream-pop stalls in cycles.
    pub stream_stall: Histogram,
    /// Backoff delay per fault-induced invoke retry, in cycles.
    pub fault_backoff: Histogram,

    /// Host wall-time attributed to simulator phases by the scoped
    /// profiler (see [`crate::perf`]). Empty unless the crate is built
    /// with the `self-profile` feature; [`crate::Machine::run`] drains the
    /// thread-local accumulator here when it returns. Never printed by
    /// `Display` — wall-clock nanoseconds are nondeterministic and must
    /// stay out of byte-identical outputs.
    pub host_phases: crate::perf::PhaseProfile,

    /// Structured event recorder (off by default; see
    /// [`crate::config::MachineConfig::trace`]).
    pub trace: Tracer,
    /// Causal invoke-lifecycle spans for the critical-path analyzer (off
    /// by default; see
    /// [`crate::config::MachineConfig::trace_spans`]).
    pub spans: SpanTable,
    /// Periodic time-series sampler (off by default; see
    /// [`crate::config::MachineConfig::sample_interval`]).
    pub timeline: TimeSeries,

    /// TLB lookups that hit (0 unless translation is enabled; see
    /// [`crate::xlat`]).
    pub tlb_hits: u64,
    /// TLB lookups that missed and paid a page walk.
    pub tlb_misses: u64,
    /// Total cycles charged to page walks (NoC + DRAM + fixed per-level
    /// latency).
    pub tlb_walk_cycles: u64,
    /// Invokes NACKed by the tenant engine-slot quota (subset of
    /// `invoke_nacks`).
    pub tenant_quota_nacks: u64,
    /// Per-walk latency distribution (empty unless translation is on).
    pub xlat_walk: Histogram,
    /// LLC misses attributed to each tenant (empty unless tenancy is on).
    pub tenant_llc_misses: Vec<u64>,
    /// Invokes issued by each tenant.
    pub tenant_invokes: Vec<u64>,
    /// Latest core-thread finish cycle observed per tenant (a slowdown
    /// proxy: the spread shows inter-tenant interference).
    pub tenant_finish: Vec<u64>,

    current_phase: usize,
}

impl Stats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current workload phase for phase-attributed counters.
    ///
    /// # Panics
    /// Panics if `phase >= MAX_PHASES`.
    pub fn set_phase(&mut self, phase: usize) {
        assert!(phase < MAX_PHASES, "phase {phase} out of range");
        self.current_phase = phase;
    }

    /// The current phase index.
    pub fn phase(&self) -> usize {
        self.current_phase
    }

    /// Records one DRAM access in the current phase.
    pub(crate) fn count_dram(&mut self) {
        self.dram_accesses += 1;
        self.dram_by_phase[self.current_phase] += 1;
    }

    /// Branch misprediction rate in \[0, 1\].
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:            {}", self.cycles)?;
        writeln!(f, "core instrs:       {}", self.core_instrs)?;
        writeln!(f, "engine instrs:     {}", self.engine_instrs)?;
        writeln!(
            f,
            "L1  hits/misses:   {}/{} ({:.1}% miss)",
            self.l1.hits,
            self.l1.misses,
            self.l1.miss_ratio() * 100.0
        )?;
        writeln!(
            f,
            "L2  hits/misses:   {}/{} ({:.1}% miss)",
            self.l2.hits,
            self.l2.misses,
            self.l2.miss_ratio() * 100.0
        )?;
        writeln!(
            f,
            "LLC hits/misses:   {}/{} ({:.1}% miss)",
            self.llc.hits,
            self.llc.misses,
            self.llc.miss_ratio() * 100.0
        )?;
        writeln!(
            f,
            "eL1 hits/misses:   {}/{} ({:.1}% miss)",
            self.engine_l1.hits,
            self.engine_l1.misses,
            self.engine_l1.miss_ratio() * 100.0
        )?;
        writeln!(
            f,
            "writebacks:        L1 {} / L2 {} / LLC {} / eL1 {}",
            self.l1.writebacks, self.l2.writebacks, self.llc.writebacks, self.engine_l1.writebacks
        )?;
        writeln!(f, "DRAM accesses:     {}", self.dram_accesses)?;
        writeln!(f, "MC cache hits:     {}", self.mc_cache_hits)?;
        writeln!(f, "NoC flit-hops:     {}", self.noc_flit_hops)?;
        writeln!(
            f,
            "branches:          {} ({:.2}% mispredicted)",
            self.branches,
            self.mispredict_ratio() * 100.0
        )?;
        writeln!(f, "fences:            {}", self.fences)?;
        writeln!(
            f,
            "invokes:           {} ({} NACKed)",
            self.invokes, self.invoke_nacks
        )?;
        writeln!(
            f,
            "ctor/dtor actions: {}/{}",
            self.ctor_actions, self.dtor_actions
        )?;
        write!(
            f,
            "stream push/pop:   {}/{}",
            self.stream_pushes, self.stream_pops
        )?;
        if !self.invoke_rtt.is_empty() {
            write!(f, "\ninvoke RTT:        {}", self.invoke_rtt)?;
        }
        if !self.stream_stall.is_empty() {
            write!(f, "\nstream stall:      {}", self.stream_stall)?;
        }
        // Fault lines are emitted only when a plan injected something, so
        // unfaulted runs keep byte-identical output to pre-fault builds.
        if self.faults_injected > 0 {
            write!(
                f,
                "\nfaults:            {} injected; {} NACK-retries, {} core-fallbacks, {} degraded cycles",
                self.faults_injected,
                self.fault_nack_retries,
                self.fault_fallbacks,
                self.fault_degraded_cycles
            )?;
            if !self.fault_backoff.is_empty() {
                write!(f, "\nfault backoff:     {}", self.fault_backoff)?;
            }
        }
        // Translation and tenancy lines are likewise gated: runs with
        // both features off keep byte-identical output.
        if self.tlb_hits + self.tlb_misses > 0 {
            let total = self.tlb_hits + self.tlb_misses;
            write!(
                f,
                "\nTLB hits/misses:   {}/{} ({:.1}% hit); {} walk cycles",
                self.tlb_hits,
                self.tlb_misses,
                self.tlb_hits as f64 / total as f64 * 100.0,
                self.tlb_walk_cycles
            )?;
            if !self.xlat_walk.is_empty() {
                write!(f, "\nwalk latency:      {}", self.xlat_walk)?;
            }
        }
        if !self.tenant_finish.is_empty() {
            write!(f, "\ntenants:           {}", self.tenant_finish.len())?;
            for t in 0..self.tenant_finish.len() {
                write!(
                    f,
                    "\n  tenant {t}: {} LLC misses, {} invokes, finish @{}",
                    self.tenant_llc_misses.get(t).copied().unwrap_or(0),
                    self.tenant_invokes.get(t).copied().unwrap_or(0),
                    self.tenant_finish[t]
                )?;
            }
            if self.tenant_quota_nacks > 0 {
                write!(f, "\nquota NACKs:       {}", self.tenant_quota_nacks)?;
            }
        }
        // Dropped-event and span lines are gated the same way: runs
        // without tracing/spans keep byte-identical output.
        if self.trace.dropped() > 0 {
            write!(
                f,
                "\ntrace dropped:     {} events (ring capacity {} exceeded)",
                self.trace.dropped(),
                self.trace.len()
            )?;
        }
        if !self.spans.is_empty() || self.spans.dropped() > 0 {
            let cp = self.spans.critical_path(TOP_SLOW_INVOKES);
            write!(
                f,
                "\ninvoke spans:      {} recorded ({} complete, {} incomplete, {} dropped)",
                self.spans.len(),
                cp.completed,
                cp.incomplete,
                self.spans.dropped()
            )?;
            if cp.completed > 0 {
                write!(
                    f,
                    "\nspan stages:       {} (summed cycles; rtt {}, dominated by {})",
                    cp.totals,
                    cp.rtt_total,
                    cp.dominant_stage().0
                )?;
                for s in &cp.slowest {
                    write!(f, "\n  slow {}: rtt {} = {}", s.id, s.rtt, s.stages)?;
                    match s.target {
                        Some(t) => write!(f, " (tile {} -> {})", s.src_tile, t)?,
                        None => write!(f, " (tile {})", s.src_tile)?,
                    }
                }
            }
        }
        Ok(())
    }
}

/// One periodic snapshot of machine activity over a sampling interval.
///
/// Rate-like fields (`ipc`, miss ratios) and count fields are all computed
/// over the *interval* since the previous sample, not cumulatively, so a
/// plot of samples shows phase behavior directly (Fig. 21 style).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Sample {
    /// Simulated cycle the sample was taken at.
    pub cycle: u64,
    /// Instructions (core + engine) per cycle over the interval.
    pub ipc: f64,
    /// Core instructions retired in the interval.
    pub core_instrs: u64,
    /// Engine instructions retired in the interval.
    pub engine_instrs: u64,
    /// L1 miss ratio over the interval.
    pub l1_miss_ratio: f64,
    /// L2 miss ratio over the interval.
    pub l2_miss_ratio: f64,
    /// LLC miss ratio over the interval.
    pub llc_miss_ratio: f64,
    /// NoC flit-hops in the interval.
    pub noc_flit_hops: u64,
    /// DRAM line accesses in the interval.
    pub dram_accesses: u64,
    /// Engine task contexts in use at the sample instant (all engines).
    pub engine_ctxs: u32,
    /// Entries buffered in hardware streams at the sample instant.
    pub stream_depth: u64,
}

/// Counter snapshot used to compute per-interval deltas.
#[derive(Clone, Copy, Debug, Default)]
struct Baseline {
    cycle: u64,
    core_instrs: u64,
    engine_instrs: u64,
    l1: LevelStats,
    l2: LevelStats,
    llc: LevelStats,
    noc_flit_hops: u64,
    dram_accesses: u64,
}

/// Periodic time-series sampler: every `interval` cycles the machine
/// snapshots interval deltas of the headline counters into a [`Sample`].
/// Disabled when `interval == 0` (the default).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    interval: u64,
    next: u64,
    samples: Vec<Sample>,
    base: Baseline,
}

impl TimeSeries {
    /// Creates a sampler firing every `interval` cycles (0 disables it).
    pub fn new(interval: u64) -> Self {
        TimeSeries {
            interval,
            next: interval,
            samples: Vec::new(),
            base: Baseline::default(),
        }
    }

    /// True when sampling is enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.interval != 0
    }

    /// True when the simulated clock has reached the next sample point.
    #[inline]
    pub fn due(&self, now: u64) -> bool {
        self.interval != 0 && now >= self.next
    }

    /// The configured sampling interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The recorded samples, in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

impl Stats {
    /// Takes one time-series sample at cycle `now`. `engine_ctxs` and
    /// `stream_depth` are instantaneous occupancy readings supplied by the
    /// caller ([`crate::hw::Hw::maybe_sample`]).
    pub(crate) fn take_sample(&mut self, now: u64, engine_ctxs: u32, stream_depth: u64) {
        let b = self.timeline.base;
        let dt = now.saturating_sub(b.cycle);
        let dc = self.core_instrs - b.core_instrs;
        let de = self.engine_instrs - b.engine_instrs;
        let delta = |cur: LevelStats, old: LevelStats| LevelStats {
            hits: cur.hits - old.hits,
            misses: cur.misses - old.misses,
            writebacks: cur.writebacks - old.writebacks,
        };
        let l1 = delta(self.l1, b.l1);
        let l2 = delta(self.l2, b.l2);
        let llc = delta(self.llc, b.llc);
        self.timeline.samples.push(Sample {
            cycle: now,
            ipc: if dt == 0 {
                0.0
            } else {
                (dc + de) as f64 / dt as f64
            },
            core_instrs: dc,
            engine_instrs: de,
            l1_miss_ratio: l1.miss_ratio(),
            l2_miss_ratio: l2.miss_ratio(),
            llc_miss_ratio: llc.miss_ratio(),
            noc_flit_hops: self.noc_flit_hops - b.noc_flit_hops,
            dram_accesses: self.dram_accesses - b.dram_accesses,
            engine_ctxs,
            stream_depth,
        });
        self.timeline.base = Baseline {
            cycle: now,
            core_instrs: self.core_instrs,
            engine_instrs: self.engine_instrs,
            l1: self.l1,
            l2: self.l2,
            llc: self.llc,
            noc_flit_hops: self.noc_flit_hops,
            dram_accesses: self.dram_accesses,
        };
        // Schedule the next sample strictly after `now`, skipping any
        // intervals the event-driven clock jumped over.
        let interval = self.timeline.interval;
        while self.timeline.next <= now {
            self.timeline.next += interval;
        }
    }
}

fn w_level(w: &mut levi_isa::codec::Writer, l: &LevelStats) {
    w.u64(l.hits);
    w.u64(l.misses);
    w.u64(l.writebacks);
}

fn r_level(r: &mut levi_isa::codec::Reader) -> Result<LevelStats, levi_isa::codec::CodecError> {
    Ok(LevelStats {
        hits: r.u64()?,
        misses: r.u64()?,
        writebacks: r.u64()?,
    })
}

impl TimeSeries {
    /// Serializes sampler state (see [`crate::snapshot`]).
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        w.u64(self.interval);
        w.u64(self.next);
        w.u64(self.base.cycle);
        w.u64(self.base.core_instrs);
        w.u64(self.base.engine_instrs);
        w_level(w, &self.base.l1);
        w_level(w, &self.base.l2);
        w_level(w, &self.base.llc);
        w.u64(self.base.noc_flit_hops);
        w.u64(self.base.dram_accesses);
        w.u32(self.samples.len() as u32);
        for s in &self.samples {
            w.u64(s.cycle);
            w.f64(s.ipc);
            w.u64(s.core_instrs);
            w.u64(s.engine_instrs);
            w.f64(s.l1_miss_ratio);
            w.f64(s.l2_miss_ratio);
            w.f64(s.llc_miss_ratio);
            w.u64(s.noc_flit_hops);
            w.u64(s.dram_accesses);
            w.u32(s.engine_ctxs);
            w.u64(s.stream_depth);
        }
    }

    /// Restores a sampler written by [`TimeSeries::snap_write`].
    pub(crate) fn snap_read(
        r: &mut levi_isa::codec::Reader,
    ) -> Result<Self, levi_isa::codec::CodecError> {
        let interval = r.u64()?;
        let next = r.u64()?;
        let base = Baseline {
            cycle: r.u64()?,
            core_instrs: r.u64()?,
            engine_instrs: r.u64()?,
            l1: r_level(r)?,
            l2: r_level(r)?,
            llc: r_level(r)?,
            noc_flit_hops: r.u64()?,
            dram_accesses: r.u64()?,
        };
        let n = r.count(40)?;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(Sample {
                cycle: r.u64()?,
                ipc: r.f64()?,
                core_instrs: r.u64()?,
                engine_instrs: r.u64()?,
                l1_miss_ratio: r.f64()?,
                l2_miss_ratio: r.f64()?,
                llc_miss_ratio: r.f64()?,
                noc_flit_hops: r.u64()?,
                dram_accesses: r.u64()?,
                engine_ctxs: r.u32()?,
                stream_depth: r.u64()?,
            });
        }
        Ok(TimeSeries {
            interval,
            next,
            samples,
            base,
        })
    }
}

impl Stats {
    /// Serializes every deterministic counter, histogram, and recorder
    /// (see [`crate::snapshot`]). `host_phases` is wall-clock data and is
    /// deliberately excluded: it is nondeterministic, never part of
    /// byte-identical outputs, and resets on restore.
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        for c in [
            self.cycles,
            self.core_instrs,
            self.engine_instrs,
            self.dir_lookups,
            self.invalidations,
            self.ownership_transfers,
            self.noc_messages,
            self.noc_flit_hops,
            self.dram_accesses,
            self.mc_cache_hits,
            self.branches,
            self.mispredicts,
            self.fences,
            self.core_rmws,
            self.invokes,
            self.invoke_nacks,
            self.invoke_migrations,
            self.ctor_actions,
            self.dtor_actions,
            self.stream_pushes,
            self.stream_pops,
            self.stream_stall_cycles,
            self.prefetches,
            self.faults_injected,
            self.fault_nack_retries,
            self.fault_fallbacks,
            self.fault_degraded_cycles,
        ] {
            w.u64(c);
        }
        w_level(w, &self.l1);
        w_level(w, &self.l2);
        w_level(w, &self.llc);
        w_level(w, &self.engine_l1);
        for p in &self.dram_by_phase {
            w.u64(*p);
        }
        w.u64(self.current_phase as u64);
        self.invoke_rtt.snap_write(w);
        self.load_to_use.snap_write(w);
        self.dram_queue.snap_write(w);
        self.stream_stall.snap_write(w);
        self.fault_backoff.snap_write(w);
        self.trace.snap_write(w);
        self.spans.snap_write(w);
        self.timeline.snap_write(w);
        for c in [
            self.tlb_hits,
            self.tlb_misses,
            self.tlb_walk_cycles,
            self.tenant_quota_nacks,
        ] {
            w.u64(c);
        }
        self.xlat_walk.snap_write(w);
        for v in [
            &self.tenant_llc_misses,
            &self.tenant_invokes,
            &self.tenant_finish,
        ] {
            w.u32(v.len() as u32);
            for &c in v.iter() {
                w.u64(c);
            }
        }
    }

    /// Restores statistics written by [`Stats::snap_write`] into `self`,
    /// leaving `host_phases` untouched.
    pub(crate) fn snap_read(
        &mut self,
        r: &mut levi_isa::codec::Reader,
    ) -> Result<(), levi_isa::codec::CodecError> {
        self.cycles = r.u64()?;
        self.core_instrs = r.u64()?;
        self.engine_instrs = r.u64()?;
        self.dir_lookups = r.u64()?;
        self.invalidations = r.u64()?;
        self.ownership_transfers = r.u64()?;
        self.noc_messages = r.u64()?;
        self.noc_flit_hops = r.u64()?;
        self.dram_accesses = r.u64()?;
        self.mc_cache_hits = r.u64()?;
        self.branches = r.u64()?;
        self.mispredicts = r.u64()?;
        self.fences = r.u64()?;
        self.core_rmws = r.u64()?;
        self.invokes = r.u64()?;
        self.invoke_nacks = r.u64()?;
        self.invoke_migrations = r.u64()?;
        self.ctor_actions = r.u64()?;
        self.dtor_actions = r.u64()?;
        self.stream_pushes = r.u64()?;
        self.stream_pops = r.u64()?;
        self.stream_stall_cycles = r.u64()?;
        self.prefetches = r.u64()?;
        self.faults_injected = r.u64()?;
        self.fault_nack_retries = r.u64()?;
        self.fault_fallbacks = r.u64()?;
        self.fault_degraded_cycles = r.u64()?;
        self.l1 = r_level(r)?;
        self.l2 = r_level(r)?;
        self.llc = r_level(r)?;
        self.engine_l1 = r_level(r)?;
        for p in &mut self.dram_by_phase {
            *p = r.u64()?;
        }
        let phase = r.u64()? as usize;
        if phase >= MAX_PHASES {
            return Err(levi_isa::codec::CodecError::Invalid("phase index"));
        }
        self.current_phase = phase;
        self.invoke_rtt = Histogram::snap_read(r)?;
        self.load_to_use = Histogram::snap_read(r)?;
        self.dram_queue = Histogram::snap_read(r)?;
        self.stream_stall = Histogram::snap_read(r)?;
        self.fault_backoff = Histogram::snap_read(r)?;
        self.trace = Tracer::snap_read(r)?;
        self.spans = SpanTable::snap_read(r)?;
        self.timeline = TimeSeries::snap_read(r)?;
        self.tlb_hits = r.u64()?;
        self.tlb_misses = r.u64()?;
        self.tlb_walk_cycles = r.u64()?;
        self.tenant_quota_nacks = r.u64()?;
        self.xlat_walk = Histogram::snap_read(r)?;
        for v in [
            &mut self.tenant_llc_misses,
            &mut self.tenant_invokes,
            &mut self.tenant_finish,
        ] {
            let n = r.count(8)?;
            v.clear();
            v.reserve(n);
            for _ in 0..n {
                v.push(r.u64()?);
            }
        }
        Ok(())
    }

    /// Serializes the statistics (everything the machine snapshot
    /// covers) into a standalone byte vector, for embedding in run
    /// journals and other external records.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = levi_isa::codec::Writer::new();
        self.snap_write(&mut w);
        w.into_bytes()
    }

    /// Rebuilds statistics from [`Stats::to_snapshot_bytes`] output.
    ///
    /// # Errors
    /// Malformed bytes are rejected with a typed
    /// [`SnapshotError`](crate::snapshot::SnapshotError).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, crate::snapshot::SnapshotError> {
        let mut r = levi_isa::codec::Reader::new(bytes);
        let mut s = Stats::new();
        s.snap_read(&mut r)?;
        if !r.is_exhausted() {
            return Err(crate::snapshot::SnapshotError::Corrupted(
                "trailing bytes after stats",
            ));
        }
        Ok(s)
    }

    /// A deterministic digest of every serialized statistic — counters,
    /// histograms, traces, spans, and timeline (everything except the
    /// wall-clock `host_phases`). Two runs with equal digests observed
    /// identical simulated behavior; checkpoint verification compares the
    /// digest of a restored replica against the primary run.
    pub fn digest(&self) -> u64 {
        let mut w = levi_isa::codec::Writer::new();
        self.snap_write(&mut w);
        let bytes = w.into_bytes();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_attribution() {
        let mut s = Stats::new();
        s.count_dram();
        s.set_phase(1);
        s.count_dram();
        s.count_dram();
        assert_eq!(s.dram_accesses, 3);
        assert_eq!(s.dram_by_phase[0], 1);
        assert_eq!(s.dram_by_phase[1], 2);
        assert_eq!(s.phase(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn phase_bounds_checked() {
        Stats::new().set_phase(MAX_PHASES);
    }

    #[test]
    fn ratios() {
        let mut s = Stats::new();
        assert_eq!(s.mispredict_ratio(), 0.0);
        s.branches = 10;
        s.mispredicts = 3;
        assert!((s.mispredict_ratio() - 0.3).abs() < 1e-12);
        let lv = LevelStats {
            hits: 3,
            misses: 1,
            writebacks: 0,
        };
        assert_eq!(lv.accesses(), 4);
        assert!((lv.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_nonempty() {
        let s = Stats::new();
        let text = s.to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("DRAM"));
    }

    #[test]
    fn display_includes_engine_l1_and_writebacks() {
        let mut s = Stats::new();
        s.engine_l1.hits = 7;
        s.engine_l1.misses = 3;
        s.l2.writebacks = 11;
        let text = s.to_string();
        assert!(
            text.contains("eL1 hits/misses:   7/3 (30.0% miss)"),
            "{text}"
        );
        assert!(
            text.contains("writebacks:        L1 0 / L2 11 / LLC 0 / eL1 0"),
            "{text}"
        );
    }

    #[test]
    fn display_shows_histograms_when_populated() {
        let mut s = Stats::new();
        assert!(!s.to_string().contains("invoke RTT"));
        s.invoke_rtt.record(40);
        s.stream_stall.record(9);
        let text = s.to_string();
        assert!(text.contains("invoke RTT:        n=1"), "{text}");
        assert!(text.contains("stream stall:      n=1"), "{text}");
    }

    #[test]
    fn display_fault_lines_gated_on_injection() {
        let mut s = Stats::new();
        // Degradation counters alone must not change the output: only an
        // actual injected plan unlocks the fault lines.
        s.fault_degraded_cycles = 7;
        assert!(!s.to_string().contains("faults:"), "{s}");
        s.faults_injected = 2;
        s.fault_nack_retries = 3;
        s.fault_fallbacks = 1;
        let text = s.to_string();
        assert!(
            text.contains("faults:            2 injected; 3 NACK-retries, 1 core-fallbacks, 7 degraded cycles"),
            "{text}"
        );
        assert!(!text.contains("fault backoff"), "{text}");
        s.fault_backoff.record(16);
        assert!(s.to_string().contains("fault backoff:     n=1"), "{s}");
    }

    #[test]
    fn sampler_deltas_and_schedule() {
        let mut s = Stats::new();
        s.timeline = TimeSeries::new(100);
        assert!(s.timeline.enabled());
        assert!(!s.timeline.due(99));
        assert!(s.timeline.due(100));

        s.core_instrs = 400;
        s.l1.hits = 90;
        s.l1.misses = 10;
        s.take_sample(100, 3, 5);
        // The clock can jump past several intervals; the next sample point
        // must land strictly after `now`.
        assert!(!s.timeline.due(100));
        assert!(s.timeline.due(200));

        s.core_instrs = 600;
        s.engine_instrs = 100;
        s.l1.hits = 90; // no L1 activity this interval
        s.take_sample(350, 0, 0);
        assert!(!s.timeline.due(350));
        assert!(s.timeline.due(400));

        let samples = s.timeline.samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].cycle, 100);
        assert!((samples[0].ipc - 4.0).abs() < 1e-12);
        assert!((samples[0].l1_miss_ratio - 0.1).abs() < 1e-12);
        assert_eq!(samples[0].engine_ctxs, 3);
        assert_eq!(samples[0].stream_depth, 5);
        // Second sample covers only the interval since the first.
        assert_eq!(samples[1].core_instrs, 200);
        assert_eq!(samples[1].engine_instrs, 100);
        assert!((samples[1].ipc - 300.0 / 250.0).abs() < 1e-12);
        assert_eq!(samples[1].l1_miss_ratio, 0.0);
    }

    #[test]
    fn disabled_sampler_is_never_due() {
        let s = Stats::new();
        assert!(!s.timeline.enabled());
        assert!(!s.timeline.due(u64::MAX));
    }
}
