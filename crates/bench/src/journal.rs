//! The crash-recoverable run journal behind `levi-bench run --resume`.
//!
//! A journaled invocation appends one `done` record per completed sweep
//! variant — label, cycles, energy, full stats (via the `levi-sim`
//! snapshot codec), golden checksum, and aux values — to a line-oriented
//! text file. Re-running with `--resume` on the same journal loads those
//! records and skips the completed variants; because every simulated run
//! is a pure function of its configuration, a resumed invocation's merged
//! report is identical to an uninterrupted one.
//!
//! # File format
//!
//! ```text
//! levi-journal v1 quick=<0|1>
//! done <figure> <sweep> <hex-encoded outcome record>
//! ```
//!
//! One record per line. `<sweep>` numbers the sweeps a figure runs (0 for
//! the common single-sweep figures), so a figure that sweeps twice cannot
//! alias records. A journal written at one scale refuses to resume at the
//! other (`quick=` mismatch). A torn **final** line — the record that was
//! being written when the process died — is skipped on load; corruption
//! anywhere else is a typed error.
//!
//! The runner talks to one process-wide journal activated from
//! `LEVI_BENCH_JOURNAL` (set by `--resume`); with the variable unset every
//! call is a no-op and sweeps run exactly as before.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use levi_isa::codec::{Reader, Writer};

use crate::codec::{hex_decode, hex_encode, LineStore};
use levi_sim::{EnergyBreakdown, Stats};
use levi_workloads::harness::RunOutcome;
use levi_workloads::metrics::RunMetrics;

/// The journal header line for the given scale mode.
fn header(quick: bool) -> String {
    format!("levi-journal v1 quick={}", u8::from(quick))
}

/// Why a journal could not be opened or parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// The file could not be read or written.
    Io(String),
    /// The header or an interior record is malformed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        what: String,
    },
    /// The journal was written at the other scale (`--quick` vs full);
    /// mixing scales would merge incomparable outcomes.
    QuickMismatch {
        /// Scale recorded in the journal header.
        journal_quick: bool,
        /// Scale of the resuming invocation.
        run_quick: bool,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Malformed { line, what } => {
                write!(f, "journal line {line} malformed: {what}")
            }
            JournalError::QuickMismatch {
                journal_quick,
                run_quick,
            } => write!(
                f,
                "journal was written with quick={} but this run has quick={} \
                 (delete the journal or match the --quick flag)",
                u8::from(*journal_quick),
                u8::from(*run_quick)
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// A run journal: completed-variant records keyed by
/// `(figure, sweep index, label)`, plus the append handle.
pub struct Journal {
    store: LineStore,
    entries: HashMap<(String, u32, String), RunOutcome>,
}

impl Journal {
    /// Opens `path`, creating it with a fresh header if absent. An
    /// existing journal must carry a matching `quick=` header; its `done`
    /// records become the resume set. Framing (header line, hex-armored
    /// records, synced appends) rides on [`crate::codec::LineStore`].
    ///
    /// # Errors
    /// I/O failures, a corrupt header or interior record, and a scale
    /// mismatch are each a typed [`JournalError`]. A torn final line is
    /// tolerated (that is the record in flight when a previous run died).
    pub fn open(path: &str, quick: bool) -> Result<Journal, JournalError> {
        let mut entries = HashMap::new();
        let (store, loaded) =
            LineStore::open(path, &header(quick)).map_err(|e| JournalError::Io(e.to_string()))?;
        if let Some(loaded) = loaded {
            let first = loaded.header.ok_or_else(|| JournalError::Malformed {
                line: 1,
                what: "empty journal (no header)".into(),
            })?;
            let journal_quick = match first {
                h if h == header(false) => false,
                h if h == header(true) => true,
                other => {
                    return Err(JournalError::Malformed {
                        line: 1,
                        what: format!("bad header {other:?}"),
                    })
                }
            };
            if journal_quick != quick {
                return Err(JournalError::QuickMismatch {
                    journal_quick,
                    run_quick: quick,
                });
            }
            for rec in loaded.records {
                match parse_record(&rec.text) {
                    Ok((figure, sweep, label, outcome)) => {
                        entries.insert((figure, sweep, label), outcome);
                    }
                    Err(what) => {
                        // The torn tail of a crashed run is expected;
                        // damage anywhere else is corruption.
                        if rec.is_last {
                            eprintln!(
                                "levi-bench: journal {path}: ignoring torn final line \
                                 (in-flight record of a crashed run)"
                            );
                        } else {
                            return Err(JournalError::Malformed {
                                line: rec.line,
                                what,
                            });
                        }
                    }
                }
            }
        }
        Ok(Journal { store, entries })
    }

    /// The recorded outcome for `(figure, sweep, label)`, if present.
    pub fn lookup(&self, figure: &str, sweep: u32, label: &str) -> Option<RunOutcome> {
        self.entries
            .get(&(figure.to_string(), sweep, label.to_string()))
            .cloned()
    }

    /// How many completed-variant records the journal holds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a completion record and syncs it to disk, so a kill
    /// arriving right after a variant finishes cannot lose its work.
    ///
    /// # Errors
    /// Propagates I/O failures as [`JournalError::Io`].
    pub fn record(
        &mut self,
        figure: &str,
        sweep: u32,
        label: &str,
        outcome: &RunOutcome,
    ) -> Result<(), JournalError> {
        let line = format!(
            "done {figure} {sweep} {}",
            hex_encode(&encode_outcome(label, outcome))
        );
        self.store
            .append(&line)
            .map_err(|e| JournalError::Io(e.to_string()))?;
        self.entries.insert(
            (figure.to_string(), sweep, label.to_string()),
            outcome.clone(),
        );
        Ok(())
    }
}

fn parse_record(line: &str) -> Result<(String, u32, String, RunOutcome), String> {
    let mut parts = line.splitn(4, ' ');
    let kind = parts.next().unwrap_or_default();
    if kind != "done" {
        return Err(format!("unknown record kind {kind:?}"));
    }
    let figure = parts.next().ok_or("missing figure")?.to_string();
    let sweep: u32 = parts
        .next()
        .ok_or("missing sweep index")?
        .parse()
        .map_err(|_| "bad sweep index")?;
    let blob = hex_decode(parts.next().ok_or("missing record blob")?)?;
    let (label, outcome) = decode_outcome(&blob).map_err(|e| format!("record blob: {e}"))?;
    Ok((figure, sweep, label, outcome))
}

// ---------------------------------------------------------------------------
// Outcome codec (label + RunOutcome <-> bytes, via levi_isa::codec)
// ---------------------------------------------------------------------------

fn encode_outcome(label: &str, o: &RunOutcome) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(label);
    w.str(&o.metrics.label);
    w.u64(o.metrics.cycles);
    for v in [
        o.metrics.energy.core_pj,
        o.metrics.energy.engine_pj,
        o.metrics.energy.cache_pj,
        o.metrics.energy.noc_pj,
        o.metrics.energy.dram_pj,
    ] {
        w.f64(v);
    }
    w.bytes(&o.metrics.stats.to_snapshot_bytes());
    w.u64(o.checksum);
    w.u64(o.aux.len() as u64);
    for (name, value) in &o.aux {
        w.str(name);
        w.u64(*value);
    }
    w.into_bytes()
}

fn decode_outcome(bytes: &[u8]) -> Result<(String, RunOutcome), String> {
    let mut r = Reader::new(bytes);
    let fail = |e: levi_isa::codec::CodecError| e.to_string();
    let label = r.str().map_err(fail)?.to_string();
    let metrics_label = r.str().map_err(fail)?.to_string();
    let cycles = r.u64().map_err(fail)?;
    let mut e = [0f64; 5];
    for v in &mut e {
        *v = r.f64().map_err(fail)?;
    }
    let stats_bytes = r.bytes().map_err(fail)?.to_vec();
    let stats = Stats::from_snapshot_bytes(&stats_bytes).map_err(|e| e.to_string())?;
    let checksum = r.u64().map_err(fail)?;
    let n_aux = r.u64().map_err(fail)? as usize;
    if n_aux > 1024 {
        return Err("implausible aux count".into());
    }
    let mut aux = Vec::with_capacity(n_aux);
    for _ in 0..n_aux {
        let name = r.str().map_err(fail)?.to_string();
        let value = r.u64().map_err(fail)?;
        aux.push((intern(&name), value));
    }
    if !r.is_exhausted() {
        return Err("trailing bytes in record".into());
    }
    let outcome = RunOutcome {
        metrics: RunMetrics {
            label: metrics_label,
            cycles,
            energy: EnergyBreakdown {
                core_pj: e[0],
                engine_pj: e[1],
                cache_pj: e[2],
                noc_pj: e[3],
                dram_pj: e[4],
            },
            stats,
        },
        checksum,
        aux,
    };
    Ok((label, outcome))
}

/// Interns an aux-value name back to `&'static str` (the in-memory type).
/// The leak is bounded by the vocabulary of distinct aux names.
fn intern(s: &str) -> &'static str {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut names = NAMES
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("intern table poisoned");
    if let Some(hit) = names.iter().find(|n| **n == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    names.push(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// The process-wide active journal (runner integration)
// ---------------------------------------------------------------------------

struct Active {
    journal: Journal,
    /// The figure the sweep counter refers to; sweeps within one figure
    /// run sequentially, so a plain counter reproduces the same indices
    /// on every (re-)invocation.
    figure: String,
    next_sweep: u32,
}

static ACTIVE: OnceLock<Option<Mutex<Active>>> = OnceLock::new();

fn active() -> Option<&'static Mutex<Active>> {
    ACTIVE
        .get_or_init(|| {
            let path = std::env::var("LEVI_BENCH_JOURNAL").ok()?;
            let journal = Journal::open(&path, crate::quick_mode()).unwrap_or_else(|e| {
                eprintln!("levi-bench: --resume {path}: {e}");
                std::process::exit(1);
            });
            if !journal.is_empty() {
                eprintln!(
                    "levi-bench: resuming from {path}: {} completed variant(s) on record",
                    journal.len()
                );
            }
            Some(Mutex::new(Active {
                journal,
                figure: String::new(),
                next_sweep: 0,
            }))
        })
        .as_ref()
}

/// Claims the next sweep index for `figure` in the active journal.
/// Returns `None` when no journal is active (`LEVI_BENCH_JOURNAL` unset),
/// in which case sweeps run unjournaled.
pub fn begin_sweep(figure: &str) -> Option<u32> {
    let mut a = active()?.lock().expect("journal poisoned");
    if a.figure != figure {
        a.figure = figure.to_string();
        a.next_sweep = 0;
    }
    let idx = a.next_sweep;
    a.next_sweep += 1;
    Some(idx)
}

/// The recorded outcome for `(figure, sweep, label)`, if a journal is
/// active and holds one.
pub fn lookup(figure: &str, sweep: u32, label: &str) -> Option<RunOutcome> {
    let a = active()?.lock().expect("journal poisoned");
    a.journal.lookup(figure, sweep, label)
}

/// Records a completed variant in the active journal (no-op when none).
///
/// # Panics
/// Panics if the append fails: silently losing completion records would
/// make a later `--resume` re-run work it believed was saved.
pub fn record(figure: &str, sweep: u32, label: &str, outcome: &RunOutcome) {
    let Some(m) = active() else {
        return;
    };
    let mut a = m.lock().expect("journal poisoned");
    a.journal
        .record(figure, sweep, label, outcome)
        .unwrap_or_else(|e| panic!("journal append failed: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use leviathan::{System, SystemConfig};

    fn sample_outcome(label: &str) -> RunOutcome {
        let sys = System::try_new(SystemConfig::small()).expect("small config is valid");
        let mut m = RunMetrics::capture(label, &sys);
        m.cycles = 12_345;
        m.energy.core_pj = 1.5;
        m.energy.dram_pj = 2.5;
        m.stats.invokes = 7;
        m.stats.invoke_rtt.record(40);
        RunOutcome::new(m, 0xfeed_beef)
            .with_aux("edges", 42)
            .with_aux("rounds", 3)
    }

    #[test]
    fn outcome_round_trips_through_the_codec() {
        let o = sample_outcome("Leviathan");
        let bytes = encode_outcome("Leviathan", &o);
        let (label, back) = decode_outcome(&bytes).expect("decodes");
        assert_eq!(label, "Leviathan");
        assert_eq!(back.metrics.label, "Leviathan");
        assert_eq!(back.metrics.cycles, 12_345);
        assert_eq!(back.metrics.energy.core_pj, 1.5);
        assert_eq!(back.metrics.energy.dram_pj, 2.5);
        assert_eq!(back.checksum, 0xfeed_beef);
        assert_eq!(back.aux_value("edges"), Some(42));
        assert_eq!(back.aux_value("rounds"), Some(3));
        assert_eq!(back.metrics.stats.digest(), o.metrics.stats.digest());
    }

    #[test]
    fn journal_persists_and_resumes() {
        let dir = std::env::temp_dir().join("levi-journal-test-persist");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.journal");
        let path = path.to_str().unwrap();

        let mut j = Journal::open(path, false).expect("fresh journal");
        assert!(j.is_empty());
        let o = sample_outcome("Baseline");
        j.record("fig05_phi", 0, "Baseline", &o).expect("append");
        drop(j);

        let j = Journal::open(path, false).expect("reopen");
        assert_eq!(j.len(), 1);
        let back = j.lookup("fig05_phi", 0, "Baseline").expect("recorded");
        assert_eq!(back.metrics.cycles, 12_345);
        assert!(j.lookup("fig05_phi", 1, "Baseline").is_none());
        assert!(j.lookup("fig05_phi", 0, "Leviathan").is_none());
        assert!(j.lookup("other", 0, "Baseline").is_none());

        // Scale mismatch is refused.
        match Journal::open(path, true) {
            Err(JournalError::QuickMismatch {
                journal_quick,
                run_quick,
            }) => {
                assert!(!journal_quick);
                assert!(run_quick);
            }
            other => panic!("expected QuickMismatch, got {:?}", other.err()),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_skipped_but_interior_damage_is_an_error() {
        let dir = std::env::temp_dir().join("levi-journal-test-torn");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.journal");
        let path = path.to_str().unwrap();

        let mut j = Journal::open(path, false).expect("fresh journal");
        j.record("fig", 0, "A", &sample_outcome("A")).unwrap();
        j.record("fig", 0, "B", &sample_outcome("B")).unwrap();
        drop(j);

        // Tear the final line, as a kill mid-append would.
        let text = std::fs::read_to_string(path).unwrap();
        let torn = &text[..text.len() - 20];
        std::fs::write(path, torn).unwrap();
        let j = Journal::open(path, false).expect("torn tail tolerated");
        assert_eq!(j.len(), 1, "only the intact record survives");
        assert!(j.lookup("fig", 0, "A").is_some());
        drop(j);

        // Now damage an interior line: that is corruption, not a crash.
        let mut lines: Vec<String> = std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        let mut j = Journal::open(path, false).unwrap();
        j.record("fig", 0, "C", &sample_outcome("C")).unwrap();
        drop(j);
        let tail = std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .last()
            .unwrap()
            .to_string();
        lines[1] = lines[1][..lines[1].len() - 9].to_string();
        lines.push(tail);
        std::fs::write(path, format!("{}\n", lines.join("\n"))).unwrap();
        match Journal::open(path, false) {
            Err(JournalError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Malformed, got {:?}", other.err()),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_names_the_scale() {
        assert_eq!(header(false), "levi-journal v1 quick=0");
        assert_eq!(header(true), "levi-journal v1 quick=1");
    }
}
