//! Offloaded hash-table lookups (the paper's Fig. 17/18 case study).
//!
//! Bucket chains are walked by continuation-passing `Lookup` tasks that
//! hop from node to node inside the LLC, instead of round-tripping every
//! node to the requesting core. The result returns through a future.
//!
//! Run with: `cargo run --release --example hashtable_offload`

use levi_workloads::hashtable::{run_hashtable, HtScale, HtVariant};

fn main() {
    for node_bytes in [24u64, 64, 128] {
        let scale = HtScale::test(node_bytes);
        let base = run_hashtable(HtVariant::Baseline, &scale);
        let lev = run_hashtable(HtVariant::Leviathan, &scale);
        assert_eq!(base.checksum, lev.checksum, "identical lookup results");
        println!(
            "{node_bytes:>4} B nodes: baseline {:>8} cycles | offloaded {:>8} cycles | {:.2}x | NoC {:>8} -> {:>8} flit-hops",
            base.metrics.cycles,
            lev.metrics.cycles,
            lev.metrics.speedup_vs(&base.metrics),
            base.metrics.stats.noc_flit_hops,
            lev.metrics.stats.noc_flit_hops,
        );
    }
    println!();
    println!("24 B nodes are padded to 32 B in cache (but stored 24 B in DRAM);");
    println!("128 B nodes keep both of their lines on one LLC bank via the");
    println!("bank-index mapping, so the chain walk never splits across banks.");
}
