//! The levi-serve server: a TCP listener and a fixed worker pool over
//! the shared figure engine.
//!
//! # Request lifecycle
//!
//! One connection carries one request. The connection thread parses the
//! [`Job`], canonicalizes the figure id, and computes the content
//! address, then — under a single lock — classifies the request:
//!
//! 1. **Cache hit**: an intact entry exists; replay it and finish. No
//!    queueing, no worker.
//! 2. **Coalesce**: an identical job (same [`Job::canon`]) is already
//!    queued or executing; subscribe to it. The subscriber replays the
//!    lines produced so far from the job's buffer, then streams new ones
//!    live — every subscriber sees the complete, identical transcript.
//! 3. **Enqueue**: no twin exists. If the bounded queue is full the
//!    server answers a typed `busy` error immediately (back-pressure is
//!    explicit, never an unbounded pile-up); otherwise the job joins the
//!    queue and a worker thread picks it up.
//!
//! Workers execute jobs through a [`JobExecutor`] — in production
//! [`FigureExecutor`], which spawns the figure on a scoped thread with a
//! [`crate::out`] sink installed, so the run's stdout/stderr lines are
//! captured byte-identically and streamed as they appear. A panicking
//! figure becomes a typed `failed` error; only successful runs are
//! written to the cache.
//!
//! A job carrying `timeout_ms` that is still queued when its deadline
//! passes is answered with a typed `timeout` instead of executing —
//! patience bounds queue time, not simulation time (a simulation cannot
//! be safely interrupted mid-run; see DESIGN.md §9).

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::out::{self, Line};
use crate::serve::cache::ResultCache;
use crate::serve::protocol::{key_hex, Event, Job};

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; port 0 picks a free port (printed on startup).
    pub addr: String,
    /// Path of the durable result cache.
    pub cache_path: String,
    /// Worker threads executing jobs (each figure additionally fans its
    /// inner sweeps out on its own scoped threads).
    pub workers: usize,
    /// Bounded queue depth; a fresh job arriving when the queue is full
    /// is rejected with a typed `busy` error.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_path: "levi-serve.cache".into(),
            workers: 2,
            queue_depth: 8,
        }
    }
}

/// Executes one job, emitting output lines as they are produced. The
/// production implementation is [`FigureExecutor`]; tests substitute
/// instrumented executors to pin down coalescing and back-pressure.
pub trait JobExecutor: Send + Sync {
    /// Runs `job`, calling `emit` once per output line, in order.
    ///
    /// # Errors
    /// A failed (e.g. panicked) run returns the failure text; its
    /// partial output is streamed to subscribers but never cached.
    fn execute(&self, job: &Job, emit: &mut dyn FnMut(Line)) -> Result<(), String>;
}

/// The production executor: drives [`crate::runner::run_figure`] on a
/// scoped thread with an output sink installed, forwarding captured
/// lines to `emit` as the figure produces them.
pub struct FigureExecutor;

impl JobExecutor for FigureExecutor {
    fn execute(&self, job: &Job, emit: &mut dyn FnMut(Line)) -> Result<(), String> {
        let fig = crate::runner::find_figure(&job.figure)
            .ok_or_else(|| format!("unknown figure {:?}", job.figure))?;
        let ctx = job.run_ctx();
        let (tx, rx) = mpsc::channel::<Line>();
        // The sink must own its channel end ('static), while `emit`
        // borrows server state — so the figure runs on a scoped thread
        // holding the sender and this thread drains into `emit`. The
        // sink guard drops when the figure thread ends, closing the
        // channel and ending the drain loop.
        let outcome = std::thread::scope(|s| {
            let handle = s.spawn(move || {
                let _guard = out::install_sink(Box::new(move |line| {
                    let _ = tx.send(line);
                }));
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    crate::runner::run_figure(fig, &ctx);
                }))
            });
            for line in rx {
                emit(line);
            }
            handle.join()
        });
        match outcome {
            Ok(Ok(())) => Ok(()),
            Ok(Err(panic)) => Err(panic_text(panic.as_ref())),
            Err(_) => Err("figure thread died outside its own panic guard".into()),
        }
    }
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How a finished job ended, recorded in its shared progress state.
#[derive(Clone, Debug)]
enum Ended {
    Success,
    Failed { code: &'static str, message: String },
}

/// The shared transcript of one in-flight job. Subscribers replay
/// `lines` from the start and wait on `changed` for more; the executing
/// worker appends and finally sets `ended`.
struct Progress {
    lines: Vec<Line>,
    ended: Option<Ended>,
}

struct JobState {
    key: u64,
    job: Job,
    /// Queue deadline (from `timeout_ms` at submission).
    deadline: Option<Instant>,
    progress: Mutex<Progress>,
    changed: Condvar,
}

impl JobState {
    fn finish(&self, ended: Ended) {
        let mut p = self.progress.lock().expect("progress poisoned");
        p.ended = Some(ended);
        self.changed.notify_all();
    }
}

struct Inner {
    cache: ResultCache,
    /// Every queued or executing job, by content address.
    inflight: HashMap<u64, Arc<JobState>>,
    queue: VecDeque<Arc<JobState>>,
}

struct Shared {
    inner: Mutex<Inner>,
    work_ready: Condvar,
    executions: AtomicU64,
    shutdown: AtomicBool,
    queue_depth: usize,
}

/// The levi-serve server. [`Server::start`] binds, spawns the pool, and
/// returns a handle; the server runs until [`ServerHandle::shutdown`].
pub struct Server;

impl Server {
    /// Binds `cfg.addr`, opens the result cache, and spawns the accept
    /// loop plus `cfg.workers` worker threads.
    ///
    /// # Errors
    /// Bind and cache-open failures are returned as text.
    pub fn start(
        cfg: &ServeConfig,
        executor: Arc<dyn JobExecutor>,
    ) -> Result<ServerHandle, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let cache = ResultCache::open(&cfg.cache_path).map_err(|e| e.to_string())?;
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                cache,
                inflight: HashMap::new(),
                queue: VecDeque::new(),
            }),
            work_ready: Condvar::new(),
            executions: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            queue_depth: cfg.queue_depth.max(1),
        });

        let mut threads = Vec::new();
        for n in 0..cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            let executor = Arc::clone(&executor);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("levi-serve-worker-{n}"))
                    .spawn(move || worker_loop(&shared, executor.as_ref()))
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("levi-serve-accept".into())
                    .spawn(move || accept_loop(&listener, &shared))
                    .map_err(|e| format!("spawn acceptor: {e}"))?,
            );
        }
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

/// A running server: its bound address, counters, and shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (with the real port when `addr` had 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many jobs have actually executed (cache hits and coalesced
    /// subscriptions do not count — that is the point).
    pub fn executions(&self) -> u64 {
        self.shared.executions.load(Ordering::SeqCst)
    }

    /// Stops accepting, fails every queued job with a shutdown error,
    /// and joins the pool. Jobs already executing run to completion.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let mut inner = self.shared.inner.lock().expect("server state poisoned");
            while let Some(job) = inner.queue.pop_front() {
                inner.inflight.remove(&job.key);
                job.finish(Ended::Failed {
                    code: "failed",
                    message: "server shutting down".into(),
                });
            }
        }
        self.shared.work_ready.notify_all();
        // Unblock the accept loop with one last connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Blocks until the server shuts down (used by the `serve` CLI,
    /// which runs until killed).
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // One thread per connection: connections are short-lived (one
        // request each) and the expensive work is bounded by the worker
        // pool, not by connection count.
        let _ = std::thread::Builder::new()
            .name("levi-serve-conn".into())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn worker_loop(shared: &Shared, executor: &dyn JobExecutor) {
    loop {
        let job = {
            let mut inner = shared.inner.lock().expect("server state poisoned");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = inner.queue.pop_front() {
                    break job;
                }
                inner = shared
                    .work_ready
                    .wait(inner)
                    .expect("server state poisoned");
            }
        };

        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                let mut inner = shared.inner.lock().expect("server state poisoned");
                inner.inflight.remove(&job.key);
                drop(inner);
                job.finish(Ended::Failed {
                    code: "timeout",
                    message: format!(
                        "job spent longer than {}ms queued",
                        job.job.timeout_ms.unwrap_or(0)
                    ),
                });
                continue;
            }
        }

        shared.executions.fetch_add(1, Ordering::SeqCst);
        let result = executor.execute(&job.job, &mut |line| {
            let mut p = job.progress.lock().expect("progress poisoned");
            p.lines.push(line);
            job.changed.notify_all();
        });

        // Retire the job: drop it from the in-flight table first so a
        // new identical request re-executes rather than subscribing to
        // a finished transcript, then cache a successful run's lines.
        let lines = {
            let p = job.progress.lock().expect("progress poisoned");
            p.lines.clone()
        };
        {
            let mut inner = shared.inner.lock().expect("server state poisoned");
            inner.inflight.remove(&job.key);
            if result.is_ok() {
                if let Err(e) = inner.cache.put(job.key, &lines) {
                    eprintln!("levi-serve: cache append failed (serving anyway): {e}");
                }
            }
        }
        job.finish(match result {
            Ok(()) => Ended::Success,
            Err(message) => Ended::Failed {
                code: "failed",
                message,
            },
        });
    }
}

/// How a request was classified under the state lock.
enum Admission {
    Cached(Vec<Line>),
    Subscribe {
        state: Arc<JobState>,
        coalesced: bool,
    },
    Busy,
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let peer = stream.peer_addr().ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut send = |event: &Event| -> bool {
        writer
            .write_all(format!("{}\n", event.render()).as_bytes())
            .is_ok()
    };
    let mut reader = BufReader::new(stream);
    let mut request = String::new();
    if reader.read_line(&mut request).is_err() || request.trim().is_empty() {
        return;
    }

    let job = match parse_and_canonicalize(&request) {
        Ok(job) => job,
        Err(message) => {
            send(&Event::Error {
                code: "bad_request".into(),
                message,
            });
            return;
        }
    };
    let key = match job.cache_key() {
        Ok(key) => key,
        Err(message) => {
            send(&Event::Error {
                code: "bad_request".into(),
                message,
            });
            return;
        }
    };

    let admission = {
        let mut inner = shared.inner.lock().expect("server state poisoned");
        if let Some(lines) = inner.cache.get(key) {
            Admission::Cached(lines.to_vec())
        } else if let Some(state) = inner.inflight.get(&key) {
            Admission::Subscribe {
                state: Arc::clone(state),
                coalesced: true,
            }
        } else if inner.queue.len() >= shared.queue_depth {
            Admission::Busy
        } else {
            let state = Arc::new(JobState {
                key,
                deadline: job
                    .timeout_ms
                    .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
                job: job.clone(),
                progress: Mutex::new(Progress {
                    lines: Vec::new(),
                    ended: None,
                }),
                changed: Condvar::new(),
            });
            inner.inflight.insert(key, Arc::clone(&state));
            inner.queue.push_back(Arc::clone(&state));
            shared.work_ready.notify_one();
            Admission::Subscribe {
                state,
                coalesced: false,
            }
        }
    };

    match admission {
        Admission::Cached(lines) => {
            if !send(&Event::Start {
                figure: job.figure.clone(),
                key: key_hex(key),
                cached: true,
                coalesced: false,
            }) {
                return;
            }
            let count = lines.len() as u64;
            for line in lines {
                if !send(&Event::Line(line)) {
                    return;
                }
            }
            send(&Event::Done {
                cached: true,
                lines: count,
            });
        }
        Admission::Busy => {
            send(&Event::Error {
                code: "busy".into(),
                message: format!(
                    "queue full (depth {}); retry when a run finishes",
                    shared.queue_depth
                ),
            });
        }
        Admission::Subscribe { state, coalesced } => {
            if !send(&Event::Start {
                figure: job.figure.clone(),
                key: key_hex(key),
                cached: false,
                coalesced,
            }) {
                return;
            }
            stream_job(&state, &mut send, peer);
        }
    }
}

/// Streams a job's transcript — the buffered prefix, then live lines —
/// until the job ends, then sends the final `done` / `error` event.
fn stream_job(state: &JobState, send: &mut dyn FnMut(&Event) -> bool, _peer: Option<SocketAddr>) {
    let mut sent = 0usize;
    loop {
        // Take a snapshot of the new lines and the end state, then
        // release the lock before touching the socket: a slow client
        // must not stall the executing worker.
        let (pending, ended) = {
            let mut p = state.progress.lock().expect("progress poisoned");
            while p.lines.len() == sent && p.ended.is_none() {
                p = state.changed.wait(p).expect("progress poisoned");
            }
            (p.lines[sent..].to_vec(), p.ended.clone())
        };
        for line in pending {
            sent += 1;
            if !send(&Event::Line(line)) {
                return;
            }
        }
        match ended {
            None => continue,
            Some(Ended::Success) => {
                send(&Event::Done {
                    cached: false,
                    lines: sent as u64,
                });
                return;
            }
            Some(Ended::Failed { code, message }) => {
                send(&Event::Error {
                    code: code.into(),
                    message,
                });
                return;
            }
        }
    }
}

/// Parses a request line and resolves the figure id to its canonical
/// form (prefix resolution, exactly like the CLI).
fn parse_and_canonicalize(request: &str) -> Result<Job, String> {
    let mut job = Job::parse_request(request.trim_end())?;
    let fig = crate::runner::find_figure(&job.figure)
        .ok_or_else(|| format!("unknown figure {:?}", job.figure))?;
    job.figure = fig.id.to_string();
    Ok(job)
}
