//! The deterministic scheduler: actors, the run queue, park/wake
//! conditions, and deadlock diagnostics.
//!
//! Every execution context (a core thread or an engine task) is an
//! `Actor` in a single binary-heap run queue ordered by
//! `(cycle, sequence, id)` — the sequence number makes same-cycle ordering
//! deterministic, so a run is a pure function of its inputs. Actors run
//! ahead of the global clock by at most a configurable quantum, then
//! yield; blocking operations park an actor on a
//! [`WaitCond`] until the matching wake fires. When
//! the queue drains with core threads still parked, [`Machine::run`]
//! reports every stuck actor as a [`ParkedActor`] — the core half and the
//! engine half of a cycle usually appear together in the report.

use std::cmp::Reverse;
use std::fmt;
use std::sync::Arc;

use levi_isa::{ExecCtx, InstClass, Program, NUM_REGS};

use crate::branch::Gshare;
use crate::core_pipe::{step_one, StepEnv, StepOutcome};
use crate::engine::{EngineId, FuCursor};
use crate::error::SimError;
use crate::machine::Machine;
use crate::ndc::{StreamId, StreamMode, WaitCond};
use crate::ndc_host::SpawnReq;
use crate::trace::{TraceCategory, TraceEvent, Track};

/// Identifies an execution context (a core thread or an engine task).
pub type ActorId = u32;

/// What kind of context an actor is.
#[derive(Clone, Debug)]
pub(crate) enum ActorKind {
    /// A software thread pinned to a core.
    CoreThread { core: u32 },
    /// An offloaded task or long-lived action on an engine.
    EngineTask {
        engine: EngineId,
        /// Whether a task context was reserved (released on halt).
        reserved_ctx: bool,
        /// The producer side of this stream, if this is a `genStream` task.
        stream: Option<StreamId>,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ActorState {
    Runnable,
    Parked(WaitCond),
    Done,
}

pub(crate) struct Actor {
    pub(crate) kind: ActorKind,
    pub(crate) prog: Arc<Program>,
    pub(crate) ctx: ExecCtx,
    /// Local clock: the cycle of the last issued instruction.
    pub(crate) clock: u64,
    pub(crate) reg_ready: [u64; NUM_REGS],
    /// Completion times of outstanding memory accesses (for MSHR limits
    /// and fences).
    pub(crate) pending_mem: Vec<u64>,
    /// Core issue-width cursor (cores only).
    pub(crate) issue: FuCursor,
    /// Branch predictor (cores only).
    pub(crate) predictor: Option<Gshare>,
    /// In-flight invoke ACK times (cores' invoke buffer).
    pub(crate) invoke_acks: std::collections::VecDeque<u64>,
    /// Deterministic counter for the 1/32 DYNAMIC migrate-local policy.
    pub(crate) invoke_count: u32,
    /// Consecutive fault-induced NACK retries on the current invoke
    /// (reset on a successful issue or a core fallback).
    pub(crate) invoke_retries: u32,
    /// Open span of the invoke this actor is currently issuing (spans
    /// enabled only; survives backpressure/NACK re-execution).
    pub(crate) pending_span: Option<crate::span::SpanId>,
    /// The invoke span this actor's task continues (engine tasks and
    /// fault-fallback handlers; closed at retire).
    pub(crate) span: Option<crate::span::SpanId>,
    pub(crate) state: ActorState,
    pub(crate) sched_seq: u64,
    /// Cycle at which the current park began (for stall accounting).
    pub(crate) parked_at: u64,
}

impl Actor {
    /// Builds a core-thread actor starting at `clock`.
    pub(crate) fn core_thread(
        core: u32,
        cfg: crate::config::CoreConfig,
        prog: Arc<Program>,
        func: levi_isa::FuncId,
        args: &[u64],
        clock: u64,
    ) -> Self {
        Actor {
            kind: ActorKind::CoreThread { core },
            prog,
            ctx: ExecCtx::new(func, args),
            clock,
            reg_ready: [clock; NUM_REGS],
            pending_mem: Vec::new(),
            issue: FuCursor::new(cfg.issue_width),
            predictor: Some(Gshare::new(cfg.predictor_bits)),
            invoke_acks: std::collections::VecDeque::new(),
            invoke_count: 0,
            invoke_retries: 0,
            pending_span: None,
            span: None,
            state: ActorState::Runnable,
            sched_seq: 0,
            parked_at: 0,
        }
    }

    /// Builds an engine-task actor starting at `clock`.
    pub(crate) fn engine_task(
        engine: EngineId,
        prog: Arc<Program>,
        func: levi_isa::FuncId,
        args: &[u64],
        stream: Option<StreamId>,
        clock: u64,
    ) -> Self {
        Actor {
            kind: ActorKind::EngineTask {
                engine,
                reserved_ctx: false,
                stream,
            },
            prog,
            ctx: ExecCtx::new(func, args),
            clock,
            reg_ready: [clock; NUM_REGS],
            pending_mem: Vec::new(),
            issue: FuCursor::new(64),
            predictor: None,
            invoke_acks: std::collections::VecDeque::new(),
            invoke_count: 0,
            invoke_retries: 0,
            pending_span: None,
            span: None,
            state: ActorState::Runnable,
            sched_seq: 0,
            parked_at: 0,
        }
    }
}

/// Result of [`Machine::run`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Absolute cycle count when every core thread had halted.
    pub cycles: u64,
}

/// The unit a parked actor belongs to (deadlock diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParkOwner {
    /// A software thread on the given core.
    Core(u32),
    /// A task on the given engine.
    Engine(EngineId),
}

impl fmt::Display for ParkOwner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParkOwner::Core(c) => write!(f, "core {c}"),
            ParkOwner::Engine(e) => write!(f, "{e}"),
        }
    }
}

/// One actor found parked when the run queue drained (deadlock
/// diagnostics): what it waits on, where it lives, and for how long it has
/// been stuck.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParkedActor {
    /// The parked actor.
    pub actor: ActorId,
    /// The condition it is waiting on.
    pub cond: WaitCond,
    /// The core or engine the actor runs on.
    pub owner: ParkOwner,
    /// Cycle the park began.
    pub parked_at: u64,
    /// Cycles parked when the deadlock was detected.
    pub parked_for: u64,
}

impl fmt::Display for ParkedActor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "actor {} on {}: waiting on {}, parked {} cycles (since cycle {})",
            self.actor, self.owner, self.cond, self.parked_for, self.parked_at
        )
    }
}

/// Errors from [`Machine::run`].
#[derive(Clone, Debug)]
pub enum RunError {
    /// The run queue drained while core threads were still parked — a
    /// deadlock. Reports every parked actor (cores first by id, then any
    /// parked engine tasks for context).
    Deadlock(Vec<ParkedActor>),
    /// The watchdog fired: the simulated clock passed
    /// [`MachineConfig::max_cycles`](crate::MachineConfig::max_cycles)
    /// without the run completing.
    Watchdog {
        /// The configured limit.
        limit: u64,
        /// The clock value that tripped it.
        at: u64,
    },
    /// A typed simulator error surfaced mid-run (e.g. a program invoked an
    /// unregistered action).
    Fault(SimError),
    /// Checkpoint self-verification failed: a replica restored from the
    /// run's last mid-run checkpoint did not reproduce the original
    /// outcome (see
    /// [`MachineConfig::checkpoint_verified`](crate::MachineConfig::checkpoint_verified)).
    SnapshotDivergence {
        /// Cycle the diverging checkpoint was taken at.
        checkpoint_cycle: u64,
        /// `(cycles, stats digest)` of the original run.
        expect: (u64, u64),
        /// `(cycles, stats digest)` of the restored replica.
        got: (u64, u64),
    },
    /// The run's last mid-run checkpoint could not be restored during
    /// self-verification.
    SnapshotRestore(crate::snapshot::SnapshotError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock(v) => {
                let cores = v
                    .iter()
                    .filter(|p| matches!(p.owner, ParkOwner::Core(_)))
                    .count();
                write!(f, "deadlock: {cores} core context(s) parked")?;
                for p in v {
                    write!(f, "\n  {p}")?;
                }
                Ok(())
            }
            RunError::Watchdog { limit, at } => write!(
                f,
                "watchdog: simulated clock reached cycle {at} without completing (limit {limit})"
            ),
            RunError::Fault(e) => write!(f, "simulation fault: {e}"),
            RunError::SnapshotDivergence {
                checkpoint_cycle,
                expect,
                got,
            } => write!(
                f,
                "snapshot divergence: replica restored from the checkpoint at cycle \
                 {checkpoint_cycle} finished at cycle {} with stats digest {:#018x} \
                 (original: cycle {} digest {:#018x})",
                got.0, got.1, expect.0, expect.1
            ),
            RunError::SnapshotRestore(e) => {
                write!(f, "snapshot verification could not restore checkpoint: {e}")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl Machine {
    /// Installs `actor` into a recycled slot or appends a new one.
    pub(crate) fn install_actor(&mut self, actor: Actor) -> ActorId {
        match self.free_slots.pop() {
            Some(aid) => {
                self.actors[aid as usize] = actor;
                aid
            }
            None => {
                let aid = self.actors.len() as ActorId;
                self.actors.push(actor);
                aid
            }
        }
    }

    pub(crate) fn enqueue(&mut self, aid: ActorId, at: u64) {
        self.seq += 1;
        let a = &mut self.actors[aid as usize];
        a.sched_seq = self.seq;
        a.state = ActorState::Runnable;
        self.runq.push(Reverse((at, self.seq, aid)));
    }

    pub(crate) fn wake(&mut self, cond: WaitCond, at: u64) {
        let Some(mut list) = self.waiters.remove(&cond) else {
            return;
        };
        for aid in list.drain(..) {
            let a = &mut self.actors[aid as usize];
            if a.state == ActorState::Parked(cond) {
                if let WaitCond::StreamData(sid) = cond {
                    let stall = at.saturating_sub(a.parked_at);
                    self.hw.stats.stream_stall_cycles += stall;
                    self.hw.stats.stream_stall.record(stall);
                    let track = match a.kind {
                        ActorKind::CoreThread { core } => Track::Core(core),
                        ActorKind::EngineTask { engine, .. } => Track::Engine(engine),
                    };
                    let parked_at = a.parked_at;
                    self.hw.stats.trace.record(|| {
                        TraceEvent::span(
                            parked_at,
                            stall,
                            TraceCategory::Stream,
                            "stream.stall",
                            track,
                            &[("sid", sid.0 as u64)],
                        )
                    });
                }
                a.clock = a.clock.max(at);
                // Miss-triggered pseudo-stream producers pay a
                // re-initialization cost on every activation
                // (paper Sec. VIII-C: tako must rebuild its BDFS state per
                // triggered line).
                if let WaitCond::StreamSpace(sid) = cond {
                    if let ActorKind::EngineTask {
                        stream: Some(s), ..
                    } = a.kind
                    {
                        if s == sid {
                            if let StreamMode::MissTriggered { reinit_instrs } =
                                self.hw.ndc.streams[sid.0 as usize].mode
                            {
                                self.hw.stats.engine_instrs += reinit_instrs as u64;
                                a.clock += (reinit_instrs as u64).div_ceil(4);
                            }
                        }
                    }
                }
                let clock = a.clock;
                self.enqueue(aid, clock);
            }
        }
        // Recycle the emptied list so the next park doesn't allocate.
        self.waiter_pool.push(list);
    }

    /// Runs until every spawned core thread has halted (engine tasks may
    /// remain parked, e.g. stream producers blocked on a full buffer).
    ///
    /// # Errors
    /// Returns [`RunError::Deadlock`] if the run queue drains while a core
    /// thread is still parked, [`RunError::Watchdog`] if the clock passes
    /// [`MachineConfig::max_cycles`](crate::MachineConfig::max_cycles)
    /// (when non-zero), and [`RunError::Fault`] when a typed error
    /// surfaces mid-run.
    pub fn run(&mut self) -> Result<RunResult, RunError> {
        let run_start = self.now;
        let result = self.run_inner();
        // Fold everything the scoped profiler measured on this thread
        // since the last drain (construction included) into the stats.
        // A no-op without the `self-profile` feature.
        let profile = crate::perf::take();
        if !profile.is_empty() {
            self.hw.stats.host_phases.merge(&profile);
        }
        let result = result?;
        if self.hw.cfg.checkpoint_verify {
            self.verify_last_checkpoint(result.cycles, run_start)?;
        }
        Ok(result)
    }

    /// Re-executes the run from its last mid-run checkpoint in a restored
    /// replica and cross-checks the outcome (cycles + stats digest)
    /// against the original. A no-op when no checkpoint was taken, or when
    /// the last checkpoint predates this `run()` call: a replica can only
    /// replay to the quiescence point of the phase it was captured in, so
    /// a checkpoint from an earlier phase cannot reproduce host actions
    /// (spawns, memory writes) performed between the two runs.
    fn verify_last_checkpoint(&mut self, cycles: u64, run_start: u64) -> Result<(), RunError> {
        let Some((ckpt_cycle, bytes)) = self.last_checkpoint.as_ref().map(|(c, b)| (*c, b)) else {
            return Ok(());
        };
        if ckpt_cycle < run_start {
            return Ok(());
        }
        let mut replica =
            Machine::restore(self.hw.cfg.clone(), bytes).map_err(RunError::SnapshotRestore)?;
        // No further checkpoints in the replica; it only replays the tail.
        replica.next_ckpt = u64::MAX;
        replica.run_inner()?;
        // Host-phase wall-clock from the replica is measurement noise, not
        // simulated state — drop it so it doesn't leak into our stats.
        let _ = crate::perf::take();
        let expect = (cycles, self.hw.stats.digest());
        let got = (replica.now, replica.hw.stats.digest());
        if expect != got {
            return Err(RunError::SnapshotDivergence {
                checkpoint_cycle: ckpt_cycle,
                expect,
                got,
            });
        }
        Ok(())
    }

    /// Takes the periodic checkpoint and advances the hook past `now` in
    /// whole multiples of `checkpoint_every`.
    fn take_checkpoint(&mut self) {
        let bytes = self.checkpoint();
        self.last_checkpoint = Some((self.now, bytes));
        let every = self.hw.cfg.checkpoint_every.max(1);
        let periods = self.now / every + 1;
        self.next_ckpt = periods.saturating_mul(every);
    }

    fn run_inner(&mut self) -> Result<RunResult, RunError> {
        crate::perf::prof_scope!(crate::perf::Phase::Sched);
        let max_cycles = self.hw.cfg.max_cycles;
        while let Some(Reverse((t, seq, aid))) = self.runq.pop() {
            {
                let a = &self.actors[aid as usize];
                if a.sched_seq != seq || a.state != ActorState::Runnable {
                    continue;
                }
            }
            self.now = self.now.max(t);
            if self.now >= self.next_ckpt {
                // Take the periodic checkpoint between actor dispatches:
                // re-push the popped entry so the snapshot captures a
                // consistent queue, checkpoint, then resume. A single
                // always-false compare when disabled (`next_ckpt == MAX`).
                self.runq.push(Reverse((t, seq, aid)));
                self.take_checkpoint();
                continue;
            }
            if max_cycles != 0 && self.now > max_cycles {
                return Err(RunError::Watchdog {
                    limit: max_cycles,
                    at: self.now,
                });
            }
            self.hw.maybe_sample(self.now);
            self.run_actor(aid);
            if let Some(e) = self.hw.fatal.take() {
                return Err(RunError::Fault(e));
            }
            if self.live_core_threads == 0 && self.no_runnable_engine_tasks() {
                break;
            }
        }
        // Deadlock check: parked core threads with an empty queue. The
        // report also lists parked engine tasks — a blocked producer or
        // consumer is usually the other half of the cycle.
        let mut stuck = Vec::new();
        for (i, a) in self.actors.iter().enumerate() {
            if let ActorState::Parked(c) = a.state {
                stuck.push(ParkedActor {
                    actor: i as ActorId,
                    cond: c,
                    owner: match a.kind {
                        ActorKind::CoreThread { core } => ParkOwner::Core(core),
                        ActorKind::EngineTask { engine, .. } => ParkOwner::Engine(engine),
                    },
                    parked_at: a.parked_at,
                    parked_for: self.now.saturating_sub(a.parked_at),
                });
            }
        }
        let core_stuck = stuck.iter().any(|p| matches!(p.owner, ParkOwner::Core(_)));
        if core_stuck && self.live_core_threads > 0 {
            return Err(RunError::Deadlock(stuck));
        }
        let cycles = self
            .actors
            .iter()
            .map(|a| a.clock)
            .max()
            .unwrap_or(self.now)
            .max(self.now);
        self.now = cycles;
        self.hw.stats.cycles = cycles;
        Ok(RunResult { cycles })
    }

    fn no_runnable_engine_tasks(&self) -> bool {
        // After cores finish we still drain runnable engine work (offloaded
        // tasks in flight) but not parked producers.
        self.runq.iter().all(|Reverse((_, seq, aid))| {
            let a = &self.actors[*aid as usize];
            a.sched_seq != *seq || a.state != ActorState::Runnable
        })
    }

    // ------------------------------------------------------------------
    // The dispatch loop
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn run_actor(&mut self, aid: ActorId) {
        crate::perf::prof_scope!(crate::perf::Phase::Exec);
        let prog = self.actors[aid as usize].prog.clone();
        let quantum = self.hw.cfg.quantum;
        let quantum_end = self.actors[aid as usize].clock + quantum;

        loop {
            // -------- per-instruction outcome, gathered under a scoped
            // borrow of the actor --------
            use StepOutcome as Outcome;
            // Scratch buffers reused across iterations (and actors): taken
            // from the machine, drained below, and put back empty.
            let mut spawns: Vec<SpawnReq> = std::mem::take(&mut self.scratch_spawns);
            let mut wakes: Vec<(WaitCond, u64)> = std::mem::take(&mut self.scratch_wakes);

            let outcome = {
                let Machine {
                    actors,
                    hw,
                    mem,
                    traces,
                    ..
                } = self;
                let a = &mut actors[aid as usize];
                if a.ctx.halted {
                    Outcome::Finished
                } else if a.clock > quantum_end {
                    Outcome::Yield(a.clock)
                } else {
                    // Borrow the instruction from the program: cloning
                    // here allocated on every executed `Invoke` (its
                    // `args: Vec<Reg>`) and memcpy'd every other
                    // instruction, and this is the hottest line in the
                    // simulator.
                    let inst = &prog.func(a.ctx.pc.func).insts()[a.ctx.pc.idx as usize];
                    let is_core = matches!(a.kind, ActorKind::CoreThread { .. });
                    let (tile, engine) = match a.kind {
                        ActorKind::CoreThread { core } => (core, None),
                        ActorKind::EngineTask { engine, .. } => (engine.tile, Some(engine)),
                    };

                    // Operand readiness.
                    let mut ready = a.clock;
                    inst.for_each_use(|r| ready = ready.max(a.reg_ready[r.index()]));

                    // Issue slot.
                    let class = inst.class();
                    let slot = if is_core {
                        a.issue.reserve(ready)
                    } else {
                        let e = &mut hw.engines[engine.expect("engine task").index()];
                        match class {
                            InstClass::Mem => e.reserve_mem(ready),
                            _ => e.reserve_int(ready),
                        }
                    };

                    step_one(
                        StepEnv {
                            hw,
                            mem,
                            traces,
                            is_core,
                            tile,
                            engine,
                            prog: &prog,
                        },
                        a,
                        inst,
                        slot,
                        &mut spawns,
                        &mut wakes,
                    )
                }
            };

            // -------- apply side effects gathered during the step --------
            for s in spawns.drain(..) {
                let start = s.start;
                if let Some(core) = s.fallback_core {
                    // Fault fallback: run the action as a software handler
                    // thread on the issuing core instead of an engine task.
                    let id = self.spawn_core_actor(core, s.prog, s.func, &s.args, start);
                    self.hw.stats.trace.record(|| {
                        TraceEvent::instant(
                            start,
                            TraceCategory::Fault,
                            "fault.core_fallback_task",
                            Track::Core(core),
                            &[("actor", id as u64)],
                        )
                    });
                    if let Some(sp) = s.span {
                        self.actors[id as usize].span = s.span;
                        self.hw.stats.spans.note_dispatch(sp, start);
                        self.hw.stats.trace.record(|| {
                            TraceEvent::instant(
                                start,
                                TraceCategory::Span,
                                "span.executing",
                                Track::Core(core),
                                &[("span", sp.0 as u64), ("actor", id as u64)],
                            )
                        });
                    }
                    self.enqueue(id, start);
                    continue;
                }
                let target = s.engine;
                let id = self.spawn_engine_task(s.engine, s.prog, s.func, &s.args, None);
                self.hw.stats.trace.record(|| {
                    TraceEvent::instant(
                        start,
                        TraceCategory::Invoke,
                        "task.dispatch",
                        Track::Engine(target),
                        &[("actor", id as u64)],
                    )
                });
                let a = &mut self.actors[id as usize];
                a.clock = start;
                a.span = s.span;
                // Mark that this task holds a reserved context.
                if let ActorKind::EngineTask { reserved_ctx, .. } = &mut a.kind {
                    *reserved_ctx = true;
                }
                if let Some(sp) = s.span {
                    self.hw.stats.spans.note_dispatch(sp, start);
                    self.hw.stats.trace.record(|| {
                        TraceEvent::instant(
                            start,
                            TraceCategory::Span,
                            "span.executing",
                            Track::Engine(target),
                            &[("span", sp.0 as u64), ("actor", id as u64)],
                        )
                    });
                }
                self.enqueue(id, start);
            }
            for (cond, at) in wakes.drain(..) {
                self.wake(cond, at);
            }
            self.scratch_spawns = spawns;
            self.scratch_wakes = wakes;

            match outcome {
                Outcome::Continue => {}
                Outcome::Finished => {
                    self.finish_actor(aid);
                    return;
                }
                Outcome::Yield(at) => {
                    self.enqueue(aid, at);
                    return;
                }
                Outcome::Park(cond) => {
                    let a = &mut self.actors[aid as usize];
                    a.state = ActorState::Parked(cond);
                    a.parked_at = a.clock;
                    // Pull a recycled list from the pool rather than
                    // allocating a fresh Vec per wait condition.
                    match self.waiters.entry(cond) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            e.into_mut().push(aid);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            let mut list = self.waiter_pool.pop().unwrap_or_default();
                            list.push(aid);
                            e.insert(list);
                        }
                    }
                    return;
                }
                Outcome::SleepUntil(at) => {
                    self.enqueue(aid, at);
                    return;
                }
            }
        }
    }

    fn finish_actor(&mut self, aid: ActorId) {
        let clock = self.actors[aid as usize].clock;
        let span = self.actors[aid as usize].span.take();
        let (core_tile, engine_task, engine_release, stream, track) = {
            let a = &mut self.actors[aid as usize];
            a.state = ActorState::Done;
            match a.kind {
                ActorKind::CoreThread { core } => (Some(core), None, None, None, Track::Core(core)),
                ActorKind::EngineTask {
                    engine,
                    reserved_ctx,
                    stream,
                } => (
                    None,
                    Some(engine),
                    reserved_ctx.then_some(engine),
                    stream,
                    Track::Engine(engine),
                ),
            }
        };
        let is_core = core_tile.is_some();
        if let Some(core) = core_tile {
            self.live_core_threads -= 1;
            if let Some(tm) = &self.hw.tenants {
                // Per-tenant slowdown: each tenant's makespan is the
                // latest finish among its core threads (cold path only).
                let ten = tm.tenant_of(core) as usize;
                if let Some(f) = self.hw.stats.tenant_finish.get_mut(ten) {
                    *f = (*f).max(clock);
                }
            }
        }
        if let Some(engine) = engine_task {
            self.hw.stats.trace.record(|| {
                TraceEvent::instant(
                    clock,
                    TraceCategory::Invoke,
                    "task.retire",
                    Track::Engine(engine),
                    &[("actor", aid as u64)],
                )
            });
        }
        if let Some(sp) = span {
            self.hw.stats.spans.note_retire(sp, clock);
            self.hw.stats.trace.record(|| {
                TraceEvent::instant(
                    clock,
                    TraceCategory::Span,
                    "span.retired",
                    track,
                    &[("span", sp.0 as u64), ("actor", aid as u64)],
                )
            });
        }
        if let Some(engine) = engine_release {
            self.hw.engines[engine.index()].release_ctx();
            self.wake(WaitCond::EngineCtx(engine), clock);
        }
        if let Some(sid) = stream {
            self.hw.ndc.stream_mut(sid).closed = true;
            self.wake(WaitCond::StreamData(sid), clock);
        }
        self.now = self.now.max(clock);
        if !is_core {
            // Recycle the slot so offload-heavy workloads stay bounded.
            self.free_slots.push(aid);
        }
    }
}
