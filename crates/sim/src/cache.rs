//! Set-associative cache banks.
//!
//! One [`CacheBank`] models one cache: a private L1 or L2, one shared LLC
//! bank, or an engine L1d. Banks are *tag-only* — functional data lives in
//! the flat [`levi_isa::PagedMem`] — so a bank tracks presence, dirtiness,
//! replacement state, coherence metadata (for the LLC's in-tag directory),
//! and Leviathan's per-line destructor-trigger bit (paper Sec. VI-B2).
//!
//! # Data layout
//!
//! Storage is a single flat slab indexed by `set * ways + way`, split into
//! parallel arrays: `tags` (the probe loop's scan target), `rrip`/`lru`
//! (the victim scan's targets), and `lines` (the coherence payload). A
//! per-set occupancy count emulates the previous `Vec<Vec<Line>>` design's
//! push/`swap_remove` discipline exactly, so way ordering — which SRRIP's
//! first-match victim scan observes — is bit-for-bit identical to the
//! nested-Vec implementation, and snapshots stay byte-identical.

use crate::config::{CacheConfig, Replacement, LINE_SHIFT};

/// Coherence state of a line in a *private* cache (MESI reduced to the two
/// states that matter for our timing: exclusive-ownership vs shared).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrivState {
    /// Shared, read-only.
    Shared,
    /// Modified/exclusive: this tile owns the line.
    Owned,
}

/// Metadata for one resident cache line.
///
/// Replacement state (SRRIP counter, LRU timestamp) lives in the bank's
/// parallel metadata arrays, not here, so victim scans touch contiguous
/// memory.
#[derive(Clone, Copy, Debug)]
pub struct Line {
    /// Line address (byte address >> 6).
    pub line: u64,
    /// Dirty (must be written back on eviction).
    pub dirty: bool,
    /// Leviathan tag bit: run the Morph destructor when this line is
    /// evicted.
    pub dtor: bool,
    /// Coherence state (meaningful in private caches).
    pub state: PrivState,
    /// Directory: bitmask of tiles with a private copy (LLC banks only).
    pub sharers: u64,
    /// Directory: tile that owns the line exclusively (LLC banks only).
    pub owner: Option<u8>,
    /// Tenant that demand-filled the line ([`crate::xlat`]; LLC banks
    /// under way-partitioning only — 0 everywhere else).
    pub tenant: u8,
}

impl Line {
    fn new(line: u64) -> Self {
        Line {
            line,
            dirty: false,
            dtor: false,
            state: PrivState::Shared,
            sharers: 0,
            owner: None,
            tenant: 0,
        }
    }
}

/// One set-associative, tag-only cache bank (flat slab storage; see the
/// module docs for the layout).
///
/// Per-set occupancy (`len`) is the *only* liveness source: every scan is
/// bounded by it, so dead slots hold stale values and are never read.
/// That keeps construction cheap — `tags` starts as an all-zero
/// allocation (fresh zero pages, no sentinel memset) and eviction never
/// writes a tombstone.
#[derive(Clone, Debug)]
pub struct CacheBank {
    /// Line address per slot (`set * ways + way`); stale when dead.
    tags: Vec<u64>,
    /// SRRIP re-reference counter per slot (0 = near, 3 = distant).
    rrip: Vec<u8>,
    /// LRU timestamp per slot.
    lru: Vec<u64>,
    /// Coherence payload per slot.
    lines: Vec<Line>,
    /// Occupied ways per set (slots `[set*ways, set*ways+len)` are live).
    len: Vec<u16>,
    ways: usize,
    set_mask: u64,
    replacement: Replacement,
    tick: u64,
}

impl CacheBank {
    /// Builds a bank from a [`CacheConfig`].
    ///
    /// # Panics
    /// Panics if the implied set count is not a power of two.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let slots = sets as usize * cfg.ways as usize;
        CacheBank {
            tags: vec![0; slots],
            rrip: vec![0; slots],
            lru: vec![0; slots],
            lines: vec![Line::new(0); slots],
            len: vec![0; sets as usize],
            ways: cfg.ways as usize,
            set_mask: sets - 1,
            replacement: cfg.replacement,
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Converts a byte address to its line address.
    #[inline]
    pub fn line_of(addr: u64) -> u64 {
        addr >> LINE_SHIFT
    }

    /// Slot index of `line` if resident (scans the set's live tags).
    #[inline]
    fn find(&self, line: u64) -> Option<usize> {
        let set = self.set_of(line);
        let base = set * self.ways;
        let n = self.len[set] as usize;
        self.tags[base..base + n]
            .iter()
            .position(|&t| t == line)
            .map(|w| base + w)
    }

    /// Looks up `line`; on a hit, updates replacement state and returns the
    /// line's metadata.
    pub fn probe(&mut self, line: u64) -> Option<&mut Line> {
        self.tick += 1;
        let slot = self.find(line)?;
        self.lru[slot] = self.tick;
        self.rrip[slot] = 0;
        Some(&mut self.lines[slot])
    }

    /// Looks up `line` without touching replacement state.
    pub fn peek(&self, line: u64) -> Option<&Line> {
        self.find(line).map(|slot| &self.lines[slot])
    }

    /// Mutable peek without touching replacement state.
    pub fn peek_mut(&mut self, line: u64) -> Option<&mut Line> {
        self.find(line).map(|slot| &mut self.lines[slot])
    }

    /// True if `line` is resident.
    pub fn contains(&self, line: u64) -> bool {
        self.find(line).is_some()
    }

    /// Removes the line at `slot`, moving the set's last live slot into its
    /// place (the flat equivalent of `Vec::swap_remove`, preserving the
    /// way-order the old nested-Vec layout produced).
    fn swap_remove(&mut self, set: usize, slot: usize) -> Line {
        let last = set * self.ways + self.len[set] as usize - 1;
        let victim = self.lines[slot];
        if slot != last {
            self.tags[slot] = self.tags[last];
            self.rrip[slot] = self.rrip[last];
            self.lru[slot] = self.lru[last];
            self.lines[slot] = self.lines[last];
        }
        self.len[set] -= 1;
        victim
    }

    /// Inserts `line`, evicting a victim if the set is full. Returns the
    /// victim's metadata, if any. The caller configures the inserted line
    /// through the returned reference.
    ///
    /// `pinned` lists lines that must not be chosen as victims — the
    /// in-flight fills of the surrounding walk (the MSHR/line-buffer
    /// protection real hardware provides).
    ///
    /// # Panics
    /// Panics if the line is already resident (callers must probe first),
    /// or if every way of the set is pinned.
    pub fn insert(&mut self, line: u64, pinned: &[u64]) -> (&mut Line, Option<Line>) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let base = set * self.ways;
        debug_assert!(
            self.find(line).is_none(),
            "inserting already-resident line {line:#x}"
        );
        let victim = if self.len[set] as usize >= self.ways {
            let vi = self.pick_victim(set, pinned);
            Some(self.swap_remove(set, base + vi))
        } else {
            None
        };
        let slot = base + self.len[set] as usize;
        self.tags[slot] = line;
        self.rrip[slot] = 2;
        self.lru[slot] = tick;
        self.lines[slot] = Line::new(line);
        self.len[set] += 1;
        (&mut self.lines[slot], victim)
    }

    /// Way-partitioned insert ([`crate::xlat::TenantPolicy::LlcWayPartition`]):
    /// like [`CacheBank::insert`], but when the set is full the victim is
    /// drawn from the inserting tenant's own lines once it holds `quota`
    /// ways, and from over-quota tenants' lines otherwise — so a tenant's
    /// demand fills can never squeeze a co-runner below its share. Falls
    /// back to the unpartitioned scan only when pinning leaves no eligible
    /// candidate.
    pub fn insert_for_tenant(
        &mut self,
        line: u64,
        pinned: &[u64],
        tenant: u8,
        quota: u32,
    ) -> (&mut Line, Option<Line>) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let base = set * self.ways;
        debug_assert!(
            self.find(line).is_none(),
            "inserting already-resident line {line:#x}"
        );
        let victim = if self.len[set] as usize >= self.ways {
            let vi = self.pick_victim_for_tenant(set, pinned, tenant, quota);
            Some(self.swap_remove(set, base + vi))
        } else {
            None
        };
        let slot = base + self.len[set] as usize;
        self.tags[slot] = line;
        self.rrip[slot] = 2;
        self.lru[slot] = tick;
        let mut l = Line::new(line);
        l.tenant = tenant;
        self.lines[slot] = l;
        self.len[set] += 1;
        (&mut self.lines[slot], victim)
    }

    /// Victim way for a way-partitioned fill (see
    /// [`CacheBank::insert_for_tenant`]).
    fn pick_victim_for_tenant(
        &mut self,
        set: usize,
        pinned: &[u64],
        tenant: u8,
        quota: u32,
    ) -> usize {
        let base = set * self.ways;
        let n = self.len[set] as usize;
        let mut occ = [0u32; 8];
        for w in 0..n {
            occ[(self.lines[base + w].tenant & 7) as usize] += 1;
        }
        let vi = if occ[(tenant & 7) as usize] >= quota {
            // At (or over) quota: recycle our own ways.
            self.pick_victim_where(set, pinned, |l| l.tenant == tenant)
        } else {
            // Under quota in a full set: someone else is over theirs.
            self.pick_victim_where(set, pinned, |l| occ[(l.tenant & 7) as usize] > quota)
        };
        vi.unwrap_or_else(|| self.pick_victim(set, pinned))
    }

    /// Replacement-policy victim scan restricted to candidate lines;
    /// `None` when pinning (or the filter) leaves no eligible way.
    fn pick_victim_where(
        &mut self,
        set: usize,
        pinned: &[u64],
        cand: impl Fn(&Line) -> bool,
    ) -> Option<usize> {
        let base = set * self.ways;
        let n = self.len[set] as usize;
        let eligible =
            |w: usize, b: &Self| cand(&b.lines[base + w]) && !pinned.contains(&b.tags[base + w]);
        if !(0..n).any(|w| eligible(w, self)) {
            return None;
        }
        match self.replacement {
            Replacement::Lru => {
                let mut vi = None;
                for w in 0..n {
                    if !eligible(w, self) {
                        continue;
                    }
                    match vi {
                        None => vi = Some(w),
                        Some(j) if self.lru[base + w] < self.lru[base + j] => vi = Some(w),
                        _ => {}
                    }
                }
                vi
            }
            Replacement::Srrip => loop {
                if let Some(w) = (0..n).find(|&w| self.rrip[base + w] >= 3 && eligible(w, self)) {
                    return Some(w);
                }
                for r in &mut self.rrip[base..base + n] {
                    *r += 1;
                }
            },
        }
    }

    /// Picks a victim *way* in `set` (the caller removes it).
    fn pick_victim(&mut self, set: usize, pinned: &[u64]) -> usize {
        let base = set * self.ways;
        let n = self.len[set] as usize;
        match self.replacement {
            Replacement::Lru => {
                let mut vi = None;
                for w in 0..n {
                    if pinned.contains(&self.tags[base + w]) {
                        continue;
                    }
                    match vi {
                        None => vi = Some(w),
                        Some(j) if self.lru[base + w] < self.lru[base + j] => vi = Some(w),
                        _ => {}
                    }
                }
                vi.expect("every way of the set is pinned")
            }
            Replacement::Srrip => {
                // Find a distant (rrip==3) unpinned line, aging the set
                // until one exists. Bounded: each pass increments every
                // counter; pinned lines must not fill the whole set.
                assert!(
                    self.tags[base..base + n]
                        .iter()
                        .any(|t| !pinned.contains(t)),
                    "every way of the set is pinned"
                );
                loop {
                    if let Some(w) = (0..n).find(|&w| {
                        self.rrip[base + w] >= 3 && !pinned.contains(&self.tags[base + w])
                    }) {
                        return w;
                    }
                    for r in &mut self.rrip[base..base + n] {
                        *r += 1;
                    }
                }
            }
        }
    }

    /// Removes `line` if resident, returning its metadata.
    pub fn invalidate(&mut self, line: u64) -> Option<Line> {
        let slot = self.find(line)?;
        Some(self.swap_remove(self.set_of(line), slot))
    }

    /// Removes and returns every resident line whose *byte* range overlaps
    /// `[base, bound)`. Used by `flush`.
    pub fn drain_range(&mut self, base: u64, bound: u64) -> Vec<Line> {
        let mut out = Vec::new();
        self.drain_range_into(base, bound, &mut out);
        out
    }

    /// Arena-reuse variant of [`CacheBank::drain_range`]: clears `out` and
    /// fills it with the drained lines, sorted by line address. Hot flush
    /// paths pass a scratch buffer owned by `Hw` to avoid a fresh
    /// allocation per call.
    pub fn drain_range_into(&mut self, base: u64, bound: u64, out: &mut Vec<Line>) {
        crate::perf::prof_scope!(crate::perf::Phase::Flush);
        let first = base >> LINE_SHIFT;
        let last = (bound + (1 << LINE_SHIFT) - 1) >> LINE_SHIFT;
        out.clear();
        for set in 0..self.len.len() {
            let slab = set * self.ways;
            let mut i = 0;
            while i < self.len[set] as usize {
                let t = self.tags[slab + i];
                if t >= first && t < last {
                    out.push(self.swap_remove(set, slab + i));
                } else {
                    i += 1;
                }
            }
        }
        out.sort_by_key(|l| l.line);
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.len.iter().map(|&n| n as usize).sum()
    }

    /// Iterates over all resident lines (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &Line> {
        let ways = self.ways;
        self.len.iter().enumerate().flat_map(move |(set, &n)| {
            let base = set * ways;
            self.lines[base..base + n as usize].iter()
        })
    }
}

impl CacheBank {
    /// Serializes bank contents (see [`crate::snapshot`]). Geometry
    /// (set count, ways, replacement policy) comes from the config at
    /// restore time and is validated, not serialized. The byte format is
    /// identical to the pre-flat nested-Vec layout: per set, occupancy then
    /// lines in way order.
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        w.u64(self.tick);
        w.u32(self.len.len() as u32);
        for set in 0..self.len.len() {
            let n = self.len[set] as usize;
            w.u32(n as u32);
            for slot in set * self.ways..set * self.ways + n {
                let l = &self.lines[slot];
                w.u64(l.line);
                w.bool(l.dirty);
                w.bool(l.dtor);
                w.u8(match l.state {
                    PrivState::Shared => 0,
                    PrivState::Owned => 1,
                });
                w.u64(l.sharers);
                match l.owner {
                    Some(o) => {
                        w.bool(true);
                        w.u8(o);
                    }
                    None => w.bool(false),
                }
                w.u8(l.tenant);
                w.u8(self.rrip[slot]);
                w.u64(self.lru[slot]);
            }
        }
    }

    /// Restores bank contents written by [`CacheBank::snap_write`] into a
    /// bank with matching geometry.
    pub(crate) fn snap_read(
        &mut self,
        r: &mut levi_isa::codec::Reader,
    ) -> Result<(), levi_isa::codec::CodecError> {
        use levi_isa::codec::CodecError;
        self.tick = r.u64()?;
        let nsets = r.u32()? as usize;
        if nsets != self.len.len() {
            return Err(CodecError::Invalid("cache set count"));
        }
        for set in 0..nsets {
            let base = set * self.ways;
            let n = r.count(12)?;
            if n > self.ways {
                return Err(CodecError::Invalid("cache set occupancy"));
            }
            self.len[set] = n as u16;
            for slot in base..base + n {
                let line = r.u64()?;
                let dirty = r.bool()?;
                let dtor = r.bool()?;
                let state = match r.u8()? {
                    0 => PrivState::Shared,
                    1 => PrivState::Owned,
                    _ => return Err(CodecError::Invalid("coherence state")),
                };
                let sharers = r.u64()?;
                let owner = if r.bool()? { Some(r.u8()?) } else { None };
                let tenant = r.u8()?;
                self.rrip[slot] = r.u8()?;
                self.lru[slot] = r.u64()?;
                self.tags[slot] = line;
                self.lines[slot] = Line {
                    line,
                    dirty,
                    dtor,
                    state,
                    sharers,
                    owner,
                    tenant,
                };
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: u32, repl: Replacement) -> CacheBank {
        // 4 sets x `ways` ways of 64B lines.
        CacheBank::new(&CacheConfig {
            size_bytes: 4 * ways as u64 * 64,
            ways,
            latency: 1,
            replacement: repl,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny(2, Replacement::Lru);
        let (l, v) = c.insert(0x40, &[]);
        assert!(v.is_none());
        l.dirty = true;
        assert!(c.contains(0x40));
        assert!(c.probe(0x40).unwrap().dirty);
        assert!(!c.contains(0x41));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, Replacement::Lru);
        // Lines 0x0, 0x4, 0x8 all map to set 0 (4 sets).
        c.insert(0x0, &[]);
        c.insert(0x4, &[]);
        c.probe(0x0); // refresh 0x0 so 0x4 is LRU
        let (_, victim) = c.insert(0x8, &[]);
        assert_eq!(victim.unwrap().line, 0x4);
        assert!(c.contains(0x0));
        assert!(c.contains(0x8));
    }

    #[test]
    fn srrip_prefers_unreused_lines() {
        let mut c = tiny(2, Replacement::Srrip);
        c.insert(0x0, &[]);
        c.insert(0x4, &[]);
        c.probe(0x0); // promote to near
        let (_, victim) = c.insert(0x8, &[]);
        assert_eq!(victim.unwrap().line, 0x4, "unreused line evicted first");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny(2, Replacement::Lru);
        c.insert(0x40, &[]);
        let gone = c.invalidate(0x40);
        assert_eq!(gone.unwrap().line, 0x40);
        assert!(!c.contains(0x40));
        assert!(c.invalidate(0x40).is_none());
    }

    #[test]
    fn drain_range_collects_overlapping_lines() {
        let mut c = tiny(4, Replacement::Lru);
        // Byte addresses: lines 1,2,3 cover [0x40, 0x100).
        c.insert(1, &[]);
        c.insert(2, &[]);
        c.insert(3, &[]);
        c.insert(9, &[]);
        let drained = c.drain_range(0x40, 0xC1); // bytes 0x40..0xC1 -> lines 1..=3
        let lines: Vec<u64> = drained.iter().map(|l| l.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
        assert!(c.contains(9));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn sets_are_isolated() {
        let mut c = tiny(1, Replacement::Lru);
        // 4 sets, 1 way: lines 0..4 each land in their own set.
        for line in 0..4 {
            let (_, v) = c.insert(line, &[]);
            assert!(v.is_none(), "no conflict across sets");
        }
        assert_eq!(c.resident(), 4);
        // A fifth line aliasing set 0 evicts line 0.
        let (_, v) = c.insert(4, &[]);
        assert_eq!(v.unwrap().line, 0);
    }

    #[test]
    fn directory_fields_default_empty() {
        let mut c = tiny(1, Replacement::Lru);
        let (l, _) = c.insert(7, &[]);
        assert_eq!(l.sharers, 0);
        assert_eq!(l.owner, None);
        assert!(!l.dtor);
        l.sharers |= 1 << 3;
        l.owner = Some(3);
        assert_eq!(c.peek(7).unwrap().owner, Some(3));
    }

    #[test]
    fn way_partitioned_insert_respects_quota() {
        let mut c = tiny(4, Replacement::Lru);
        // 4 sets x 4 ways: lines 0,4,8,12,16,... all map to set 0.
        // Tenant 0 fills the whole set; its quota is 2.
        for l in [0u64, 4, 8, 12] {
            let (_, v) = c.insert_for_tenant(l, &[], 0, 2);
            assert!(v.is_none());
        }
        // Tenant 1, under its quota, evicts from the over-quota tenant.
        let (_, v) = c.insert_for_tenant(16, &[], 1, 2);
        assert_eq!(v.unwrap().tenant, 0);
        let (_, v) = c.insert_for_tenant(20, &[], 1, 2);
        assert_eq!(v.unwrap().tenant, 0);
        // Both tenants now hold exactly 2 ways: a tenant at quota
        // recycles its own lines, never the co-runner's.
        let (_, v) = c.insert_for_tenant(24, &[], 1, 2);
        assert_eq!(v.unwrap().tenant, 1);
        let (_, v) = c.insert_for_tenant(28, &[], 0, 2);
        assert_eq!(v.unwrap().tenant, 0);
    }

    #[test]
    fn drain_range_into_reuses_buffer() {
        let mut c = tiny(4, Replacement::Lru);
        c.insert(1, &[]);
        c.insert(2, &[]);
        let mut buf = vec![Line::new(99)]; // stale content must be cleared
        c.drain_range_into(0x40, 0xC0, &mut buf);
        let lines: Vec<u64> = buf.iter().map(|l| l.line).collect();
        assert_eq!(lines, vec![1, 2]);
        assert_eq!(c.resident(), 0);
    }
}
