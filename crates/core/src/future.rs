//! Futures: result delivery from near-data actions (paper Sec. V-A2).
//!
//! A future is a 16-byte in-memory record `{ filled, value }`. An action
//! fills it with `future_send` (the `store-update` instruction of
//! Sec. VI-A2, which pushes the value to the waiting thread over the NoC);
//! a thread blocks on it with `future_wait`. This module provides the
//! host-side helpers for allocating and inspecting futures; the
//! instructions themselves are part of LevIR.

use levi_isa::interp::future_layout;
use levi_isa::{Addr, Memory};

/// Size of a future record in bytes.
pub const FUTURE_SIZE: u64 = future_layout::SIZE;

/// Host-side view of a future cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FutureCell {
    /// The future's address (pass this to `invoke`/`future_wait`).
    pub addr: Addr,
}

impl FutureCell {
    /// Wraps an address as a future cell.
    pub fn at(addr: Addr) -> Self {
        FutureCell { addr }
    }

    /// True if the future has been filled.
    pub fn is_filled(&self, mem: &dyn Memory) -> bool {
        future_layout::is_filled(mem, self.addr)
    }

    /// The filled value.
    ///
    /// # Panics
    /// Panics if the future is not filled.
    pub fn value(&self, mem: &dyn Memory) -> u64 {
        assert!(self.is_filled(mem), "future at {:#x} not filled", self.addr);
        future_layout::value(mem, self.addr)
    }

    /// Resets the future to unfilled (for reuse across iterations).
    pub fn reset(&self, mem: &mut dyn Memory) {
        future_layout::reset(mem, self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levi_isa::PagedMem;

    #[test]
    fn fill_and_reset_round_trip() {
        let mut mem = PagedMem::new();
        let f = FutureCell::at(0x100);
        assert!(!f.is_filled(&mem));
        future_layout::fill(&mut mem, 0x100, 99);
        assert!(f.is_filled(&mem));
        assert_eq!(f.value(&mem), 99);
        f.reset(&mut mem);
        assert!(!f.is_filled(&mem));
    }

    #[test]
    #[should_panic(expected = "not filled")]
    fn value_of_unfilled_panics() {
        let mem = PagedMem::new();
        FutureCell::at(0x200).value(&mem);
    }
}
