//! Versioned checkpoint/restore of full machine state.
//!
//! A Leviathan run is a pure function of (config, workload, seed), so a
//! serialization of the complete simulation state at cycle *N* is a
//! perfect resume point: restoring it and running to completion produces
//! byte-identical results to the uninterrupted run. This module defines
//! the container format and the machine-level codec; per-module state
//! with private fields is serialized by `snap_write`/`snap_read` methods
//! on the owning types (cache banks, NoC links, DRAM queues, engines,
//! predictors, histograms, tracers, span tables, time series).
//!
//! # Container format
//!
//! ```text
//! offset  size  field
//! 0       8     magic: b"LEVISNAP"
//! 8       4     version (little-endian u32, currently 1)
//! 12      8     config digest (FNV-1a over the canonical config encoding)
//! 20      8     payload length in bytes
//! 28      n     payload (see `encode_machine`)
//! 28+n    4     CRC-32 (IEEE) over bytes [8, 28+n) — version through payload
//! ```
//!
//! The config digest covers every hardware/timing parameter of
//! [`MachineConfig`] but deliberately **excludes** the fault plan and the
//! checkpoint knobs themselves: excluding the fault plan is what enables
//! time-travel fault replay (restore the same snapshot under different
//! fault seeds and watch the runs diverge), and the checkpoint knobs are
//! observational. Restoring under any other config difference is refused
//! with [`SnapshotError::ConfigMismatch`].
//!
//! Decoding is fail-safe: corrupted, truncated, or mismatched bytes are
//! rejected with a typed [`SnapshotError`]; no input panics the decoder.

use std::cmp::Reverse;
use std::collections::HashMap;
use std::sync::Arc;

use levi_isa::codec::{self, CodecError, Reader, Writer};
use levi_isa::Program;

use crate::config::MachineConfig;
use crate::engine::{EngineId, EngineLevel};
use crate::error::SimError;
use crate::machine::Machine;
use crate::ndc::{
    BankMapRange, FutureFill, MorphLevel, MorphRegion, StreamId, StreamMode, StreamState, WaitCond,
};
use crate::sched::{Actor, ActorKind, ActorState};
use crate::span::SpanId;

/// Snapshot container magic.
pub const MAGIC: [u8; 8] = *b"LEVISNAP";

/// Current snapshot format version.
pub const VERSION: u32 = 1;

/// Why a snapshot could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with the `LEVISNAP` magic.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion(
        /// The version found in the header.
        u32,
    ),
    /// The snapshot was taken under a different machine configuration.
    ConfigMismatch {
        /// Digest of the configuration passed to restore.
        expected: u64,
        /// Digest recorded in the snapshot header.
        found: u64,
    },
    /// The input ended before the container was complete.
    Truncated,
    /// The CRC failed or a field held an impossible value.
    Corrupted(
        /// What the decoder was parsing when it failed.
        &'static str,
    ),
    /// The configuration passed to restore is itself invalid.
    InvalidConfig(SimError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a Leviathan snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot was taken under a different config \
                 (digest {found:#018x}, expected {expected:#018x})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupted(what) => write!(f, "snapshot corrupted: {what}"),
            SnapshotError::InvalidConfig(e) => write!(f, "invalid restore config: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => SnapshotError::Truncated,
            CodecError::Invalid(what) => SnapshotError::Corrupted(what),
        }
    }
}

/// Types that can serialize their complete state into a self-describing
/// versioned container and be rebuilt from it given their originating
/// configuration.
pub trait Snapshot: Sized {
    /// The configuration needed to rebuild the object before overlaying
    /// the serialized state.
    type Config;

    /// Serializes full state. Infallible: every reachable state has an
    /// encoding.
    fn checkpoint(&self) -> Vec<u8>;

    /// Rebuilds from `cfg` plus checkpoint bytes.
    ///
    /// # Errors
    /// Any malformed input or configuration mismatch yields a typed
    /// [`SnapshotError`]; restore never panics on bad bytes.
    fn restore(cfg: Self::Config, bytes: &[u8]) -> Result<Self, SnapshotError>;
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Config digest (FNV-1a over the canonical field encoding)
// ---------------------------------------------------------------------------

/// FNV-1a over `bytes` — the digest primitive behind [`config_digest`],
/// exposed so other layers (the `levi-serve` content-addressed result
/// cache) key on the same machinery instead of growing a second hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of every hardware/timing parameter of a [`MachineConfig`].
///
/// Excludes `fault_plan` (so a snapshot can be replayed under a different
/// fault seed — time-travel debugging) and the observational
/// `checkpoint_every`/`checkpoint_verify` knobs. All other fields,
/// including trace/sampling configuration, must match for a restore to be
/// accepted.
pub fn config_digest(cfg: &MachineConfig) -> u64 {
    let mut w = Writer::new();
    w.u32(cfg.tiles);
    for c in [&cfg.l1, &cfg.l2, &cfg.llc] {
        w.u64(c.size_bytes);
        w.u32(c.ways);
        w.u64(c.latency);
        w.u8(match c.replacement {
            crate::config::Replacement::Lru => 0,
            crate::config::Replacement::Srrip => 1,
        });
    }
    w.u32(cfg.core.issue_width);
    w.u32(cfg.core.mshrs);
    w.u64(cfg.core.mispredict_penalty);
    w.u32(cfg.core.predictor_bits);
    w.u32(cfg.core.invoke_buffer);
    w.u64(cfg.core.mul_latency);
    w.u64(cfg.core.div_latency);
    w.u32(cfg.engine.int_fus);
    w.u32(cfg.engine.mem_fus);
    w.u64(cfg.engine.pe_latency);
    w.u32(cfg.engine.contexts);
    w.u64(cfg.engine.l1d_bytes);
    w.u64(cfg.engine.l1d_latency);
    w.bool(cfg.engine.idealized);
    w.u32(cfg.noc.flit_bits);
    w.u64(cfg.noc.router_delay);
    w.u64(cfg.noc.link_delay);
    w.u32(cfg.mem.controllers);
    w.u64(cfg.mem.latency);
    w.u64(cfg.mem.cycles_per_line);
    w.u32(cfg.mem.fifo_cache_lines);
    w.u64(cfg.mem.fifo_hit_latency);
    for e in [
        cfg.energy.core_inst_pj,
        cfg.energy.engine_inst_pj,
        cfg.energy.l1_pj,
        cfg.energy.l2_pj,
        cfg.energy.llc_pj,
        cfg.energy.dir_pj,
        cfg.energy.noc_flit_hop_pj,
        cfg.energy.dram_line_pj,
        cfg.energy.mc_cache_pj,
    ] {
        w.f64(e);
    }
    w.bool(cfg.prefetcher);
    w.u32(cfg.prefetch_degree);
    w.u64(cfg.quantum);
    w.bool(cfg.trace);
    w.u64(cfg.trace_capacity as u64);
    w.bool(cfg.trace_sched);
    w.bool(cfg.trace_spans);
    w.u64(cfg.sample_interval);
    w.u64(cfg.max_cycles);
    match cfg.xlat {
        Some(x) => {
            w.bool(true);
            w.u32(x.page_bits);
            w.u32(x.tlb_entries);
            w.u32(x.tlb_ways);
            w.u32(x.walk_levels);
            w.u64(x.walk_latency);
        }
        None => w.bool(false),
    }
    match cfg.tenants {
        Some(t) => {
            w.bool(true);
            w.u32(t.count);
            w.u8(t.policy.as_u8());
        }
        None => w.bool(false),
    }
    fnv1a(&w.into_bytes())
}

// ---------------------------------------------------------------------------
// Container seal/open
// ---------------------------------------------------------------------------

/// Wraps a payload in the versioned, CRC-guarded container.
pub(crate) fn seal(config_digest: u64, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&config_digest.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out[8..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates the container and returns the payload slice.
pub(crate) fn open(bytes: &[u8], expected_digest: u64) -> Result<&[u8], SnapshotError> {
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < 28 {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let found = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if found != expected_digest {
        return Err(SnapshotError::ConfigMismatch {
            expected: expected_digest,
            found,
        });
    }
    let plen = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let end = 28usize
        .checked_add(usize::try_from(plen).map_err(|_| SnapshotError::Truncated)?)
        .ok_or(SnapshotError::Truncated)?;
    if bytes.len() < end + 4 {
        return Err(SnapshotError::Truncated);
    }
    let crc_stored = u32::from_le_bytes(bytes[end..end + 4].try_into().unwrap());
    if crc32(&bytes[8..end]) != crc_stored {
        return Err(SnapshotError::Corrupted("CRC mismatch"));
    }
    Ok(&bytes[28..end])
}

// ---------------------------------------------------------------------------
// Shared small codecs (used by sibling modules' snap methods too)
// ---------------------------------------------------------------------------

pub(crate) fn w_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        Some(x) => {
            w.bool(true);
            w.u64(x);
        }
        None => w.bool(false),
    }
}

pub(crate) fn r_opt_u64(r: &mut Reader) -> Result<Option<u64>, CodecError> {
    Ok(if r.bool()? { Some(r.u64()?) } else { None })
}

pub(crate) fn w_engine_id(w: &mut Writer, id: EngineId) {
    w.u32(id.tile);
    w.u8(match id.level {
        EngineLevel::L2 => 0,
        EngineLevel::Llc => 1,
    });
}

pub(crate) fn r_engine_id(r: &mut Reader) -> Result<EngineId, CodecError> {
    let tile = r.u32()?;
    let level = match r.u8()? {
        0 => EngineLevel::L2,
        1 => EngineLevel::Llc,
        _ => return Err(CodecError::Invalid("engine level")),
    };
    Ok(EngineId { tile, level })
}

pub(crate) fn w_morph_level(w: &mut Writer, l: MorphLevel) {
    w.u8(match l {
        MorphLevel::L2 => 0,
        MorphLevel::Llc => 1,
    });
}

pub(crate) fn r_morph_level(r: &mut Reader) -> Result<MorphLevel, CodecError> {
    match r.u8()? {
        0 => Ok(MorphLevel::L2),
        1 => Ok(MorphLevel::Llc),
        _ => Err(CodecError::Invalid("morph level")),
    }
}

fn w_wait_cond(w: &mut Writer, c: WaitCond) {
    match c {
        WaitCond::FutureFill(a) => {
            w.u8(0);
            w.u64(a);
        }
        WaitCond::StreamData(s) => {
            w.u8(1);
            w.u32(s.0);
        }
        WaitCond::StreamSpace(s) => {
            w.u8(2);
            w.u32(s.0);
        }
        WaitCond::EngineCtx(e) => {
            w.u8(3);
            w_engine_id(w, e);
        }
    }
}

fn r_wait_cond(r: &mut Reader) -> Result<WaitCond, CodecError> {
    Ok(match r.u8()? {
        0 => WaitCond::FutureFill(r.u64()?),
        1 => WaitCond::StreamData(StreamId(r.u32()?)),
        2 => WaitCond::StreamSpace(StreamId(r.u32()?)),
        3 => WaitCond::EngineCtx(r_engine_id(r)?),
        _ => return Err(CodecError::Invalid("wait condition")),
    })
}

fn w_opt_span(w: &mut Writer, s: Option<SpanId>) {
    match s {
        Some(SpanId(v)) => {
            w.bool(true);
            w.u32(v);
        }
        None => w.bool(false),
    }
}

fn r_opt_span(r: &mut Reader) -> Result<Option<SpanId>, CodecError> {
    Ok(if r.bool()? {
        Some(SpanId(r.u32()?))
    } else {
        None
    })
}

/// Section framing: a 4-byte ASCII tag written before each top-level
/// payload section, checked on decode so corruption fails with a useful
/// message instead of a cascade of field errors.
fn w_section(w: &mut Writer, tag: &[u8; 4]) {
    w.raw(tag);
}

fn r_section(r: &mut Reader, tag: &[u8; 4], what: &'static str) -> Result<(), SnapshotError> {
    let got = r.raw(4)?;
    if got != tag {
        return Err(SnapshotError::Corrupted(what));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Machine payload codec
// ---------------------------------------------------------------------------

/// Builds the deduplicated program table: each distinct `Arc<Program>`
/// reachable from actors or the action table appears exactly once, in
/// first-reference order (actors by index, then actions by id).
fn program_table(m: &Machine) -> (Vec<Arc<Program>>, HashMap<usize, u32>) {
    let mut progs: Vec<Arc<Program>> = Vec::new();
    let mut index: HashMap<usize, u32> = HashMap::new();
    let mut add = |p: &Arc<Program>, progs: &mut Vec<Arc<Program>>| {
        let key = Arc::as_ptr(p) as usize;
        index.entry(key).or_insert_with(|| {
            progs.push(Arc::clone(p));
            (progs.len() - 1) as u32
        });
    };
    for a in &m.actors {
        add(&a.prog, &mut progs);
    }
    for (_, aref) in m.hw.ndc.actions.snap_entries() {
        add(&aref.prog, &mut progs);
    }
    (progs, index)
}

fn w_actor(w: &mut Writer, a: &Actor, prog_idx: &HashMap<usize, u32>) {
    match &a.kind {
        ActorKind::CoreThread { core } => {
            w.u8(0);
            w.u32(*core);
        }
        ActorKind::EngineTask {
            engine,
            reserved_ctx,
            stream,
        } => {
            w.u8(1);
            w_engine_id(w, *engine);
            w.bool(*reserved_ctx);
            match stream {
                Some(s) => {
                    w.bool(true);
                    w.u32(s.0);
                }
                None => w.bool(false),
            }
        }
    }
    w.u32(prog_idx[&(Arc::as_ptr(&a.prog) as usize)]);
    codec::write_exec_ctx(w, &a.ctx);
    w.u64(a.clock);
    for t in &a.reg_ready {
        w.u64(*t);
    }
    w.u32(a.pending_mem.len() as u32);
    for t in &a.pending_mem {
        w.u64(*t);
    }
    a.issue.snap_write(w);
    match &a.predictor {
        Some(p) => {
            w.bool(true);
            p.snap_write(w);
        }
        None => w.bool(false),
    }
    w.u32(a.invoke_acks.len() as u32);
    for t in &a.invoke_acks {
        w.u64(*t);
    }
    w.u32(a.invoke_count);
    w.u32(a.invoke_retries);
    w_opt_span(w, a.pending_span);
    w_opt_span(w, a.span);
    match a.state {
        ActorState::Runnable => w.u8(0),
        ActorState::Parked(c) => {
            w.u8(1);
            w_wait_cond(w, c);
        }
        ActorState::Done => w.u8(2),
    }
    w.u64(a.sched_seq);
    w.u64(a.parked_at);
}

fn r_actor(r: &mut Reader, progs: &[Arc<Program>]) -> Result<Actor, SnapshotError> {
    let kind = match r.u8()? {
        0 => ActorKind::CoreThread { core: r.u32()? },
        1 => {
            let engine = r_engine_id(r)?;
            let reserved_ctx = r.bool()?;
            let stream = if r.bool()? {
                Some(StreamId(r.u32()?))
            } else {
                None
            };
            ActorKind::EngineTask {
                engine,
                reserved_ctx,
                stream,
            }
        }
        _ => return Err(SnapshotError::Corrupted("actor kind")),
    };
    let pi = r.u32()? as usize;
    let prog = progs
        .get(pi)
        .cloned()
        .ok_or(SnapshotError::Corrupted("actor program index"))?;
    let ctx = codec::read_exec_ctx(r)?;
    let clock = r.u64()?;
    let mut reg_ready = [0u64; levi_isa::NUM_REGS];
    for t in &mut reg_ready {
        *t = r.u64()?;
    }
    let n = r.count(8)?;
    let mut pending_mem = Vec::with_capacity(n);
    for _ in 0..n {
        pending_mem.push(r.u64()?);
    }
    let issue = crate::engine::FuCursor::snap_read(r)?;
    let predictor = if r.bool()? {
        Some(crate::branch::Gshare::snap_read(r)?)
    } else {
        None
    };
    let n = r.count(8)?;
    let mut invoke_acks = std::collections::VecDeque::with_capacity(n);
    for _ in 0..n {
        invoke_acks.push_back(r.u64()?);
    }
    let invoke_count = r.u32()?;
    let invoke_retries = r.u32()?;
    let pending_span = r_opt_span(r)?;
    let span = r_opt_span(r)?;
    let state = match r.u8()? {
        0 => ActorState::Runnable,
        1 => ActorState::Parked(r_wait_cond(r)?),
        2 => ActorState::Done,
        _ => return Err(SnapshotError::Corrupted("actor state")),
    };
    let sched_seq = r.u64()?;
    let parked_at = r.u64()?;
    Ok(Actor {
        kind,
        prog,
        ctx,
        clock,
        reg_ready,
        pending_mem,
        issue,
        predictor,
        invoke_acks,
        invoke_count,
        invoke_retries,
        pending_span,
        span,
        state,
        sched_seq,
        parked_at,
    })
}

fn w_stream(w: &mut Writer, s: &StreamState) {
    w.u32(s.id.0);
    w.u64(s.buffer);
    w.u64(s.entry_size);
    w.u64(s.capacity);
    w.u64(s.tail);
    w.u64(s.head);
    w_engine_id(w, s.engine);
    w.u32(s.consumer);
    match s.mode {
        StreamMode::RunAhead => w.u8(0),
        StreamMode::MissTriggered { reinit_instrs } => {
            w.u8(1);
            w.u32(reinit_instrs);
        }
    }
    w.bool(s.closed);
}

fn r_stream(r: &mut Reader) -> Result<StreamState, CodecError> {
    Ok(StreamState {
        id: StreamId(r.u32()?),
        buffer: r.u64()?,
        entry_size: r.u64()?,
        capacity: r.u64()?,
        tail: r.u64()?,
        head: r.u64()?,
        engine: r_engine_id(r)?,
        consumer: r.u32()?,
        mode: match r.u8()? {
            0 => StreamMode::RunAhead,
            1 => StreamMode::MissTriggered {
                reinit_instrs: r.u32()?,
            },
            _ => return Err(CodecError::Invalid("stream mode")),
        },
        closed: r.bool()?,
    })
}

fn w_morph(w: &mut Writer, m: &MorphRegion) {
    w.u64(m.base);
    w.u64(m.bound);
    w_morph_level(w, m.level);
    w.u64(m.obj_size);
    match m.ctor {
        Some(a) => {
            w.bool(true);
            w.u32(a.0);
        }
        None => w.bool(false),
    }
    match m.dtor {
        Some(a) => {
            w.bool(true);
            w.u32(a.0);
        }
        None => w.bool(false),
    }
    w.u64(m.view);
    match m.stream {
        Some(s) => {
            w.bool(true);
            w.u32(s.0);
        }
        None => w.bool(false),
    }
}

fn r_morph(r: &mut Reader) -> Result<MorphRegion, CodecError> {
    Ok(MorphRegion {
        base: r.u64()?,
        bound: r.u64()?,
        level: r_morph_level(r)?,
        obj_size: r.u64()?,
        ctor: if r.bool()? {
            Some(levi_isa::ActionId(r.u32()?))
        } else {
            None
        },
        dtor: if r.bool()? {
            Some(levi_isa::ActionId(r.u32()?))
        } else {
            None
        },
        view: r.u64()?,
        stream: if r.bool()? {
            Some(StreamId(r.u32()?))
        } else {
            None
        },
    })
}

/// Serializes the full machine state into the snapshot payload.
pub(crate) fn encode_machine(m: &Machine) -> Vec<u8> {
    let mut w = Writer::new();
    let (progs, prog_idx) = program_table(m);

    w_section(&mut w, b"PROG");
    w.u32(progs.len() as u32);
    for p in &progs {
        codec::write_program(&mut w, p);
    }

    w_section(&mut w, b"MEMX");
    codec::write_mem(&mut w, &m.mem);

    w_section(&mut w, b"SCHD");
    w.u64(m.now);
    w.u64(m.seq);
    w.u32(m.live_core_threads);
    w.u32(m.traces.len() as u32);
    for t in &m.traces {
        w.u64(*t);
    }
    w.u32(m.free_slots.len() as u32);
    for s in &m.free_slots {
        w.u32(*s);
    }
    // Run queue in sorted order: the heap's internal layout is not
    // deterministic across construction histories, but its pop order is
    // (entries are totally ordered by the unique sequence number), so the
    // sorted entry list is the canonical representation.
    let mut entries: Vec<(u64, u64, u32)> = m.runq.iter().map(|Reverse(e)| *e).collect();
    entries.sort_unstable();
    w.u32(entries.len() as u32);
    for (t, seq, aid) in entries {
        w.u64(t);
        w.u64(seq);
        w.u32(aid);
    }
    // Waiter lists keyed by the derived total order on WaitCond.
    let mut conds: Vec<&WaitCond> = m.waiters.keys().collect();
    conds.sort_unstable();
    w.u32(conds.len() as u32);
    for c in conds {
        w_wait_cond(&mut w, *c);
        let list = &m.waiters[c];
        w.u32(list.len() as u32);
        for aid in list {
            w.u32(*aid);
        }
    }

    w_section(&mut w, b"ACTR");
    w.u32(m.actors.len() as u32);
    for a in &m.actors {
        w_actor(&mut w, a, &prog_idx);
    }

    w_section(&mut w, b"CACH");
    for bank in m.hw.l1.iter().chain(&m.hw.l2).chain(&m.hw.llc) {
        bank.snap_write(&mut w);
    }

    w_section(&mut w, b"ENGS");
    for e in &m.hw.engines {
        e.snap_write(&mut w);
    }

    w_section(&mut w, b"NOCX");
    m.hw.noc.snap_write(&mut w);

    w_section(&mut w, b"DRAM");
    m.hw.dram.snap_write(&mut w);

    w_section(&mut w, b"XLAT");
    m.hw.translator.snap_write(&mut w);

    // TLBX: the address-translation TLBs (crate::xlat). Distinct from
    // XLAT above, which is the DRAM compaction translator.
    w_section(&mut w, b"TLBX");
    match &m.hw.xlat {
        Some(x) => {
            w.bool(true);
            x.snap_write(&mut w);
        }
        None => w.bool(false),
    }

    w_section(&mut w, b"NDCX");
    {
        let ndc = &m.hw.ndc;
        let actions = ndc.actions.snap_entries();
        w.u32(actions.len() as u32);
        for (id, aref) in actions {
            w.u32(id.0);
            w.u32(prog_idx[&(Arc::as_ptr(&aref.prog) as usize)]);
            w.u32(aref.func.0);
        }
        w.u32(ndc.morphs.len() as u32);
        for mo in &ndc.morphs {
            w_morph(&mut w, mo);
        }
        w.u32(ndc.streams.len() as u32);
        for s in &ndc.streams {
            w_stream(&mut w, s);
        }
        let mut futures: Vec<(&u64, &FutureFill)> = ndc.futures.iter().collect();
        futures.sort_unstable_by_key(|(a, _)| **a);
        w.u32(futures.len() as u32);
        for (addr, fill) in futures {
            w.u64(*addr);
            w.u64(fill.arrival);
        }
        w.u32(ndc.bank_maps.len() as u32);
        for b in &ndc.bank_maps {
            w.u64(b.base);
            w.u64(b.bound);
            w.u32(b.ignore_line_bits);
        }
        for ranges in [&ndc.stream_store_ranges, &ndc.mem_side_ranges] {
            w.u32(ranges.len() as u32);
            for (a, b) in ranges {
                w.u64(*a);
                w.u64(*b);
            }
        }
    }

    w_section(&mut w, b"STAT");
    m.hw.stats.snap_write(&mut w);

    w_section(&mut w, b"HWPR");
    m.hw.snap_write_private(&mut w);

    w.into_bytes()
}

/// Overlays a snapshot payload onto a freshly built machine (same config).
pub(crate) fn decode_machine_into(m: &mut Machine, payload: &[u8]) -> Result<(), SnapshotError> {
    let r = &mut Reader::new(payload);

    r_section(r, b"PROG", "program table section")?;
    let nprogs = r.count(1)?;
    let mut progs: Vec<Arc<Program>> = Vec::with_capacity(nprogs);
    for _ in 0..nprogs {
        progs.push(Arc::new(codec::read_program(r)?));
    }

    r_section(r, b"MEMX", "memory section")?;
    m.mem = codec::read_mem(r)?;

    r_section(r, b"SCHD", "scheduler section")?;
    m.now = r.u64()?;
    m.seq = r.u64()?;
    m.live_core_threads = r.u32()?;
    let n = r.count(8)?;
    m.traces = Vec::with_capacity(n);
    for _ in 0..n {
        m.traces.push(r.u64()?);
    }
    let n = r.count(4)?;
    m.free_slots = Vec::with_capacity(n);
    for _ in 0..n {
        m.free_slots.push(r.u32()?);
    }
    let n = r.count(20)?;
    m.runq = std::collections::BinaryHeap::with_capacity(n);
    for _ in 0..n {
        let t = r.u64()?;
        let seq = r.u64()?;
        let aid = r.u32()?;
        m.runq.push(Reverse((t, seq, aid)));
    }
    let n = r.count(2)?;
    m.waiters = levi_isa::fx::map_with_capacity(n);
    for _ in 0..n {
        let cond = r_wait_cond(r)?;
        let len = r.count(4)?;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            list.push(r.u32()?);
        }
        if m.waiters.insert(cond, list).is_some() {
            return Err(SnapshotError::Corrupted("duplicate wait condition"));
        }
    }

    r_section(r, b"ACTR", "actor section")?;
    let n = r.count(4)?;
    m.actors = Vec::with_capacity(n);
    for _ in 0..n {
        m.actors.push(r_actor(r, &progs)?);
    }

    r_section(r, b"CACH", "cache section")?;
    for bank in m.hw.l1.iter_mut().chain(&mut m.hw.l2).chain(&mut m.hw.llc) {
        bank.snap_read(r)?;
    }

    r_section(r, b"ENGS", "engine section")?;
    for e in &mut m.hw.engines {
        e.snap_read(r)?;
    }

    r_section(r, b"NOCX", "noc section")?;
    m.hw.noc.snap_read(r)?;

    r_section(r, b"DRAM", "dram section")?;
    m.hw.dram.snap_read(r)?;

    r_section(r, b"XLAT", "translator section")?;
    m.hw.translator.snap_read(r)?;

    r_section(r, b"TLBX", "tlb section")?;
    match (r.bool()?, &mut m.hw.xlat) {
        (true, Some(x)) => x.snap_read(r)?,
        (false, None) => {}
        _ => return Err(SnapshotError::Corrupted("tlb presence mismatch")),
    }

    r_section(r, b"NDCX", "ndc section")?;
    {
        let n = r.count(12)?;
        let mut actions = crate::ndc::ActionTable::default();
        for _ in 0..n {
            let id = levi_isa::ActionId(r.u32()?);
            let pi = r.u32()? as usize;
            let func = levi_isa::FuncId(r.u32()?);
            let prog = progs
                .get(pi)
                .cloned()
                .ok_or(SnapshotError::Corrupted("action program index"))?;
            actions.register(id, prog, func);
        }
        m.hw.ndc.actions = actions;
        let n = r.count(8)?;
        m.hw.ndc.morphs = Vec::with_capacity(n);
        for _ in 0..n {
            m.hw.ndc.morphs.push(r_morph(r)?);
        }
        let n = r.count(8)?;
        m.hw.ndc.streams = Vec::with_capacity(n);
        for _ in 0..n {
            m.hw.ndc.streams.push(r_stream(r)?);
        }
        let n = r.count(16)?;
        m.hw.ndc.futures = levi_isa::fx::map_with_capacity(n);
        for _ in 0..n {
            let addr = r.u64()?;
            let arrival = r.u64()?;
            if m.hw
                .ndc
                .futures
                .insert(addr, FutureFill { arrival })
                .is_some()
            {
                return Err(SnapshotError::Corrupted("duplicate future"));
            }
        }
        let n = r.count(20)?;
        m.hw.ndc.bank_maps = Vec::with_capacity(n);
        for _ in 0..n {
            m.hw.ndc.bank_maps.push(BankMapRange {
                base: r.u64()?,
                bound: r.u64()?,
                ignore_line_bits: r.u32()?,
            });
        }
        for which in 0..2 {
            let n = r.count(16)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push((r.u64()?, r.u64()?));
            }
            if which == 0 {
                m.hw.ndc.stream_store_ranges = v;
            } else {
                m.hw.ndc.mem_side_ranges = v;
            }
        }
    }

    r_section(r, b"STAT", "stats section")?;
    m.hw.stats.snap_read(r)?;

    r_section(r, b"HWPR", "hw-private section")?;
    m.hw.snap_read_private(r)?;

    if !r.is_exhausted() {
        return Err(SnapshotError::Corrupted("trailing bytes after payload"));
    }
    Ok(())
}

impl Snapshot for Machine {
    type Config = MachineConfig;

    fn checkpoint(&self) -> Vec<u8> {
        Machine::checkpoint(self)
    }

    fn restore(cfg: MachineConfig, bytes: &[u8]) -> Result<Self, SnapshotError> {
        Machine::restore(cfg, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn container_round_trip_and_rejections() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let sealed = seal(42, payload.clone());
        assert_eq!(open(&sealed, 42).unwrap(), &payload[..]);

        // Wrong digest.
        assert!(matches!(
            open(&sealed, 43),
            Err(SnapshotError::ConfigMismatch { .. })
        ));
        // Bad magic.
        let mut bad = sealed.clone();
        bad[0] ^= 0xFF;
        assert_eq!(open(&bad, 42), Err(SnapshotError::BadMagic));
        // Unsupported version.
        let mut bad = sealed.clone();
        bad[8] = 99;
        assert_eq!(open(&bad, 42), Err(SnapshotError::UnsupportedVersion(99)));
        // Truncation at every prefix length.
        for cut in 0..sealed.len() {
            assert!(open(&sealed[..cut], 42).is_err(), "cut {cut} accepted");
        }
        // Payload corruption caught by CRC.
        let mut bad = sealed.clone();
        bad[30] ^= 0x01;
        assert_eq!(
            open(&bad, 42),
            Err(SnapshotError::Corrupted("CRC mismatch"))
        );
    }

    #[test]
    fn config_digest_tracks_hardware_but_not_fault_plan() {
        let a = MachineConfig::paper_default();
        let mut b = a.clone();
        assert_eq!(config_digest(&a), config_digest(&b));
        b.fault_plan = Some(crate::fault::FaultPlan::new(7));
        assert_eq!(
            config_digest(&a),
            config_digest(&b),
            "fault plan must stay outside the digest (fault replay)"
        );
        b.checkpoint_every = 1000;
        b.checkpoint_verify = true;
        assert_eq!(config_digest(&a), config_digest(&b));
        b.tiles = a.tiles + 1;
        assert_ne!(config_digest(&a), config_digest(&b));
    }

    #[test]
    fn config_digest_covers_every_xlat_and_tenant_knob() {
        use crate::xlat::{TenantConfig, TenantPolicy, XlatConfig};
        let base = MachineConfig::paper_default();
        let d0 = config_digest(&base);

        // Enabling either feature changes the digest.
        let mut on = base.clone();
        on.xlat = Some(XlatConfig::paper_default());
        let dx = config_digest(&on);
        assert_ne!(d0, dx, "xlat presence");
        let mut ten = base.clone();
        ten.tenants = Some(TenantConfig::new(4, TenantPolicy::Unpartitioned));
        let dt = config_digest(&ten);
        assert_ne!(d0, dt, "tenant presence");

        // Every xlat field is digest-relevant.
        let x = XlatConfig::paper_default();
        let variants = [
            XlatConfig { page_bits: 21, ..x },
            XlatConfig {
                tlb_entries: 128,
                ..x
            },
            XlatConfig { tlb_ways: 8, ..x },
            XlatConfig {
                walk_levels: 3,
                ..x
            },
            XlatConfig {
                walk_latency: 9,
                ..x
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            let mut c = base.clone();
            c.xlat = Some(*v);
            assert_ne!(config_digest(&c), dx, "xlat knob {i} must move the digest");
        }

        // Every tenant field is digest-relevant.
        let mut c = base.clone();
        c.tenants = Some(TenantConfig::new(2, TenantPolicy::Unpartitioned));
        assert_ne!(config_digest(&c), dt, "tenant count");
        for policy in [TenantPolicy::LlcWayPartition, TenantPolicy::EngineSlotQuota] {
            let mut c = base.clone();
            c.tenants = Some(TenantConfig::new(4, policy));
            assert_ne!(config_digest(&c), dt, "tenant policy {policy:?}");
        }
    }
}
