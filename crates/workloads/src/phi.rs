//! PHI: commutative scatter-updates (paper Secs. IV and VIII, Fig. 5).
//!
//! Push-based PageRank. The edge phase scatters `rank[u]/deg(u)`
//! contributions into `rank_next[v]` for every edge `(u, v)`; the vertex
//! phase folds `rank_next` back into `rank`. Four variants:
//!
//! * **Baseline** — cores update `rank_next` directly with *fenced*
//!   atomics (x86-style `lock add`): pays fences, line ping-pong, and
//!   full memory traffic.
//! * **tākō (Fence/Relax)** — PHI's data-triggered half only: updates go
//!   to a *phantom delta* array (Morph at the LLC) whose constructor
//!   zero-fills and whose destructor applies binned deltas to
//!   `rank_next` on eviction. Cores still execute the atomics themselves
//!   (fenced or relaxed), so delta lines ping-pong between cores.
//! * **Leviathan** — both paradigms: the same Morph **plus task offload**:
//!   cores `invoke` a 2-instruction RMW task that executes at the delta's
//!   LLC bank. No fences, no ping-pong, and invoke packets are smaller
//!   than cache-line transfers.
//! * **Ideal** — Leviathan with idealized (0-cycle, free) engines.
//!
//! All variants compute bit-identical rank vectors, which the tests check.

use std::sync::Arc;

use levi_isa::{ActionId, Location, MemWidth, Program, ProgramBuilder, Reg, RmwOp};
use levi_sim::MorphLevel;
use leviathan::{MorphSpec, System, SystemConfig};

use crate::gen::Graph;
use crate::harness::{RunEnv, RunOutcome, RunStatus, ScaleKind, Workload};
use crate::metrics::RunMetrics;

/// Initial (fixed-point) rank value.
pub const INIT_RANK: u64 = 1 << 16;

/// PHI eviction policy for binned deltas (paper Sec. IV-A: PHI "either
/// immediately applies the updates in-place or logs them for later
/// processing, dynamically choosing the policy that minimizes memory
/// bandwidth"). We expose both as a static knob; `Log` (with a
/// propagation-blocking-style binning phase) is the bandwidth-efficient
/// choice when the update set exceeds the LLC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhiPolicy {
    /// Destructors apply deltas to `rank_next` in place (random access).
    InPlace,
    /// Destructors append (offset, delta) records to a per-bank log;
    /// a post-pass applies each bank's log with cache-friendly locality.
    Log,
}

/// PHI variant under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhiVariant {
    /// Fenced atomics straight into `rank_next`.
    Baseline,
    /// Data-triggered binning; fenced core atomics.
    TakoFence,
    /// Data-triggered binning; relaxed core atomics.
    TakoRelax,
    /// Data-triggered binning + offloaded RMW tasks.
    Leviathan,
    /// Leviathan with idealized engines.
    Ideal,
}

impl PhiVariant {
    /// Display label (matches Fig. 5's bars).
    pub fn label(self) -> &'static str {
        match self {
            PhiVariant::Baseline => "Baseline",
            PhiVariant::TakoFence => "tako Fence",
            PhiVariant::TakoRelax => "tako Relax",
            PhiVariant::Leviathan => "Leviathan",
            PhiVariant::Ideal => "Ideal",
        }
    }

    /// All variants in presentation order.
    pub fn all() -> [PhiVariant; 5] {
        [
            PhiVariant::Baseline,
            PhiVariant::TakoFence,
            PhiVariant::TakoRelax,
            PhiVariant::Leviathan,
            PhiVariant::Ideal,
        ]
    }
}

/// Workload scale knobs.
#[derive(Clone, Debug)]
pub struct PhiScale {
    /// Vertices.
    pub vertices: u32,
    /// Average out-degree.
    pub avg_degree: u32,
    /// Tiles (= worker threads).
    pub tiles: u32,
    /// Whole-hierarchy cache shrink factor (see
    /// [`crate::metrics::shrink_caches`]); scaled with the graph so the
    /// update working set exceeds the LLC, as in the paper's
    /// 4M-vertex/8MB-LLC setup.
    pub cache_factor: u64,
    /// RNG seed.
    pub seed: u64,
    /// Invoke-buffer entries (Fig. 22 sweeps this).
    pub invoke_buffer: u32,
    /// Delta eviction policy for the Morph-based variants.
    pub policy: PhiPolicy,
}

impl PhiScale {
    /// The benchmark scale: update working set ≈ 2–3× the LLC, preserving
    /// the paper's working-set-to-LLC ratio at simulatable size.
    pub fn paper() -> Self {
        PhiScale {
            vertices: 64 * 1024,
            avg_degree: 10,
            tiles: 16,
            cache_factor: 8,
            seed: 0xF1,
            invoke_buffer: 4,
            policy: PhiPolicy::InPlace,
        }
    }

    /// A tiny scale for unit tests: the update working set (2 × 32 KB)
    /// exceeds the 32 KB LLC so binning has something to save, and degree
    /// 8 gives the write-combining buffer deltas to merge.
    pub fn test() -> Self {
        PhiScale {
            vertices: 4096,
            avg_degree: 8,
            tiles: 4,
            cache_factor: 32,
            seed: 0xF1,
            invoke_buffer: 4,
            policy: PhiPolicy::InPlace,
        }
    }
}

/// Result of one PHI run.
#[derive(Clone, Debug)]
pub struct PhiResult {
    /// Measured metrics.
    pub metrics: RunMetrics,
    /// Checksum (wrapping sum) of the final rank vector, for
    /// cross-variant validation.
    pub rank_checksum: u64,
    /// Total mass accumulated in `rank_next` after the edge phase +
    /// flush (equals the scattered contribution mass when no update is
    /// lost).
    pub rnext_mass: u64,
    /// Delta mass left unapplied in the phantom region after the flush
    /// (must be zero).
    pub leftover_deltas: u64,
}

struct PhiPrograms {
    prog: Arc<Program>,
    edge_phase: levi_isa::FuncId,
    vertex_phase: levi_isa::FuncId,
    rmw_task: levi_isa::FuncId,
    delta_dtor: levi_isa::FuncId,
    delta_dtor_log: levi_isa::FuncId,
    bin_log: levi_isa::FuncId,
}

/// Builds all PHI LevIR code. `update` controls how the edge phase issues
/// an update to `target + v*8`.
fn build_programs(variant: PhiVariant) -> PhiPrograms {
    let mut pb = ProgramBuilder::new();

    // ---- offloaded RMW task (paper Fig. 2): r0 = delta addr, r1 = amount
    let rmw_task = {
        let mut f = pb.function("rmw_task");
        let (actor, amt, old) = (Reg(0), Reg(1), Reg(2));
        f.rmw_relaxed(RmwOp::Add, old, actor, amt, MemWidth::B8);
        f.halt();
        f.finish()
    };

    // ---- delta destructor: apply the binned delta to rank_next in place.
    // r0 = delta object, r1 = view {delta_base, rank_next_base}, r2 = dirty.
    let delta_dtor = {
        let mut f = pb.function("delta_dtor");
        let (obj, view, _dirty) = (Reg(0), Reg(1), Reg(2));
        let (d, dbase, rbase, off, addr, cur, zero) =
            (Reg(3), Reg(4), Reg(5), Reg(6), Reg(7), Reg(8), Reg(9));
        let done = f.label();
        f.imm(zero, 0);
        f.ld8(d, obj, 0); // local: the evicted line's data
        f.beq(d, zero, done);
        f.st8(obj, 0, zero); // consume the delta
        f.ld8(dbase, view, 0);
        f.ld8(rbase, view, 8);
        f.sub(off, obj, dbase);
        f.add(addr, rbase, off);
        f.ld8(cur, addr, 0);
        f.add(cur, cur, d);
        f.st8(addr, 0, cur);
        f.bind(done);
        f.halt();
        f.finish()
    };

    // ---- logging delta destructor (PHI's log policy): append an
    // (offset, delta) record to this bank's log instead of touching
    // rank_next. View: {delta_base, rnext_base, bank_mask, cursors_base}.
    // r0 = delta object, r1 = view, r2 = dirty.
    let delta_dtor_log = {
        let mut f = pb.function("delta_dtor_log");
        let (obj, view, _dirty) = (Reg(0), Reg(1), Reg(2));
        let (d, dbase, mask, curs, bank, curp, cur, off, zero) = (
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
            Reg(8),
            Reg(9),
            Reg(10),
            Reg(11),
        );
        let done = f.label();
        f.imm(zero, 0);
        f.ld8(d, obj, 0); // local: the evicted line's data
        f.beq(d, zero, done);
        f.st8(obj, 0, zero); // consume the delta
        f.ld8(dbase, view, 0);
        f.ld8(mask, view, 16);
        f.ld8(curs, view, 24);
        f.shri(bank, obj, 6);
        f.and(bank, bank, mask);
        f.muli(curp, bank, 8);
        f.add(curp, curp, curs);
        f.ld8(cur, curp, 0);
        f.sub(off, obj, dbase);
        f.st8(cur, 0, off);
        f.st8(cur, 8, d);
        f.addi(cur, cur, 16);
        f.st8(curp, 0, cur);
        f.bind(done);
        f.halt();
        f.finish()
    };

    // ---- binning pass (propagation blocking): apply one bank's log.
    // r0 = log base, r1 = log end, r2 = rank_next base.
    let bin_log = {
        let mut f = pb.function("bin_log");
        let (p, end, rnext) = (Reg(0), Reg(1), Reg(2));
        let (off, d, addr, cur) = (Reg(3), Reg(4), Reg(5), Reg(6));
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(p, end, out);
        f.ld8(off, p, 0);
        f.ld8(d, p, 8);
        f.add(addr, rnext, off);
        f.ld8(cur, addr, 0);
        f.add(cur, cur, d);
        f.st8(addr, 0, cur);
        f.addi(p, p, 16);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };

    // ---- edge phase: scatter contributions.
    // r0 = v_start, r1 = v_end, r2 = ctx {offsets, neighbors, ranks, target}.
    let edge_phase = {
        let mut f = pb.function("edge_phase");
        let (v0, v1, ctx) = (Reg(0), Reg(1), Reg(2));
        let (offs, neigh, ranks, target) = (Reg(10), Reg(11), Reg(12), Reg(13));
        let (u, addr, start, end, deg, rank, contrib) =
            (Reg(8), Reg(14), Reg(15), Reg(16), Reg(17), Reg(18), Reg(19));
        let (e, v, taddr, old, zero) = (Reg(20), Reg(21), Reg(22), Reg(23), Reg(24));
        f.ld8(offs, ctx, 0)
            .ld8(neigh, ctx, 8)
            .ld8(ranks, ctx, 16)
            .ld8(target, ctx, 24);
        f.imm(zero, 0);
        f.mov(u, v0);
        let outer = f.label();
        let next_u = f.label();
        let inner = f.label();
        let done = f.label();
        f.bind(outer);
        f.bge_u(u, v1, done);
        f.muli(addr, u, 4).add(addr, addr, offs);
        f.ld4(start, addr, 0).ld4(end, addr, 4);
        f.sub(deg, end, start);
        f.beq(deg, zero, next_u);
        f.muli(addr, u, 8).add(addr, addr, ranks);
        f.ld8(rank, addr, 0);
        f.divu(contrib, rank, deg);
        f.mov(e, start);
        f.bind(inner);
        f.bge_u(e, end, next_u);
        f.muli(addr, e, 4).add(addr, addr, neigh);
        f.ld4(v, addr, 0);
        f.muli(taddr, v, 8).add(taddr, taddr, target);
        match variant {
            PhiVariant::Baseline | PhiVariant::TakoFence => {
                f.rmw_fenced(RmwOp::Add, old, taddr, contrib, MemWidth::B8);
            }
            PhiVariant::TakoRelax => {
                f.rmw_relaxed(RmwOp::Add, old, taddr, contrib, MemWidth::B8);
            }
            PhiVariant::Leviathan | PhiVariant::Ideal => {
                f.invoke(taddr, ActionId(0), &[contrib], Location::Remote);
            }
        }
        f.addi(e, e, 1);
        f.jmp(inner);
        f.bind(next_u);
        f.addi(u, u, 1);
        f.jmp(outer);
        f.bind(done);
        f.halt();
        f.finish()
    };

    // ---- vertex phase: rank[v] = BASE + 0.85 * rank_next[v]; zero next.
    // r0 = v_start, r1 = v_end, r2 = ctx2 {rank_next, ranks}.
    let vertex_phase = {
        let mut f = pb.function("vertex_phase");
        let (v0, v1, ctx) = (Reg(0), Reg(1), Reg(2));
        let (rnext, ranks, v, addr, nx, r, zero) =
            (Reg(10), Reg(11), Reg(8), Reg(14), Reg(15), Reg(16), Reg(17));
        f.ld8(rnext, ctx, 0).ld8(ranks, ctx, 8);
        f.imm(zero, 0);
        f.mov(v, v0);
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.bge_u(v, v1, done);
        f.muli(addr, v, 8).add(addr, addr, rnext);
        f.ld8(nx, addr, 0);
        f.st8(addr, 0, zero);
        f.muli(r, nx, 217);
        f.shri(r, r, 8);
        f.addi(r, r, 1 << 12);
        f.muli(addr, v, 8).add(addr, addr, ranks);
        f.st8(addr, 0, r);
        f.addi(v, v, 1);
        f.jmp(top);
        f.bind(done);
        f.halt();
        f.finish()
    };

    PhiPrograms {
        prog: Arc::new(pb.finish().expect("PHI programs validate")),
        edge_phase,
        vertex_phase,
        rmw_task,
        delta_dtor,
        delta_dtor_log,
        bin_log,
    }
}

/// Builds the PHI input graph: power-law in-degrees (θ = 0.75), like the
/// scatter-update graphs PHI targets.
pub fn phi_graph(scale: &PhiScale) -> Graph {
    Graph::skewed(scale.vertices, scale.avg_degree, 0.75, scale.seed)
}

/// Runs one PHI variant; returns metrics and the rank checksum.
pub fn run_phi(variant: PhiVariant, scale: &PhiScale) -> PhiResult {
    let graph = phi_graph(scale);
    run_phi_on(variant, scale, &graph)
}

/// Runs one PHI variant on a pre-built graph (the harness reuses one graph
/// across variants).
pub fn run_phi_on(variant: PhiVariant, scale: &PhiScale, graph: &Graph) -> PhiResult {
    run_phi_with(variant, scale, graph, |_| {})
}

/// Runs one PHI variant with arbitrary configuration customization (the
/// unified harness injects fault plans and watchdogs through this hook).
pub fn run_phi_with(
    variant: PhiVariant,
    scale: &PhiScale,
    graph: &Graph,
    customize: impl FnOnce(&mut SystemConfig),
) -> PhiResult {
    let mut cfg = SystemConfig::with_tiles(scale.tiles);
    crate::metrics::shrink_caches(&mut cfg.machine, scale.cache_factor);
    cfg.machine.core.invoke_buffer = scale.invoke_buffer;
    customize(&mut cfg);
    if variant == PhiVariant::Ideal {
        cfg = cfg.idealized();
    }
    let mut sys = System::try_new(cfg).expect("PHI system config is valid");
    let nv = graph.num_vertices as u64;
    let ne = graph.num_edges() as u64;

    // ---- data layout ----
    let offs = sys.alloc_raw(4 * (nv + 1), 64);
    let neigh = sys.alloc_raw(4 * ne.max(1), 64);
    let bank_align = scale.tiles as u64 * 64;
    let ranks = sys.alloc_raw(8 * nv, bank_align);
    let rnext = sys.alloc_raw(8 * nv, bank_align);
    for (i, &o) in graph.offsets.iter().enumerate() {
        sys.write(offs + 4 * i as u64, o as u64, MemWidth::B4);
    }
    for (i, &n) in graph.neighbors.iter().enumerate() {
        sys.write(neigh + 4 * i as u64, n as u64, MemWidth::B4);
    }
    for v in 0..nv {
        sys.write_u64(ranks + 8 * v, INIT_RANK);
    }

    let progs = build_programs(variant);
    let use_morph = variant != PhiVariant::Baseline;
    let use_log = use_morph && scale.policy == PhiPolicy::Log;

    // Action 0 must be the RMW task (the edge phase references it).
    let rmw_action = sys.register_action(&progs.prog, progs.rmw_task);
    assert_eq!(rmw_action, ActionId(0));
    let dtor_action = if use_log {
        sys.register_action(&progs.prog, progs.delta_dtor_log)
    } else {
        sys.register_action(&progs.prog, progs.delta_dtor)
    };

    // Per-bank delta logs (PHI's log policy). Each bank's log is laid out
    // so every line maps to that bank (no cross-bank traffic from the
    // engines' log appends), and the region is a streaming-store target
    // (appends skip the write-allocate fetch). Capacity: at most one
    // record per scatter update, with slack.
    let banks = scale.tiles as u64;
    let log_cap_bytes = ((16 * ne / banks) * 2 + 4096).next_power_of_two();
    let cursors = sys.alloc_raw(8 * banks, 64);
    let mut log_bases = vec![0u64; banks as usize];
    if use_log {
        let region = sys.alloc_raw(log_cap_bytes * banks, log_cap_bytes * banks);
        let ignore = (log_cap_bytes / 64).trailing_zeros();
        sys.machine_mut()
            .hw
            .ndc
            .bank_maps
            .push(levi_sim::BankMapRange {
                base: region,
                bound: region + log_cap_bytes * banks,
                ignore_line_bits: ignore,
            });
        sys.mark_streaming_stores(region, log_cap_bytes * banks);
        for i in 0..banks {
            let sub = region + i * log_cap_bytes;
            let bank = sys.machine().hw.bank_of(sub) as usize;
            assert_eq!(
                sys.machine().hw.bank_of(sub + log_cap_bytes - 64),
                bank as u32,
                "log subregion must be single-bank"
            );
            log_bases[bank] = sub;
        }
        for b in 0..banks {
            sys.write_u64(cursors + 8 * b, log_bases[b as usize]);
        }
    }

    // In-place policy: rank_next is updated memory-side by the
    // destructors — the LLC holds deltas *instead of* rank_next.
    if use_morph && !use_log {
        sys.mark_mem_side(rnext, 8 * nv);
    }

    // ---- variant-specific update target ----
    let (target, morph) = if use_morph {
        let morph = sys.register_morph(
            &MorphSpec::new("phi-deltas", 8, nv, MorphLevel::Llc)
                .with_dtor(dtor_action)
                .with_view_bytes(32),
        );
        let view = morph.view;
        let base = morph.actors.base;
        sys.write_u64(view, base);
        sys.write_u64(view + 8, rnext);
        sys.write_u64(view + 16, banks - 1); // bank mask (line % banks)
        sys.write_u64(view + 24, cursors);
        (base, Some(morph))
    } else {
        (rnext, None)
    };

    // ---- edge phase (phase 0) ----
    let ctx = sys.alloc_raw(32, 64);
    sys.write_u64(ctx, offs);
    sys.write_u64(ctx + 8, neigh);
    sys.write_u64(ctx + 16, ranks);
    sys.write_u64(ctx + 24, target);

    sys.set_phase(0);
    let per = (nv as u32).div_ceil(scale.tiles);
    for t in 0..scale.tiles {
        let v0 = (t * per).min(graph.num_vertices) as u64;
        let v1 = ((t + 1) * per).min(graph.num_vertices) as u64;
        sys.spawn_thread(t, &progs.prog, progs.edge_phase, &[v0, v1, ctx])
            .unwrap();
    }
    sys.run().expect("edge phase deadlocked");

    // Drain remaining deltas (runs destructors for resident lines).
    let mut leftover_deltas = 0u64;
    if let Some(m) = &morph {
        sys.unregister_morph(m);
        for v in 0..nv {
            leftover_deltas = leftover_deltas.wrapping_add(sys.read_u64(m.actors.addr(v)));
        }
    }

    // Binning pass (log policy): each thread applies one bank's log.
    // Address-interleaved banks give each pass a cache-friendly slice of
    // rank_next (propagation blocking).
    if use_log {
        for b in 0..banks {
            let end = sys.read_u64(cursors + 8 * b);
            assert!(
                end <= log_bases[b as usize] + log_cap_bytes,
                "delta log overflow on bank {b}"
            );
            sys.spawn_thread(
                b as u32,
                &progs.prog,
                progs.bin_log,
                &[log_bases[b as usize], end, rnext],
            )
            .unwrap();
        }
        sys.run().expect("binning phase deadlocked");
    }

    let mut rnext_mass = 0u64;
    for v in 0..nv {
        rnext_mass = rnext_mass.wrapping_add(sys.read_u64(rnext + 8 * v));
    }

    // ---- vertex phase (phase 1) ----
    let ctx2 = sys.alloc_raw(16, 64);
    sys.write_u64(ctx2, rnext);
    sys.write_u64(ctx2 + 8, ranks);
    sys.set_phase(1);
    for t in 0..scale.tiles {
        let v0 = (t * per).min(graph.num_vertices) as u64;
        let v1 = ((t + 1) * per).min(graph.num_vertices) as u64;
        sys.spawn_thread(t, &progs.prog, progs.vertex_phase, &[v0, v1, ctx2])
            .unwrap();
    }
    sys.run().expect("vertex phase deadlocked");

    // ---- checksum ----
    let mut checksum = 0u64;
    for v in 0..nv {
        checksum = checksum.wrapping_add(sys.read_u64(ranks + 8 * v));
    }

    PhiResult {
        metrics: RunMetrics::capture(variant.label(), &sys),
        rank_checksum: checksum,
        rnext_mass,
        leftover_deltas,
    }
}

/// Host-side golden model of one PageRank iteration; returns the expected
/// rank checksum (shared with HATS — see [`crate::gen::pagerank_checksum`]).
pub use crate::gen::pagerank_checksum as golden_checksum;

/// Registry entry for PHI (see [`crate::harness`]).
pub struct PhiWorkload;

impl Workload for PhiWorkload {
    type Variant = PhiVariant;
    type Scale = PhiScale;
    type Input = Graph;

    fn name(&self) -> &'static str {
        "phi"
    }

    fn variants(&self) -> Vec<(&'static str, PhiVariant)> {
        PhiVariant::all().iter().map(|&v| (v.label(), v)).collect()
    }

    fn scale(&self, kind: ScaleKind) -> PhiScale {
        match kind {
            ScaleKind::Paper => PhiScale::paper(),
            ScaleKind::Test | ScaleKind::Quick => PhiScale::test(),
        }
    }

    fn build_input(&self, scale: &PhiScale) -> Graph {
        phi_graph(scale)
    }

    fn describe(&self, scale: &PhiScale) -> String {
        format!(
            "{} vertices, ~{} edges, {} tiles, caches/{}",
            scale.vertices,
            scale.vertices * scale.avg_degree,
            scale.tiles,
            scale.cache_factor
        )
    }

    fn run(&self, variant: PhiVariant, scale: &PhiScale, graph: &Graph, env: &RunEnv) -> RunStatus {
        let r = run_phi_with(variant, scale, graph, |cfg| env.customize(cfg));
        assert_eq!(
            r.leftover_deltas,
            0,
            "{}: deltas left unapplied after the flush",
            variant.label()
        );
        RunStatus::Done(Box::new(
            RunOutcome::new(r.metrics, r.rank_checksum).with_aux("rnext_mass", r.rnext_mass),
        ))
    }

    fn golden(&self, _variant: PhiVariant, _scale: &PhiScale, graph: &Graph) -> u64 {
        golden_checksum(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_compute_identical_ranks() {
        let scale = PhiScale::test();
        let graph = phi_graph(&scale);
        let golden = golden_checksum(&graph);
        for variant in PhiVariant::all() {
            let r = run_phi_on(variant, &scale, &graph);
            assert_eq!(
                r.rank_checksum, golden,
                "variant {:?} diverged from the golden model",
                variant
            );
        }
    }

    #[test]
    fn leviathan_beats_baseline_and_tako_fence() {
        let scale = PhiScale::test();
        let graph = phi_graph(&scale);
        let base = run_phi_on(PhiVariant::Baseline, &scale, &graph);
        let tako_f = run_phi_on(PhiVariant::TakoFence, &scale, &graph);
        let lev = run_phi_on(PhiVariant::Leviathan, &scale, &graph);
        let s_lev = lev.metrics.speedup_vs(&base.metrics);
        let s_tako = tako_f.metrics.speedup_vs(&base.metrics);
        assert!(s_lev > 1.2, "Leviathan speedup {s_lev:.2} too small");
        assert!(
            s_lev > s_tako,
            "Leviathan ({s_lev:.2}x) must beat tako-fence ({s_tako:.2}x)"
        );
        assert_eq!(base.metrics.stats.invokes, 0);
        assert!(lev.metrics.stats.invokes > 0);
        assert!(base.metrics.stats.fences > 0);
        assert_eq!(lev.metrics.stats.fences, 0, "offload eliminates fences");
    }

    #[test]
    fn offload_cuts_noc_traffic_and_keeps_dram_in_check() {
        let scale = PhiScale::test();
        let graph = phi_graph(&scale);
        let base = run_phi_on(PhiVariant::Baseline, &scale, &graph);
        let tako = run_phi_on(PhiVariant::TakoRelax, &scale, &graph);
        let lev = run_phi_on(PhiVariant::Leviathan, &scale, &graph);
        // Paper Sec. IV-D: task offload reduces NoC traffic ~40% vs tako.
        let noc_ratio =
            lev.metrics.stats.noc_flit_hops as f64 / tako.metrics.stats.noc_flit_hops as f64;
        assert!(
            noc_ratio < 0.75,
            "offload must cut NoC traffic vs tako: ratio {noc_ratio:.2}"
        );
        // Binned updates must not blow up DRAM traffic. (Known deviation:
        // the paper's PHI also *logs* deltas sequentially when in-place
        // application would waste bandwidth; we implement the in-place
        // policy only, which is DRAM-neutral rather than DRAM-saving. See
        // EXPERIMENTS.md.)
        let dram_ratio =
            lev.metrics.stats.dram_accesses as f64 / base.metrics.stats.dram_accesses as f64;
        assert!(
            dram_ratio < 1.6,
            "binning must keep DRAM in check: ratio {dram_ratio:.2}"
        );
        assert!(lev.metrics.stats.dtor_actions > 0, "destructors ran");
        assert!(
            lev.metrics.stats.ownership_transfers < base.metrics.stats.ownership_transfers / 2,
            "offload eliminates delta-line ping-pong"
        );
    }
}
