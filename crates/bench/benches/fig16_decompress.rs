//! Fig. 16 — near-cache data transformation (decompression of 6 B pixels).
//!
//! Paper: Leviathan 2.4×, −65% energy, within 1.6% of Ideal; offload (OL)
//! is 2.8× *worse* than baseline; no-padding prior work fails outright.

use levi_bench::{header, quick_mode, report, Row, Sweep};
use levi_workloads::decompress::{run_decompress, DecompressScale, DecompressVariant};

fn main() {
    let mut scale = DecompressScale::paper();
    if quick_mode() {
        scale = DecompressScale::test();
    }
    header(
        "Fig. 16 — decompressing 6 B pixels (base+delta, Zipf accesses)",
        &format!(
            "{} pixels, {} accesses (theta={}), {} tiles",
            scale.pixels, scale.accesses, scale.theta, scale.tiles
        ),
    );

    let paper = [
        (DecompressVariant::Baseline, Some(1.0), Some(1.0)),
        (DecompressVariant::Offload, Some(1.0 / 2.8), None),
        (DecompressVariant::NoPadding, None, None),
        (DecompressVariant::Leviathan, Some(2.4), Some(0.35)),
        (DecompressVariant::Ideal, Some(2.44), Some(0.345)),
    ];
    let runs = Sweep::new()
        .variants(paper.iter().map(|&(v, ps, pe)| (v.label(), (v, ps, pe))))
        .run(|_, &(v, ps, pe)| (run_decompress(v, &scale), ps, pe));
    let mut results = Vec::new();
    for (label, (run, ps, pe)) in runs {
        match run {
            Some(r) => {
                eprintln!("  ran {:<18} {:>12} cycles", label, r.metrics.cycles);
                results.push((r, ps, pe));
            }
            None => println!(
                "{label:<22} UNSUPPORTED — 6 B objects straddle cache lines without padding (as in the paper)",
            ),
        }
    }
    for (r, _, _) in &results[1..] {
        assert_eq!(
            r.access_sum, results[0].0.access_sum,
            "functional divergence"
        );
    }
    let rows: Vec<Row> = results
        .iter()
        .map(|(r, ps, pe)| Row {
            label: &r.metrics.label,
            metrics: &r.metrics,
            paper_speedup: *ps,
            paper_energy: *pe,
        })
        .collect();
    report("fig16_decompress", &rows);

    let lev = results
        .iter()
        .find(|(r, _, _)| r.metrics.label == "Leviathan")
        .unwrap();
    let ideal = results
        .iter()
        .find(|(r, _, _)| r.metrics.label == "Ideal")
        .unwrap();
    println!();
    println!(
        "gap to idealized engine: {:.1}%  (paper: 1.6%)",
        (lev.0.metrics.cycles as f64 / ideal.0.metrics.cycles as f64 - 1.0) * 100.0
    );
    println!(
        "line fills (ctor groups): {}  — decompressed pixels reused from L1/L2",
        lev.0.metrics.stats.ctor_actions / 8
    );
}
