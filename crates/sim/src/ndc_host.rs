//! The timed NDC host: Table III's per-paradigm microarchitectural
//! support.
//!
//! [`TimedHost`] is handed to [`levi_isa::exec::step`] for NDC
//! instructions. It charges the timing of futures (store-update
//! propagation), streams (push/pop, line-crossing invalidation
//! notifications), and range flushes, and collects side effects (task
//! spawns, wake conditions) for the scheduler to apply after the step.
//! The invoke path — target selection, NACK/backpressure, fault backoff,
//! and the 1/32 migrate-local policy — lives in [`crate::invoke`].
//! [`NoBlockHost`] is the no-op host used for non-NDC instructions, which
//! never call host methods.

use std::collections::VecDeque;

use levi_isa::interp::future_layout;
use levi_isa::{Addr, FuncId, Memory, NdcHost, NdcRequest, Poll, Program};

use crate::engine::EngineId;
use crate::hw::{AccessKind, Hw, Walk, CTRL_MSG};
use crate::ndc::{StreamId, StreamMode, WaitCond};
use crate::trace::{TraceCategory, TraceEvent, Track};

/// ACK message size for invoke backpressure.
pub(crate) const INVOKE_ACK: u32 = 8;
/// Pop-notification message size.
pub(crate) const INVAL_NOTIFY: u32 = 8;

/// A request (from the NDC host) to create an engine task — or, for
/// fault-degraded invokes past the retry budget, a core-fallback thread.
pub(crate) struct SpawnReq {
    pub(crate) engine: EngineId,
    pub(crate) func: FuncId,
    pub(crate) prog: std::sync::Arc<Program>,
    pub(crate) args: Vec<u64>,
    pub(crate) start: u64,
    /// When set, spawn as a software handler thread on this core instead
    /// of as an engine task (fault fallback).
    pub(crate) fallback_core: Option<u32>,
    /// The invoke-lifecycle span this spawn continues (None when span
    /// tracing is off; see [`crate::span`]).
    pub(crate) span: Option<crate::span::SpanId>,
}

/// Host used for non-NDC instructions (they never call host methods).
pub(crate) struct NoBlockHost;

impl NdcHost for NoBlockHost {
    fn invoke(&mut self, _mem: &mut dyn Memory, _req: NdcRequest) -> Poll<()> {
        unreachable!("invoke outside TimedHost")
    }
    fn future_wait(&mut self, _mem: &mut dyn Memory, _fut: Addr) -> Poll<u64> {
        unreachable!("future_wait outside TimedHost")
    }
    fn future_send(&mut self, _mem: &mut dyn Memory, _fut: Addr, _val: u64) {
        unreachable!("future_send outside TimedHost")
    }
    fn push(&mut self, _mem: &mut dyn Memory, _stream: u64, _val: u64) -> Poll<()> {
        unreachable!("push outside TimedHost")
    }
    fn pop(&mut self, _mem: &mut dyn Memory, _stream: u64) {
        unreachable!("pop outside TimedHost")
    }
    fn flush(&mut self, _mem: &mut dyn Memory, _addr: Addr, _len: u64) {
        unreachable!("flush outside TimedHost")
    }
}

/// The timed NDC host: implements Table III's microarchitectural support.
pub(crate) struct TimedHost<'a> {
    pub(crate) hw: &'a mut Hw,
    pub(crate) is_core: bool,
    pub(crate) tile: u32,
    /// The issuing engine when this context is an engine task.
    pub(crate) engine: Option<EngineId>,
    pub(crate) now: u64,
    pub(crate) invoke_acks: &'a mut VecDeque<u64>,
    pub(crate) invoke_count: &'a mut u32,
    pub(crate) invoke_retries: &'a mut u32,
    /// The open span of the invoke currently being issued. Survives
    /// backpressure sleeps and NACK parks (so the span's first attempt
    /// anchors the offload stage); cleared when the invoke issues or
    /// falls back.
    pub(crate) pending_span: &'a mut Option<crate::span::SpanId>,
    pub(crate) spawns: &'a mut Vec<SpawnReq>,
    pub(crate) wakes: &'a mut Vec<(WaitCond, u64)>,
    pub(crate) block: Option<WaitCond>,
    pub(crate) sleep_until: Option<u64>,
    pub(crate) op_done: u64,
    pub(crate) wait_fill: u64,
}

impl TimedHost<'_> {
    /// The trace track of the issuing context.
    pub(crate) fn track(&self) -> Track {
        match self.engine {
            Some(e) => Track::Engine(e),
            None => Track::Core(self.tile),
        }
    }
}

impl NdcHost for TimedHost<'_> {
    fn invoke(&mut self, mem: &mut dyn Memory, req: NdcRequest) -> Poll<()> {
        self.do_invoke(mem, req)
    }

    fn future_wait(&mut self, mem: &mut dyn Memory, fut: Addr) -> Poll<u64> {
        if future_layout::is_filled(mem, fut) {
            let arrival = self
                .hw
                .ndc
                .futures
                .get(&fut)
                .map_or(self.now, |f| f.arrival);
            self.wait_fill = arrival;
            Poll::Ready(future_layout::value(mem, fut))
        } else {
            self.block = Some(WaitCond::FutureFill(fut));
            Poll::Pending
        }
    }

    fn future_send(&mut self, mem: &mut dyn Memory, fut: Addr, val: u64) {
        future_layout::fill(mem, fut, val);
        // The NDC host path translates too: the store-update targets the
        // future's virtual address, so the sender's TLB gates it exactly
        // like a probe-path access (crate::xlat; free when disabled).
        let t = self.hw.translate(self.tile, fut, self.now);
        // store-update: the value travels to the waiter's core; we use the
        // future's home bank as the destination proxy when no waiter is
        // parked yet.
        let dest = self.hw.bank_of(fut);
        let arrival = self
            .hw
            .noc
            .send(self.tile, dest, CTRL_MSG, t, &mut self.hw.stats);
        self.hw
            .ndc
            .futures
            .insert(fut, crate::ndc::FutureFill { arrival });
        self.wakes.push((WaitCond::FutureFill(fut), arrival));
        self.op_done = self.now + 1;
    }

    fn push(&mut self, mem: &mut dyn Memory, stream: u64, val: u64) -> Poll<()> {
        let sid = StreamId(stream as u32);
        let s = self.hw.ndc.stream(sid);
        if s.is_full() {
            self.block = Some(WaitCond::StreamSpace(sid));
            return Poll::Pending;
        }
        let addr = s.entry_addr(s.tail);
        let eng = s.engine;
        mem.write_u64(addr, val);
        let done = match self
            .hw
            .access_engine(mem, eng, AccessKind::Write, addr, self.now, false)
        {
            Walk::Done { at } => at,
            Walk::Blocked(_) => unreachable!("buffer writes cannot block"),
        };
        let s = self.hw.ndc.stream_mut(sid);
        s.tail += 1;
        let depth = s.len();
        self.hw.stats.stream_pushes += 1;
        self.hw.stats.trace.record(|| {
            TraceEvent::instant(
                done,
                TraceCategory::Stream,
                "stream.push",
                Track::Engine(eng),
                &[("sid", sid.0 as u64), ("depth", depth)],
            )
        });
        self.wakes.push((WaitCond::StreamData(sid), done));
        self.op_done = self.now + 1;
        Poll::Ready(())
    }

    fn pop(&mut self, _mem: &mut dyn Memory, stream: u64) {
        let sid = StreamId(stream as u32);
        let (old_addr, new_addr, engine, consumer) = {
            let s = self.hw.ndc.stream_mut(sid);
            debug_assert!(s.head < s.tail, "pop past the stream tail");
            let old = s.entry_addr(s.head);
            s.head += 1;
            let new = s.entry_addr(s.head);
            (old, new, s.engine, s.consumer)
        };
        self.hw.stats.stream_pops += 1;
        let depth = self.hw.ndc.stream(sid).len();
        let (now, track) = (self.now, self.track());
        self.hw.stats.trace.record(|| {
            TraceEvent::instant(
                now,
                TraceCategory::Stream,
                "stream.pop",
                track,
                &[("sid", sid.0 as u64), ("depth", depth)],
            )
        });
        let run_ahead = matches!(self.hw.ndc.stream(sid).mode, StreamMode::RunAhead);
        let old_line = old_addr >> crate::config::LINE_SHIFT;
        let new_line = new_addr >> crate::config::LINE_SHIFT;
        if old_line != new_line {
            // Head crossed a line: invalidate the dead line at the consumer
            // and notify the producing engine.
            self.hw.l1[consumer as usize].invalidate(old_line);
            self.hw.l2[consumer as usize].invalidate(old_line);
            let arrival = self.hw.noc.send(
                consumer,
                engine.tile,
                INVAL_NOTIFY,
                self.now,
                &mut self.hw.stats,
            );
            if run_ahead {
                self.wakes.push((WaitCond::StreamSpace(sid), arrival));
            }
        } else if run_ahead {
            self.wakes.push((WaitCond::StreamSpace(sid), self.now + 1));
        }
        // Miss-triggered producers are only re-activated by consumer
        // misses (they cannot run ahead of demand, Sec. VIII-C).
        self.op_done = self.now + 1;
    }

    fn flush(&mut self, mem: &mut dyn Memory, addr: Addr, len: u64) {
        let t = self.hw.flush_range(mem, addr, len, self.now);
        self.op_done = t.max(self.now + 1);
    }
}
