//! Thin wrapper: `cargo bench --bench fig18_hashtable` dispatches to the `fig18_hashtable`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run fig18_hashtable` executes identically.

fn main() {
    levi_bench::runner::bench_main("fig18_hashtable");
}
