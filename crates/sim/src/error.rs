//! Typed simulator errors.
//!
//! [`SimError`] replaces the panics that used to guard `levi-sim`'s public
//! construction and setup APIs (action lookup, thread spawning, stream
//! creation, configuration validation), so misuse is reportable and
//! testable instead of aborting the process. Runtime failures inside a
//! simulation surface through [`crate::machine::RunError`], which wraps a
//! `SimError` when a program trips one mid-run (e.g. invoking an
//! unregistered action).

use std::fmt;

use levi_isa::ActionId;

/// An error from a `levi-sim` public API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An `invoke` named an action id that was never registered in the
    /// [`crate::ndc::ActionTable`].
    UnknownAction(ActionId),
    /// [`crate::Machine::spawn_thread`] targeted a core outside the
    /// machine.
    CoreOutOfRange {
        /// The requested core.
        core: u32,
        /// Number of cores in the machine.
        tiles: u32,
    },
    /// More entry-function arguments than argument registers.
    TooManyArgs {
        /// Arguments supplied.
        given: usize,
        /// Maximum supported (r0..r7).
        max: usize,
    },
    /// [`crate::Machine::create_stream`] with an unsupported entry size
    /// (v1 streams carry 8-byte entries).
    UnsupportedEntrySize {
        /// The requested entry size in bytes.
        entry_size: u64,
    },
    /// [`crate::Machine::create_stream`] with a zero-capacity buffer.
    ZeroStreamCapacity,
    /// A [`crate::MachineConfig`] field combination is invalid
    /// (see [`crate::MachineConfig::validate`]).
    InvalidConfig {
        /// Human-readable description of the offending field(s).
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownAction(id) => write!(f, "unregistered action {id:?}"),
            SimError::CoreOutOfRange { core, tiles } => {
                write!(f, "core {core} out of range (machine has {tiles} cores)")
            }
            SimError::TooManyArgs { given, max } => {
                write!(f, "{given} entry arguments given, at most {max} supported")
            }
            SimError::UnsupportedEntrySize { entry_size } => {
                write!(
                    f,
                    "stream entry size {entry_size} unsupported (v1 streams carry 8-byte entries)"
                )
            }
            SimError::ZeroStreamCapacity => write!(f, "stream capacity must be positive"),
            SimError::InvalidConfig { what } => write!(f, "invalid machine config: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let e = SimError::CoreOutOfRange { core: 9, tiles: 4 };
        assert_eq!(e.to_string(), "core 9 out of range (machine has 4 cores)");
        let e = SimError::UnknownAction(ActionId(3));
        assert!(e.to_string().contains("unregistered action"));
        let e = SimError::InvalidConfig {
            what: "quantum must be positive".into(),
        };
        assert!(e.to_string().contains("quantum"));
    }
}
