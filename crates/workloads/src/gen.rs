//! Seeded input generators: synthetic graphs and key distributions.
//!
//! The paper evaluates on a 4M-vertex/40M-edge synthetic graph (PHI) and
//! the uk-2002 web crawl (HATS). We generate scaled stand-ins: uniform
//! random graphs for PHI, and *community-structured* graphs (planted
//! partition) for HATS, whose locality is exactly what bounded-DFS
//! traversal exploits. Key distributions (uniform and Zipfian) drive the
//! hash-table and decompression studies.

use crate::rng::SmallRng;

/// A directed graph in CSR (compressed sparse row) form: for each vertex,
/// the list of its out-neighbors.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices.
    pub num_vertices: u32,
    /// CSR row offsets (`num_vertices + 1` entries).
    pub offsets: Vec<u32>,
    /// Flattened out-neighbor lists (`num_edges` entries).
    pub neighbors: Vec<u32>,
}

impl Graph {
    /// Number of edges.
    pub fn num_edges(&self) -> u32 {
        self.neighbors.len() as u32
    }

    /// Out-degree of vertex `v`.
    pub fn out_degree(&self, v: u32) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbors of vertex `v`.
    pub fn neighbors_of(&self, v: u32) -> &[u32] {
        let a = self.offsets[v as usize] as usize;
        let b = self.offsets[v as usize + 1] as usize;
        &self.neighbors[a..b]
    }

    /// Builds a CSR graph from an edge list.
    pub fn from_edges(num_vertices: u32, mut edges: Vec<(u32, u32)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut offsets = vec![0u32; num_vertices as usize + 1];
        for &(s, _) in &edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..num_vertices as usize {
            offsets[i + 1] += offsets[i];
        }
        let neighbors = edges.iter().map(|&(_, d)| d).collect();
        Graph {
            num_vertices,
            offsets,
            neighbors,
        }
    }

    /// Uniform random directed graph with `num_vertices * avg_degree`
    /// edges (the PHI study's synthetic input).
    pub fn uniform(num_vertices: u32, avg_degree: u32, seed: u64) -> Self {
        assert!(num_vertices >= 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_edges = num_vertices as u64 * avg_degree as u64;
        let mut edges = Vec::with_capacity(n_edges as usize);
        for _ in 0..n_edges {
            let s = rng.gen_range(0..num_vertices);
            let mut d = rng.gen_range(0..num_vertices);
            if d == s {
                d = (d + 1) % num_vertices;
            }
            edges.push((s, d));
        }
        Self::from_edges(num_vertices, edges)
    }

    /// Uniform sources with Zipf-skewed destinations: the in-degree
    /// distribution is power-law, like real scatter-update workloads
    /// (PageRank on web/social graphs). Hot destinations are what gives
    /// PHI's write-combining cache its reuse.
    pub fn skewed(num_vertices: u32, avg_degree: u32, theta: f64, seed: u64) -> Self {
        assert!(num_vertices >= 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut zipf = Zipf::new(num_vertices as u64, theta, seed ^ 0x5eed);
        let n_edges = num_vertices as u64 * avg_degree as u64;
        let mut edges = Vec::with_capacity(n_edges as usize);
        // Random permutation so hot vertices are scattered in the id space
        // (no accidental spatial clustering of hot lines).
        let mut perm: Vec<u32> = (0..num_vertices).collect();
        rng.shuffle(&mut perm);
        for _ in 0..n_edges {
            let s = rng.gen_range(0..num_vertices);
            let mut d = perm[zipf.sample() as usize];
            if d == s {
                d = (d + 1) % num_vertices;
            }
            edges.push((s, d));
        }
        Self::from_edges(num_vertices, edges)
    }

    /// Community-structured graph (planted partition): vertices are split
    /// into communities of `community_size`; each edge stays inside its
    /// source's community with probability `intra_pct`/100. The HATS
    /// study's stand-in for uk-2002's strong community structure.
    pub fn community(
        num_vertices: u32,
        avg_degree: u32,
        community_size: u32,
        intra_pct: u32,
        seed: u64,
    ) -> Self {
        assert!(community_size >= 2 && num_vertices >= community_size);
        assert!(intra_pct <= 100);
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_edges = num_vertices as u64 * avg_degree as u64;
        let mut edges = Vec::with_capacity(n_edges as usize);
        for _ in 0..n_edges {
            let s = rng.gen_range(0..num_vertices);
            let comm = s / community_size * community_size;
            let comm_end = (comm + community_size).min(num_vertices);
            let d = if rng.gen_range(0..100) < intra_pct {
                let mut d = rng.gen_range(comm..comm_end);
                if d == s {
                    d = comm + (d - comm + 1) % (comm_end - comm);
                }
                d
            } else {
                let mut d = rng.gen_range(0..num_vertices);
                if d == s {
                    d = (d + 1) % num_vertices;
                }
                d
            };
            edges.push((s, d));
        }
        Self::from_edges(num_vertices, edges)
    }

    /// Fraction of edges whose endpoints share a community (diagnostics).
    pub fn intra_community_fraction(&self, community_size: u32) -> f64 {
        let mut intra = 0u64;
        let mut total = 0u64;
        for s in 0..self.num_vertices {
            for &d in self.neighbors_of(s) {
                total += 1;
                if s / community_size == d / community_size {
                    intra += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            intra as f64 / total as f64
        }
    }
}

/// A Zipfian sampler over `0..n` with parameter `theta` (θ→0 is uniform,
/// θ≈0.99 matches the paper's web-caching-style skew \[17\]).
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    /// Cumulative probabilities scaled to u64::MAX for binary search.
    cdf: Vec<f64>,
    rng: SmallRng,
}

impl Zipf {
    /// Builds a sampler for `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0);
        let mut weights = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for i in 1..=n {
            let w = 1.0 / (i as f64).powf(theta);
            total += w;
            weights.push(total);
        }
        let cdf = weights.iter().map(|w| w / total).collect();
        Zipf {
            n,
            cdf,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws the next sample.
    pub fn sample(&mut self) -> u64 {
        let u: f64 = self.rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i as u64,
            Err(i) => (i as u64).min(self.n - 1),
        }
    }
}

/// Host-side golden model of one push-PageRank iteration over `graph`:
/// every vertex scatters `INIT_RANK / deg` to its out-neighbors, then
/// each accumulated mass folds as `((mass * 217) >> 8) + (1 << 12)` in
/// fixed point. Returns the wrapping sum of the final rank vector.
///
/// Both graph workloads (PHI's push scatter and HATS's pull traversal)
/// compute this same iteration, so both validate against this one model
/// (re-exported as `phi::golden_checksum` / `hats::golden_checksum`).
pub fn pagerank_checksum(graph: &Graph) -> u64 {
    let nv = graph.num_vertices as usize;
    let mut rnext = vec![0u64; nv];
    for u in 0..graph.num_vertices {
        let deg = graph.out_degree(u) as u64;
        if deg == 0 {
            continue;
        }
        let contrib = crate::phi::INIT_RANK / deg;
        for &v in graph.neighbors_of(u) {
            rnext[v as usize] = rnext[v as usize].wrapping_add(contrib);
        }
    }
    let mut checksum = 0u64;
    for &nx in &rnext {
        let r = ((nx.wrapping_mul(217)) >> 8).wrapping_add(1 << 12);
        checksum = checksum.wrapping_add(r);
    }
    checksum
}

/// A uniform sampler over `0..n`.
#[derive(Clone, Debug)]
pub struct Uniform {
    n: u64,
    rng: SmallRng,
}

impl Uniform {
    /// Builds a sampler for `0..n`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0);
        Uniform {
            n,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws the next sample.
    pub fn sample(&mut self) -> u64 {
        self.rng.gen_range(0..self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_graph_shape() {
        let g = Graph::uniform(100, 8, 1);
        assert_eq!(g.num_vertices, 100);
        // Dedup may drop a few; expect close to 800.
        assert!(g.num_edges() > 700, "{} edges", g.num_edges());
        assert_eq!(g.offsets.len(), 101);
        assert_eq!(*g.offsets.last().unwrap(), g.num_edges());
        for v in 0..100 {
            for &d in g.neighbors_of(v) {
                assert!(d < 100);
                assert_ne!(d, v, "no self loops");
            }
        }
    }

    #[test]
    fn community_graph_is_clustered() {
        let g = Graph::community(1000, 8, 50, 90, 7);
        let frac = g.intra_community_fraction(50);
        assert!(frac > 0.8, "intra-community fraction {frac}");
        let g_uni = Graph::uniform(1000, 8, 7);
        let frac_uni = g_uni.intra_community_fraction(50);
        assert!(frac_uni < 0.2, "uniform graph is unclustered: {frac_uni}");
    }

    #[test]
    fn graphs_are_deterministic() {
        let a = Graph::uniform(500, 4, 42);
        let b = Graph::uniform(500, 4, 42);
        assert_eq!(a.neighbors, b.neighbors);
        let c = Graph::uniform(500, 4, 43);
        assert_ne!(a.neighbors, c.neighbors);
    }

    #[test]
    fn zipf_skews_toward_low_indices() {
        let mut z = Zipf::new(1000, 0.99, 3);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[z.sample() as usize] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[990..].iter().sum();
        assert!(
            head > 20 * tail.max(1),
            "head {head} should dominate tail {tail}"
        );
    }

    #[test]
    fn uniform_sampler_covers_range() {
        let mut u = Uniform::new(16, 5);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[u.sample() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let mut z = Zipf::new(100, 0.0, 9);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample() as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max < min * 2, "θ=0 should be near-uniform ({min}..{max})");
    }
}
