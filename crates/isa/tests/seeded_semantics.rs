//! Randomized tests of the LevIR semantics against native Rust evaluation:
//! random straight-line ALU programs, memory round trips, and control-flow
//! invariants. Formerly proptest-based; now driven by a fixed-seed
//! splitmix64 generator so the suite is deterministic and needs no
//! external crates.

use levi_isa::interp::Interpreter;
use levi_isa::{AluOp, BrCond, ExecCtx, Memory, NoNdc, PagedMem, ProgramBuilder, Reg, RmwOp};

/// Minimal in-file deterministic generator (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

/// The ALU operations under test.
const OPS: [AluOp; 17] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::DivU,
    AluOp::RemU,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sar,
    AluOp::SltS,
    AluOp::SltU,
    AluOp::Seq,
    AluOp::Sne,
    AluOp::MinU,
    AluOp::MaxU,
];

/// A random straight-line ALU program computes the same result as a
/// direct Rust evaluation over a model register file.
#[test]
fn straight_line_alu_matches_model() {
    let mut g = Gen(0xa1);
    for _ in 0..200 {
        let seed0 = g.next();
        let seed1 = g.next();
        let n_steps = 1 + g.below(59) as usize;
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("rand");
        let mut model = [0u64; 8];
        model[0] = seed0;
        model[1] = seed1;
        for _ in 0..n_steps {
            let op = OPS[g.below(17) as usize];
            let (rd, ra, rb) = (g.below(8) as u8, g.below(8) as u8, g.below(8) as u8);
            f.alu(op, Reg(rd), Reg(ra), Reg(rb));
            model[rd as usize] = op.apply(model[ra as usize], model[rb as usize]);
        }
        // Fold all model registers into r0 for comparison.
        for r in 1..8u8 {
            f.xor(Reg(0), Reg(0), Reg(r));
        }
        f.ret();
        let func = f.finish();
        let prog = pb.finish().unwrap();
        let mut mem = PagedMem::new();
        let got = Interpreter::new(&prog)
            .run(func, &[seed0, seed1], &mut mem)
            .unwrap();
        let mut fold = model[0];
        for m in model.iter().skip(1) {
            fold ^= m;
        }
        assert_eq!(got, fold);
    }
}

/// Store-then-load round-trips arbitrary values at arbitrary widths.
#[test]
fn store_load_round_trip() {
    use levi_isa::MemWidth::*;
    let mut g = Gen(0xb2);
    for _ in 0..100 {
        let addr = g.below(1_000_000);
        let val = g.next();
        for w in [B1, B2, B4, B8] {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("rt");
            f.st(Reg(0), 0, Reg(1), w);
            f.ld(Reg(0), Reg(0), 0, w, false);
            f.ret();
            let func = f.finish();
            let prog = pb.finish().unwrap();
            let mut mem = PagedMem::new();
            let got = Interpreter::new(&prog)
                .run(func, &[addr, val], &mut mem)
                .unwrap();
            assert_eq!(got, w.truncate(val));
        }
    }
}

/// Branch conditions agree with their Rust counterparts.
#[test]
fn branch_semantics_match() {
    let mut g = Gen(0xc3);
    for case in 0..100 {
        // Mix raw values with near-equal pairs so Eq/Ne paths are hit.
        let a = g.next();
        let b = match case % 4 {
            0 => g.next(),
            1 => a,
            2 => a.wrapping_add(1),
            _ => a.wrapping_neg(),
        };
        let cases: [(BrCond, bool); 6] = [
            (BrCond::Eq, a == b),
            (BrCond::Ne, a != b),
            (BrCond::LtU, a < b),
            (BrCond::GeU, a >= b),
            (BrCond::LtS, (a as i64) < (b as i64)),
            (BrCond::GeS, (a as i64) >= (b as i64)),
        ];
        for (cond, expect) in cases {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("b");
            let taken = f.label();
            f.br(cond, Reg(0), Reg(1), taken);
            f.imm(Reg(0), 0u64);
            f.ret();
            f.bind(taken);
            f.imm(Reg(0), 1u64);
            f.ret();
            let func = f.finish();
            let prog = pb.finish().unwrap();
            let mut mem = PagedMem::new();
            let got = Interpreter::new(&prog)
                .run(func, &[a, b], &mut mem)
                .unwrap();
            assert_eq!(got == 1, expect, "{:?}({}, {})", cond, a, b);
        }
    }
}

/// A chain of atomic RMWs leaves memory in the state a sequential fold
/// produces, and each returns the previous value.
#[test]
fn rmw_chain_folds() {
    let ops = [
        RmwOp::Add,
        RmwOp::And,
        RmwOp::Or,
        RmwOp::Xor,
        RmwOp::MinU,
        RmwOp::MaxU,
        RmwOp::Xchg,
    ];
    let mut g = Gen(0xd4);
    for _ in 0..50 {
        let init = g.next();
        let n_vals = 1 + g.below(19) as usize;
        let vals: Vec<u64> = (0..n_vals).map(|_| g.next()).collect();
        for op in ops {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("chain");
            // Unrolled: imm the value, then RMW it into [r0].
            for &v in &vals {
                f.imm(Reg(2), v);
                f.rmw_relaxed(op, Reg(3), Reg(0), Reg(2), levi_isa::MemWidth::B8);
            }
            f.ret();
            let func = f.finish();
            let prog = pb.finish().unwrap();
            let mut mem = PagedMem::new();
            mem.write_u64(0x100, init);
            Interpreter::new(&prog)
                .run(func, &[0x100], &mut mem)
                .unwrap();
            let want = vals.iter().fold(init, |acc, &v| op.apply(acc, v));
            assert_eq!(mem.read_u64(0x100), want, "{:?}", op);
        }
    }
}

/// Every instruction's `def` register is the only register a step may
/// change (NDC-free instructions).
#[test]
fn step_writes_only_def() {
    let mut g = Gen(0xe5);
    for _ in 0..500 {
        let seed = g.next();
        let op = OPS[g.below(17) as usize];
        let (rd, ra, rb) = (g.below(16) as u8, g.below(16) as u8, g.below(16) as u8);
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("one");
        f.alu(op, Reg(rd), Reg(ra), Reg(rb));
        f.ret();
        let func = f.finish();
        let prog = pb.finish().unwrap();
        let mut ctx = ExecCtx::new(func, &[]);
        for (i, r) in ctx.regs.iter_mut().enumerate() {
            *r = seed.wrapping_mul(i as u64 + 1);
        }
        let before = ctx.regs;
        let mut mem = PagedMem::new();
        let mut host = NoNdc;
        levi_isa::exec::step(&prog, &mut ctx, &mut mem, &mut host).unwrap();
        for (i, b) in before.iter().enumerate() {
            if i != rd as usize {
                assert_eq!(ctx.regs[i], *b, "register r{} changed", i);
            }
        }
    }
}
