//! Microkernels — simulated cycle counts for the substrate primitives.
//!
//! Complements `micro_substrate` (which times the *simulator* in
//! wall-clock nanoseconds): this figure runs the `micro` workload's
//! scan / pointer-chase / invoke kernels on the timed simulator and
//! reports deterministic cycle counts, golden-checked like every other
//! workload. It drives the workload purely through the registry, as a
//! living example of the [`levi_workloads::DynWorkload`] path.

use levi_workloads::harness::find_workload;

use crate::runner::{sweep_prepared, Figure, RunCtx};
use crate::{header, table_report};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "micro_kernels",
    about: "substrate microkernel cycle counts (scan / pointer-chase / invoke)",
    workloads: &["micro"],
    run,
};

fn run(ctx: &RunCtx) {
    let w = find_workload("micro").expect("micro workload is registered");
    let prepared = w.prepare(ctx.kind());
    header(
        "Microkernels — substrate primitives on the timed simulator",
        &prepared.describe(),
    );
    let outcomes = sweep_prepared(w, prepared.as_ref(), ctx);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|(label, o)| {
            vec![
                label.to_string(),
                o.metrics.cycles.to_string(),
                o.metrics.stats.dram_accesses.to_string(),
                o.metrics.stats.noc_flit_hops.to_string(),
                format!("{:#018x}", o.checksum),
            ]
        })
        .collect();
    table_report(
        "micro_kernels",
        &[
            "kernel",
            "cycles",
            "DRAM accesses",
            "NoC flit-hops",
            "checksum",
        ],
        &rows,
    );
}
