//! NDC architectural state: action tables, Morph regions, streams, futures,
//! LLC bank-mapping ranges, and the wait/wake machinery for blocked
//! contexts.

use std::fmt;
use std::sync::Arc;

use levi_isa::fx::FxHashMap;
use levi_isa::{ActionId, Addr, FuncId, Program};

use crate::engine::EngineId;
use crate::error::SimError;

/// A reference to executable action code: a program and a function in it.
#[derive(Clone, Debug)]
pub struct ActionRef {
    /// Program containing the function.
    pub prog: Arc<Program>,
    /// The function to execute.
    pub func: FuncId,
}

/// The machine-wide action table (the engines' "vtable map",
/// paper Sec. VI-B2).
///
/// Action ids are small dense integers allocated by the workload layer, so
/// the table is a flat slab indexed by id — an invoke's action lookup is a
/// bounds check plus a load, not a hash.
#[derive(Clone, Debug, Default)]
pub struct ActionTable {
    slab: Vec<Option<ActionRef>>,
    count: usize,
}

impl ActionTable {
    /// Registers (or replaces) an action.
    pub fn register(&mut self, id: ActionId, prog: Arc<Program>, func: FuncId) {
        let idx = id.0 as usize;
        if idx >= self.slab.len() {
            self.slab.resize(idx + 1, None);
        }
        if self.slab[idx].replace(ActionRef { prog, func }).is_none() {
            self.count += 1;
        }
    }

    /// Looks up an action.
    ///
    /// Invoking an unregistered action is a program bug; rather than
    /// panicking mid-simulation this surfaces as
    /// [`SimError::UnknownAction`], which `Machine::run` converts into a
    /// `RunError::Fault`.
    pub fn get(&self, id: ActionId) -> Result<&ActionRef, SimError> {
        self.slab
            .get(id.0 as usize)
            .and_then(|slot| slot.as_ref())
            .ok_or(SimError::UnknownAction(id))
    }

    /// Number of registered actions.
    pub fn len(&self) -> usize {
        self.count
    }

    /// All registered actions sorted by id — the canonical iteration
    /// order for serialization (see [`crate::snapshot`]). Slab order *is*
    /// id order.
    pub(crate) fn snap_entries(&self) -> Vec<(ActionId, &ActionRef)> {
        self.slab
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|r| (ActionId(i as u32), r)))
            .collect()
    }

    /// True if no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Which cache level a Morph is registered at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MorphLevel {
    /// Constructors/destructors trigger at the private L2 (data lives in
    /// L1/L2 only — e.g. decompression, stream consumption).
    L2,
    /// Constructors/destructors trigger at the LLC (e.g. PHI's
    /// write-combining deltas).
    Llc,
}

/// A registered Morph: a phantom address range with data-triggered actions
/// (paper Fig. 11).
#[derive(Clone, Debug)]
pub struct MorphRegion {
    /// First byte of the phantom range.
    pub base: Addr,
    /// One past the last byte.
    pub bound: Addr,
    /// Trigger level.
    pub level: MorphLevel,
    /// Padded object size in bytes (power of two ≤ 4 lines, or a multiple
    /// of the line size for multi-line objects).
    pub obj_size: u64,
    /// Constructor action (runs on insertion), if any. `None` zero-fills.
    pub ctor: Option<ActionId>,
    /// Destructor action (runs on eviction), if any. `None` drops the line.
    pub dtor: Option<ActionId>,
    /// Address of the Morph's per-engine view/state object, passed to
    /// actions in `r1`.
    pub view: Addr,
    /// If this Morph backs a stream, its id (consumer loads block past the
    /// stream tail).
    pub stream: Option<StreamId>,
}

impl MorphRegion {
    /// True if `addr` falls inside the phantom range.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.bound
    }

    /// Base address of the object containing `addr`.
    pub fn obj_base(&self, addr: Addr) -> Addr {
        self.base + (addr - self.base) / self.obj_size * self.obj_size
    }

    /// Index of the object containing `addr`.
    pub fn obj_index(&self, addr: Addr) -> u64 {
        (addr - self.base) / self.obj_size
    }

    /// True if objects span multiple cache lines.
    pub fn is_multiline(&self) -> bool {
        self.obj_size > crate::config::LINE_SIZE
    }
}

/// Identifies a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// Run-ahead behaviour of a stream producer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamMode {
    /// Leviathan: the producer runs ahead until the buffer fills.
    RunAhead,
    /// tākō-style pseudo-streaming: the producer is triggered by consumer
    /// misses, generates at most one cache line of entries per activation,
    /// and pays a re-initialization cost per activation (Sec. VIII-C).
    MissTriggered {
        /// Extra engine instructions charged per activation.
        reinit_instrs: u32,
    },
}

/// Architectural state of one stream (paper Sec. VI-B3).
#[derive(Clone, Debug)]
pub struct StreamState {
    /// The stream's id.
    pub id: StreamId,
    /// Base address of the circular buffer in shared memory (also the
    /// phantom range the consumer loads from).
    pub buffer: Addr,
    /// Entry size in bytes (padded).
    pub entry_size: u64,
    /// Capacity in entries (Fig. 23 sweeps this).
    pub capacity: u64,
    /// Entries pushed so far (monotonic).
    pub tail: u64,
    /// Entries popped so far (monotonic).
    pub head: u64,
    /// Engine hosting the producer.
    pub engine: EngineId,
    /// Consumer core.
    pub consumer: u32,
    /// Producer scheduling mode.
    pub mode: StreamMode,
    /// Set when the producer has finished generating (genStream returned).
    pub closed: bool,
}

impl StreamState {
    /// Entries currently buffered.
    pub fn len(&self) -> u64 {
        self.tail - self.head
    }

    /// True if no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.tail == self.head
    }

    /// True if a push must block.
    pub fn is_full(&self) -> bool {
        match self.mode {
            StreamMode::RunAhead => self.len() >= self.capacity,
            StreamMode::MissTriggered { .. } => {
                // Miss-triggered producers may only fill one line beyond
                // the head (they cannot run ahead).
                let per_line = (crate::config::LINE_SIZE / self.entry_size).max(1);
                self.len() >= per_line.min(self.capacity)
            }
        }
    }

    /// Buffer address of entry number `n` (monotonic count).
    pub fn entry_addr(&self, n: u64) -> Addr {
        self.buffer + (n % self.capacity) * self.entry_size
    }
}

/// A filled future's delivery record: value arrival time at the waiter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FutureFill {
    /// Cycle the store-update message reaches the waiting thread.
    pub arrival: u64,
}

/// LLC bank-index mapping override for large objects (paper Sec. VI-A3):
/// within `[base, bound)`, the bank-index function ignores
/// `ignore_line_bits` low bits of the line index so that all lines of an
/// object map to the same bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BankMapRange {
    /// First byte of the range.
    pub base: Addr,
    /// One past the last byte.
    pub bound: Addr,
    /// Line-index LSBs to ignore (0–2 for up to 4-line objects).
    pub ignore_line_bits: u32,
}

/// Why a context is blocked (the wake condition it waits on).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WaitCond {
    /// Waiting for the future at this address to be filled.
    FutureFill(Addr),
    /// Waiting for a stream to contain data (consumer side).
    StreamData(StreamId),
    /// Waiting for space in a stream buffer (producer side).
    StreamSpace(StreamId),
    /// Waiting for a free offloaded-task context on an engine.
    EngineCtx(EngineId),
}

impl fmt::Display for WaitCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitCond::FutureFill(a) => write!(f, "future-fill @{a:#x}"),
            WaitCond::StreamData(s) => write!(f, "stream-data sid={}", s.0),
            WaitCond::StreamSpace(s) => write!(f, "stream-space sid={}", s.0),
            WaitCond::EngineCtx(e) => write!(f, "engine-ctx {e}"),
        }
    }
}

/// All NDC architectural state.
#[derive(Clone, Debug, Default)]
pub struct NdcState {
    /// The global action table.
    pub actions: ActionTable,
    /// Registered Morph regions.
    pub morphs: Vec<MorphRegion>,
    /// Active streams.
    pub streams: Vec<StreamState>,
    /// Filled futures (address → delivery record).
    pub futures: FxHashMap<Addr, FutureFill>,
    /// LLC bank-mapping overrides.
    pub bank_maps: Vec<BankMapRange>,
    /// Streaming-store ranges: full-line sequential write targets (e.g.
    /// PHI's delta logs) whose write misses skip the write-allocate fetch
    /// (hardware write-combining).
    pub stream_store_ranges: Vec<(Addr, Addr)>,
    /// Memory-side ranges: engine accesses to these bypass the LLC and go
    /// straight to the memory controller (PHI's in-place update path —
    /// the cache holds deltas *instead of* this data, so caching it would
    /// defeat the write-combining buffer).
    pub mem_side_ranges: Vec<(Addr, Addr)>,
}

impl NdcState {
    /// Finds the Morph containing `addr`, if any.
    pub fn morph_at(&self, addr: Addr) -> Option<usize> {
        self.morphs.iter().position(|m| m.contains(addr))
    }

    /// Registers a Morph, returning its index.
    ///
    /// # Panics
    /// Panics if the range overlaps an existing Morph or the object size is
    /// zero.
    pub fn register_morph(&mut self, m: MorphRegion) -> usize {
        assert!(m.obj_size > 0 && m.bound > m.base);
        for e in &self.morphs {
            assert!(
                m.bound <= e.base || m.base >= e.bound,
                "overlapping morph regions"
            );
        }
        self.morphs.push(m);
        self.morphs.len() - 1
    }

    /// Removes the Morph based at `base`; returns it if present.
    pub fn unregister_morph(&mut self, base: Addr) -> Option<MorphRegion> {
        let i = self.morphs.iter().position(|m| m.base == base)?;
        Some(self.morphs.remove(i))
    }

    /// Mutable access to a stream.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn stream_mut(&mut self, id: StreamId) -> &mut StreamState {
        &mut self.streams[id.0 as usize]
    }

    /// Shared access to a stream.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn stream(&self, id: StreamId) -> &StreamState {
        &self.streams[id.0 as usize]
    }

    /// Total entries buffered across all streams (for occupancy sampling).
    pub fn buffered_entries(&self) -> u64 {
        self.streams.iter().map(|s| s.len()).sum()
    }

    /// True if `addr` lies in a registered memory-side range.
    pub fn is_mem_side(&self, addr: Addr) -> bool {
        self.mem_side_ranges
            .iter()
            .any(|&(b, e)| addr >= b && addr < e)
    }

    /// True if `addr` lies in a registered streaming-store range.
    pub fn is_stream_store(&self, addr: Addr) -> bool {
        self.stream_store_ranges
            .iter()
            .any(|&(b, e)| addr >= b && addr < e)
    }

    /// The effective line-index LSBs to ignore when picking `addr`'s LLC
    /// bank.
    pub fn bank_ignore_bits(&self, addr: Addr) -> u32 {
        self.bank_maps
            .iter()
            .find(|r| addr >= r.base && addr < r.bound)
            .map_or(0, |r| r.ignore_line_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LINE_SIZE;
    use crate::engine::EngineLevel;

    fn region(base: u64, bound: u64, obj: u64) -> MorphRegion {
        MorphRegion {
            base,
            bound,
            level: MorphLevel::Llc,
            obj_size: obj,
            ctor: None,
            dtor: None,
            view: 0,
            stream: None,
        }
    }

    #[test]
    fn morph_object_math() {
        let m = region(0x1000, 0x2000, 32);
        assert!(m.contains(0x1000));
        assert!(m.contains(0x1FFF));
        assert!(!m.contains(0x2000));
        assert_eq!(m.obj_base(0x1000), 0x1000);
        assert_eq!(m.obj_base(0x101F), 0x1000);
        assert_eq!(m.obj_base(0x1020), 0x1020);
        assert_eq!(m.obj_index(0x1040), 2);
        assert!(!m.is_multiline());
        assert!(region(0, 0x1000, 2 * LINE_SIZE).is_multiline());
    }

    #[test]
    fn morph_overlap_rejected() {
        let mut n = NdcState::default();
        n.register_morph(region(0x1000, 0x2000, 32));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut n2 = n.clone();
            n2.register_morph(region(0x1800, 0x2800, 32));
        }));
        assert!(r.is_err());
        // Adjacent is fine.
        n.register_morph(region(0x2000, 0x3000, 32));
        assert_eq!(n.morph_at(0x1800), Some(0));
        assert_eq!(n.morph_at(0x2800), Some(1));
        assert_eq!(n.morph_at(0x3000), None);
    }

    #[test]
    fn unregister_morph() {
        let mut n = NdcState::default();
        n.register_morph(region(0x1000, 0x2000, 32));
        assert!(n.unregister_morph(0x1000).is_some());
        assert!(n.unregister_morph(0x1000).is_none());
        assert_eq!(n.morph_at(0x1800), None);
    }

    #[test]
    fn stream_occupancy() {
        let s = StreamState {
            id: StreamId(0),
            buffer: 0x4000,
            entry_size: 8,
            capacity: 4,
            tail: 6,
            head: 3,
            engine: EngineId {
                tile: 0,
                level: EngineLevel::Llc,
            },
            consumer: 0,
            mode: StreamMode::RunAhead,
            closed: false,
        };
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(!s.is_full());
        assert_eq!(s.entry_addr(6), 0x4000 + 2 * 8, "wraps modulo capacity");
    }

    #[test]
    fn miss_triggered_stream_cannot_run_ahead() {
        let mut s = StreamState {
            id: StreamId(0),
            buffer: 0,
            entry_size: 8,
            capacity: 64,
            tail: 0,
            head: 0,
            engine: EngineId {
                tile: 0,
                level: EngineLevel::Llc,
            },
            consumer: 0,
            mode: StreamMode::MissTriggered { reinit_instrs: 15 },
            closed: false,
        };
        // 8 entries per 64B line: full at 8 buffered entries.
        s.tail = 8;
        assert!(s.is_full());
        s.head = 1;
        assert!(!s.is_full());
    }

    #[test]
    fn bank_ignore_bits_lookup() {
        let mut n = NdcState::default();
        n.bank_maps.push(BankMapRange {
            base: 0x10000,
            bound: 0x20000,
            ignore_line_bits: 1,
        });
        assert_eq!(n.bank_ignore_bits(0x10000), 1);
        assert_eq!(n.bank_ignore_bits(0xFFFF), 0);
        assert_eq!(n.bank_ignore_bits(0x20000), 0);
    }

    #[test]
    fn unknown_action_is_typed_error() {
        let t = ActionTable::default();
        assert_eq!(
            t.get(ActionId(9)).map(|_| ()),
            Err(SimError::UnknownAction(ActionId(9)))
        );
    }

    #[test]
    fn wait_cond_display_is_compact() {
        assert_eq!(
            WaitCond::FutureFill(0x9000).to_string(),
            "future-fill @0x9000"
        );
        assert_eq!(
            WaitCond::StreamData(StreamId(3)).to_string(),
            "stream-data sid=3"
        );
        assert_eq!(
            WaitCond::StreamSpace(StreamId(1)).to_string(),
            "stream-space sid=1"
        );
        let e = EngineId {
            tile: 2,
            level: EngineLevel::L2,
        };
        assert_eq!(
            WaitCond::EngineCtx(e).to_string(),
            format!("engine-ctx {e}")
        );
    }
}
