//! Fig. 5 — PHI: PageRank commutative scatter-updates.
//!
//! Paper: Leviathan 3.7×, tākō Relax 3.1×, tākō Fence 1.4×; Leviathan
//! −22% energy, within 1.3% of Ideal; 40% less NoC traffic than tākō.

use levi_workloads::phi::PhiWorkload;
use levi_workloads::Workload;

use crate::header;
use crate::runner::{report_figure, sweep_variants, Figure, RunCtx};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "fig05_phi",
    about: "PHI push-PageRank speedup/energy vs tako and Ideal (paper Fig. 5)",
    workloads: &["phi"],
    run,
};

fn run(ctx: &RunCtx) {
    let w = &PhiWorkload;
    let scale = w.scale(ctx.kind());
    header(
        "Fig. 5 — PHI (push PageRank, commutative scatter-updates)",
        &format!(
            "graph: {} vertices, ~{} edges (power-law in-degree), {} tiles, cache/{}x",
            scale.vertices,
            scale.vertices * scale.avg_degree,
            scale.tiles,
            scale.cache_factor
        ),
    );

    let outcomes = sweep_variants(w, &scale, ctx);
    report_figure(
        "fig05_phi",
        &outcomes,
        &[
            ("Baseline", Some(1.0), Some(1.0)),
            ("tako Fence", Some(1.4), Some(0.92)),
            ("tako Relax", Some(3.1), Some(0.88)),
            ("Leviathan", Some(3.7), Some(0.78)),
            ("Ideal", Some(3.75), Some(0.77)),
        ],
    );

    // Mechanism breakdown (Sec. IV-D) — skipped if `--filter` removed a
    // variant it compares against.
    let (Some(base), Some(tako), Some(lev), Some(ideal)) = (
        outcomes.get("Baseline"),
        outcomes.get("tako Relax"),
        outcomes.get("Leviathan"),
        outcomes.get("Ideal"),
    ) else {
        return;
    };
    crate::outln!();
    crate::outln!("mechanisms:");
    let (base_s, tako_s, lev_s) = (&base.metrics.stats, &tako.metrics.stats, &lev.metrics.stats);
    crate::outln!(
        "  fences:        baseline {:>9}   leviathan {:>9}  (offload eliminates fences)",
        base_s.fences,
        lev_s.fences
    );
    crate::outln!(
        "  line ping-pong: baseline {:>8}   leviathan {:>9}  (ownership transfers)",
        base_s.ownership_transfers,
        lev_s.ownership_transfers
    );
    let noc_cut = 1.0 - lev_s.noc_flit_hops as f64 / tako_s.noc_flit_hops as f64;
    crate::outln!(
        "  NoC traffic vs tako: -{:.0}%  (paper: -40%)",
        noc_cut * 100.0
    );
    let ideal_gap = lev.metrics.cycles as f64 / ideal.metrics.cycles as f64 - 1.0;
    crate::outln!(
        "  gap to idealized engine: {:.1}%  (paper: 1.3%)",
        ideal_gap * 100.0
    );
}
