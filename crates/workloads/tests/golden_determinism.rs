//! Golden determinism tests for the simulator refactor seam.
//!
//! Every value below was captured on `main` *before* `machine.rs` and
//! `hw.rs` were split into the layered `sched` / `core_pipe` /
//! `ndc_host` / `invoke` / `hw/{probe,directory,phantom,evict}` modules.
//! A simulated run is a pure function of its configuration and seed, so
//! these numbers pin the refactor to byte-identical behavior: any timing
//! or functional drift — an instruction issued one cycle late, a NACK
//! retried differently, a DRAM access added or lost — shows up as a
//! golden mismatch. If a future PR changes simulated behavior *on
//! purpose*, it must update these constants and say so in its changelog.

use levi_workloads::decompress::{run_decompress, DecompressScale, DecompressVariant};
use levi_workloads::gen::Graph;
use levi_workloads::hashtable::{run_hashtable, HtScale, HtVariant};
use levi_workloads::hats::{run_hats_on, HatsScale, HatsVariant};
use levi_workloads::phi::{phi_graph, run_phi_on, PhiScale, PhiVariant};

#[test]
fn hashtable_matches_pre_split_goldens() {
    let scale = HtScale::test(64);

    let base = run_hashtable(HtVariant::Baseline, &scale);
    assert_eq!(base.metrics.cycles, 86_024);
    assert_eq!(base.metrics.stats.dram_accesses, 1_730);
    assert_eq!(base.metrics.stats.noc_flit_hops, 13_260);
    assert_eq!(base.checksum, 63_343);

    let lev = run_hashtable(HtVariant::Leviathan, &scale);
    assert_eq!(lev.metrics.cycles, 60_614);
    assert_eq!(lev.metrics.stats.noc_flit_hops, 9_626);
    assert_eq!(lev.metrics.stats.invokes, 2_196);
    assert_eq!(lev.checksum, 63_343);
}

#[test]
fn phi_matches_pre_split_goldens() {
    let scale = PhiScale::test();
    let graph = phi_graph(&scale);

    let base = run_phi_on(PhiVariant::Baseline, &scale, &graph);
    assert_eq!(base.metrics.cycles, 1_091_156);
    assert_eq!(base.metrics.stats.dram_accesses, 25_816);
    assert_eq!(base.metrics.stats.noc_flit_hops, 328_695);
    assert_eq!(base.rank_checksum, 244_304_614);

    let lev = run_phi_on(PhiVariant::Leviathan, &scale, &graph);
    assert_eq!(lev.metrics.cycles, 329_176);
    assert_eq!(lev.metrics.stats.dram_accesses, 16_974);
    assert_eq!(lev.metrics.stats.noc_flit_hops, 135_363);
    assert_eq!(lev.rank_checksum, 244_304_614);
}

#[test]
fn decompress_matches_pre_split_goldens() {
    let scale = DecompressScale::test();
    let lev = run_decompress(DecompressVariant::Leviathan, &scale).unwrap();
    assert_eq!(lev.metrics.cycles, 25_825);
    assert_eq!(lev.metrics.stats.dram_accesses, 378);
    assert_eq!(lev.access_sum, 170_338_498);
}

#[test]
fn hats_matches_pre_split_goldens() {
    // The heaviest golden: every variant of the graph-traversal figure,
    // covering baseline cores, software BDFS, tākō-style callbacks, and
    // the full Leviathan stream pipeline in one run.
    let scale = HatsScale::test();
    let graph = Graph::community(
        scale.vertices,
        scale.avg_degree,
        scale.community,
        scale.intra_pct,
        scale.seed,
    );
    // (variant, cycles, dram accesses, noc flit-hops)
    let golden = [
        (HatsVariant::Baseline, 3_229_129, 83_246, 686_990),
        (HatsVariant::SoftwareBdfs, 2_313_171, 51_478, 423_599),
        (HatsVariant::Tako, 1_519_794, 43_285, 323_858),
        (HatsVariant::Leviathan, 1_452_257, 43_488, 324_275),
        (HatsVariant::Ideal, 1_450_137, 43_485, 324_523),
    ];
    for (v, cycles, dram, flits) in golden {
        let r = run_hats_on(v, &scale, &graph);
        let label = v.label();
        assert_eq!(r.metrics.cycles, cycles, "{label} cycles");
        assert_eq!(r.metrics.stats.dram_accesses, dram, "{label} dram");
        assert_eq!(r.metrics.stats.noc_flit_hops, flits, "{label} flits");
        assert_eq!(r.rank_checksum, 487_506_383, "{label} checksum");
        if matches!(v, HatsVariant::Tako | HatsVariant::Leviathan) {
            assert_eq!(r.metrics.stats.stream_pushes, 48_708, "{label} pushes");
        }
    }
}
