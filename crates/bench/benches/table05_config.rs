//! Thin wrapper: `cargo bench --bench table05_config` dispatches to the `table05_config`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run table05_config` executes identically.

fn main() {
    levi_bench::runner::bench_main("table05_config");
}
