//! Programs: validated collections of LevIR functions.

use std::fmt;

use crate::inst::Inst;

/// Identifies a function within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Returns the function index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifies a registered near-data *action*.
///
/// Actions are LevIR functions registered with the Leviathan runtime; an
/// [`Inst::Invoke`] names the action to execute on an
/// actor. The mapping from `ActionId` to `(Program, FuncId)` lives in the
/// runtime's action table, mirroring the engine's vtable map (Sec. VI-B2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(pub u32);

impl fmt::Debug for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A single LevIR function: a named, label-resolved instruction sequence.
#[derive(Clone, Debug)]
pub struct Function {
    name: String,
    insts: Vec<Inst>,
}

impl Function {
    pub(crate) fn new(name: String, insts: Vec<Inst>) -> Self {
        Function { name, insts }
    }

    /// The function's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function's instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions in the function.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Errors detected when finishing a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was created but never bound to a position.
    UnboundLabel {
        /// Function containing the unbound label.
        func: String,
        /// The label's index.
        label: u32,
    },
    /// A branch targets a label bound past the end of the function.
    LabelOutOfRange {
        /// Function containing the bad label.
        func: String,
        /// The label's index.
        label: u32,
    },
    /// A `call` targets a function id that does not exist.
    UnknownCallee {
        /// Function containing the call.
        func: String,
        /// The missing callee id.
        callee: u32,
    },
    /// A function does not end in `ret`, `halt`, or `jmp`, so execution
    /// would fall off its end.
    FallsOffEnd {
        /// The offending function.
        func: String,
    },
    /// A register index is out of range (≥ [`crate::NUM_REGS`]).
    BadRegister {
        /// The offending function.
        func: String,
        /// The register index used.
        reg: u8,
    },
    /// An `invoke` carries more arguments than the ABI allows.
    TooManyInvokeArgs {
        /// The offending function.
        func: String,
        /// How many arguments were supplied.
        count: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel { func, label } => {
                write!(f, "function `{func}`: label L{label} is never bound")
            }
            ProgramError::LabelOutOfRange { func, label } => {
                write!(f, "function `{func}`: label L{label} is out of range")
            }
            ProgramError::UnknownCallee { func, callee } => {
                write!(f, "function `{func}`: call to unknown function f{callee}")
            }
            ProgramError::FallsOffEnd { func } => {
                write!(
                    f,
                    "function `{func}` falls off its end (missing ret/halt/jmp)"
                )
            }
            ProgramError::BadRegister { func, reg } => {
                write!(f, "function `{func}`: register r{reg} out of range")
            }
            ProgramError::TooManyInvokeArgs { func, count } => {
                write!(f, "function `{func}`: invoke with {count} args (max 4)")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated LevIR program: an immutable set of functions with all labels
/// resolved and all cross-references checked.
///
/// Programs are cheap to share (`Arc<Program>` in the simulator) and are the
/// unit of code both core threads and near-data actions execute from.
#[derive(Clone, Debug, Default)]
pub struct Program {
    funcs: Vec<Function>,
}

impl Program {
    pub(crate) fn from_functions(funcs: Vec<Function>) -> Self {
        Program { funcs }
    }

    /// Looks up a function by id.
    ///
    /// # Panics
    /// Panics if `id` does not name a function in this program; `FuncId`s
    /// are only produced by this program's builder, so this indicates a bug.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Returns the function with the given diagnostic name, if any.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name() == name)
            .map(|i| FuncId(i as u32))
    }

    /// Iterates over `(id, function)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True if the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Total instruction count across all functions (static code size).
    pub fn total_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.len()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, func) in self.iter() {
            writeln!(f, "{id:?} <{}>:", func.name())?;
            for (pc, inst) in func.insts().iter().enumerate() {
                writeln!(f, "  {pc:4}: {inst}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {

    use crate::builder::ProgramBuilder;
    use crate::inst::Reg;

    #[test]
    fn func_lookup_by_name() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("alpha");
        f.ret();
        let alpha = f.finish();
        let mut g = pb.function("beta");
        g.halt();
        let beta = g.finish();
        let prog = pb.finish().unwrap();
        assert_eq!(prog.func_by_name("alpha"), Some(alpha));
        assert_eq!(prog.func_by_name("beta"), Some(beta));
        assert_eq!(prog.func_by_name("gamma"), None);
        assert_eq!(prog.len(), 2);
        assert_eq!(prog.total_insts(), 2);
    }

    #[test]
    fn display_disassembles() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(Reg(1), 42).ret();
        f.finish();
        let prog = pb.finish().unwrap();
        let text = prog.to_string();
        assert!(text.contains("<main>"));
        assert!(text.contains("imm   r1, 0x2a"));
    }
}
