// Debug: per-variant performance breakdown for PHI at test scale.
use levi_workloads::phi::*;

fn main() {
    let scale = PhiScale::test();
    let graph = phi_graph(&scale);
    for v in PhiVariant::all() {
        let r = run_phi_on(v, &scale, &graph);
        let s = &r.metrics.stats;
        println!(
            "{:<12} cyc={:>9} dram={:>7} noc_msg={:>8} noc_fh={:>8} inval={:>7} mc_hit={:>7} ctor={:>6} dtor={:>6} eng_i={:>8}",
            r.metrics.label, r.metrics.cycles, s.dram_accesses, s.noc_messages, s.noc_flit_hops,
            s.invalidations, s.mc_cache_hits,
            s.ctor_actions, s.dtor_actions, s.engine_instrs
        );
    }
}
