//! Thin wrapper: `cargo bench --bench micro_kernels` dispatches to the `micro_kernels`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run micro_kernels` executes identically.

fn main() {
    levi_bench::runner::bench_main("micro_kernels");
}
