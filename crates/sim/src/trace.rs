//! Structured event tracing with Chrome trace-event / Perfetto export.
//!
//! The [`Tracer`] is a categorized, ring-buffered recorder for the
//! simulator's microarchitectural events: the invoke lifecycle
//! (issue → NACK/dispatch → retire), coherence activity (invalidations,
//! ownership transfers), stream push/pop/stall, DRAM queueing, and NoC
//! messages. Recording is observational only — it never changes simulated
//! timing — and is branch-cheap when disabled: every hook passes a closure
//! that is not evaluated unless tracing is on.
//!
//! [`Tracer::to_chrome_json`] exports the buffer in the Chrome
//! trace-event JSON format, loadable in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`, with one process per tile and one thread track
//! per unit (core, L2 engine, LLC engine, NoC port) keyed by simulated
//! cycle (1 cycle = 1 µs on the viewer's timeline).

use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;

use crate::engine::{EngineId, EngineLevel};

/// Default ring-buffer capacity (events retained) when tracing is enabled.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Event category, mapped to the Chrome trace `cat` field so Perfetto can
/// filter tracks by subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceCategory {
    /// Task-offload lifecycle: issue, NACK, dispatch, retire.
    Invoke,
    /// Coherence traffic: invalidations, ownership transfers.
    Coherence,
    /// Stream push / pop / consumer stall.
    Stream,
    /// DRAM controller queueing and service.
    Dram,
    /// NoC message traversal.
    Noc,
    /// Injected-fault activity: refusals, backoff retries, squeezes,
    /// degradation, core fallback.
    Fault,
    /// Invoke-scheduler decisions: placement, NACKs, migrate-local.
    /// Opt-in via [`MachineConfig::trace_sched`](crate::MachineConfig)
    /// — off by default so traced runs stay byte-identical across
    /// versions.
    Sched,
    /// Causal invoke-lifecycle stage transitions (`span.issued`,
    /// `span.nacked`, `span.retried`, `span.enqueued`, `span.executing`,
    /// `span.responded`, `span.retired`), parent-linked by a `"span"`
    /// argument carrying the [`SpanId`](crate::span::SpanId). Opt-in via
    /// [`MachineConfig::trace_spans`](crate::MachineConfig) — gated
    /// separately from `trace` so default traced runs stay
    /// byte-identical across versions.
    Span,
}

impl TraceCategory {
    /// The category's name in exported traces.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceCategory::Invoke => "invoke",
            TraceCategory::Coherence => "coherence",
            TraceCategory::Stream => "stream",
            TraceCategory::Dram => "dram",
            TraceCategory::Noc => "noc",
            TraceCategory::Fault => "fault",
            TraceCategory::Sched => "sched",
            TraceCategory::Span => "span",
        }
    }
}

/// The hardware unit an event is attributed to (its track in the viewer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// A core on the given tile.
    Core(u32),
    /// An engine (tile + level).
    Engine(EngineId),
    /// The NoC injection port of the given tile.
    Noc(u32),
    /// A DRAM memory controller.
    Dram(u32),
}

impl Track {
    /// Chrome trace `(pid, tid)` for this track. Tiles are processes
    /// (pid = tile + 1); memory controllers share a synthetic "dram"
    /// process.
    fn pid_tid(self) -> (u32, u32) {
        match self {
            Track::Core(t) => (t + 1, 1),
            Track::Engine(EngineId {
                tile,
                level: EngineLevel::L2,
            }) => (tile + 1, 2),
            Track::Engine(EngineId {
                tile,
                level: EngineLevel::Llc,
            }) => (tile + 1, 3),
            Track::Noc(t) => (t + 1, 4),
            Track::Dram(mc) => (DRAM_PID, mc + 1),
        }
    }

    /// Thread-track label for metadata events.
    fn tid_name(self) -> String {
        match self {
            Track::Core(_) => "core".into(),
            Track::Engine(EngineId {
                level: EngineLevel::L2,
                ..
            }) => "engine.l2".into(),
            Track::Engine(EngineId {
                level: EngineLevel::Llc,
                ..
            }) => "engine.llc".into(),
            Track::Noc(_) => "noc".into(),
            Track::Dram(mc) => format!("mc{mc}"),
        }
    }
}

/// Synthetic process id for DRAM controller tracks.
const DRAM_PID: u32 = 9999;

/// Maximum key/value argument pairs per event.
pub const MAX_ARGS: usize = 3;

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event starts.
    pub cycle: u64,
    /// Duration in cycles; 0 renders as an instant event.
    pub dur: u64,
    /// Subsystem category.
    pub category: TraceCategory,
    /// Event name (static, e.g. `"invoke.issue"`).
    pub name: &'static str,
    /// The track the event belongs to.
    pub track: Track,
    /// Up to [`MAX_ARGS`] named arguments.
    args: [(&'static str, u64); MAX_ARGS],
    nargs: u8,
}

impl TraceEvent {
    /// Builds an instant event.
    ///
    /// # Panics
    /// Panics if more than [`MAX_ARGS`] arguments are given.
    pub fn instant(
        cycle: u64,
        category: TraceCategory,
        name: &'static str,
        track: Track,
        args: &[(&'static str, u64)],
    ) -> Self {
        Self::span(cycle, 0, category, name, track, args)
    }

    /// Builds a duration (span) event covering `[cycle, cycle + dur)`.
    ///
    /// # Panics
    /// Panics if more than [`MAX_ARGS`] arguments are given.
    pub fn span(
        cycle: u64,
        dur: u64,
        category: TraceCategory,
        name: &'static str,
        track: Track,
        args: &[(&'static str, u64)],
    ) -> Self {
        assert!(args.len() <= MAX_ARGS, "too many trace args");
        let mut a = [("", 0u64); MAX_ARGS];
        a[..args.len()].copy_from_slice(args);
        TraceEvent {
            cycle,
            dur,
            category,
            name,
            track,
            args: a,
            nargs: args.len() as u8,
        }
    }

    /// The event's named arguments.
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..self.nargs as usize]
    }

    /// The invoke span this event belongs to (its `"span"` argument), if
    /// any. Span-linked events are joined by flow arrows in
    /// [`Tracer::to_chrome_json`].
    pub fn span_arg(&self) -> Option<u64> {
        self.args()
            .iter()
            .find(|(k, _)| *k == "span")
            .map(|&(_, v)| v)
    }
}

/// The ring-buffered event recorder.
///
/// Disabled by default; when disabled, [`Tracer::record`] is a single
/// branch and the event-building closure is never evaluated.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Tracer {
    /// Creates a tracer. `capacity` bounds retained events; older events
    /// are dropped (and counted) once the ring is full.
    pub fn new(enabled: bool, capacity: usize) -> Self {
        Tracer {
            enabled,
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// True when events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records the event produced by `f` — only evaluated when enabled.
    #[inline]
    pub fn record(&mut self, f: impl FnOnce() -> TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(f());
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped from the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over buffered events in record order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Discards all buffered events (keeps the enabled state).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Exports the buffer as Chrome trace-event JSON (Perfetto-loadable).
    ///
    /// Instant events use phase `"i"` (thread scope), spans use complete
    /// events (`"X"`). Timestamps are simulated cycles interpreted as
    /// microseconds. Process/thread metadata names every tile and unit, so
    /// the viewer shows one group per tile with per-unit tracks.
    ///
    /// Events sharing a `"span"` argument (the invoke-lifecycle stage
    /// events; see [`crate::span`]) are additionally joined by flow
    /// events (`ph` `"s"`/`"t"`/`"f"` with `id` = span id), which
    /// Perfetto renders as arrows following each invoke from the issuing
    /// core across the NoC to its engine and back. Buffers with no
    /// span-linked events export exactly as before.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",");
        let _ = write!(out, "\"leviDroppedEvents\":{},", self.dropped);
        out.push_str("\"traceEvents\":[");

        // Metadata: name each (pid, tid) pair seen in the buffer.
        let tracks: BTreeSet<Track> = self.events.iter().map(|e| e.track).collect();
        let pids: BTreeSet<u32> = tracks.iter().map(|t| t.pid_tid().0).collect();
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
        };
        for pid in &pids {
            sep(&mut out);
            let name = if *pid == DRAM_PID {
                "dram".to_string()
            } else {
                format!("tile{}", pid - 1)
            };
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            );
        }
        for track in &tracks {
            let (pid, tid) = track.pid_tid();
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                track.tid_name()
            );
        }

        // Flow arrows need a start, zero or more steps, and an end: count
        // how many events carry each span id so the per-event pass knows
        // which flow phase to emit. Ids seen once get no flow events.
        let mut flow_total: levi_isa::fx::FxHashMap<u64, u32> = levi_isa::fx::FxHashMap::default();
        for e in &self.events {
            if let Some(id) = e.span_arg() {
                *flow_total.entry(id).or_insert(0) += 1;
            }
        }
        // Lookup-only (never iterated for output), so hash order is
        // unobservable and the fast hasher is safe here.
        let mut flow_seen: levi_isa::fx::FxHashMap<u64, u32> = levi_isa::fx::FxHashMap::default();

        for e in &self.events {
            let (pid, tid) = e.track.pid_tid();
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
                 \"ts\":{}",
                e.name,
                e.category.as_str(),
                e.cycle
            );
            if e.dur > 0 {
                let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", e.dur);
            } else {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            }
            if e.nargs > 0 {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\":{v}");
                }
                out.push('}');
            }
            out.push('}');

            // Attach this event to its span's flow at the same (pid, tid,
            // ts): "s" starts the flow, "t" continues it, "f" (binding to
            // the enclosing slice) ends it.
            if let Some(id) = e.span_arg() {
                let total = flow_total[&id];
                if total >= 2 {
                    let seen = flow_seen.entry(id).or_insert(0);
                    *seen += 1;
                    let ph = if *seen == 1 {
                        "s"
                    } else if *seen == total {
                        "f"
                    } else {
                        "t"
                    };
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"{ph}\",\"cat\":\"span.flow\",\"name\":\"invoke\",\
                         \"id\":{id},\"pid\":{pid},\"tid\":{tid},\"ts\":{}",
                        e.cycle
                    );
                    if ph == "f" {
                        out.push_str(",\"bp\":\"e\"");
                    }
                    out.push('}');
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Interns a deserialized event name, returning a `&'static str`.
///
/// Trace events carry `&'static str` names for zero-cost recording; a
/// snapshot round-trip has to rebuild them from owned strings. Distinct
/// names are leaked exactly once into a process-global registry, so the
/// leak is bounded by the (small, fixed) vocabulary of event names no
/// matter how many snapshots are restored.
fn intern(s: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut names = NAMES
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("name registry poisoned");
    if let Some(existing) = names.iter().find(|n| **n == s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    names.push(leaked);
    leaked
}

fn category_tag(c: TraceCategory) -> u8 {
    match c {
        TraceCategory::Invoke => 0,
        TraceCategory::Coherence => 1,
        TraceCategory::Stream => 2,
        TraceCategory::Dram => 3,
        TraceCategory::Noc => 4,
        TraceCategory::Fault => 5,
        TraceCategory::Sched => 6,
        TraceCategory::Span => 7,
    }
}

fn category_from(tag: u8) -> Result<TraceCategory, levi_isa::codec::CodecError> {
    Ok(match tag {
        0 => TraceCategory::Invoke,
        1 => TraceCategory::Coherence,
        2 => TraceCategory::Stream,
        3 => TraceCategory::Dram,
        4 => TraceCategory::Noc,
        5 => TraceCategory::Fault,
        6 => TraceCategory::Sched,
        7 => TraceCategory::Span,
        _ => return Err(levi_isa::codec::CodecError::Invalid("trace category")),
    })
}

impl Tracer {
    /// Serializes the event ring (see [`crate::snapshot`]).
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        use crate::snapshot::w_engine_id;
        w.bool(self.enabled);
        w.u64(self.capacity as u64);
        w.u64(self.dropped);
        w.u32(self.events.len() as u32);
        for e in &self.events {
            w.u64(e.cycle);
            w.u64(e.dur);
            w.u8(category_tag(e.category));
            w.str(e.name);
            match e.track {
                Track::Core(t) => {
                    w.u8(0);
                    w.u32(t);
                }
                Track::Engine(id) => {
                    w.u8(1);
                    w_engine_id(w, id);
                }
                Track::Noc(t) => {
                    w.u8(2);
                    w.u32(t);
                }
                Track::Dram(mc) => {
                    w.u8(3);
                    w.u32(mc);
                }
            }
            w.u8(e.nargs);
            for (name, val) in &e.args[..e.nargs as usize] {
                w.str(name);
                w.u64(*val);
            }
        }
    }

    /// Restores a tracer written by [`Tracer::snap_write`].
    pub(crate) fn snap_read(
        r: &mut levi_isa::codec::Reader,
    ) -> Result<Self, levi_isa::codec::CodecError> {
        use crate::snapshot::r_engine_id;
        use levi_isa::codec::CodecError;
        let enabled = r.bool()?;
        let capacity = (r.u64()? as usize).max(1);
        let dropped = r.u64()?;
        let n = r.count(20)?;
        let mut events = VecDeque::with_capacity(n);
        for _ in 0..n {
            let cycle = r.u64()?;
            let dur = r.u64()?;
            let category = category_from(r.u8()?)?;
            let name = intern(r.str()?);
            let track = match r.u8()? {
                0 => Track::Core(r.u32()?),
                1 => Track::Engine(r_engine_id(r)?),
                2 => Track::Noc(r.u32()?),
                3 => Track::Dram(r.u32()?),
                _ => return Err(CodecError::Invalid("trace track")),
            };
            let nargs = r.u8()?;
            if nargs as usize > MAX_ARGS {
                return Err(CodecError::Invalid("trace arg count"));
            }
            let mut args = [("", 0u64); MAX_ARGS];
            for a in args.iter_mut().take(nargs as usize) {
                *a = (intern(r.str()?), r.u64()?);
            }
            events.push_back(TraceEvent {
                cycle,
                dur,
                category,
                name,
                track,
                args,
                nargs,
            });
        }
        Ok(Tracer {
            enabled,
            capacity,
            events,
            dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, name: &'static str) -> TraceEvent {
        TraceEvent::instant(cycle, TraceCategory::Invoke, name, Track::Core(0), &[])
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::default();
        assert!(!t.enabled());
        t.record(|| panic!("closure must not run when disabled"));
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_buffers_events() {
        let mut t = Tracer::new(true, 16);
        t.record(|| ev(10, "a"));
        t.record(|| {
            TraceEvent::span(
                20,
                5,
                TraceCategory::Stream,
                "b",
                Track::Engine(EngineId {
                    tile: 2,
                    level: EngineLevel::Llc,
                }),
                &[("sid", 1), ("depth", 3)],
            )
        });
        assert_eq!(t.len(), 2);
        let evs: Vec<_> = t.events().collect();
        assert_eq!(evs[0].cycle, 10);
        assert_eq!(evs[1].dur, 5);
        assert_eq!(evs[1].args(), &[("sid", 1), ("depth", 3)]);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = Tracer::new(true, 4);
        for i in 0..10 {
            t.record(|| ev(i, "e"));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.events().next().unwrap().cycle, 6);
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Tracer::new(true, 16);
        t.record(|| ev(1, "invoke.issue"));
        t.record(|| {
            TraceEvent::span(
                2,
                7,
                TraceCategory::Dram,
                "dram.access",
                Track::Dram(1),
                &[("line", 42)],
            )
        });
        let json = t.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"invoke.issue\""));
        assert!(json.contains("\"cat\":\"invoke\""));
        assert!(json.contains("\"ph\":\"X\",\"dur\":7"));
        assert!(json.contains("\"args\":{\"line\":42}"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("tile0"));
        assert!(json.contains("\"dram\""));
        // Braces and brackets balance (cheap well-formedness check; no
        // string in the output contains braces).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn span_linked_events_emit_flow_arrows() {
        let mut t = Tracer::new(true, 16);
        let span_ev = |cycle, name: &'static str, track| {
            TraceEvent::instant(cycle, TraceCategory::Span, name, track, &[("span", 7)])
        };
        t.record(|| span_ev(10, "span.issued", Track::Core(0)));
        t.record(|| {
            span_ev(
                19,
                "span.executing",
                Track::Engine(EngineId {
                    tile: 2,
                    level: EngineLevel::Llc,
                }),
            )
        });
        t.record(|| span_ev(40, "span.responded", Track::Core(0)));
        // An unrelated singleton span id gets no flow events.
        t.record(|| {
            TraceEvent::instant(
                50,
                TraceCategory::Span,
                "span.issued",
                Track::Core(1),
                &[("span", 9)],
            )
        });
        let json = t.to_chrome_json();
        assert!(
            json.contains("\"ph\":\"s\",\"cat\":\"span.flow\""),
            "{json}"
        );
        assert!(
            json.contains("\"ph\":\"t\",\"cat\":\"span.flow\""),
            "{json}"
        );
        assert!(json.contains("\"bp\":\"e\""), "{json}");
        assert_eq!(json.matches("span.flow").count(), 3, "singleton skipped");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn spanless_export_has_no_flow_events() {
        let mut t = Tracer::new(true, 16);
        t.record(|| ev(1, "invoke.issue"));
        t.record(|| ev(2, "invoke.nack"));
        assert!(!t.to_chrome_json().contains("span.flow"));
    }

    #[test]
    fn empty_trace_is_valid_json_skeleton() {
        let t = Tracer::new(true, 4);
        let json = t.to_chrome_json();
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn clear_resets() {
        let mut t = Tracer::new(true, 2);
        t.record(|| ev(0, "a"));
        t.record(|| ev(1, "a"));
        t.record(|| ev(2, "a"));
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.enabled());
    }
}
