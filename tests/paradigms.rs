//! Cross-crate integration: all four NDC paradigms running together on
//! one Leviathan system — the paper's headline claim ("the first system
//! to support all paradigms", Sec. I).
//!
//! One system simultaneously hosts:
//! * a **task-offload** counter actor updated by `invoke`,
//! * a **long-lived** engine task summing an array in the background,
//! * a **data-triggered** Morph whose constructors materialize squares,
//! * a **stream** feeding a consumer thread.

use std::sync::Arc;

use levi_isa::{ActionId, Location, MemWidth, ProgramBuilder, Reg, RmwOp};
use levi_sim::{EngineLevel, MorphLevel};
use leviathan::{MorphSpec, StreamSpec, System, SystemConfig};

#[test]
fn all_four_paradigms_coexist() {
    let mut pb = ProgramBuilder::new();

    // Paradigm 1 — task offload: atomic add on a counter actor.
    let add_action = {
        let mut f = pb.function("add_action");
        let (actor, amt, old) = (Reg(0), Reg(1), Reg(2));
        f.rmw_relaxed(RmwOp::Add, old, actor, amt, MemWidth::B8);
        f.halt();
        f.finish()
    };

    // Paradigm 3 — data-triggered: ctor writes idx^2 into each phantom
    // object.
    let square_ctor = {
        let mut f = pb.function("square_ctor");
        let (obj, view, base, idx, v) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
        f.ld8(base, view, 0);
        f.sub(idx, obj, base);
        f.shri(idx, idx, 3);
        f.mul(v, idx, idx);
        f.st8(obj, 0, v);
        f.halt();
        f.finish()
    };

    // Paradigm 2 — long-lived: background sum of an array into a mailbox.
    let background_sum = {
        let mut f = pb.function("background_sum");
        let (src, n, dst, i, v, acc) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        f.imm(i, 0).imm(acc, 0);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.ld8(v, src, 0);
        f.add(acc, acc, v);
        f.addi(src, src, 8);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.st8(dst, 0, acc);
        f.halt();
        f.finish()
    };

    // Paradigm 4 — streaming: producer pushes 1..=n.
    let producer = {
        let mut f = pb.function("producer");
        let (handle, n, i) = (Reg(0), Reg(1), Reg(2));
        f.imm(i, 1);
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.bge_u(i, n, out);
        f.push(handle, i);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.halt();
        f.finish()
    };

    // The main thread exercises offload + morph reads + stream consumption.
    let main_fn = {
        let mut f = pb.function("main");
        // r0=ctx {counter, morph_base, stream_buffer, cap, out, stream_id}
        let ctx = Reg(0);
        let (counter, mbase, sbuf, cap, out, sid) =
            (Reg(8), Reg(9), Reg(10), Reg(11), Reg(12), Reg(13));
        let (i, n, amt, addr, v, acc) = (Reg(16), Reg(17), Reg(18), Reg(19), Reg(20), Reg(21));
        f.ld8(counter, ctx, 0)
            .ld8(mbase, ctx, 8)
            .ld8(sbuf, ctx, 16)
            .ld8(cap, ctx, 24)
            .ld8(out, ctx, 32)
            .ld8(sid, ctx, 40);
        // 1) 50 offloaded increments.
        f.imm(i, 0).imm(n, 50).imm(amt, 1);
        let t1 = f.label();
        let d1 = f.label();
        f.bind(t1);
        f.bge_u(i, n, d1);
        f.invoke(counter, ActionId(0), &[amt], Location::Remote);
        f.addi(i, i, 1);
        f.jmp(t1);
        f.bind(d1);
        // 2) read 32 phantom squares, accumulate.
        f.imm(i, 0).imm(n, 32).imm(acc, 0);
        let t2 = f.label();
        let d2 = f.label();
        f.bind(t2);
        f.bge_u(i, n, d2);
        f.muli(addr, i, 8);
        f.add(addr, addr, mbase);
        f.ld8(v, addr, 0);
        f.add(acc, acc, v);
        f.addi(i, i, 1);
        f.jmp(t2);
        f.bind(d2);
        f.st8(out, 0, acc);
        // 3) consume 20 stream entries.
        f.imm(i, 0).imm(n, 20).imm(acc, 0);
        let t3 = f.label();
        let d3 = f.label();
        let nowrap = f.label();
        f.mov(addr, sbuf);
        f.muli(cap, cap, 8);
        f.add(cap, cap, sbuf); // cap := bound
        f.bind(t3);
        f.bge_u(i, n, d3);
        f.ld8(v, addr, 0);
        f.pop(sid);
        f.add(acc, acc, v);
        f.addi(addr, addr, 8);
        f.blt_u(addr, cap, nowrap);
        f.mov(addr, sbuf);
        f.bind(nowrap);
        f.addi(i, i, 1);
        f.jmp(t3);
        f.bind(d3);
        f.st8(out, 8, acc);
        f.halt();
        f.finish()
    };
    let prog = Arc::new(pb.finish().expect("programs validate"));

    let mut sys = System::try_new(SystemConfig::small()).expect("small config is valid");
    let a_add = sys.register_action(&prog, add_action);
    assert_eq!(a_add, ActionId(0));
    let a_ctor = sys.register_action(&prog, square_ctor);

    // Offload target.
    let counter = sys.alloc_raw(8, 8);
    // Morph of 64 u64 squares.
    let morph =
        sys.register_morph(&MorphSpec::new("squares", 8, 64, MorphLevel::Llc).with_ctor(a_ctor));
    sys.write_u64(morph.view, morph.actors.base);
    // Long-lived background sum.
    let src = sys.alloc_raw(8 * 16, 64);
    for k in 0..16u64 {
        sys.write_u64(src + 8 * k, k + 1);
    }
    let mailbox = sys.alloc_raw(8, 8);
    sys.spawn_long_lived(
        1,
        EngineLevel::Llc,
        &prog,
        background_sum,
        &[src, 16, mailbox],
    );
    // Stream.
    let stream = sys
        .create_stream(&StreamSpec::new("nums", 8, 0, &prog, producer).with_args(&[64]))
        .unwrap();

    // Main thread context.
    let out = sys.alloc_raw(16, 64);
    let ctx = sys.alloc_raw(48, 64);
    sys.write_u64(ctx, counter);
    sys.write_u64(ctx + 8, morph.actors.base);
    sys.write_u64(ctx + 16, stream.buffer);
    sys.write_u64(ctx + 24, stream.capacity);
    sys.write_u64(ctx + 32, out);
    sys.write_u64(ctx + 40, stream.reg_value());
    sys.spawn_thread(0, &prog, main_fn, &[ctx]).unwrap();

    sys.run().expect("no deadlock across paradigms");

    // Task offload: 50 increments landed.
    assert_eq!(sys.read_u64(counter), 50);
    // Data-triggered: sum of squares 0^2..31^2.
    let expect: u64 = (0..32u64).map(|i| i * i).sum();
    assert_eq!(sys.read_u64(out), expect);
    // Streaming: sum of 1..=20.
    assert_eq!(sys.read_u64(out + 8), (1..=20u64).sum());
    // Long-lived: background sum of 1..=16.
    assert_eq!(sys.read_u64(mailbox), (1..=16u64).sum());

    // All paradigms left fingerprints in the stats.
    let s = sys.stats();
    assert!(s.invokes >= 50);
    assert!(s.ctor_actions > 0);
    assert!(s.stream_pushes >= 20);
    assert!(s.engine_instrs > 0);
}
