//! Ablation — PHI's delta-eviction policy (DESIGN.md §4).
//!
//! The paper's PHI "dynamically chooses the policy that minimizes memory
//! bandwidth" between applying binned deltas in place and logging them for
//! later. We expose both: `InPlace` applies memory-side at eviction; `Log`
//! appends to bank-local streaming-store logs and runs a
//! propagation-blocking binning pass.

use levi_workloads::phi::{PhiPolicy, PhiVariant, PhiWorkload};
use levi_workloads::Workload;

use crate::runner::{Figure, RunCtx};
use crate::{header, table_report, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "ablation_phi_policy",
    about: "PHI delta-eviction policy ablation: in-place vs log + binning",
    workloads: &["phi"],
    run,
};

fn run(ctx: &RunCtx) {
    let w = &PhiWorkload;
    let scale = w.scale(ctx.kind());
    header(
        "Ablation — PHI delta-eviction policy (in-place vs log)",
        "paper Sec. IV-A: PHI chooses the policy minimizing memory bandwidth",
    );
    let graph = w.build_input(&scale);
    let jobs: Vec<(&str, _)> = [
        (
            "baseline (no PHI)",
            (PhiVariant::Baseline, PhiPolicy::InPlace),
        ),
        (
            "in-place (mem-side)",
            (PhiVariant::Leviathan, PhiPolicy::InPlace),
        ),
        ("log + binning", (PhiVariant::Leviathan, PhiPolicy::Log)),
    ]
    .into_iter()
    .collect();
    let env = &ctx.env;
    let graph_ref = &graph;
    let scale_ref = &scale;
    let results = Sweep::new().variants(jobs).run(|name, &(variant, policy)| {
        let mut s = scale_ref.clone();
        s.policy = policy;
        let o = w.run(variant, &s, graph_ref, env).expect_done(name);
        // The policy may only change timing, never results.
        assert_eq!(
            o.checksum,
            w.golden(variant, &s, graph_ref),
            "{name} diverged from the golden model"
        );
        o
    });
    let base = &results[0].1;
    let mut rows = vec![vec![
        "baseline (no PHI)".into(),
        "1.00x".into(),
        base.metrics.stats.dram_accesses.to_string(),
        "100%".into(),
    ]];
    for (name, o) in &results[1..] {
        crate::progressln!("  ran {name}");
        rows.push(vec![
            name.to_string(),
            format!(
                "{:.2}x",
                base.metrics.cycles as f64 / o.metrics.cycles as f64
            ),
            o.metrics.stats.dram_accesses.to_string(),
            format!(
                "{:.0}%",
                o.metrics.energy.relative_to(&base.metrics.energy) * 100.0
            ),
        ]);
    }
    table_report(
        "ablation_phi_policy",
        &["policy", "speedup", "DRAM accesses", "energy"],
        &rows,
    );
}
