//! Fig. 20 — HATS: decoupled BDFS graph traversal (one PageRank
//! iteration on a community-structured graph).
//!
//! Paper: software BDFS 1.2×, tākō 1.4×, Leviathan 1.7× (≈ Ideal),
//! −26% energy.

use levi_workloads::hats::HatsWorkload;
use levi_workloads::Workload;

use crate::header;
use crate::runner::{report_figure, sweep_variants, Figure, RunCtx};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "fig20_hats",
    about: "HATS decoupled-BDFS speedup/energy vs SW BDFS and tako (paper Fig. 20)",
    workloads: &["hats"],
    run,
};

fn run(ctx: &RunCtx) {
    let w = &HatsWorkload;
    let scale = w.scale(ctx.kind());
    header(
        "Fig. 20 — HATS (decoupled BDFS streaming, 1 PageRank iteration)",
        &format!(
            "{} vertices, ~{} edges, communities of {} ({}% intra), {} tiles",
            scale.vertices,
            scale.vertices * scale.avg_degree,
            scale.community,
            scale.intra_pct,
            scale.tiles
        ),
    );

    let outcomes = sweep_variants(w, &scale, ctx);
    report_figure(
        "fig20_hats",
        &outcomes,
        &[
            ("Baseline", Some(1.0), Some(1.0)),
            ("SW BDFS", Some(1.2), None),
            ("tako", Some(1.4), None),
            ("Leviathan", Some(1.7), Some(0.74)),
            ("Ideal", Some(1.71), None),
        ],
    );
}
