//! The repetition engine: warmup + measured repetitions grouped into
//! rounds, with robust statistics.
//!
//! Wall-clock benchmarks on a multi-tasking host are noisy; a single
//! number is worthless and a mean is fragile. Every benchmark here runs
//! `rounds × reps` measured repetitions (after warmup) and reports the
//! median, the median absolute deviation (MAD), the minimum, and one
//! median *per round* — the per-round medians are what regression gating
//! compares, so a regression must be confirmed by every round before it
//! counts (see `levi-bench perf compare`).
//!
//! Per-rep samples are also bucketed into the simulator's own log2
//! [`Histogram`] (re-exported by this crate), so host-time distributions
//! use the same machinery as simulated-latency distributions.

use levi_sim::{Histogram, PhaseProfile};
use std::time::Instant;

/// Repetition counts for one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct BenchOpts {
    /// Unmeasured warmup repetitions before any round.
    pub warmup: u32,
    /// Measurement rounds (each yields one gating median).
    pub rounds: u32,
    /// Measured repetitions per round.
    pub reps: u32,
}

impl BenchOpts {
    /// The full-fidelity default: 2 warmup, 3 rounds × 5 reps.
    pub fn full() -> Self {
        BenchOpts {
            warmup: 2,
            rounds: 3,
            reps: 5,
        }
    }

    /// Reduced counts for smoke runs: 1 warmup, 2 rounds × 3 reps.
    pub fn quick() -> Self {
        BenchOpts {
            warmup: 1,
            rounds: 2,
            reps: 3,
        }
    }

    /// Total measured repetitions.
    pub fn total_reps(&self) -> u32 {
        self.rounds * self.reps
    }
}

/// What one benchmark measured.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Stable benchmark id (`micro/cache_probe_hit`, `macro/phi`, ...).
    pub id: String,
    /// `"micro"` or `"macro"`.
    pub kind: &'static str,
    /// Unit of the value fields (`"ns/iter"` for micro, `"ns/run"` for
    /// macro).
    pub unit: &'static str,
    /// Median over all measured reps.
    pub median: f64,
    /// Median absolute deviation over all measured reps.
    pub mad: f64,
    /// Fastest rep (the least-noise estimate).
    pub min: f64,
    /// Mean over all measured reps.
    pub mean: f64,
    /// One median per round, in run order (regression gating compares
    /// these against the baseline median).
    pub rounds: Vec<f64>,
    /// Simulated cycles per rep (macro benches; 0 for micro).
    pub sim_cycles: u64,
    /// Simulated kilocycles per host second (macro benches; 0 for micro).
    pub kips: f64,
    /// Host-time phase attribution summed over measured reps (empty
    /// unless the `self-profile` feature is on).
    pub phases: PhaseProfile,
    /// Per-rep nanoseconds in the simulator's log2 buckets.
    pub hist: Histogram,
}

impl Measurement {
    fn from_samples(
        id: &str,
        kind: &'static str,
        unit: &'static str,
        samples: &[f64],
        reps_per_round: u32,
    ) -> Self {
        assert!(!samples.is_empty(), "benchmark {id} produced no samples");
        let med = median(samples);
        let mut hist = Histogram::new();
        for &s in samples {
            hist.record(s.max(0.0) as u64);
        }
        let rounds: Vec<f64> = samples
            .chunks(reps_per_round.max(1) as usize)
            .map(median)
            .collect();
        Measurement {
            id: id.to_string(),
            kind,
            unit,
            median: med,
            mad: median_abs_deviation(samples, med),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            rounds,
            sim_cycles: 0,
            kips: 0.0,
            phases: PhaseProfile::default(),
            hist,
        }
    }
}

/// Median of a sample set (mean of the middle two for even counts).
///
/// # Panics
/// Panics on an empty slice or NaN samples.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of no samples");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation around `center`: the robust spread estimate
/// used instead of a standard deviation (one slow outlier rep must not
/// inflate it).
pub fn median_abs_deviation(xs: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = xs.iter().map(|x| (x - center).abs()).collect();
    median(&devs)
}

/// Times `f` over `iters` iterations per batch, returning the median
/// per-iteration nanoseconds over a fixed number of batches.
///
/// This is the compatibility core behind
/// `levi_bench::micro_timers::median_ns` — one batch is one "rep" of the
/// engine above with `BenchOpts { warmup: 0, rounds: 1, reps: 7 }` plus
/// the historical `iters.min(1000)`-call warmup.
pub fn median_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    const BATCHES: usize = 7;
    for _ in 0..iters.min(1000) {
        f();
    }
    let samples: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    median(&samples)
}

/// Runs a micro-benchmark: each rep is one timed batch of `iters` calls
/// to `f`; the value is nanoseconds per iteration.
pub fn bench_micro(id: &str, opts: BenchOpts, iters: u64, mut f: impl FnMut()) -> Measurement {
    for _ in 0..iters.min(1000) {
        f();
    }
    let mut batch = || {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    for _ in 0..opts.warmup {
        batch();
    }
    let samples: Vec<f64> = (0..opts.total_reps()).map(|_| batch()).collect();
    Measurement::from_samples(id, "micro", "ns/iter", &samples, opts.reps)
}

/// One rep of a macro benchmark: the simulated cycles it covered plus the
/// phase profile its run drained into `Stats` (see
/// [`levi_sim::Stats::host_phases`]).
#[derive(Clone, Debug, Default)]
pub struct RepOutcome {
    /// Simulated cycles this rep executed.
    pub sim_cycles: u64,
    /// Phase attribution for this rep.
    pub phases: PhaseProfile,
}

/// Runs a macro benchmark: each rep is one call to `f` (a complete
/// simulated run); the value is nanoseconds per run. Fills in
/// [`Measurement::sim_cycles`], [`Measurement::kips`], and the summed
/// phase breakdown.
pub fn bench_macro(id: &str, opts: BenchOpts, mut f: impl FnMut() -> RepOutcome) -> Measurement {
    for _ in 0..opts.warmup {
        f();
    }
    let mut samples = Vec::with_capacity(opts.total_reps() as usize);
    let mut phases = PhaseProfile::default();
    let mut total_cycles = 0u64;
    let mut last_cycles = 0u64;
    for _ in 0..opts.total_reps() {
        let start = Instant::now();
        let rep = f();
        samples.push(start.elapsed().as_nanos() as f64);
        phases.merge(&rep.phases);
        total_cycles += rep.sim_cycles;
        last_cycles = rep.sim_cycles;
    }
    let mut m = Measurement::from_samples(id, "macro", "ns/run", &samples, opts.reps);
    m.sim_cycles = last_cycles;
    let total_ns: f64 = samples.iter().sum();
    if total_ns > 0.0 {
        // Simulated kilocycles per host second over the measured reps.
        m.kips = total_cycles as f64 / (total_ns / 1e9) / 1e3;
    }
    m.phases = phases;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        // One huge outlier moves the mean but not median/MAD.
        let xs = [10.0, 11.0, 10.5, 9.5, 1000.0];
        let med = median(&xs);
        assert_eq!(med, 10.5);
        assert!(median_abs_deviation(&xs, med) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn median_rejects_empty() {
        median(&[]);
    }

    #[test]
    fn micro_bench_produces_consistent_stats() {
        let opts = BenchOpts {
            warmup: 1,
            rounds: 2,
            reps: 3,
        };
        let mut acc = 0u64;
        let m = bench_micro("micro/test", opts, 1000, || {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(acc);
        });
        assert_eq!(m.kind, "micro");
        assert_eq!(m.unit, "ns/iter");
        assert_eq!(m.rounds.len(), 2);
        assert_eq!(m.hist.count(), u64::from(opts.total_reps()));
        assert!(m.min > 0.0 && m.min <= m.median, "{m:?}");
        assert!(m.median <= m.mean * 10.0, "{m:?}");
        assert_eq!(m.sim_cycles, 0);
        assert_eq!(m.kips, 0.0);
    }

    #[test]
    fn macro_bench_computes_kips() {
        let opts = BenchOpts {
            warmup: 0,
            rounds: 1,
            reps: 2,
        };
        let m = bench_macro("macro/test", opts, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            RepOutcome {
                sim_cycles: 1_000_000,
                phases: PhaseProfile::default(),
            }
        });
        assert_eq!(m.kind, "macro");
        assert_eq!(m.sim_cycles, 1_000_000);
        // 1M cycles in ~2ms ≈ 500,000 KIPS; allow a wide band.
        assert!(m.kips > 1_000.0 && m.kips < 5_000_000.0, "{}", m.kips);
        assert_eq!(m.rounds.len(), 1);
    }

    #[test]
    fn median_ns_times_a_cheap_kernel() {
        let mut x = 0u64;
        let ns = median_ns(10_000, || {
            x = x.wrapping_add(std::hint::black_box(3));
        });
        assert!((0.0..1e6).contains(&ns), "{ns}");
    }
}
