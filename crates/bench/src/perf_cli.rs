//! The `levi-bench perf` subcommands: host-performance tracking and
//! regression gating on top of the `levi-perf` measurement harness.
//!
//! * `perf run` — measure the suite and write the machine-readable
//!   report (see `levi_perf::report`), optionally also as a dated
//!   `BENCH_<date>.json` trajectory file.
//! * `perf accept` — promote a report to a baseline file (the committed
//!   `perf/baseline.json` is the developer-facing trajectory anchor).
//! * `perf compare` — gate a report against a baseline with a
//!   noise-aware threshold: a benchmark counts as regressed only when its
//!   overall median *and every per-round median* exceed the baseline
//!   median by more than the threshold, so one noisy rep or round cannot
//!   fail a build. Exits nonzero iff a regression is confirmed.
//!
//! Wall-clock numbers are machine-specific: comparing against a baseline
//! from different hardware measures the hardware, not the code. CI
//! therefore gates machine-locally (run → accept → run → compare in one
//! job); the committed baseline serves same-machine development. Reports
//! record their configuration (`quick`, `profiled`) and `compare` refuses
//! mismatched pairs.

use crate::json::{parse, Json};
use levi_perf::{render_report, report_json, run_suite, PerfCfg};

/// Default baseline location (committed to the repository).
pub const DEFAULT_BASELINE: &str = "perf/baseline.json";

/// Default regression threshold, in percent over the baseline median.
pub const DEFAULT_THRESHOLD: f64 = 20.0;

fn fail(msg: &str) -> ! {
    eprintln!("levi-bench: perf: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!("usage: levi-bench perf <run|compare|accept|trajectory> [options]");
    eprintln!();
    eprintln!("  perf run [--quick] [--json PATH] [--trajectory DIR]");
    eprintln!("           [--filter SUBSTR] [--rounds N] [--reps N] [--warmup N]");
    eprintln!("      measure the suite; print a summary, write the JSON report");
    eprintln!("  perf accept REPORT [--baseline PATH]");
    eprintln!("      promote a report file to the baseline (default {DEFAULT_BASELINE})");
    eprintln!("  perf compare REPORT [--baseline PATH] [--threshold PCT]");
    eprintln!("      gate REPORT against the baseline; exit nonzero on a");
    eprintln!("      regression confirmed by every measurement round");
    eprintln!("  perf trajectory DIR");
    eprintln!("      validate the BENCH_*.json history in DIR: names, JSON,");
    eprintln!("      and chronological order");
    std::process::exit(2);
}

/// Entry point for `levi-bench perf ...`.
pub fn cmd_perf(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("accept") => cmd_accept(&args[1..]),
        Some("trajectory") => cmd_trajectory(&args[1..]),
        _ => usage(),
    }
}

/// `perf trajectory DIR`: validates the committed trajectory history.
/// Every `BENCH_*.json` in DIR must have a well-formed dated name, parse
/// as a perf report with at least one benchmark, and the files must be
/// chronological in lexicographic filename order (which the `_N`
/// same-day suffix preserves). Exits nonzero on any violation, so CI
/// can gate the committed `perf/` directory.
fn cmd_trajectory(args: &[String]) {
    let [dir] = args else {
        fail("trajectory takes exactly one directory");
    };
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| fail(&format!("{dir}: {e}")))
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    if names.is_empty() {
        fail(&format!("{dir}: no BENCH_*.json trajectory files"));
    }
    names.sort();
    let mut prev: Option<(String, u64, String)> = None;
    for name in &names {
        let stamp = trajectory_stamp(name)
            .unwrap_or_else(|| fail(&format!("{name}: not BENCH_<YYYY-MM-DD>[_N].json")));
        if let Some((pd, ps, pn)) = &prev {
            if stamp <= (pd.clone(), *ps) {
                fail(&format!("{name}: not chronologically after {pn}"));
            }
        }
        let path = format!("{dir}/{name}");
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        let doc =
            parse(text.trim()).unwrap_or_else(|e| fail(&format!("{path}: invalid JSON: {e}")));
        let (_, _, benches) = extract(&doc, name).unwrap_or_else(|e| fail(&e));
        if benches.is_empty() {
            fail(&format!("{path}: empty benchmark list"));
        }
        println!("{name}: ok ({} benchmarks)", benches.len());
        prev = Some((stamp.0, stamp.1, name.clone()));
    }
    println!("trajectory {dir}: {} point(s), chronological", names.len());
}

/// Parses `BENCH_<YYYY-MM-DD>[_N].json` into its `(date, sequence)`
/// ordering key; `None` if the name is malformed.
fn trajectory_stamp(name: &str) -> Option<(String, u64)> {
    let core = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
    let (date, seq) = match core.split_once('_') {
        Some((d, n)) => (d, n.parse::<u64>().ok().filter(|&n| n >= 2)?),
        None => (core, 1),
    };
    let b = date.as_bytes();
    let digits = |r: std::ops::Range<usize>| b[r].iter().all(u8::is_ascii_digit);
    if b.len() != 10 || !digits(0..4) || b[4] != b'-' || !digits(5..7) || b[7] != b'-' {
        return None;
    }
    if !digits(8..10) {
        return None;
    }
    Some((date.to_string(), seq))
}

fn parse_u32(flag: &str, s: &str) -> u32 {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("{flag}: bad count {s:?}")))
}

fn cmd_run(args: &[String]) {
    let mut cfg = PerfCfg::default();
    let mut json: Option<String> = None;
    let mut trajectory: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--json" => json = Some(value("--json")),
            "--trajectory" => trajectory = Some(value("--trajectory")),
            "--filter" => cfg.filter = Some(value("--filter")),
            "--rounds" => cfg.rounds = Some(parse_u32("--rounds", &value("--rounds"))),
            "--reps" => cfg.reps = Some(parse_u32("--reps", &value("--reps"))),
            "--warmup" => cfg.warmup = Some(parse_u32("--warmup", &value("--warmup"))),
            other => fail(&format!("unknown perf run option {other}")),
        }
    }

    let benches = run_suite(&cfg);
    if benches.is_empty() {
        fail("no benchmark matched the filter");
    }
    print!("{}", render_report(&benches));
    let doc = report_json(&benches, cfg.quick, cfg.opts());
    if let Some(path) = &json {
        std::fs::write(path, format!("{doc}\n"))
            .unwrap_or_else(|e| fail(&format!("--json {path}: {e}")));
        println!("report written to {path}");
    }
    if let Some(dir) = &trajectory {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| fail(&format!("--trajectory {dir}: {e}")));
        let path = trajectory_file(dir, &today());
        std::fs::write(&path, format!("{doc}\n"))
            .unwrap_or_else(|e| fail(&format!("--trajectory {path}: {e}")));
        println!("trajectory written to {path}");
    }
}

/// Picks the trajectory filename for `date`, avoiding collisions: the
/// first run of a day writes `BENCH_<date>.json`, later runs write
/// `BENCH_<date>_2.json`, `_3.json`, … instead of clobbering the earlier
/// point. The `_N` suffix sorts after the bare name, so lexicographic
/// filename order stays chronological (which `perf trajectory` checks).
fn trajectory_file(dir: &str, date: &str) -> String {
    let bare = format!("{dir}/BENCH_{date}.json");
    if !std::path::Path::new(&bare).exists() {
        return bare;
    }
    (2..)
        .map(|n| format!("{dir}/BENCH_{date}_{n:02}.json"))
        .find(|p| !std::path::Path::new(p).exists())
        .unwrap()
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days conversion; the
/// workspace has no date dependency).
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to (year, month, day), Gregorian calendar.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn cmd_accept(args: &[String]) {
    let mut report: Option<String> = None;
    let mut baseline = DEFAULT_BASELINE.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = it
                    .next()
                    .unwrap_or_else(|| fail("--baseline needs a value"))
                    .clone();
            }
            other if other.starts_with('-') => fail(&format!("unknown perf accept option {other}")),
            other => {
                if report.replace(other.to_string()).is_some() {
                    fail("accept takes one report path");
                }
            }
        }
    }
    let Some(report) = report else {
        fail("accept needs a report path (from 'perf run --json')");
    };
    let text = std::fs::read_to_string(&report).unwrap_or_else(|e| fail(&format!("{report}: {e}")));
    // Validate before promoting: a baseline that does not parse would
    // break every future compare.
    let doc = parse(text.trim()).unwrap_or_else(|e| fail(&format!("{report}: invalid JSON: {e}")));
    if doc.get("perf_report").is_none() {
        fail(&format!("{report}: not a perf report (no \"perf_report\")"));
    }
    if let Some(dir) = std::path::Path::new(&baseline).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(&format!("{}: {e}", dir.display())));
        }
    }
    std::fs::write(&baseline, &text).unwrap_or_else(|e| fail(&format!("{baseline}: {e}")));
    println!("baseline {baseline} accepted from {report}");
}

fn cmd_compare(args: &[String]) {
    let mut report: Option<String> = None;
    let mut baseline = DEFAULT_BASELINE.to_string();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--baseline" => baseline = value("--baseline"),
            "--threshold" => {
                let s = value("--threshold");
                threshold = s
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--threshold: bad percent {s:?}")));
                if !(0.0..=1000.0).contains(&threshold) {
                    fail("--threshold: percent out of range");
                }
            }
            other if other.starts_with('-') => {
                fail(&format!("unknown perf compare option {other}"))
            }
            other => {
                if report.replace(other.to_string()).is_some() {
                    fail("compare takes one report path");
                }
            }
        }
    }
    let Some(report) = report else {
        fail("compare needs a report path (from 'perf run --json')");
    };
    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        parse(text.trim()).unwrap_or_else(|e| fail(&format!("{path}: invalid JSON: {e}")))
    };
    let cur = load(&report);
    let base = load(&baseline);

    let deltas = match compare_reports(&cur, &base, threshold) {
        Ok(d) => d,
        Err(e) => fail(&e),
    };
    println!(
        "{:<28} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline", "current", "delta"
    );
    let mut regressed = 0usize;
    for d in &deltas {
        let (delta, verdict) = match d.verdict {
            Verdict::New => ("-".to_string(), "new (no baseline)"),
            Verdict::Gone => ("-".to_string(), "gone (baseline only)"),
            Verdict::Regressed => {
                regressed += 1;
                (format!("{:+.1}%", d.delta_pct), "REGRESSED")
            }
            Verdict::Improved => (format!("{:+.1}%", d.delta_pct), "improved"),
            Verdict::Ok => (format!("{:+.1}%", d.delta_pct), "ok"),
        };
        println!(
            "{:<28} {:>12} {:>12} {:>8}  {verdict}",
            d.id,
            fmt_ns(d.base_median),
            fmt_ns(d.cur_median),
            delta
        );
    }
    if regressed > 0 {
        fail(&format!(
            "{regressed} benchmark(s) regressed by more than {threshold}% \
             (confirmed across every round)"
        ));
    }
    println!("perf compare OK: no regression beyond {threshold}% (baseline {baseline})");
}

fn fmt_ns(v: f64) -> String {
    if v < 0.0 {
        "-".into()
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{v:.1}ns")
    }
}

/// Comparison verdict for one benchmark id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within the threshold band.
    Ok,
    /// Median improved by more than the threshold.
    Improved,
    /// Median *and every round* regressed beyond the threshold.
    Regressed,
    /// Present only in the current report.
    New,
    /// Present only in the baseline.
    Gone,
}

/// One row of a comparison.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Benchmark id (the join key).
    pub id: String,
    /// Baseline median (ns), negative when absent.
    pub base_median: f64,
    /// Current median (ns), negative when absent.
    pub cur_median: f64,
    /// Median delta in percent of the baseline (0 when either is absent).
    pub delta_pct: f64,
    /// The verdict.
    pub verdict: Verdict,
}

struct BenchEntry {
    id: String,
    median: f64,
    rounds: Vec<f64>,
}

fn extract(doc: &Json, which: &str) -> Result<(bool, bool, Vec<BenchEntry>), String> {
    let rep = doc
        .get("perf_report")
        .ok_or_else(|| format!("{which}: not a perf report (no \"perf_report\")"))?;
    let flag = |key: &str| match rep.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("{which}: perf_report has no boolean {key:?}")),
    };
    let quick = flag("quick")?;
    let profiled = flag("profiled")?;
    let benches = rep
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{which}: perf_report has no benches array"))?;
    let mut out = Vec::new();
    for b in benches {
        let id = b
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{which}: bench without id"))?
            .to_string();
        let median = b
            .get("median")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{which}: bench {id} without median"))?;
        let rounds = b
            .get("rounds")
            .and_then(Json::as_arr)
            .map(|items| items.iter().filter_map(Json::as_num).collect())
            .unwrap_or_default();
        out.push(BenchEntry { id, median, rounds });
    }
    Ok((quick, profiled, out))
}

/// Compares a current report against a baseline with a noise-aware
/// threshold (percent over the baseline median). Pure logic, exercised by
/// unit tests; the CLI handles I/O and exit codes.
///
/// # Errors
/// Returns an error when either document is not a perf report or their
/// configurations (`quick`, `profiled`) differ — mixed-mode numbers are
/// not comparable.
pub fn compare_reports(
    current: &Json,
    baseline: &Json,
    threshold_pct: f64,
) -> Result<Vec<Delta>, String> {
    let (cq, cp, cur) = extract(current, "report")?;
    let (bq, bp, base) = extract(baseline, "baseline")?;
    if cq != bq || cp != bp {
        return Err(format!(
            "configuration mismatch: report is quick={cq}/profiled={cp}, \
             baseline is quick={bq}/profiled={bp}; re-accept a matching baseline"
        ));
    }
    let factor = 1.0 + threshold_pct / 100.0;
    let mut out = Vec::new();
    for c in &cur {
        let Some(b) = base.iter().find(|b| b.id == c.id) else {
            out.push(Delta {
                id: c.id.clone(),
                base_median: -1.0,
                cur_median: c.median,
                delta_pct: 0.0,
                verdict: Verdict::New,
            });
            continue;
        };
        let delta_pct = if b.median > 0.0 {
            (c.median - b.median) * 100.0 / b.median
        } else {
            0.0
        };
        let limit = b.median * factor;
        // Noise-aware: the overall median AND every round's median must
        // clear the threshold — one noisy round vetoes the regression.
        let regressed = b.median > 0.0
            && c.median > limit
            && !c.rounds.is_empty()
            && c.rounds.iter().all(|&r| r > limit);
        let verdict = if regressed {
            Verdict::Regressed
        } else if b.median > 0.0 && c.median < b.median * (1.0 - threshold_pct / 100.0) {
            Verdict::Improved
        } else {
            Verdict::Ok
        };
        out.push(Delta {
            id: c.id.clone(),
            base_median: b.median,
            cur_median: c.median,
            delta_pct,
            verdict,
        });
    }
    for b in &base {
        if !cur.iter().any(|c| c.id == b.id) {
            out.push(Delta {
                id: b.id.clone(),
                base_median: b.median,
                cur_median: -1.0,
                delta_pct: 0.0,
                verdict: Verdict::Gone,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(quick: bool, benches: &[(&str, f64, &[f64])]) -> Json {
        let items: Vec<String> = benches
            .iter()
            .map(|(id, med, rounds)| {
                let rs: Vec<String> = rounds.iter().map(|r| format!("{r}")).collect();
                format!(
                    "{{\"id\":\"{id}\",\"median\":{med},\"rounds\":[{}]}}",
                    rs.join(",")
                )
            })
            .collect();
        parse(&format!(
            "{{\"perf_report\":{{\"version\":1,\"quick\":{quick},\"profiled\":false,\
             \"benches\":[{}]}}}}",
            items.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn regression_needs_every_round() {
        let base = report(true, &[("a", 100.0, &[100.0])]);
        // Median over threshold but one quiet round: not a regression.
        let noisy = report(true, &[("a", 140.0, &[150.0, 110.0])]);
        let d = compare_reports(&noisy, &base, 20.0).unwrap();
        assert_eq!(d[0].verdict, Verdict::Ok);
        // Every round over threshold: confirmed regression.
        let regressed = report(true, &[("a", 140.0, &[150.0, 135.0])]);
        let d = compare_reports(&regressed, &base, 20.0).unwrap();
        assert_eq!(d[0].verdict, Verdict::Regressed);
        assert!((d[0].delta_pct - 40.0).abs() < 1e-9);
        // Same data, generous threshold: fine.
        let d = compare_reports(&regressed, &base, 75.0).unwrap();
        assert_eq!(d[0].verdict, Verdict::Ok);
    }

    #[test]
    fn improvements_new_and_gone_do_not_fail() {
        let base = report(true, &[("a", 100.0, &[100.0]), ("dead", 5.0, &[5.0])]);
        let cur = report(true, &[("a", 50.0, &[50.0]), ("fresh", 9.0, &[9.0])]);
        let d = compare_reports(&cur, &base, 20.0).unwrap();
        let by_id = |id: &str| d.iter().find(|x| x.id == id).unwrap();
        assert_eq!(by_id("a").verdict, Verdict::Improved);
        assert_eq!(by_id("fresh").verdict, Verdict::New);
        assert_eq!(by_id("dead").verdict, Verdict::Gone);
        assert!(d.iter().all(|x| x.verdict != Verdict::Regressed));
    }

    #[test]
    fn mixed_configurations_are_rejected() {
        let base = report(true, &[("a", 100.0, &[100.0])]);
        let cur = report(false, &[("a", 100.0, &[100.0])]);
        let err = compare_reports(&cur, &base, 20.0).unwrap_err();
        assert!(err.contains("configuration mismatch"), "{err}");
        let not_a_report = parse("{\"figure\":\"fig05\"}").unwrap();
        assert!(compare_reports(&not_a_report, &base, 20.0).is_err());
    }

    #[test]
    fn real_harness_reports_compare_clean_against_themselves() {
        let cfg = levi_perf::PerfCfg {
            quick: true,
            filter: Some("micro/scoreboard".into()),
            rounds: Some(1),
            reps: Some(1),
            warmup: Some(0),
        };
        let benches = levi_perf::run_suite(&cfg);
        let doc = parse(&levi_perf::report_json(&benches, true, cfg.opts())).unwrap();
        let d = compare_reports(&doc, &doc, 20.0).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].verdict, Verdict::Ok);
    }

    #[test]
    fn civil_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(20_666), (2026, 8, 1));
        let t = today();
        assert_eq!(t.len(), 10, "{t}");
        assert_eq!(t.as_bytes()[4], b'-');
    }
}
