//! End-to-end tests of the `levi-bench perf` CLI: run → accept → compare
//! round-trips, the synthetic-regression exit code, and configuration
//! mismatch refusal. Exercises the real binary via `CARGO_BIN_EXE`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_levi-bench"))
}

fn run_perf(dir: &PathBuf, args: &[&str]) -> Output {
    bin()
        .arg("perf")
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn levi-bench")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("levi-perf-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The cheapest real suite invocation: one micro bench, one rep.
const QUICK: &[&str] = &[
    "run",
    "--quick",
    "--filter",
    "scoreboard",
    "--rounds",
    "1",
    "--reps",
    "1",
    "--warmup",
    "0",
    "--json",
    "report.json",
];

#[test]
fn run_accept_compare_round_trip() {
    let dir = tmpdir("roundtrip");
    let out = run_perf(&dir, QUICK);
    assert_ok(&out, "perf run");
    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();
    assert!(report.contains("\"perf_report\""), "{report}");
    assert!(report.contains("micro/scoreboard_issue"), "{report}");
    assert!(report.contains("\"median\":"), "{report}");
    assert!(report.contains("\"mad\":"), "{report}");
    assert!(report.contains("\"min\":"), "{report}");

    let out = run_perf(&dir, &["accept", "report.json", "--baseline", "base.json"]);
    assert_ok(&out, "perf accept");

    // A report compared against itself can never regress.
    let out = run_perf(&dir, &["compare", "report.json", "--baseline", "base.json"]);
    assert_ok(&out, "perf compare (self)");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("perf compare OK"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn synthetic_regression_fails_compare() {
    let dir = tmpdir("regression");
    let out = run_perf(&dir, QUICK);
    assert_ok(&out, "perf run");
    let report = std::fs::read_to_string(dir.join("report.json")).unwrap();

    // Handcraft a baseline claiming the bench used to take a fraction of a
    // nanosecond — any real measurement is a confirmed regression. The
    // config flags must match the report or compare refuses before gating.
    let profiled = report.contains("\"profiled\":true");
    let baseline = format!(
        "{{\"perf_report\":{{\"version\":1,\"quick\":true,\"profiled\":{profiled},\
         \"rounds\":1,\"reps\":1,\"warmup\":0,\"benches\":[{{\
         \"id\":\"micro/scoreboard_issue\",\"kind\":\"micro\",\"unit\":\"ns/iter\",\
         \"median\":0.0001,\"mad\":0,\"min\":0.0001,\"mean\":0.0001,\"p90\":0,\
         \"rounds\":[0.0001],\"sim_cycles\":0,\"kips\":0,\"phases\":[]}}]}}}}\n"
    );
    std::fs::write(dir.join("tiny.json"), &baseline).unwrap();
    let out = run_perf(&dir, &["compare", "report.json", "--baseline", "tiny.json"]);
    assert!(
        !out.status.success(),
        "compare against a tiny baseline must fail: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("regressed"), "{err}");

    // The same pair passes with an absurdly generous threshold, proving
    // the exit code comes from the gate and not an I/O failure.
    let out = run_perf(
        &dir,
        &[
            "compare",
            "report.json",
            "--baseline",
            "tiny.json",
            "--threshold",
            "1000",
        ],
    );
    // Still a regression: real ns vs 0.0001 ns exceeds even 1000%.
    assert!(!out.status.success());

    // Mismatched configuration (quick vs full) is refused outright.
    let full = baseline.replace("\"quick\":true", "\"quick\":false");
    std::fs::write(dir.join("full.json"), full).unwrap();
    let out = run_perf(&dir, &["compare", "report.json", "--baseline", "full.json"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("configuration mismatch"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_day_trajectory_runs_do_not_clobber_and_validate() {
    let dir = tmpdir("traj-validate");
    let mut args: Vec<&str> = QUICK.to_vec();
    args.extend_from_slice(&["--trajectory", "traj"]);
    // Two runs on the same day: the second must pick a suffixed name
    // instead of overwriting the first point.
    assert_ok(&run_perf(&dir, &args), "first trajectory run");
    assert_ok(&run_perf(&dir, &args), "second trajectory run");
    let mut entries: Vec<String> = std::fs::read_dir(dir.join("traj"))
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 2, "{entries:?}");
    assert!(entries[1].ends_with("_02.json"), "{entries:?}");

    // The validator accepts the history...
    let traj = dir.join("traj").to_string_lossy().into_owned();
    let out = run_perf(&dir, &["trajectory", &traj]);
    assert_ok(&out, "perf trajectory");
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("2 point(s), chronological"), "{text}");

    // ...and rejects a malformed name, a non-report file, and an empty
    // directory.
    std::fs::write(dir.join("traj/BENCH_today.json"), "{}\n").unwrap();
    let out = run_perf(&dir, &["trajectory", &traj]);
    assert!(!out.status.success(), "malformed name must fail");
    std::fs::remove_file(dir.join("traj/BENCH_today.json")).unwrap();

    std::fs::write(dir.join("traj/BENCH_2020-01-01.json"), "{\"x\":1}\n").unwrap();
    let out = run_perf(&dir, &["trajectory", &traj]);
    assert!(!out.status.success(), "non-report point must fail");
    std::fs::remove_file(dir.join("traj/BENCH_2020-01-01.json")).unwrap();

    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = run_perf(&dir, &["trajectory", &empty.to_string_lossy()]);
    assert!(!out.status.success(), "empty trajectory must fail");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trajectory_and_error_paths() {
    let dir = tmpdir("trajectory");
    let mut args: Vec<&str> = QUICK.to_vec();
    args.extend_from_slice(&["--trajectory", "traj"]);
    let out = run_perf(&dir, &args);
    assert_ok(&out, "perf run --trajectory");
    let entries: Vec<String> = std::fs::read_dir(dir.join("traj"))
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(entries.len(), 1, "{entries:?}");
    assert!(
        entries[0].starts_with("BENCH_") && entries[0].ends_with(".json"),
        "{entries:?}"
    );

    // An impossible filter matches nothing: that is an error, not an
    // empty report.
    let out = run_perf(
        &dir,
        &[
            "run",
            "--quick",
            "--filter",
            "no-such-bench",
            "--json",
            "x.json",
        ],
    );
    assert!(!out.status.success());

    // Accepting a non-report is refused.
    std::fs::write(dir.join("junk.json"), "{\"figure\":\"fig05\"}\n").unwrap();
    let out = run_perf(&dir, &["accept", "junk.json", "--baseline", "b.json"]);
    assert!(!out.status.success());
    assert!(!dir.join("b.json").exists());

    // Comparing against a missing baseline is a clean failure.
    let out = run_perf(
        &dir,
        &["compare", "report.json", "--baseline", "missing.json"],
    );
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
