//! Fig. 24 — sensitivity to input size (hash table).
//!
//! Paper: Leviathan performs well while the table fits the LLC; once the
//! table exceeds the LLC, NoC savings are swamped by DRAM latency and the
//! advantage shrinks.

use levi_bench::{header, quick_mode, table};
use levi_workloads::hashtable::{run_hashtable, HtScale, HtVariant};

fn main() {
    header(
        "Fig. 24 — hash-table sensitivity to total table size",
        "paper: good while data <= LLC; drops past LLC capacity",
    );
    let quick = quick_mode();
    let base_scale = if quick {
        HtScale::test(64)
    } else {
        HtScale::paper(64)
    };
    // The 16-tile LLC is 8 MB; sweep the (padded) table across it.
    let sizes_mb: &[u64] = if quick {
        &[1, 2]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let mut rows = Vec::new();
    for &mb in sizes_mb {
        let scale = base_scale.clone().with_table_bytes(mb * 1024 * 1024);
        let base = run_hashtable(HtVariant::Baseline, &scale);
        let lev = run_hashtable(HtVariant::Leviathan, &scale);
        eprintln!("  ran table={mb}MB");
        rows.push(vec![
            format!("{mb} MB"),
            format!(
                "{:.2}x",
                base.metrics.cycles as f64 / lev.metrics.cycles as f64
            ),
            base.metrics.stats.dram_accesses.to_string(),
            lev.metrics.stats.dram_accesses.to_string(),
        ]);
    }
    table(
        &["table size", "Leviathan speedup", "base DRAM", "lev DRAM"],
        &rows,
    );
    println!();
    println!("(16-tile LLC = 8 MB; expect the advantage to fall once the table no longer fits)");
}
