//! Table V — system parameters, plus the taxonomy Tables I–III.
//!
//! Prints the simulated system's configuration for cross-checking against
//! the paper, and summarizes the NDC taxonomy the implementation follows.

use levi_sim::MachineConfig;

use crate::runner::{Figure, RunCtx};
use crate::{header, table, table_report};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "table05_config",
    about: "simulated system parameters + NDC taxonomy (paper Tables I-V)",
    workloads: &[],
    run,
};

fn run(_ctx: &RunCtx) {
    header(
        "Table V — system parameters",
        "simulated configuration vs the paper",
    );
    let c = MachineConfig::paper_default();
    let rows = vec![
        vec!["Cores".into(), format!("{} cores, LevIR ISA, scoreboarded issue {} wide, {} MSHRs, {}-entry invoke buffer", c.tiles, c.core.issue_width, c.core.mshrs, c.core.invoke_buffer), "16 cores, x86-64, OOO Skylake, 4-entry invoke buffer".into()],
        vec!["Engines".into(), format!("{} engines (L2+LLC per tile), {} int FUs ({}-cycle), {} mem FUs, {} KB L1d, {} thread contexts", c.tiles * 2, c.engine.int_fus, c.engine.pe_latency, c.engine.mem_fus, c.engine.l1d_bytes / 1024, c.engine.contexts), "16 engines, 15 int FUs (1-cycle), 10 mem FUs, 8 KB L1d, 32 contexts".into()],
        vec!["L1".into(), format!("{} KB, {}-way, {}-cycle", c.l1.size_bytes / 1024, c.l1.ways, c.l1.latency), "32 KB, 8-way".into()],
        vec!["L2".into(), format!("{} KB, {}-way, {}-cycle, SRRIP, strided prefetcher={}", c.l2.size_bytes / 1024, c.l2.ways, c.l2.latency, c.prefetcher), "128 KB, 8-way, 2+4-cycle, (D)RRIP, strided pf".into()],
        vec!["LLC".into(), format!("{} MB total ({} KB/tile), {}-way, {}-cycle, inclusive, SRRIP", c.llc_total_bytes() / 1024 / 1024, c.llc.size_bytes / 1024, c.llc.ways, c.llc.latency), "8 MB (512 KB/tile), 16-way, 3+5-cycle, inclusive".into()],
        vec!["NoC".into(), format!("{:?} mesh, {}-bit flits, {}/{}-cycle router/link", c.mesh_dims(), c.noc.flit_bits, c.noc.router_delay, c.noc.link_delay), "mesh, 128-bit flits, 2/1-cycle".into()],
        vec!["Memory".into(), format!("{} controllers, {}-cycle latency, {} cyc/line (~11.8 GB/s), {}-entry FIFO cache", c.mem.controllers, c.mem.latency, c.mem.cycles_per_line, c.mem.fifo_cache_lines), "4 controllers, 100-cycle, 11.8 GB/s, 32-entry FIFO".into()],
    ];
    table_report(
        "table05_config",
        &["component", "simulated", "paper"],
        &rows,
    );

    header(
        "Table I — NDC taxonomy (implemented paradigms)",
        "all four paradigms run on the same hardware",
    );
    table(
        &[
            "paradigm",
            "small tasks?",
            "talks to cores?",
            "mechanism here",
        ],
        &[
            vec![
                "Task offload".into(),
                "yes".into(),
                "yes".into(),
                "invoke instr + engine task contexts + DYNAMIC scheduling".into(),
            ],
            vec![
                "Long-lived".into(),
                "no".into(),
                "no".into(),
                "spawn_long_lived / stream producers on engines".into(),
            ],
            vec![
                "Data-triggered".into(),
                "yes".into(),
                "no".into(),
                "Morph ctors/dtors on cache insertion/eviction".into(),
            ],
            vec![
                "Streaming".into(),
                "no".into(),
                "yes".into(),
                "ring buffer + phantom consumption + push/pop".into(),
            ],
        ],
    );

    header(
        "Table II — actions per paradigm",
        "see leviathan crate docs",
    );
    table(
        &["paradigm", "actions"],
        &[
            vec![
                "Task offload".into(),
                "arbitrary actor-specific function".into(),
            ],
            vec![
                "Long-lived".into(),
                "arbitrary actor-specific function".into(),
            ],
            vec![
                "Data-triggered".into(),
                "actor constructor & destructor".into(),
            ],
            vec![
                "Streaming".into(),
                "actor-specific producer function (genStream)".into(),
            ],
        ],
    );

    header("Table III — per-paradigm microarchitecture support", "");
    table(
        &["paradigm", "core", "cache", "engine"],
        &[
            vec![
                "Task offload".into(),
                "invoke instr & buffer".into(),
                "n/a".into(),
                "DYNAMIC scheduling".into(),
            ],
            vec![
                "Data-triggered".into(),
                "flush instr, TLB bits".into(),
                "tag bits".into(),
                "actor buffer, vtable map".into(),
            ],
            vec![
                "Streaming".into(),
                "pop instr".into(),
                "n/a".into(),
                "push instr, stream metadata".into(),
            ],
        ],
    );
}
