//! levi-xlat: address translation and multi-tenant sharing.
//!
//! Leviathan's evaluation (like most NDC papers) assumes translation is
//! free and a single tenant owns the cache hierarchy. This module models
//! both effects so their cost can be ablated:
//!
//! * **Translation** ([`XlatConfig`], [`XlatState`]): an optional per-tile
//!   TLB in front of the private-cache probe paths. A TLB hit is folded
//!   into the L1 probe (0 extra cycles); a miss triggers a radix page walk
//!   whose per-level page-table references are charged through the *real*
//!   NoC and DRAM timing paths — each level sends a control message to the
//!   page-table line's controller, performs a DRAM line access (the
//!   per-controller FIFO line cache absorbs upper-level locality exactly
//!   like a hardware walk cache), and pays a fixed walker latency.
//! * **Tenancy** ([`TenantConfig`], [`TenantMap`]): the machine's tiles are
//!   split into equal contiguous blocks, one per tenant, which co-run and
//!   share the LLC and invoke engines under a pluggable
//!   [`TenantPolicy`] — unpartitioned interference, LLC way-partitioning
//!   (each tenant's demand fills may only displace its own share of a
//!   set), or engine-slot quotas (a tenant invoking an engine it does not
//!   own NACKs once the engine is `quota`-full, reserving headroom for the
//!   owner).
//!
//! Both features follow the zero-cost disabled pattern (DESIGN.md §9): when
//! the config carries `None`, the hot paths pay exactly one predictable
//! branch and every byte of simulator output is unchanged.

use levi_isa::codec::{CodecError, Reader, Writer};
use levi_isa::Addr;

use crate::engine::EngineId;
use crate::hw::Hw;

/// Page-walk request/response message payload bytes (one PTE plus header).
const WALK_MSG: u32 = 16;

/// Radix fan-out per page-table level (9 bits = 512-entry nodes, as in
/// x86-64 / RISC-V Sv48).
const PT_FANOUT_BITS: u32 = 9;

/// High salt separating synthetic page-table lines from workload lines.
const PT_SALT: u64 = 0x5150_5447_0000_0000;

/// Translation (TLB + page-walk) configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XlatConfig {
    /// log2 of the page size in bytes (12 = 4 KiB, 21 = 2 MiB).
    pub page_bits: u32,
    /// Total TLB entries per tile.
    pub tlb_entries: u32,
    /// TLB associativity (`tlb_ways` must divide `tlb_entries`).
    pub tlb_ways: u32,
    /// Page-table radix depth (levels walked per miss).
    pub walk_levels: u32,
    /// Fixed walker cycles per level, on top of the NoC + DRAM charges.
    pub walk_latency: u64,
}

impl XlatConfig {
    /// A 4 KiB-page, 64-entry 4-way TLB with a 4-level walk — the
    /// conventional baseline the ablation compares against.
    pub fn paper_default() -> Self {
        XlatConfig {
            page_bits: 12,
            tlb_entries: 64,
            tlb_ways: 4,
            walk_levels: 4,
            walk_latency: 4,
        }
    }

    /// Same TLB geometry at a different page size.
    pub fn with_page_bits(page_bits: u32) -> Self {
        XlatConfig {
            page_bits,
            ..Self::paper_default()
        }
    }
}

/// How co-running tenants share the LLC and invoke engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantPolicy {
    /// No isolation: tenants interfere freely (the baseline curve).
    Unpartitioned,
    /// Each tenant's LLC demand fills may only displace lines within its
    /// own `ways / count` share of every set.
    LlcWayPartition,
    /// A tenant invoking an engine outside its tile block NACKs once the
    /// engine's offload contexts are `quota`-full (owner keeps headroom).
    EngineSlotQuota,
}

impl TenantPolicy {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            TenantPolicy::Unpartitioned => 0,
            TenantPolicy::LlcWayPartition => 1,
            TenantPolicy::EngineSlotQuota => 2,
        }
    }
}

/// Multi-tenant sharing configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantConfig {
    /// Number of tenants; must divide the tile count (each tenant owns a
    /// contiguous block of `tiles / count` tiles). At most 8.
    pub count: u32,
    /// Partitioning policy.
    pub policy: TenantPolicy,
}

impl TenantConfig {
    /// `count` tenants under `policy`.
    pub fn new(count: u32, policy: TenantPolicy) -> Self {
        TenantConfig { count, policy }
    }
}

/// Derived, immutable tenant topology (built once in [`Hw::new`]; carries
/// no mutable state, so it needs no snapshot section).
#[derive(Clone, Copy, Debug)]
pub struct TenantMap {
    /// Number of tenants.
    pub count: u32,
    /// Partitioning policy.
    pub policy: TenantPolicy,
    /// Tiles per tenant block.
    pub tiles_per_tenant: u32,
    /// Per-tenant LLC ways (`ways / count`); 0 unless [`TenantPolicy::LlcWayPartition`].
    pub llc_ways_per_tenant: u32,
    /// Foreign-tenant engine-context cap; 0 unless [`TenantPolicy::EngineSlotQuota`].
    pub slot_quota: u32,
}

impl TenantMap {
    /// Derives the topology from a validated config.
    pub fn new(tc: &TenantConfig, m: &crate::config::MachineConfig) -> Self {
        let offload_cap = (m.engine.contexts / 2).max(1);
        TenantMap {
            count: tc.count,
            policy: tc.policy,
            tiles_per_tenant: m.tiles / tc.count,
            llc_ways_per_tenant: if tc.policy == TenantPolicy::LlcWayPartition {
                m.llc.ways / tc.count
            } else {
                0
            },
            slot_quota: if tc.policy == TenantPolicy::EngineSlotQuota {
                (offload_cap / tc.count).max(1)
            } else {
                0
            },
        }
    }

    /// The tenant owning `tile`.
    #[inline]
    pub fn tenant_of(&self, tile: u32) -> u32 {
        tile / self.tiles_per_tenant
    }

    /// True when an invoke from `from_tile` to `target` must NACK under
    /// the engine-slot quota policy, given the engine's current context
    /// occupancy.
    #[inline]
    pub fn quota_blocks(&self, from_tile: u32, target: EngineId, in_use: u32) -> bool {
        self.slot_quota > 0
            && self.tenant_of(from_tile) != self.tenant_of(target.tile)
            && in_use >= self.slot_quota
    }
}

/// One per-tile, set-associative TLB with exact-LRU replacement.
///
/// Flat-slab layout (DESIGN.md §10): `vpns`/`stamps` are `sets × ways`
/// parallel arrays; a stamp of 0 marks an invalid way, so lookup is a
/// contiguous scan of at most `ways` words.
#[derive(Clone, Debug)]
pub struct Tlb {
    sets: u32,
    ways: u32,
    vpns: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
}

impl Tlb {
    /// An empty TLB with `entries / ways` sets.
    pub fn new(cfg: &XlatConfig) -> Self {
        let sets = (cfg.tlb_entries / cfg.tlb_ways).max(1);
        let n = (sets * cfg.tlb_ways) as usize;
        Tlb {
            sets,
            ways: cfg.tlb_ways,
            vpns: vec![0; n],
            stamps: vec![0; n],
            tick: 0,
        }
    }

    #[inline]
    fn set_base(&self, vpn: u64) -> usize {
        ((vpn % self.sets as u64) as u32 * self.ways) as usize
    }

    /// Probes for `vpn`; refreshes its LRU stamp on hit.
    #[inline]
    pub fn lookup(&mut self, vpn: u64) -> bool {
        let base = self.set_base(vpn);
        for w in base..base + self.ways as usize {
            if self.stamps[w] != 0 && self.vpns[w] == vpn {
                self.tick += 1;
                self.stamps[w] = self.tick;
                return true;
            }
        }
        false
    }

    /// Installs `vpn`, evicting the LRU way of its set if full.
    pub fn insert(&mut self, vpn: u64) {
        let base = self.set_base(vpn);
        let mut victim = base;
        let mut best = u64::MAX;
        for w in base..base + self.ways as usize {
            if self.stamps[w] < best {
                best = self.stamps[w];
                victim = w;
            }
        }
        self.tick += 1;
        self.vpns[victim] = vpn;
        self.stamps[victim] = self.tick;
    }

    /// Valid entries (for tests and occupancy inspection).
    pub fn occupancy(&self) -> u32 {
        self.stamps.iter().filter(|&&s| s != 0).count() as u32
    }

    fn snap_write(&self, w: &mut Writer) {
        w.u64(self.tick);
        w.u32(self.vpns.len() as u32);
        for i in 0..self.vpns.len() {
            w.u64(self.vpns[i]);
            w.u64(self.stamps[i]);
        }
    }

    fn snap_read(&mut self, r: &mut Reader) -> Result<(), CodecError> {
        self.tick = r.u64()?;
        let n = r.count(16)?;
        if n != self.vpns.len() {
            return Err(CodecError::Invalid("tlb entry count"));
        }
        for i in 0..n {
            self.vpns[i] = r.u64()?;
            self.stamps[i] = r.u64()?;
        }
        Ok(())
    }
}

/// Mutable translation state: one [`Tlb`] per tile.
#[derive(Clone, Debug)]
pub struct XlatState {
    /// The (validated) configuration this state was built from.
    pub cfg: XlatConfig,
    tlbs: Vec<Tlb>,
}

impl XlatState {
    /// Cold TLBs for every tile.
    pub fn new(cfg: XlatConfig, tiles: u32) -> Self {
        XlatState {
            cfg,
            tlbs: (0..tiles).map(|_| Tlb::new(&cfg)).collect(),
        }
    }

    /// The given tile's TLB.
    pub fn tlb(&self, tile: u32) -> &Tlb {
        &self.tlbs[tile as usize]
    }

    /// Serializes every TLB (see [`crate::snapshot`]; the `TLBX` section).
    pub(crate) fn snap_write(&self, w: &mut Writer) {
        w.u32(self.tlbs.len() as u32);
        for t in &self.tlbs {
            t.snap_write(w);
        }
    }

    /// Restores state written by [`XlatState::snap_write`].
    pub(crate) fn snap_read(&mut self, r: &mut Reader) -> Result<(), CodecError> {
        let n = r.count(12)?;
        if n != self.tlbs.len() {
            return Err(CodecError::Invalid("tlb tile count"));
        }
        for t in &mut self.tlbs {
            t.snap_read(r)?;
        }
        Ok(())
    }
}

impl Hw {
    /// Translates `addr` for an access issued from `tile` at `now`,
    /// returning the cycle at which the physical access may begin.
    ///
    /// With translation disabled this is a single predictable branch —
    /// the zero-cost disabled path the REGISTRY-wide differential test
    /// pins down.
    #[inline]
    pub(crate) fn translate(&mut self, tile: u32, addr: Addr, now: u64) -> u64 {
        if self.xlat.is_none() {
            return now;
        }
        self.translate_miss_path(tile, addr, now)
    }

    fn translate_miss_path(&mut self, tile: u32, addr: Addr, now: u64) -> u64 {
        let x = self.xlat.as_mut().expect("translate checked presence");
        let vpn = addr >> x.cfg.page_bits;
        if x.tlbs[tile as usize].lookup(vpn) {
            self.stats.tlb_hits += 1;
            return now;
        }
        self.stats.tlb_misses += 1;
        // Radix walk: one page-table reference per level, pointer-chased
        // (each level's result gates the next). Upper levels index by a
        // coarser vpn prefix, so nearby pages share page-table lines and
        // the controller FIFO caches absorb them like a walk cache.
        let levels = x.cfg.walk_levels;
        let walk_latency = x.cfg.walk_latency;
        let mut t = now;
        for level in 0..levels {
            let idx = vpn >> (PT_FANOUT_BITS * (levels - 1 - level));
            let pt_line = PT_SALT ^ ((level as u64) << 52) ^ idx;
            let home = (pt_line % self.cfg.tiles as u64) as u32;
            let ta = self.noc.send(tile, home, WALK_MSG, t, &mut self.stats);
            let tb = self.dram.access_line(pt_line, ta, &mut self.stats);
            t = self.noc.send(home, tile, WALK_MSG, tb, &mut self.stats) + walk_latency;
        }
        let x = self.xlat.as_mut().expect("translate checked presence");
        x.tlbs[tile as usize].insert(vpn);
        let walk = t - now;
        self.stats.tlb_walk_cycles += walk;
        self.stats.xlat_walk.record(walk);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::hw::{AccessKind, Walk};
    use levi_isa::PagedMem;

    fn done(w: Walk) -> u64 {
        match w {
            Walk::Done { at } => at,
            Walk::Blocked(c) => panic!("unexpectedly blocked: {c:?}"),
        }
    }

    #[test]
    fn tlb_hits_after_insert_and_evicts_lru() {
        let cfg = XlatConfig {
            page_bits: 12,
            tlb_entries: 4,
            tlb_ways: 2,
            walk_levels: 4,
            walk_latency: 4,
        };
        let mut tlb = Tlb::new(&cfg);
        assert!(!tlb.lookup(8));
        tlb.insert(8);
        assert!(tlb.lookup(8));
        // Fill the 2-way set holding vpn 1 (sets = 2: vpns 1, 3, 5 share
        // set 1); the LRU entry goes first.
        tlb.insert(1);
        tlb.insert(3);
        assert!(tlb.lookup(1), "refresh 1 so 3 is LRU");
        tlb.insert(5);
        assert!(tlb.lookup(1));
        assert!(tlb.lookup(5));
        assert!(!tlb.lookup(3), "LRU way evicted");
        assert_eq!(tlb.occupancy(), 3);
    }

    #[test]
    fn walk_charges_dram_and_noc_and_fills_tlb() {
        let mut cfg = MachineConfig::paper_default();
        cfg.prefetcher = false;
        cfg.xlat = Some(XlatConfig::paper_default());
        let mut h = Hw::new(cfg);
        let mut mem = PagedMem::new();
        let base_dram = h.stats.dram_accesses;
        let t1 = done(h.access_core(&mut mem, 0, AccessKind::Read, 0x1000, 0, true));
        assert_eq!(h.stats.tlb_misses, 1);
        assert_eq!(h.stats.tlb_hits, 0);
        assert!(h.stats.tlb_walk_cycles > 0, "walk charged cycles");
        assert!(
            h.stats.dram_accesses + h.stats.mc_cache_hits >= base_dram + 5,
            "4 walk levels + the demand fetch touch the controllers"
        );
        // Same page: TLB hit, no further walk.
        let walk_cycles = h.stats.tlb_walk_cycles;
        let t2 = done(h.access_core(&mut mem, 0, AccessKind::Read, 0x1008, t1, true));
        assert_eq!(h.stats.tlb_hits, 1);
        assert_eq!(h.stats.tlb_walk_cycles, walk_cycles);
        assert_eq!(t2, t1 + h.cfg.l1.latency, "hit folds into the L1 probe");
        assert_eq!(h.stats.xlat_walk.count(), 1);
    }

    #[test]
    fn disabled_translation_adds_nothing() {
        let mut cfg = MachineConfig::paper_default();
        cfg.prefetcher = false;
        let mut h = Hw::new(cfg);
        let mut mem = PagedMem::new();
        done(h.access_core(&mut mem, 0, AccessKind::Read, 0x1000, 0, true));
        assert_eq!(h.stats.tlb_hits + h.stats.tlb_misses, 0);
        assert_eq!(h.stats.tlb_walk_cycles, 0);
        assert_eq!(h.stats.xlat_walk.count(), 0);
    }

    #[test]
    fn tenant_map_topology_and_quota() {
        let m = MachineConfig::with_tiles(8);
        let tm = TenantMap::new(&TenantConfig::new(4, TenantPolicy::EngineSlotQuota), &m);
        assert_eq!(tm.tiles_per_tenant, 2);
        assert_eq!(tm.tenant_of(0), 0);
        assert_eq!(tm.tenant_of(1), 0);
        assert_eq!(tm.tenant_of(2), 1);
        assert_eq!(tm.tenant_of(7), 3);
        assert!(tm.slot_quota >= 1);
        let foreign = EngineId {
            tile: 2,
            level: crate::engine::EngineLevel::L2,
        };
        let own = EngineId {
            tile: 1,
            level: crate::engine::EngineLevel::L2,
        };
        assert!(tm.quota_blocks(0, foreign, tm.slot_quota));
        assert!(!tm.quota_blocks(0, foreign, tm.slot_quota - 1));
        assert!(!tm.quota_blocks(0, own, u32::MAX), "own engines uncapped");

        let part = TenantMap::new(&TenantConfig::new(4, TenantPolicy::LlcWayPartition), &m);
        assert_eq!(part.llc_ways_per_tenant, m.llc.ways / 4);
        assert_eq!(part.slot_quota, 0);
    }

    #[test]
    fn tlb_snapshot_round_trips() {
        let cfg = XlatConfig::paper_default();
        let mut x = XlatState::new(cfg, 4);
        for t in 0..4u32 {
            for v in 0..10u64 {
                x.tlbs[t as usize].insert(v * 17 + t as u64);
            }
        }
        let mut w = Writer::new();
        x.snap_write(&mut w);
        let bytes = w.into_bytes();
        let mut y = XlatState::new(cfg, 4);
        let mut r = Reader::new(&bytes);
        y.snap_read(&mut r).expect("round trip");
        let mut w2 = Writer::new();
        y.snap_write(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "byte-identical re-encode");
        // A truncated payload surfaces as a typed codec error.
        let mut z = XlatState::new(cfg, 4);
        let mut r = Reader::new(&bytes[..bytes.len() / 2]);
        assert!(z.snap_read(&mut r).is_err());
    }
}
