// Sanity: a 64KB array scanned twice must hit L2 on the second pass.
use levi_isa::{ProgramBuilder, Reg};
use levi_sim::{Machine, MachineConfig};
use std::sync::Arc;

fn main() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("scan2");
    let (base, n, i, v, p, pass) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
    let pass_top = f.label();
    let top = f.label();
    let out = f.label();
    let done = f.label();
    f.imm(pass, 0);
    f.bind(pass_top);
    f.imm(i, 0);
    f.mov(p, base);
    f.bind(top);
    f.bge_u(i, n, out);
    f.ld8(v, p, 0);
    f.addi(p, p, 64);
    f.addi(i, i, 1);
    f.jmp(top);
    f.bind(out);
    f.addi(pass, pass, 1);
    f.imm(v, 2);
    f.bge_u(pass, v, done);
    f.jmp(pass_top);
    f.bind(done);
    f.halt();
    let func = f.finish();
    let prog = Arc::new(pb.finish().unwrap());
    let mut cfg = MachineConfig::with_tiles(4);
    cfg.prefetcher = false;
    let mut m = Machine::try_new(cfg).unwrap();
    m.spawn_thread(0, prog, func, &[0x100000, 1024]).unwrap(); // 1024 lines = 64KB
    m.run().unwrap();
    let s = m.stats();
    println!(
        "l1 h/m = {}/{}  l2 h/m = {}/{}  llc h/m = {}/{}  dram = {}",
        s.l1.hits, s.l1.misses, s.l2.hits, s.l2.misses, s.llc.hits, s.llc.misses, s.dram_accesses
    );
}
