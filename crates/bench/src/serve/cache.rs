//! The content-addressed result cache behind `levi-bench serve`.
//!
//! A cache entry is the complete captured output of one figure run — every
//! stdout and stderr line, in emission order, tagged with its stream — filed
//! under the job's [`crate::serve::protocol::Job::cache_key`]. Because every
//! run is a pure function of its key's inputs, replaying an entry is
//! byte-identical to re-executing the job.
//!
//! # On-disk format
//!
//! The cache rides on the same [`crate::codec::LineStore`] framing as the
//! crash journal (PR 7's codec, promoted to a shared module):
//!
//! ```text
//! levi-cache v1
//! entry <16-hex key> <16-hex blob digest> <hex-armored line blob>
//! ```
//!
//! The blob is a `levi_isa::codec` record: a line count, then per line a
//! stream tag and the text. The digest is [`levi_sim::fnv1a`] over the
//! blob bytes, so a flipped bit *inside* an otherwise well-formed record
//! is caught too — structural decoding alone would happily return
//! subtly wrong text. Appends are synced before they count as durable.
//!
//! # Damage policy
//!
//! The journal distinguishes a torn tail (tolerated) from interior damage
//! (typed error) because silently dropping a *journal* record would re-run
//! work the user believes is saved. A cache is different: it is a pure
//! accelerator, and the only wrong answer is serving bytes that do not
//! match a fresh run. So **any** unreadable record — torn tail, flipped
//! bit, truncated blob, duplicate-key conflict — is simply a miss: the
//! entry is dropped on load and the job re-executes. A file whose header
//! is from another schema version is discarded wholesale (reset to a
//! fresh header) for the same reason.

use std::collections::HashMap;

use levi_isa::codec::{Reader, Writer};

use crate::codec::{hex_decode, hex_encode, LineStore, StoreError};
use crate::out::Line;
use crate::serve::protocol::{key_hex, SCHEMA_VERSION};

/// The cache header line for the current schema.
fn header() -> String {
    format!("levi-cache v{SCHEMA_VERSION}")
}

/// A durable map from cache key to captured run output.
pub struct ResultCache {
    store: LineStore,
    entries: HashMap<u64, Vec<Line>>,
    /// Records dropped on load because they could not be decoded.
    damaged: usize,
}

impl ResultCache {
    /// Opens (or creates) the cache at `path`. Every decodable entry
    /// becomes a hit candidate; damaged records and stale headers are
    /// discarded as misses per the module's damage policy.
    ///
    /// # Errors
    /// Only real I/O failures error; content damage never does.
    pub fn open(path: &str) -> Result<ResultCache, StoreError> {
        let (store, loaded) = LineStore::open(path, &header())?;
        let mut entries = HashMap::new();
        let mut damaged = 0usize;
        if let Some(loaded) = loaded {
            if loaded.header.as_deref() != Some(header().as_str()) {
                // Another schema (or a foreign file): worthless as a
                // cache, so start over rather than serving stale bytes.
                store.reset(&header())?;
                return Ok(ResultCache {
                    store,
                    entries,
                    damaged: 0,
                });
            }
            for rec in loaded.records {
                match parse_entry(&rec.text) {
                    Ok((key, lines)) if !entries.contains_key(&key) => {
                        entries.insert(key, lines);
                    }
                    // A duplicate key means two writers raced a crash;
                    // trust neither ordering and keep the first.
                    Ok(_) => damaged += 1,
                    Err(_) => damaged += 1,
                }
            }
        }
        Ok(ResultCache {
            store,
            entries,
            damaged,
        })
    }

    /// The cached output for `key`, if an intact entry exists.
    pub fn get(&self, key: u64) -> Option<&[Line]> {
        self.entries.get(&key).map(Vec::as_slice)
    }

    /// Files `lines` under `key`, durably (synced append) and in memory.
    /// Overwriting an existing key is a no-op: the first execution's
    /// bytes are already the truth.
    ///
    /// # Errors
    /// Propagates append I/O failures.
    pub fn put(&mut self, key: u64, lines: &[Line]) -> Result<(), StoreError> {
        if self.entries.contains_key(&key) {
            return Ok(());
        }
        let blob = encode_lines(lines);
        let record = format!(
            "entry {} {} {}",
            key_hex(key),
            key_hex(levi_sim::fnv1a(&blob)),
            hex_encode(&blob)
        );
        self.store.append(&record)?;
        self.entries.insert(key, lines.to_vec());
        Ok(())
    }

    /// How many intact entries the cache holds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many records were dropped as damaged when the cache loaded.
    pub fn damaged(&self) -> usize {
        self.damaged
    }

    /// The file path backing this cache.
    pub fn path(&self) -> &str {
        self.store.path()
    }
}

fn encode_lines(lines: &[Line]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(lines.len() as u64);
    for line in lines {
        w.u8(u8::from(line.is_out()));
        w.str(line.text());
    }
    w.into_bytes()
}

fn decode_lines(bytes: &[u8]) -> Result<Vec<Line>, String> {
    let mut r = Reader::new(bytes);
    let fail = |e: levi_isa::codec::CodecError| e.to_string();
    let count = r.u64().map_err(fail)? as usize;
    if count > 1_000_000 {
        return Err("implausible line count".into());
    }
    let mut lines = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = r.u8().map_err(fail)?;
        let text = r.str().map_err(fail)?.to_string();
        lines.push(match tag {
            0 => Line::Progress(text),
            1 => Line::Out(text),
            other => return Err(format!("unknown stream tag {other}")),
        });
    }
    if !r.is_exhausted() {
        return Err("trailing bytes in entry".into());
    }
    Ok(lines)
}

fn parse_entry(record: &str) -> Result<(u64, Vec<Line>), String> {
    let mut parts = record.splitn(4, ' ');
    if parts.next() != Some("entry") {
        return Err("unknown record kind".into());
    }
    let key_text = parts.next().ok_or("missing key")?;
    let key = u64::from_str_radix(key_text, 16).map_err(|_| "bad key hex")?;
    let digest_text = parts.next().ok_or("missing digest")?;
    let digest = u64::from_str_radix(digest_text, 16).map_err(|_| "bad digest hex")?;
    let blob = hex_decode(parts.next().ok_or("missing blob")?)?;
    if levi_sim::fnv1a(&blob) != digest {
        return Err("blob digest mismatch".into());
    }
    let lines = decode_lines(&blob)?;
    Ok((key, lines))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("levi-cache-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("results.cache").to_str().unwrap().to_string()
    }

    fn sample() -> Vec<Line> {
        vec![
            Line::Progress("  ran Baseline          1234 cycles".into()),
            Line::Out("variant  cycles".into()),
            Line::Out(String::new()),
            Line::Out("weird \"bytes\" \\ here".into()),
        ]
    }

    #[test]
    fn entries_persist_across_reopen_byte_identically() {
        let path = temp("persist");
        let mut c = ResultCache::open(&path).unwrap();
        assert!(c.is_empty());
        c.put(0xfeed, &sample()).unwrap();
        c.put(0xbeef, &[Line::Out("other".into())]).unwrap();
        assert_eq!(c.len(), 2);
        drop(c);

        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.damaged(), 0);
        assert_eq!(c.get(0xfeed).unwrap(), sample().as_slice());
        assert!(c.get(0x1234).is_none());
    }

    #[test]
    fn duplicate_puts_keep_the_first_execution() {
        let path = temp("dup");
        let mut c = ResultCache::open(&path).unwrap();
        c.put(1, &sample()).unwrap();
        c.put(1, &[Line::Out("imposter".into())]).unwrap();
        assert_eq!(c.get(1).unwrap(), sample().as_slice());
        let c = ResultCache::open(&path).unwrap();
        assert_eq!(c.get(1).unwrap(), sample().as_slice());
    }

    #[test]
    fn any_damaged_record_is_a_miss_never_an_error() {
        let path = temp("damage");
        let mut c = ResultCache::open(&path).unwrap();
        c.put(1, &sample()).unwrap();
        c.put(2, &sample()).unwrap();
        c.put(3, &sample()).unwrap();
        drop(c);

        let mut lines: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        // Interior corruption: flip a hex digit inside entry 1's blob.
        let flip = lines[1].len() - 10;
        let flipped = if lines[1].as_bytes()[flip] == b'0' {
            "1"
        } else {
            "0"
        };
        lines[1].replace_range(flip..flip + 1, flipped);
        // Torn tail: truncate entry 3 mid-blob, as a kill would.
        let n = lines[3].len();
        lines[3].truncate(n - 7);
        std::fs::write(&path, lines.join("\n")).unwrap();

        let c = ResultCache::open(&path).unwrap();
        assert!(c.get(1).is_none(), "corrupted entry must never be served");
        assert_eq!(c.get(2).unwrap(), sample().as_slice());
        assert!(c.get(3).is_none(), "torn entry must never be served");
        assert_eq!(c.len(), 1);
        assert_eq!(c.damaged(), 2);
    }

    #[test]
    fn foreign_or_stale_header_resets_the_file() {
        let path = temp("stale");
        std::fs::write(&path, "levi-cache v0\nentry 0000000000000001 00\n").unwrap();
        let c = ResultCache::open(&path).unwrap();
        assert!(c.is_empty(), "stale-schema entries are discarded");
        drop(c);
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .starts_with(&header()));
    }

    #[test]
    fn codec_round_trips_empty_and_tagged_lines() {
        for lines in [Vec::new(), sample()] {
            let back = decode_lines(&encode_lines(&lines)).unwrap();
            assert_eq!(back, lines);
        }
        assert!(decode_lines(&[0xff; 3]).is_err());
    }
}
