//! Fig. 22 — sensitivity to the invoke-buffer size (PHI).
//!
//! Paper: 1–2 entries slow Leviathan through queueing backpressure;
//! performance plateaus at 4 entries.

use levi_workloads::phi::{PhiVariant, PhiWorkload};
use levi_workloads::Workload;

use crate::runner::{Figure, RunCtx};
use crate::{header, table_report, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "fig22_invoke_buffer",
    about: "PHI sensitivity to invoke-buffer entries (paper Fig. 22)",
    workloads: &["phi"],
    run,
};

fn run(ctx: &RunCtx) {
    let w = &PhiWorkload;
    let scale = w.scale(ctx.kind());
    header(
        "Fig. 22 — PHI sensitivity to invoke-buffer entries",
        "paper: slow at 1-2 entries, plateau at >= 4",
    );
    // One graph shared across the sweep: only the buffer size changes.
    let graph = w.build_input(&scale);
    let jobs: Vec<(String, _)> = [1u32, 2, 4, 8, 16]
        .iter()
        .map(|&entries| {
            let mut s = scale.clone();
            s.invoke_buffer = entries;
            (format!("buffer={entries}"), (entries, s))
        })
        .collect();
    let env = &ctx.env;
    let graph_ref = &graph;
    let results = Sweep::new()
        .variants(jobs.iter().map(|(label, job)| (label.as_str(), job)))
        .run(|label, job| {
            let o = w
                .run(PhiVariant::Leviathan, &job.1, graph_ref, env)
                .expect_done(label);
            assert_eq!(
                o.checksum,
                w.golden(PhiVariant::Leviathan, &job.1, graph_ref),
                "{label} diverged from the golden model"
            );
            (job.0, o)
        });
    let mut rows = Vec::new();
    let mut best = u64::MAX;
    let mut cycles_at = Vec::new();
    for (_, (entries, o)) in &results {
        crate::progressln!("  ran buffer={entries}");
        best = best.min(o.metrics.cycles);
        cycles_at.push(o.metrics.cycles);
        rows.push(vec![
            entries.to_string(),
            o.metrics.cycles.to_string(),
            o.metrics.stats.invoke_nacks.to_string(),
        ]);
    }
    // Normalize to the plateau.
    for (row, c) in rows.iter_mut().zip(&cycles_at) {
        row.push(format!("{:.2}x", best as f64 / *c as f64));
    }
    table_report(
        "fig22_invoke_buffer",
        &["entries", "cycles", "NACKs", "rel. perf"],
        &rows,
    );
}
