//! The machine-readable perf report and its human rendering.
//!
//! A report is one JSON document (single line) that `levi-bench perf`
//! parses with its hand-rolled `json.rs` reader:
//!
//! ```json
//! {"perf_report":{"version":1,"quick":true,"profiled":true,
//!  "rounds":3,"reps":5,"warmup":2,"benches":[
//!    {"id":"micro/cache_probe_hit","kind":"micro","unit":"ns/iter",
//!     "median":31.2,"mad":0.4,"min":30.8,"mean":31.5,"p90":32,
//!     "rounds":[31.2,31.0,31.6],"sim_cycles":0,"kips":0,"phases":[]},
//!    {"id":"macro/phi","kind":"macro","unit":"ns/run", ...,
//!     "sim_cycles":1091156,"kips":52340.1,
//!     "phases":[{"phase":"exec","ns":812345,"calls":42}, ...]}]}}
//! ```
//!
//! `median`/`mad`/`min` are the robust statistics gating compares;
//! `rounds` carries one median per measurement round so a regression must
//! be confirmed by every round. `profiled` records whether the producing
//! build had `self-profile` compiled in — comparing a profiled report
//! against an unprofiled baseline (or quick against full) is meaningless,
//! so `perf compare` refuses mixed configurations.

use crate::measure::{BenchOpts, Measurement};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Formats a float for the report: finite, plain decimal, enough
/// precision for gating math to survive a round-trip.
fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    let s = format!("{v:.4}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// True when any measurement carries phase attribution (i.e. the
/// producing build had `self-profile` on somewhere in its graph).
pub fn profiled(benches: &[Measurement]) -> bool {
    benches.iter().any(|m| !m.phases.is_empty())
}

/// Renders the single-line JSON report document.
pub fn report_json(benches: &[Measurement], quick: bool, opts: BenchOpts) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"perf_report\":{{\"version\":1,\"quick\":{quick},\"profiled\":{},\
         \"rounds\":{},\"reps\":{},\"warmup\":{},\"benches\":[",
        profiled(benches),
        opts.rounds,
        opts.reps,
        opts.warmup
    );
    for (i, m) in benches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"kind\":\"{}\",\"unit\":\"{}\",\"median\":{},\
             \"mad\":{},\"min\":{},\"mean\":{},\"p90\":{},\"rounds\":[",
            escape(&m.id),
            m.kind,
            m.unit,
            num(m.median),
            num(m.mad),
            num(m.min),
            num(m.mean),
            m.hist.p90(),
        );
        for (j, r) in m.rounds.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&num(*r));
        }
        let _ = write!(
            out,
            "],\"sim_cycles\":{},\"kips\":{},\"phases\":[",
            m.sim_cycles,
            num(m.kips)
        );
        for (j, (phase, ns, calls)) in m.phases.ranked().into_iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"ns\":{ns},\"calls\":{calls}}}",
                phase.name()
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}}");
    out
}

/// Renders the human-readable summary table (plus a per-phase breakdown
/// for profiled macro benches).
pub fn render_report(benches: &[Measurement]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>14} {:>10} {:>14} {:>12}",
        "benchmark", "median", "mad", "min", "KIPS"
    );
    for m in benches {
        let kips = if m.kips > 0.0 {
            format!("{:.0}", m.kips)
        } else {
            "-".into()
        };
        let _ = writeln!(
            out,
            "{:<28} {:>11.1} ns {:>10.1} {:>11.1} ns {:>12}",
            m.id, m.median, m.mad, m.min, kips
        );
    }
    let with_phases: Vec<&Measurement> = benches.iter().filter(|m| !m.phases.is_empty()).collect();
    if !with_phases.is_empty() {
        let _ = writeln!(out, "\nhost-time attribution (self time per phase):");
        for m in with_phases {
            let total = m.phases.total_ns().max(1);
            let _ = writeln!(out, "  {}", m.id);
            for (phase, ns, calls) in m.phases.ranked() {
                let _ = writeln!(
                    out,
                    "    {:<8} {:>6.1}%  {:>14} ns  {:>12} calls",
                    phase.name(),
                    ns as f64 * 100.0 / total as f64,
                    ns,
                    calls
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::bench_micro;

    fn sample_measurements() -> Vec<Measurement> {
        let opts = BenchOpts {
            warmup: 0,
            rounds: 2,
            reps: 2,
        };
        let mut x = 0u64;
        let mut m = bench_micro("micro/t\"est", opts, 100, || {
            x = x.wrapping_add(1);
            std::hint::black_box(x);
        });
        m.median = 12.5;
        let mut mac = bench_micro("macro/w", opts, 100, || {
            std::hint::black_box(0u64);
        });
        mac.kind = "macro";
        mac.sim_cycles = 1000;
        mac.kips = 250.75;
        mac.phases.ns[0] = 10;
        mac.phases.calls[0] = 1;
        vec![m, mac]
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let opts = BenchOpts {
            warmup: 0,
            rounds: 2,
            reps: 2,
        };
        let j = report_json(&sample_measurements(), true, opts);
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        assert_eq!(j.matches('[').count(), j.matches(']').count(), "{j}");
        assert!(j.contains("\"perf_report\""));
        assert!(j.contains("micro/t\\\"est"), "quote escaped: {j}");
        assert!(j.contains("\"median\":12.5"), "{j}");
        assert!(j.contains("\"kips\":250.75"), "{j}");
        assert!(j.contains("\"phase\":\"build\""), "{j}");
        assert!(!j.contains('\n'));
    }

    #[test]
    fn num_formatting_round_trips() {
        assert_eq!(num(12.5), "12.5");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(3.0), "3");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(1234.5678), "1234.5678");
    }

    #[test]
    fn render_mentions_every_bench_and_phases() {
        let text = render_report(&sample_measurements());
        assert!(text.contains("micro/t\"est"));
        assert!(text.contains("macro/w"));
        assert!(text.contains("host-time attribution"));
        assert!(text.contains("build"));
    }
}
