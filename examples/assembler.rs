//! The LevIR text assembler: write near-data actions as assembly source
//! instead of builder calls, and run them on the simulated machine.
//!
//! Run with: `cargo run --release --example assembler`

use std::sync::Arc;

use levi_isa::assemble;
use leviathan::{System, SystemConfig};

const SOURCE: &str = r"
; histogram: offload one binning task per sample.
; bin(actor = bucket address, amt):
fn bin:
    rmw.add.relaxed.b8 r2, [r0], r1
    halt

; main(r0 = samples ptr, r1 = count, r2 = buckets ptr)
fn main:
    imm  r8, 0                  ; i
loop:
    bgeu r8, r1, done
    ld8  r9, [r0+0]             ; sample
    addi r0, r0, 8
    andi r9, r9, 15             ; 16 buckets
    muli r9, r9, 8
    add  r9, r9, r2             ; bucket address
    imm  r10, 1
    invoke.remote r9, @0, (r10) ; count near the bucket's bank
    addi r8, r8, 1
    jmp  loop
done:
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = Arc::new(assemble(SOURCE)?);
    println!(
        "assembled {} functions / {} instructions:",
        prog.len(),
        prog.total_insts()
    );
    println!("{prog}");

    let mut sys = System::try_new(SystemConfig::small())?;
    let n = 256u64;
    let samples = sys.alloc_raw(8 * n, 64);
    let buckets = sys.alloc_raw(8 * 16, 64);
    let mut x = 0x1234_5678u64;
    let mut expect = [0u64; 16];
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = x >> 33;
        sys.write_u64(samples + 8 * i, v);
        expect[(v & 15) as usize] += 1;
    }

    let bin = prog.func_by_name("bin").expect("fn bin");
    let main_fn = prog.func_by_name("main").expect("fn main");
    sys.register_action(&prog, bin); // becomes @0
    sys.spawn_thread(0, &prog, main_fn, &[samples, n, buckets])
        .unwrap();
    sys.run()?;

    for (b, &e) in expect.iter().enumerate() {
        let got = sys.read_u64(buckets + 8 * b as u64);
        assert_eq!(got, e, "bucket {b}");
    }
    println!("histogram of {n} samples correct across 16 offloaded buckets");
    println!(
        "({} invokes, {} cycles)",
        sys.stats().invokes,
        sys.stats().cycles
    );
    Ok(())
}
