//! The unified experiment harness: one [`Workload`] interface over every
//! case study, an object-safe facade for registry-driven drivers, and the
//! static [`REGISTRY`] those drivers consume.
//!
//! The paper's thesis is that a single substrate unifies the three NDC
//! paradigms; the evaluation apparatus mirrors that by putting every
//! workload behind one trait. A driver (the `levi-bench` runner, the
//! differential tests, future fault matrices) can enumerate variants,
//! build deterministic inputs, run the timed simulation, and validate the
//! result against the synchronous-host golden model without knowing which
//! workload it is driving.
//!
//! Two views of the same workload:
//!
//! * [`Workload`] — the typed interface. Figure descriptors that sweep a
//!   scale knob (invoke-buffer entries, stream capacity, table size, tile
//!   count) use this directly: they construct custom `Scale` values and
//!   still get uniform environment injection and golden checking.
//! * [`DynWorkload`] — the erased facade, implemented for every
//!   `Workload` by a blanket impl. [`DynWorkload::prepare`] snapshots one
//!   scale + input pair behind [`PreparedRun`], which runs variants by
//!   label; this is what [`REGISTRY`]-driven code uses.

use levi_sim::FaultPlan;
use leviathan::SystemConfig;

use crate::metrics::RunMetrics;

/// Which of a workload's built-in scales to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleKind {
    /// The benchmark scale preserving the paper's working-set ratios.
    Paper,
    /// The tiny unit-test scale.
    Test,
    /// Reduced scale for smoke runs (`LEVI_BENCH_QUICK`); today every
    /// workload maps this to its test scale.
    Quick,
}

/// A machine-shape-independent fault-plan recipe.
///
/// Fault plans validate against a concrete machine (tile and controller
/// counts), which vary across figures and scale sweeps, so the harness
/// carries the *recipe* and generates a concrete [`FaultPlan`] per run
/// from the target configuration.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Seed for the plan's deterministic fault windows.
    pub seed: u64,
    /// Cycle horizon within which fault windows start.
    pub horizon: u64,
}

impl FaultSpec {
    /// A mild default plan: engine outages, invoke-buffer squeezes, and
    /// DRAM throttles (no link outages — those can partition short runs).
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            horizon: 200_000,
        }
    }

    /// Instantiates the plan for a concrete machine shape.
    pub fn plan_for(&self, cfg: &SystemConfig) -> FaultPlan {
        let tiles = cfg.machine.tiles;
        let controllers = cfg.machine.mem.controllers;
        let min = (self.horizon / 16).max(1);
        let max = (self.horizon / 4).max(2);
        FaultPlan::new(self.seed)
            .gen_engine_outages(4, tiles, self.horizon, min, max)
            .gen_invoke_squeezes(2, 1, self.horizon, min, max)
            .gen_dram_throttles(2, controllers, 4, self.horizon, min, max)
            .retry_budget(3)
            .backoff(16, 256)
    }
}

/// Per-run environment applied on top of a workload's own configuration.
///
/// Workload `run_*_with` entry points thread this through their
/// `customize` hook, so every figure — registry-driven or knob-sweeping —
/// honors the same injection switches uniformly.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunEnv {
    /// Inject a seeded fault plan into every run (the results must still
    /// match the golden model; only timing may change).
    pub fault: Option<FaultSpec>,
    /// Record trace events and invoke-lifecycle spans so the driver can
    /// export telemetry after the run. Purely observational: simulated
    /// timing, checksums, and printed tables are identical either way.
    pub telemetry: bool,
    /// Take a snapshot of the full machine state every this many cycles
    /// (0 disables the hook). Purely observational: the scheduler defers
    /// the due event, checkpoints, and replays it, so simulated timing is
    /// unchanged.
    pub checkpoint_every: u64,
    /// After each run, restore the last checkpoint and re-simulate to the
    /// end, failing the run if the replica diverges from the original.
    /// Implies a default `checkpoint_every` of 100 000 cycles when none
    /// is set.
    pub snapshot_verify: bool,
    /// Model address translation (per-tile TLBs + timed page walks).
    /// Timing changes but results must still match the golden model.
    pub xlat: Option<levi_sim::XlatConfig>,
    /// Split the machine into co-running tenants under a sharing policy.
    /// Timing changes but results must still match the golden model.
    pub tenants: Option<levi_sim::TenantConfig>,
}

impl RunEnv {
    /// Applies the environment to a run's system configuration.
    pub fn customize(&self, cfg: &mut SystemConfig) {
        if let Some(spec) = &self.fault {
            let plan = spec.plan_for(cfg);
            // Faulted runs get a watchdog: a fault-handling bug must
            // abort the experiment, not hang it.
            cfg.machine = cfg.machine.clone().faulted(plan).watchdog(10_000_000_000);
        }
        if self.telemetry {
            cfg.machine.trace = true;
            cfg.machine.trace_spans = true;
        }
        if self.checkpoint_every > 0 {
            cfg.machine.checkpoint_every = self.checkpoint_every;
        }
        if self.snapshot_verify {
            cfg.machine.checkpoint_verify = true;
            if cfg.machine.checkpoint_every == 0 {
                cfg.machine.checkpoint_every = 100_000;
            }
        }
        if let Some(x) = self.xlat {
            cfg.machine.xlat = Some(x);
        }
        if let Some(t) = self.tenants {
            cfg.machine.tenants = Some(t);
        }
    }
}

/// The uniform result of one timed run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Measured metrics (cycles, energy, full stats).
    pub metrics: RunMetrics,
    /// The workload's functional checksum, compared against
    /// [`Workload::golden`] by every driver.
    pub checksum: u64,
    /// Workload-specific side channels (e.g. HATS edge counts), for
    /// figure epilogues that need more than the standard metrics.
    pub aux: Vec<(&'static str, u64)>,
}

impl RunOutcome {
    /// Wraps metrics and a checksum with no auxiliary values.
    pub fn new(metrics: RunMetrics, checksum: u64) -> Self {
        RunOutcome {
            metrics,
            checksum,
            aux: Vec::new(),
        }
    }

    /// Attaches one named auxiliary value.
    pub fn with_aux(mut self, name: &'static str, value: u64) -> Self {
        self.aux.push((name, value));
        self
    }

    /// Looks up an auxiliary value by name.
    pub fn aux_value(&self, name: &str) -> Option<u64> {
        self.aux.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }
}

/// Result of asking a workload to run one variant.
#[derive(Clone, Debug)]
pub enum RunStatus {
    /// The variant ran; here is its outcome.
    Done(Box<RunOutcome>),
    /// The (variant, scale) combination is unsupported, with the reason
    /// the paper gives (e.g. unpadded 6 B objects straddle cache lines).
    Unsupported(&'static str),
}

impl RunStatus {
    /// Unwraps the outcome, panicking with `context` if unsupported.
    pub fn expect_done(self, context: &str) -> RunOutcome {
        match self {
            RunStatus::Done(o) => *o,
            RunStatus::Unsupported(reason) => {
                panic!("{context}: variant unsupported ({reason})")
            }
        }
    }

    /// The outcome, or `None` if the variant is unsupported.
    pub fn outcome(self) -> Option<RunOutcome> {
        match self {
            RunStatus::Done(o) => Some(*o),
            RunStatus::Unsupported(_) => None,
        }
    }
}

/// One evaluation workload: named variants over a deterministic input,
/// with a host-side golden model.
///
/// Contract: `run` must be a pure function of `(variant, scale, input,
/// env)` — byte-identical across repeats and threads — and its checksum
/// must equal `golden` for every supported variant (faults included).
pub trait Workload: Sync {
    /// Variant selector (typically a small enum).
    type Variant: Copy + Send + Sync;
    /// Scale knobs.
    type Scale: Clone + Send + Sync;
    /// Pre-built deterministic input shared across variants.
    type Input: Send + Sync;

    /// Registry name (stable, lowercase).
    fn name(&self) -> &'static str;

    /// All variants with their display labels, in presentation order.
    /// The first variant is the comparison baseline.
    fn variants(&self) -> Vec<(&'static str, Self::Variant)>;

    /// The built-in scale for `kind`.
    fn scale(&self, kind: ScaleKind) -> Self::Scale;

    /// Builds the deterministic input for a scale (seeded by the scale).
    fn build_input(&self, scale: &Self::Scale) -> Self::Input;

    /// One-line description of the input at this scale (figure headers).
    fn describe(&self, scale: &Self::Scale) -> String;

    /// Runs one variant on the timed simulator.
    fn run(
        &self,
        variant: Self::Variant,
        scale: &Self::Scale,
        input: &Self::Input,
        env: &RunEnv,
    ) -> RunStatus;

    /// The synchronous-host golden checksum the run must reproduce.
    fn golden(&self, variant: Self::Variant, scale: &Self::Scale, input: &Self::Input) -> u64;
}

/// A scale + input snapshot that runs variants by label (see
/// [`DynWorkload::prepare`]).
pub trait PreparedRun: Sync {
    /// Describes the prepared input (figure headers).
    fn describe(&self) -> String;
    /// Runs the variant with display label `label`.
    ///
    /// # Panics
    /// Panics if `label` names no variant of this workload.
    fn run(&self, label: &str, env: &RunEnv) -> RunStatus;
    /// The golden checksum for the variant with label `label`.
    fn golden(&self, label: &str) -> u64;
}

/// The object-safe facade over [`Workload`], implemented for every
/// workload by a blanket impl. [`REGISTRY`] stores these.
pub trait DynWorkload: Sync {
    /// Registry name.
    fn name(&self) -> &'static str;
    /// Variant display labels in presentation order (first = baseline).
    fn variant_labels(&self) -> Vec<&'static str>;
    /// Builds the input for `kind` once, returning a handle that runs
    /// variants by label (drivers reuse one input across the sweep).
    fn prepare(&self, kind: ScaleKind) -> Box<dyn PreparedRun + '_>;
}

struct Prepared<'w, W: Workload> {
    workload: &'w W,
    scale: W::Scale,
    input: W::Input,
}

impl<W: Workload> Prepared<'_, W> {
    fn variant(&self, label: &str) -> W::Variant {
        self.workload
            .variants()
            .into_iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| {
                panic!(
                    "workload {}: no variant labeled {label:?}",
                    Workload::name(self.workload)
                )
            })
            .1
    }
}

impl<W: Workload> PreparedRun for Prepared<'_, W> {
    fn describe(&self) -> String {
        self.workload.describe(&self.scale)
    }

    fn run(&self, label: &str, env: &RunEnv) -> RunStatus {
        self.workload
            .run(self.variant(label), &self.scale, &self.input, env)
    }

    fn golden(&self, label: &str) -> u64 {
        self.workload
            .golden(self.variant(label), &self.scale, &self.input)
    }
}

impl<W: Workload> DynWorkload for W {
    fn name(&self) -> &'static str {
        Workload::name(self)
    }

    fn variant_labels(&self) -> Vec<&'static str> {
        self.variants().into_iter().map(|(l, _)| l).collect()
    }

    fn prepare(&self, kind: ScaleKind) -> Box<dyn PreparedRun + '_> {
        let scale = self.scale(kind);
        let input = self.build_input(&scale);
        Box::new(Prepared {
            workload: self,
            scale,
            input,
        })
    }
}

/// Every registered workload: the paper's four case studies plus the
/// substrate microbenchmarks. Drivers (the `levi-bench` runner, the
/// differential tests) enumerate this; adding a workload here is all a
/// new case study needs to join every sweep.
pub static REGISTRY: &[&dyn DynWorkload] = &[
    &crate::phi::PhiWorkload,
    &crate::decompress::DecompressWorkload,
    &crate::hashtable::HashtableWorkload,
    &crate::hats::HatsWorkload,
    &crate::micro::MicroWorkload,
];

/// Looks up a registered workload by name.
pub fn find_workload(name: &str) -> Option<&'static dyn DynWorkload> {
    REGISTRY.iter().copied().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<_> = REGISTRY.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate registry names");
        for w in REGISTRY {
            assert!(find_workload(w.name()).is_some());
            assert!(
                !w.variant_labels().is_empty(),
                "{} has no variants",
                w.name()
            );
        }
        assert!(find_workload("no-such-workload").is_none());
    }

    #[test]
    fn fault_spec_generates_a_valid_plan_for_any_shape() {
        for tiles in [4u32, 16] {
            let cfg = SystemConfig::with_tiles(tiles);
            let plan = FaultSpec::new(7).plan_for(&cfg);
            assert!(plan.total_faults() > 0);
            plan.validate(&cfg.machine).expect("plan fits the machine");
        }
    }
}
