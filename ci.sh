#!/usr/bin/env bash
# Local CI: exactly what .github/workflows/ci.yml runs.
# Everything is offline — the workspace has no crates.io dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== module size guard =="
# The sim monolith was split into layered modules on purpose; keep it
# that way. Fails if any source file under a src/ tree reaches 1200 lines.
oversized=0
while IFS= read -r f; do
  lines=$(wc -l < "$f")
  if [ "$lines" -gt 1200 ]; then
    echo "FAIL: $f has $lines lines (limit 1200) — split it into modules"
    oversized=1
  fi
done < <(find . -path ./target -prune -o -path '*/src/*.rs' -print -o -path './src/*.rs' -print)
[ "$oversized" -eq 0 ]

echo "== fmt ==";    cargo fmt --all -- --check
echo "== clippy =="; cargo clippy --workspace --all-targets -- -D warnings
echo "== build ==";  cargo build --workspace --release
echo "== doc ==";    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
echo "== test ==";   cargo test --workspace -q
echo "== fault smoke =="
# Fault injection must be a pure function of the seed: two runs with the
# same seed must print byte-identical output.
tmp="$(mktemp -d)"; trap 'rm -rf "$tmp"' EXIT
cargo run --release --quiet --example fault_demo -- 3 > "$tmp/a.txt"
cargo run --release --quiet --example fault_demo -- 3 > "$tmp/b.txt"
diff "$tmp/a.txt" "$tmp/b.txt"
echo "== bench runner =="
# Every figure must run end-to-end at quick scale and the JSON report
# must be complete (one line per figure + a manifest covering them all).
rm -f "$tmp/bench-report.json"
cargo run --release --quiet -p levi-bench -- run all --quick --json "$tmp/bench-report.json" > /dev/null
cargo run --release --quiet -p levi-bench -- check-report "$tmp/bench-report.json"
echo "== xlat ablation smoke =="
# The levi-xlat figures must be deterministic: two quick runs of each
# print byte-identical output. Both figures are registered in ALL, so the
# check-report pass above already validated their JSON lines and manifest
# coverage — assert they really are in the report to keep that honest.
for fig in ablation_translation ablation_tenancy; do
  grep -q "\"figure\":\"$fig\"" "$tmp/bench-report.json"
  cargo run --release --quiet -p levi-bench -- run "$fig" --quick \
    > "$tmp/$fig-a.txt" 2> /dev/null
  cargo run --release --quiet -p levi-bench -- run "$fig" --quick \
    > "$tmp/$fig-b.txt" 2> /dev/null
  diff "$tmp/$fig-a.txt" "$tmp/$fig-b.txt"
done
echo "== telemetry smoke =="
# --telemetry must be purely observational: one figure runs with and
# without the flag and must print byte-identical stdout, and the dump it
# produces must pass structural validation.
cargo run --release --quiet -p levi-bench -- run fig05 --quick \
  > "$tmp/fig05-plain.txt" 2> /dev/null
cargo run --release --quiet -p levi-bench -- run fig05 --quick \
  --telemetry "$tmp/telemetry.jsonl" > "$tmp/fig05-telemetry.txt" 2> /dev/null
diff "$tmp/fig05-plain.txt" "$tmp/fig05-telemetry.txt"
cargo run --release --quiet -p levi-bench -- check-report "$tmp/telemetry.jsonl"
echo "== crash recovery smoke =="
# A journaled run that dies mid-sweep must resume to a byte-identical
# report: run a figure to completion under --resume, truncate its journal
# down to the header + one record + a torn half-written line (what a
# kill mid-append leaves behind), resume, and diff the two reports.
rm -f "$tmp/run.journal" "$tmp/resume-a.json" "$tmp/resume-b.json"
cargo run --release --quiet -p levi-bench -- run fig05 --quick \
  --json "$tmp/resume-a.json" --resume "$tmp/run.journal" > /dev/null 2> /dev/null
head -n 2 "$tmp/run.journal" > "$tmp/dead.journal"
torn=$(sed -n '3p' "$tmp/run.journal")
printf '%s' "${torn:0:40}" >> "$tmp/dead.journal"
mv "$tmp/dead.journal" "$tmp/run.journal"
cargo run --release --quiet -p levi-bench -- run fig05 --quick \
  --json "$tmp/resume-b.json" --resume "$tmp/run.journal" > /dev/null 2> "$tmp/resume.log"
grep -q "(resumed)" "$tmp/resume.log"
diff "$tmp/resume-a.json" "$tmp/resume-b.json"
echo "== snapshot verify smoke =="
# Periodic checkpointing + post-run replay verification must be purely
# observational: fig05 prints byte-identical stdout with both armed, and
# the verification replays must all pass.
cargo run --release --quiet -p levi-bench -- run fig05 --quick \
  --snapshot-verify --checkpoint-every 50000 \
  > "$tmp/fig05-verified.txt" 2> /dev/null
diff "$tmp/fig05-plain.txt" "$tmp/fig05-verified.txt"
echo "== serve smoke =="
# The service layer must be invisible at the byte level: a run through
# `--server` must print exactly what the in-process run prints, and a
# repeated request must be served from the content-addressed cache
# without re-executing (the client reports the hit on stderr).
cargo run --release --quiet -p levi-bench -- serve \
  --addr 127.0.0.1:0 --cache "$tmp/serve.cache" > "$tmp/serve.log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2> /dev/null || true; rm -rf "$tmp"' EXIT
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^levi-serve listening on //p' "$tmp/serve.log")
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ]
cargo run --release --quiet -p levi-bench -- run fig05 --quick \
  --server "$addr" > "$tmp/fig05-remote1.txt" 2> /dev/null
cargo run --release --quiet -p levi-bench -- run fig05 --quick \
  --server "$addr" > "$tmp/fig05-remote2.txt" 2> "$tmp/remote2.log"
cargo run --release --quiet -p levi-bench -- run ablation_translation --quick \
  --server "$addr" > "$tmp/xlat-remote.txt" 2> /dev/null
cargo run --release --quiet -p levi-bench -- run ablation_tenancy --quick \
  --server "$addr" > "$tmp/tenancy-remote.txt" 2> /dev/null
kill "$serve_pid"
grep -q "cache hit" "$tmp/remote2.log"
diff "$tmp/fig05-plain.txt" "$tmp/fig05-remote1.txt"
diff "$tmp/fig05-remote1.txt" "$tmp/fig05-remote2.txt"
diff "$tmp/ablation_translation-a.txt" "$tmp/xlat-remote.txt"
diff "$tmp/ablation_tenancy-a.txt" "$tmp/tenancy-remote.txt"
echo "== perf gate =="
# Host-performance smoke: measure, accept a machine-local baseline, then
# re-measure and compare against it. Gating is machine-local (wall-clock
# baselines do not transfer between hosts) with a generous threshold —
# this catches order-of-magnitude regressions and proves the run →
# accept → compare pipeline end to end. A dated BENCH_<date>.json
# trajectory file must come out of the run as well.
mkdir -p "$tmp/perf"
cargo run --release --quiet -p levi-bench -- perf run --quick \
  --json "$tmp/perf/report-a.json" > /dev/null
cargo run --release --quiet -p levi-bench -- perf accept \
  "$tmp/perf/report-a.json" --baseline "$tmp/perf/local-baseline.json"
cargo run --release --quiet -p levi-bench -- perf run --quick \
  --json "$tmp/perf/report-b.json" --trajectory "$tmp/perf" > /dev/null
cargo run --release --quiet -p levi-bench -- perf compare \
  "$tmp/perf/report-b.json" --baseline "$tmp/perf/local-baseline.json" --threshold 75
ls "$tmp"/perf/BENCH_*.json > /dev/null
echo "== alloc smoke =="
# The data-oriented substrate's core claim: once warm, the per-instruction
# hot path performs zero heap allocations. A counting global allocator
# (release build, so the measured path is the shipped one) enforces it.
cargo test --release -q -p levi-sim --test alloc_smoke
echo "== trajectory validation =="
# Both the fresh CI trajectory and the committed perf history must parse
# as perf reports and be chronological in filename order.
cargo run --release --quiet -p levi-bench -- perf trajectory "$tmp/perf"
cargo run --release --quiet -p levi-bench -- perf trajectory perf
echo "== ok =="
