//! Thread-local output routing for the figure path.
//!
//! Historically every figure printed straight to the process streams:
//! report tables and figure epilogues to stdout, per-run progress to
//! stderr. `levi-bench serve` needs that same output *captured and
//! streamed over a socket*, byte-identically, so emission now funnels
//! through one seam: the [`crate::outln!`] and [`crate::progressln!`]
//! macros call [`line()`](fn@line) / [`progress`], which write to the thread's
//! installed [`Sink`] — or to stdout/stderr when none is installed,
//! which is exactly the historical behavior (the in-process CLI path
//! never installs one).
//!
//! Sinks are **per thread**. A figure's `run` function executes on one
//! thread (only its inner [`crate::Sweep`]s fan out, and sweep closures
//! must not print), so installing a sink on that thread captures the
//! figure's entire output without any process-global state — concurrent
//! server jobs on different worker threads cannot interleave.

use std::cell::RefCell;

/// One captured line of figure output, tagged with the stream it would
/// have gone to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Line {
    /// A stdout line: report tables, headers, figure epilogues. These
    /// are the bytes that must survive the wire round trip identically.
    Out(String),
    /// A stderr line: per-run progress (`  ran ...`).
    Progress(String),
}

impl Line {
    /// The line text, whichever stream it targets.
    pub fn text(&self) -> &str {
        match self {
            Line::Out(s) | Line::Progress(s) => s,
        }
    }

    /// True for stdout lines.
    pub fn is_out(&self) -> bool {
        matches!(self, Line::Out(_))
    }
}

/// A sink receiving the thread's figure output, one line per call.
pub type Sink = Box<dyn FnMut(Line)>;

thread_local! {
    static SINK: RefCell<Option<Sink>> = const { RefCell::new(None) };
}

/// Installs `sink` as this thread's output destination, returning a
/// guard that restores the previous destination (normally the process
/// streams) on drop. Nesting is supported but unusual.
pub fn install_sink(sink: Sink) -> SinkGuard {
    let prev = SINK.with(|s| s.borrow_mut().replace(sink));
    SinkGuard { prev }
}

/// Restores the previous sink when dropped (see [`install_sink`]).
pub struct SinkGuard {
    prev: Option<Sink>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        SINK.with(|s| *s.borrow_mut() = self.prev.take());
    }
}

/// Emits one stdout line (see [`crate::outln!`]).
pub fn line(text: String) {
    dispatch(Line::Out(text));
}

/// Emits one stderr progress line (see [`crate::progressln!`]).
pub fn progress(text: String) {
    dispatch(Line::Progress(text));
}

fn dispatch(line: Line) {
    let handled = SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink(line.clone());
            true
        } else {
            false
        }
    });
    if !handled {
        match line {
            Line::Out(s) => println!("{s}"),
            Line::Progress(s) => eprintln!("{s}"),
        }
    }
}

/// Emits one line of figure stdout. Exactly `println!` when no sink is
/// installed on the thread; captured by the sink otherwise.
#[macro_export]
macro_rules! outln {
    () => { $crate::out::line(String::new()) };
    ($($arg:tt)*) => { $crate::out::line(format!($($arg)*)) };
}

/// Emits one line of per-run progress. Exactly `eprintln!` when no sink
/// is installed on the thread; captured by the sink otherwise.
#[macro_export]
macro_rules! progressln {
    () => { $crate::out::progress(String::new()) };
    ($($arg:tt)*) => { $crate::out::progress(format!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn sink_captures_both_streams_in_emission_order() {
        let captured: Rc<RefCell<Vec<Line>>> = Rc::default();
        {
            let sink_ref = Rc::clone(&captured);
            let _guard = install_sink(Box::new(move |l| sink_ref.borrow_mut().push(l)));
            crate::outln!("table row {}", 1);
            crate::progressln!("  ran {}", "variant");
            crate::outln!();
        }
        assert_eq!(
            *captured.borrow(),
            vec![
                Line::Out("table row 1".into()),
                Line::Progress("  ran variant".into()),
                Line::Out(String::new()),
            ]
        );
        // Guard dropped: emission falls back to the process streams
        // (observable only as "does not panic" here).
        crate::outln!("uncaptured");
    }

    #[test]
    fn guard_restores_the_previous_sink() {
        let outer: Rc<RefCell<Vec<Line>>> = Rc::default();
        let outer_ref = Rc::clone(&outer);
        let _outer_guard = install_sink(Box::new(move |l| outer_ref.borrow_mut().push(l)));
        {
            let inner: Rc<RefCell<Vec<Line>>> = Rc::default();
            let inner_ref = Rc::clone(&inner);
            let _inner_guard = install_sink(Box::new(move |l| inner_ref.borrow_mut().push(l)));
            crate::outln!("inner");
            assert_eq!(inner.borrow().len(), 1);
            assert!(outer.borrow().is_empty());
        }
        crate::outln!("outer");
        assert_eq!(*outer.borrow(), vec![Line::Out("outer".into())]);
    }

    #[test]
    fn line_accessors() {
        let o = Line::Out("a".into());
        let p = Line::Progress("b".into());
        assert!(o.is_out() && !p.is_out());
        assert_eq!(o.text(), "a");
        assert_eq!(p.text(), "b");
    }
}
