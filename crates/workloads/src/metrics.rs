//! Common measurement plumbing for the case studies.

use levi_sim::{EnergyBreakdown, MachineConfig, Stats};
use leviathan::System;

/// Shrinks the whole cache hierarchy by `factor`, preserving the paper's
/// L1:L2:LLC ratios (32 KB : 128 KB : 512 KB per tile). Workloads use this
/// to scale working-set-to-cache ratios down to simulatable sizes without
/// breaking LLC inclusivity (the LLC must stay larger than the private
/// caches it backs).
pub fn shrink_caches(cfg: &mut MachineConfig, factor: u64) {
    assert!(
        factor.is_power_of_two(),
        "cache factor must be a power of two"
    );
    cfg.l1.size_bytes /= factor;
    cfg.l2.size_bytes /= factor;
    cfg.llc.size_bytes /= factor;
    assert!(cfg.l1.sets() >= 1 && cfg.l2.sets() >= 1 && cfg.llc.sets() >= 1);
}

/// The metrics every experiment reports.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Variant label (e.g. "Baseline", "Leviathan").
    pub label: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Dynamic energy breakdown.
    pub energy: EnergyBreakdown,
    /// Full statistics snapshot.
    pub stats: Stats,
}

impl RunMetrics {
    /// Captures metrics from a finished system.
    pub fn capture(label: &str, sys: &System) -> Self {
        RunMetrics {
            label: label.to_string(),
            cycles: sys.stats().cycles,
            energy: sys.energy(),
            stats: sys.stats().clone(),
        }
    }

    /// Speedup of this run relative to `baseline` (>1 is faster).
    pub fn speedup_vs(&self, baseline: &RunMetrics) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Energy relative to `baseline` (<1 is better).
    pub fn energy_vs(&self, baseline: &RunMetrics) -> f64 {
        self.energy.relative_to(&baseline.energy)
    }
}

/// Formats a speedup/energy table row.
pub fn row(label: &str, speedup: f64, rel_energy: f64) -> String {
    format!("{label:<28} {speedup:>8.2}x {:>9.1}%", rel_energy * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leviathan::SystemConfig;

    #[test]
    fn capture_and_compare() {
        let sys = System::try_new(SystemConfig::small()).expect("small config is valid");
        let mut a = RunMetrics::capture("a", &sys);
        let mut b = RunMetrics::capture("b", &sys);
        a.cycles = 1000;
        b.cycles = 500;
        assert!((b.speedup_vs(&a) - 2.0).abs() < 1e-12);
        assert_eq!(b.energy_vs(&a), 0.0, "both zero energy");
    }

    #[test]
    fn row_formatting() {
        let r = row("Leviathan", 3.7, 0.78);
        assert!(r.contains("Leviathan"));
        assert!(r.contains("3.70x"));
        assert!(r.contains("78.0%"));
    }
}
