// Debug: per-variant performance breakdown for HATS at test scale.
use levi_workloads::gen::Graph;
use levi_workloads::hats::*;

fn main() {
    let scale = HatsScale::test();
    let graph = Graph::community(
        scale.vertices,
        scale.avg_degree,
        scale.community,
        scale.intra_pct,
        scale.seed,
    );
    for v in HatsVariant::all() {
        let r = run_hats_on(v, &scale, &graph);
        let s = &r.metrics.stats;
        println!(
            "{:<10} cyc={:>9} dram={:>7} (e={:>6}/v={:>6}) l1m={:>7} l2m={:>7} mpred/e={:.3} eng_i/e={:>6.1} stall={:>8} push={:>7}",
            r.metrics.label, r.metrics.cycles, s.dram_accesses,
            s.dram_by_phase[0], s.dram_by_phase[1],
            s.l1.misses, s.l2.misses,
            s.mispredicts as f64 / r.edges as f64,
            s.engine_instrs as f64 / r.edges as f64,
            s.stream_stall_cycles, s.stream_pushes
        );
    }
}
