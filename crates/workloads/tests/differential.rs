//! Differential validation of the unified experiment harness: for every
//! registered workload × variant at test scale, the timed-simulator
//! checksum must equal the synchronous-host golden model's. This extends
//! the ad-hoc spot checks the bench binaries used to carry into one
//! uniform, registry-driven sweep — a new workload gets this coverage by
//! appearing in [`levi_workloads::harness::REGISTRY`], nothing else.

use levi_workloads::harness::{find_workload, RunEnv, RunStatus, ScaleKind};

/// Runs every variant of `name` at test scale and checks it against the
/// golden model. Returns how many variants actually ran.
fn check(name: &str) -> usize {
    let w = find_workload(name).unwrap_or_else(|| panic!("workload {name} not registered"));
    let prepared = w.prepare(ScaleKind::Test);
    let env = RunEnv::default();
    let mut ran = 0;
    for label in w.variant_labels() {
        match prepared.run(label, &env) {
            RunStatus::Done(outcome) => {
                assert_eq!(
                    outcome.checksum,
                    prepared.golden(label),
                    "{name}/{label} diverged from the golden model"
                );
                assert!(outcome.metrics.cycles > 0, "{name}/{label} ran no cycles");
                ran += 1;
            }
            RunStatus::Unsupported(reason) => {
                assert!(
                    !reason.is_empty(),
                    "{name}/{label} must explain why it is unsupported"
                );
            }
        }
    }
    ran
}

#[test]
fn phi_matches_golden_across_variants() {
    assert_eq!(check("phi"), 5);
}

#[test]
fn decompress_matches_golden_across_variants() {
    // NoPadding is unsupported (6 B objects straddle lines), as in the paper.
    assert_eq!(check("decompress"), 4);
}

#[test]
fn hashtable_matches_golden_across_variants() {
    assert_eq!(check("hashtable"), 6);
}

#[test]
fn hats_matches_golden_across_variants() {
    assert_eq!(check("hats"), 5);
}

#[test]
fn micro_matches_golden_across_variants() {
    assert_eq!(check("micro"), 3);
}
