//! A minimal JSON reader for validating `LEVI_BENCH_JSON` report files
//! (`levi-bench check-report`) without pulling a crates.io dependency
//! into the workspace.
//!
//! Supports exactly what the harness emits — objects, arrays, strings
//! with `\\` / `\"` escapes (plus the standard control escapes and
//! `\uXXXX`, surrogate pairs included), numbers, booleans, and null.
//! Not a general-purpose parser: numbers are read as `f64`.
//!
//! The writing side lives here too: [`JsonWriter`] is the incremental
//! emitter every hand-formatted JSON producer in the harness
//! ([`crate::figure_json`], [`crate::table_json`],
//! [`crate::runner::manifest_json`], the `levi-serve` wire protocol)
//! now rides on — escaping-correct by construction, deterministic key
//! order (keys are emitted in call order), and explicit fixed-precision
//! number formatting so migrated emitters stay byte-identical. Parsed
//! [`Json`] values round-trip back to text with [`Json::to_json`].
//!
//! Because the perf gate (`levi-bench perf compare`) feeds this parser
//! files a human may have hand-edited, it is strict where laxity would
//! corrupt a comparison: duplicate object keys are an error (lookup is
//! first-match, so a duplicate would silently shadow), and nesting depth
//! is capped so a pathological input fails with an error instead of
//! overflowing the parser's recursion.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other values.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes this value back to JSON text. Object members keep
    /// document order, so `parse(s).to_json()` is deterministic.
    /// Non-finite numbers (which JSON cannot represent) become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) if n.is_finite() => {
                let _ = write!(out, "{n}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                write_escaped(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    write_escaped(out, k);
                    out.push_str("\":");
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` to `out` with every character JSON requires escaped:
/// `\` and `"` always, the common control characters as their short
/// escapes, and any other control character as `\u00XX`.
pub fn write_escaped(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// An incremental JSON emitter: push structure (`begin_obj`/`begin_arr`),
/// keys, and values in document order; [`JsonWriter::finish`] returns the
/// rendered text. Escaping is applied to every string, keys are emitted
/// exactly in call order, and numbers are written with the explicit
/// format the caller chooses ([`JsonWriter::u64`] for integers,
/// [`JsonWriter::fixed`] for fixed-precision floats), so an emitter
/// migrated from hand-written `write!` calls produces identical bytes.
///
/// # Panics
/// Structural misuse — a value where a key is required, `end_obj` on an
/// array, finishing with frames still open — panics: these are harness
/// bugs, not data errors.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Open frames; `true` = object (expecting keys), `false` = array.
    stack: Vec<bool>,
    /// How many members/items the innermost frames hold (parallel to
    /// `stack`), for comma placement.
    counts: Vec<usize>,
    /// A key was just written; the next value is its member value.
    key_armed: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_value(&mut self) {
        if let Some(&is_obj) = self.stack.last() {
            if is_obj {
                assert!(self.key_armed, "object value without a key");
                self.key_armed = false;
            } else {
                let n = self.counts.last_mut().expect("frame has a count");
                if *n > 0 {
                    self.out.push(',');
                }
                *n += 1;
            }
        }
    }

    /// Writes a member key inside an open object.
    pub fn key(&mut self, k: &str) -> &mut Self {
        assert_eq!(self.stack.last(), Some(&true), "key outside an object");
        assert!(!self.key_armed, "two keys in a row");
        let n = self.counts.last_mut().expect("frame has a count");
        if *n > 0 {
            self.out.push(',');
        }
        *n += 1;
        self.out.push('"');
        write_escaped(&mut self.out, k);
        self.out.push_str("\":");
        self.key_armed = true;
        self
    }

    /// Opens an object value.
    pub fn begin_obj(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('{');
        self.stack.push(true);
        self.counts.push(0);
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        assert_eq!(self.stack.pop(), Some(true), "end_obj without an object");
        assert!(!self.key_armed, "object closed with a dangling key");
        self.counts.pop();
        self.out.push('}');
        self
    }

    /// Opens an array value.
    pub fn begin_arr(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
        self.counts.push(0);
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        assert_eq!(self.stack.pop(), Some(false), "end_arr without an array");
        self.counts.pop();
        self.out.push(']');
        self
    }

    /// Writes a string value.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.before_value();
        self.out.push('"');
        write_escaped(&mut self.out, v);
        self.out.push('"');
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        use std::fmt::Write as _;
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a float with exactly `digits` fractional digits
    /// (`{:.digits$}` formatting — what the hand-written emitters used).
    pub fn fixed(&mut self, v: f64, digits: usize) -> &mut Self {
        use std::fmt::Write as _;
        self.before_value();
        let _ = write!(self.out, "{v:.digits$}");
        self
    }

    /// Writes a float in shortest `Display` form (`null` if non-finite).
    pub fn num(&mut self, v: f64) -> &mut Self {
        use std::fmt::Write as _;
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes `null`.
    pub fn null(&mut self) -> &mut Self {
        self.before_value();
        self.out.push_str("null");
        self
    }

    /// Returns the rendered document.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "finish with open frames");
        self.out
    }
}

/// Maximum nesting depth (objects + arrays) before the parser bails out.
const MAX_DEPTH: u32 = 128;

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}, found {:?}",
            b as char,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {pos}",
            other.map(|&c| c as char)
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = match bytes.get(*pos) {
                    Some(b'"') => b'"',
                    Some(b'\\') => b'\\',
                    Some(b'/') => b'/',
                    Some(b'n') => b'\n',
                    Some(b't') => b'\t',
                    Some(b'r') => b'\r',
                    Some(b'u') => {
                        *pos += 1;
                        let c = parse_unicode_escape(bytes, pos)?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        continue;
                    }
                    other => {
                        return Err(format!(
                            "unsupported escape {:?} at byte {pos}",
                            other.map(|&c| c as char)
                        ))
                    }
                };
                out.push(escaped);
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

/// Parses the `XXXX` of a `\uXXXX` escape (cursor just past the `u`),
/// consuming a trailing low surrogate when the code unit is a high one.
/// Leaves the cursor on the byte after the consumed escape(s).
fn parse_unicode_escape(bytes: &[u8], pos: &mut usize) -> Result<char, String> {
    let unit = |pos: &mut usize| -> Result<u32, String> {
        let hex = bytes
            .get(*pos..*pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
        let v =
            u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape at byte {pos}"))?;
        *pos += 4;
        Ok(v)
    };
    let hi = unit(pos)?;
    let code = match hi {
        0xD800..=0xDBFF => {
            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u') {
                return Err(format!("unpaired high surrogate before byte {pos}"));
            }
            *pos += 2;
            let lo = unit(pos)?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(format!("invalid low surrogate before byte {pos}"));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        }
        0xDC00..=0xDFFF => return Err(format!("unpaired low surrogate before byte {pos}")),
        c => c,
    };
    char::from_u32(code).ok_or_else(|| format!("invalid \\u code point before byte {pos}"))
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        if members.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key {key:?} at byte {pos}"));
        }
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {pos}, found {:?}",
                    other.map(|&c| c as char)
                ))
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {pos}, found {:?}",
                    other.map(|&c| c as char)
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_figure_schema() {
        let doc = parse(
            "{\"figure\":\"fig05_phi\",\"rows\":[{\"label\":\"Baseline\",\
             \"cycles\":1091156,\"speedup\":1.0,\"invoke_rtt\":{\"count\":0}}]}",
        )
        .unwrap();
        assert_eq!(doc.get("figure").and_then(Json::as_str), Some("fig05_phi"));
        let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("cycles"), Some(&Json::Num(1091156.0)));
    }

    #[test]
    fn round_trips_escapes_and_rejects_garbage() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\"").unwrap(),
            Json::Str("a\"b\\c".into())
        );
        assert_eq!(
            parse("[true,false,null,-1.5e3]").unwrap(),
            Json::Arr(vec![
                Json::Bool(true),
                Json::Bool(false),
                Json::Null,
                Json::Num(-1500.0),
            ])
        );
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn own_emitters_parse() {
        let table = crate::table_json("t", &["a"], &[vec!["x\"y".into()]]);
        assert!(parse(&table).is_ok(), "{table}");
        let manifest = crate::runner::manifest_json(false);
        assert!(parse(&manifest).is_ok(), "{manifest}");
    }

    #[test]
    fn as_num_extracts_numbers_only() {
        assert_eq!(Json::Num(2.5).as_num(), Some(2.5));
        assert_eq!(Json::Str("2.5".into()).as_num(), None);
        assert_eq!(Json::Null.as_num(), None);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse("{\"a\":1,\"b\":2,\"a\":3}").unwrap_err();
        assert!(err.contains("duplicate key \"a\""), "{err}");
        // Same key in sibling objects is fine.
        assert!(parse("{\"x\":{\"a\":1},\"y\":{\"a\":2}}").is_ok());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Within the cap parses...
        let depth = 100usize;
        let ok = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&ok).is_ok());
        // ...past the cap is an error, not a stack overflow or panic.
        let deep = format!("{}1{}", "[".repeat(400), "]".repeat(400));
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        // Unclosed-but-deep input hits the cap before the EOF error.
        assert!(parse(&"[".repeat(400)).is_err());
        assert!(parse(&"{\"k\":[".repeat(400)).is_err());
    }

    #[test]
    fn every_truncation_of_a_valid_document_errors() {
        let doc = "{\"figure\":\"fig05\",\"rows\":[{\"label\":\"B \\\"q\\\"\",\
                   \"cycles\":1091156,\"speedup\":1.5e0,\"flags\":[true,false,null],\
                   \"hist\":{\"p50\":32}}]}";
        assert!(parse(doc).is_ok());
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let prefix = &doc[..cut];
            assert!(
                parse(prefix).is_err(),
                "strict prefix of len {cut} parsed: {prefix:?}"
            );
        }
    }

    #[test]
    fn unicode_escapes_parse_including_surrogate_pairs() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        // Astral plane via a surrogate pair (U+1F600).
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert!(parse("\"\\ud83d\"").is_err(), "unpaired high surrogate");
        assert!(parse("\"\\ude00\"").is_err(), "unpaired low surrogate");
        assert!(parse("\"\\u00g1\"").is_err(), "bad hex digit");
        assert!(parse("\"\\u00\"").is_err(), "truncated escape");
    }

    #[test]
    fn writer_produces_parseable_output_with_correct_escaping() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("name").str("a\"b\\c\nd\u{1}");
        w.key("flags").begin_arr().bool(true).null().end_arr();
        w.key("n").u64(42);
        w.key("f").fixed(2.5, 6);
        w.key("g").num(0.25);
        w.key("bad").num(f64::NAN);
        w.end_obj();
        let text = w.finish();
        assert_eq!(
            text,
            "{\"name\":\"a\\\"b\\\\c\\nd\\u0001\",\"flags\":[true,null],\
             \"n\":42,\"f\":2.500000,\"g\":0.25,\"bad\":null}"
        );
        let doc = parse(&text).expect("writer output parses");
        assert_eq!(
            doc.get("name").and_then(Json::as_str),
            Some("a\"b\\c\nd\u{1}")
        );
        assert_eq!(doc.get("bad"), Some(&Json::Null));
    }

    #[test]
    fn writer_places_commas_between_nested_values() {
        let mut w = JsonWriter::new();
        w.begin_arr();
        w.begin_obj().key("a").u64(1).end_obj();
        w.begin_obj().key("b").u64(2).key("c").u64(3).end_obj();
        w.u64(9);
        w.end_arr();
        assert_eq!(w.finish(), "[{\"a\":1},{\"b\":2,\"c\":3},9]");
    }

    #[test]
    fn parsed_values_round_trip_through_to_json() {
        for doc in [
            "{\"figure\":\"f\",\"rows\":[{\"label\":\"x\\\"y\",\"n\":3}]}",
            "[true,false,null,1.5]",
            "\"plain\"",
            "{}",
            "[]",
        ] {
            let v = parse(doc).unwrap();
            assert_eq!(parse(&v.to_json()).unwrap(), v, "{doc}");
        }
        // Integral floats print without a fractional part.
        assert_eq!(Json::Num(1091156.0).to_json(), "1091156");
        assert_eq!(Json::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn seeded_mutations_never_panic() {
        use levi_sim::rng::SmallRng;
        let doc = "{\"perf_report\":{\"version\":1,\"quick\":true,\"profiled\":false,\
                   \"benches\":[{\"id\":\"micro/x\",\"median\":31.25,\
                   \"rounds\":[31.2,-1.0e2]}]}}";
        let mut rng = SmallRng::seed_from_u64(482_850_217);
        for _ in 0..2000 {
            let mut bytes = doc.as_bytes().to_vec();
            // Flip 1-4 bytes to arbitrary values; parse must return
            // Ok or Err, never panic or hang.
            for _ in 0..(1 + rng.bounded(4)) {
                let i = rng.bounded(bytes.len() as u64) as usize;
                bytes[i] = (rng.next_u64() & 0xff) as u8;
            }
            if let Ok(text) = std::str::from_utf8(&bytes) {
                let _ = parse(text);
            }
        }
    }
}
