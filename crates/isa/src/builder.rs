//! Assembler-style builders for LevIR programs.
//!
//! [`ProgramBuilder`] creates functions; each [`FunctionBuilder`] provides
//! one fluent method per instruction plus label management. Workloads and
//! near-data actions throughout the reproduction are written against this
//! API (the paper's pseudocode in Figs. 2, 15, 17, and 19 maps to it
//! line-for-line).

use std::collections::HashMap;

use crate::inst::{AluOp, BrCond, Inst, Label, Location, MemOrder, MemWidth, Reg, RmwOp, NUM_REGS};
use crate::program::{ActionId, FuncId, Function, Program, ProgramError};

/// Builds a [`Program`] out of one or more functions.
///
/// Function ids are assigned up front by [`ProgramBuilder::function`] (or
/// reserved with [`ProgramBuilder::declare`]), so mutually recursive
/// functions can call each other.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    funcs: Vec<Option<Function>>,
    names: Vec<String>,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves a function id without providing its body yet, enabling
    /// forward references (e.g. continuation-passing invokes of self).
    pub fn declare(&mut self, name: &str) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(None);
        self.names.push(name.to_string());
        id
    }

    /// Starts building a new function, reserving its id immediately.
    pub fn function(&mut self, name: &str) -> FunctionBuilder<'_> {
        let id = self.declare(name);
        FunctionBuilder::new(self, id)
    }

    /// Starts building the body of a previously [`declare`](Self::declare)d
    /// function.
    ///
    /// # Panics
    /// Panics if the function body was already provided.
    pub fn define(&mut self, id: FuncId) -> FunctionBuilder<'_> {
        assert!(
            self.funcs[id.index()].is_none(),
            "function {id:?} (`{}`) already defined",
            self.names[id.index()]
        );
        FunctionBuilder::new(self, id)
    }

    fn install(&mut self, id: FuncId, func: Function) {
        self.funcs[id.index()] = Some(func);
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    /// Returns a [`ProgramError`] if a branch label is out of range, a call
    /// targets an unknown function, a function can fall off its end, a
    /// register index is out of range, or an invoke has too many arguments.
    ///
    /// # Panics
    /// Panics if a function was [`declare`](Self::declare)d but never
    /// defined. (A *referenced-but-unbound label* panics earlier, in
    /// [`FunctionBuilder::finish`].)
    pub fn finish(self) -> Result<Program, ProgramError> {
        let names = self.names;
        let funcs: Vec<Function> = self
            .funcs
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                f.unwrap_or_else(|| {
                    panic!("function f{i} (`{}`) declared but never defined", names[i])
                })
            })
            .collect();

        let nfuncs = funcs.len() as u32;
        for func in &funcs {
            let len = func.len() as u32;
            // A function must not fall off its end.
            match func.insts().last() {
                Some(Inst::Ret) | Some(Inst::Jmp { .. }) | Some(Inst::Halt) => {}
                _ => {
                    return Err(ProgramError::FallsOffEnd {
                        func: func.name().to_string(),
                    })
                }
            }
            for inst in func.insts() {
                let mut bad_reg = None;
                inst.for_each_use(|r| {
                    if r.index() >= NUM_REGS {
                        bad_reg = Some(r.0);
                    }
                });
                if let Some(rd) = inst.def() {
                    if rd.index() >= NUM_REGS {
                        bad_reg = Some(rd.0);
                    }
                }
                if let Some(reg) = bad_reg {
                    return Err(ProgramError::BadRegister {
                        func: func.name().to_string(),
                        reg,
                    });
                }
                match inst {
                    Inst::Br { target, .. } | Inst::Jmp { target } if target.0 >= len => {
                        return Err(ProgramError::LabelOutOfRange {
                            func: func.name().to_string(),
                            label: target.0,
                        });
                    }
                    Inst::Call { func: callee } if callee.0 >= nfuncs => {
                        return Err(ProgramError::UnknownCallee {
                            func: func.name().to_string(),
                            callee: callee.0,
                        });
                    }
                    Inst::Invoke { args, .. } if args.len() > 4 => {
                        return Err(ProgramError::TooManyInvokeArgs {
                            func: func.name().to_string(),
                            count: args.len(),
                        });
                    }
                    _ => {}
                }
            }
        }
        Ok(Program::from_functions(funcs))
    }
}

/// Builds a single function: emits instructions and manages labels.
///
/// Branch instructions may reference labels before they are bound; all
/// labels are resolved when [`finish`](Self::finish) is called.
#[derive(Debug)]
pub struct FunctionBuilder<'p> {
    parent: &'p mut ProgramBuilder,
    id: FuncId,
    insts: Vec<Inst>,
    /// `labels[i]` is the instruction index label `i` is bound to.
    bound: HashMap<u32, u32>,
    next_label: u32,
}

impl<'p> FunctionBuilder<'p> {
    fn new(parent: &'p mut ProgramBuilder, id: FuncId) -> Self {
        FunctionBuilder {
            parent,
            id,
            insts: Vec::new(),
            bound: HashMap::new(),
            next_label: 0,
        }
    }

    /// The id of the function being built.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the *next* instruction emitted.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let pos = self.insts.len() as u32;
        let prev = self.bound.insert(label.0, pos);
        assert!(prev.is_none(), "label {label:?} bound twice");
        self
    }

    /// Emits a raw instruction. Prefer the typed helpers below.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    // ---- immediate / move ----

    /// `rd = val` (any 64-bit immediate; accepts signed or unsigned).
    pub fn imm(&mut self, rd: Reg, val: impl Into<ImmVal>) -> &mut Self {
        self.emit(Inst::Imm {
            rd,
            val: val.into().0,
        })
    }

    /// `rd = rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Inst::Mov { rd, rs })
    }

    // ---- ALU (register-register) ----

    /// `rd = ra + rb`.
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, ra, rb)
    }

    /// `rd = ra - rb`.
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, ra, rb)
    }

    /// `rd = ra * rb`.
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::Mul, rd, ra, rb)
    }

    /// `rd = ra / rb` (unsigned).
    pub fn divu(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::DivU, rd, ra, rb)
    }

    /// `rd = ra % rb` (unsigned).
    pub fn remu(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::RemU, rd, ra, rb)
    }

    /// `rd = ra & rb`.
    pub fn and(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::And, rd, ra, rb)
    }

    /// `rd = ra | rb`.
    pub fn or(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::Or, rd, ra, rb)
    }

    /// `rd = ra ^ rb`.
    pub fn xor(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::Xor, rd, ra, rb)
    }

    /// `rd = ra << rb`.
    pub fn shl(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::Shl, rd, ra, rb)
    }

    /// `rd = ra >> rb` (logical).
    pub fn shr(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.alu(AluOp::Shr, rd, ra, rb)
    }

    /// Emits any register-register ALU op.
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.emit(Inst::Alu { op, rd, ra, rb })
    }

    // ---- ALU (register-immediate) ----

    /// `rd = ra + imm`.
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: impl Into<ImmVal>) -> &mut Self {
        self.alui(AluOp::Add, rd, ra, imm)
    }

    /// `rd = ra - imm`.
    pub fn subi(&mut self, rd: Reg, ra: Reg, imm: impl Into<ImmVal>) -> &mut Self {
        self.alui(AluOp::Sub, rd, ra, imm)
    }

    /// `rd = ra * imm`.
    pub fn muli(&mut self, rd: Reg, ra: Reg, imm: impl Into<ImmVal>) -> &mut Self {
        self.alui(AluOp::Mul, rd, ra, imm)
    }

    /// `rd = ra & imm`.
    pub fn andi(&mut self, rd: Reg, ra: Reg, imm: impl Into<ImmVal>) -> &mut Self {
        self.alui(AluOp::And, rd, ra, imm)
    }

    /// `rd = ra | imm`.
    pub fn ori(&mut self, rd: Reg, ra: Reg, imm: impl Into<ImmVal>) -> &mut Self {
        self.alui(AluOp::Or, rd, ra, imm)
    }

    /// `rd = ra << imm`.
    pub fn shli(&mut self, rd: Reg, ra: Reg, imm: impl Into<ImmVal>) -> &mut Self {
        self.alui(AluOp::Shl, rd, ra, imm)
    }

    /// `rd = ra >> imm` (logical).
    pub fn shri(&mut self, rd: Reg, ra: Reg, imm: impl Into<ImmVal>) -> &mut Self {
        self.alui(AluOp::Shr, rd, ra, imm)
    }

    /// `rd = (ra < imm)` unsigned.
    pub fn sltui(&mut self, rd: Reg, ra: Reg, imm: impl Into<ImmVal>) -> &mut Self {
        self.alui(AluOp::SltU, rd, ra, imm)
    }

    /// Emits any register-immediate ALU op.
    pub fn alui(&mut self, op: AluOp, rd: Reg, ra: Reg, imm: impl Into<ImmVal>) -> &mut Self {
        self.emit(Inst::AluI {
            op,
            rd,
            ra,
            imm: imm.into().0,
        })
    }

    // ---- memory ----

    /// `rd = zext(mem[ra+off])`, 1 byte.
    pub fn ld1(&mut self, rd: Reg, ra: Reg, off: i32) -> &mut Self {
        self.ld(rd, ra, off, MemWidth::B1, false)
    }

    /// `rd = zext(mem[ra+off])`, 2 bytes.
    pub fn ld2(&mut self, rd: Reg, ra: Reg, off: i32) -> &mut Self {
        self.ld(rd, ra, off, MemWidth::B2, false)
    }

    /// `rd = zext(mem[ra+off])`, 4 bytes.
    pub fn ld4(&mut self, rd: Reg, ra: Reg, off: i32) -> &mut Self {
        self.ld(rd, ra, off, MemWidth::B4, false)
    }

    /// `rd = mem[ra+off]`, 8 bytes.
    pub fn ld8(&mut self, rd: Reg, ra: Reg, off: i32) -> &mut Self {
        self.ld(rd, ra, off, MemWidth::B8, false)
    }

    /// Emits a load with explicit width and sign-extension.
    pub fn ld(&mut self, rd: Reg, ra: Reg, off: i32, width: MemWidth, sext: bool) -> &mut Self {
        self.emit(Inst::Ld {
            rd,
            ra,
            off,
            width,
            sext,
        })
    }

    /// `mem[ra+off] = rs`, 1 byte.
    pub fn st1(&mut self, ra: Reg, off: i32, rs: Reg) -> &mut Self {
        self.st(ra, off, rs, MemWidth::B1)
    }

    /// `mem[ra+off] = rs`, 2 bytes.
    pub fn st2(&mut self, ra: Reg, off: i32, rs: Reg) -> &mut Self {
        self.st(ra, off, rs, MemWidth::B2)
    }

    /// `mem[ra+off] = rs`, 4 bytes.
    pub fn st4(&mut self, ra: Reg, off: i32, rs: Reg) -> &mut Self {
        self.st(ra, off, rs, MemWidth::B4)
    }

    /// `mem[ra+off] = rs`, 8 bytes.
    pub fn st8(&mut self, ra: Reg, off: i32, rs: Reg) -> &mut Self {
        self.st(ra, off, rs, MemWidth::B8)
    }

    /// Emits a store with explicit width.
    pub fn st(&mut self, ra: Reg, off: i32, rs: Reg, width: MemWidth) -> &mut Self {
        self.emit(Inst::St { rs, ra, off, width })
    }

    // ---- control flow ----

    /// Branch to `target` if `ra == rb`.
    pub fn beq(&mut self, ra: Reg, rb: Reg, target: Label) -> &mut Self {
        self.br(BrCond::Eq, ra, rb, target)
    }

    /// Branch to `target` if `ra != rb`.
    pub fn bne(&mut self, ra: Reg, rb: Reg, target: Label) -> &mut Self {
        self.br(BrCond::Ne, ra, rb, target)
    }

    /// Branch to `target` if `ra < rb` (unsigned).
    pub fn blt_u(&mut self, ra: Reg, rb: Reg, target: Label) -> &mut Self {
        self.br(BrCond::LtU, ra, rb, target)
    }

    /// Branch to `target` if `ra < rb` (signed).
    pub fn blt_s(&mut self, ra: Reg, rb: Reg, target: Label) -> &mut Self {
        self.br(BrCond::LtS, ra, rb, target)
    }

    /// Branch to `target` if `ra >= rb` (unsigned).
    pub fn bge_u(&mut self, ra: Reg, rb: Reg, target: Label) -> &mut Self {
        self.br(BrCond::GeU, ra, rb, target)
    }

    /// Branch to `target` if `ra >= rb` (signed).
    pub fn bge_s(&mut self, ra: Reg, rb: Reg, target: Label) -> &mut Self {
        self.br(BrCond::GeS, ra, rb, target)
    }

    /// Emits a conditional branch.
    pub fn br(&mut self, cond: BrCond, ra: Reg, rb: Reg, target: Label) -> &mut Self {
        self.emit(Inst::Br {
            cond,
            ra,
            rb,
            target,
        })
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.emit(Inst::Jmp { target })
    }

    /// Calls another function (arguments in `r0..r7`, result in `r0`).
    pub fn call(&mut self, func: FuncId) -> &mut Self {
        self.emit(Inst::Call { func })
    }

    /// Returns from this function.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Inst::Ret)
    }

    /// Halts the executing context.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::Nop)
    }

    // ---- atomics / NDC ----

    /// Fenced atomic RMW (x86-like semantics): `rd = old; [addr] = op(old, rv)`.
    pub fn rmw_fenced(
        &mut self,
        op: RmwOp,
        rd: Reg,
        addr: Reg,
        rv: Reg,
        width: MemWidth,
    ) -> &mut Self {
        self.emit(Inst::AtomicRmw {
            op,
            rd,
            addr,
            rv,
            width,
            ordering: MemOrder::Fenced,
        })
    }

    /// Relaxed atomic RMW: atomic but unordered (Sec. IV-D's "tākō Relax").
    pub fn rmw_relaxed(
        &mut self,
        op: RmwOp,
        rd: Reg,
        addr: Reg,
        rv: Reg,
        width: MemWidth,
    ) -> &mut Self {
        self.emit(Inst::AtomicRmw {
            op,
            rd,
            addr,
            rv,
            width,
            ordering: MemOrder::Relaxed,
        })
    }

    /// Full memory fence.
    pub fn fence(&mut self) -> &mut Self {
        self.emit(Inst::Fence)
    }

    /// Offloads `action` to run on the actor pointed to by `actor`
    /// (fire-and-forget, no future).
    pub fn invoke(
        &mut self,
        actor: Reg,
        action: ActionId,
        args: &[Reg],
        loc: Location,
    ) -> &mut Self {
        self.emit(Inst::Invoke {
            actor,
            action,
            args: args.to_vec(),
            future: None,
            loc,
            exclusive: false,
        })
    }

    /// Offloads `action` with EXCLUSIVE (write-intent) scheduling hint.
    pub fn invoke_exclusive(
        &mut self,
        actor: Reg,
        action: ActionId,
        args: &[Reg],
        loc: Location,
    ) -> &mut Self {
        self.emit(Inst::Invoke {
            actor,
            action,
            args: args.to_vec(),
            future: None,
            loc,
            exclusive: true,
        })
    }

    /// Offloads `action` and ties its return value to the future whose
    /// address is in `future`.
    pub fn invoke_future(
        &mut self,
        actor: Reg,
        action: ActionId,
        args: &[Reg],
        future: Reg,
        loc: Location,
    ) -> &mut Self {
        self.emit(Inst::Invoke {
            actor,
            action,
            args: args.to_vec(),
            future: Some(future),
            loc,
            exclusive: false,
        })
    }

    /// Blocks until the future at `[rf]` is filled; `rd` receives the value.
    pub fn future_wait(&mut self, rd: Reg, rf: Reg) -> &mut Self {
        self.emit(Inst::FutureWait { rd, rf })
    }

    /// Fills the future at `[rf]` with `rv` (store-update).
    pub fn future_send(&mut self, rf: Reg, rv: Reg) -> &mut Self {
        self.emit(Inst::FutureSend { rf, rv })
    }

    /// Pushes `rs` onto the stream whose handle is in `stream` (blocking).
    pub fn push(&mut self, stream: Reg, rs: Reg) -> &mut Self {
        self.emit(Inst::Push { stream, rs })
    }

    /// Pops one entry from the stream whose handle is in `stream`.
    pub fn pop(&mut self, stream: Reg) -> &mut Self {
        self.emit(Inst::Pop { stream })
    }

    /// Flushes `[addr, addr+len)` from the caches.
    pub fn flush(&mut self, addr: Reg, len: Reg) -> &mut Self {
        self.emit(Inst::Flush { addr, len })
    }

    /// Emits a debug trace of `rs`.
    pub fn trace(&mut self, rs: Reg) -> &mut Self {
        self.emit(Inst::Trace { rs })
    }

    /// Resolves labels and installs the function into the program builder,
    /// returning its id.
    ///
    /// # Panics
    /// Panics if a referenced label was never bound (reported as a
    /// [`ProgramError`] at [`ProgramBuilder::finish`] time instead when the
    /// label simply is out of range).
    pub fn finish(self) -> FuncId {
        let name = self.parent.names[self.id.index()].clone();
        let bound = self.bound;
        let insts = self
            .insts
            .into_iter()
            .map(|inst| match inst {
                Inst::Br {
                    cond,
                    ra,
                    rb,
                    target,
                } => {
                    let pos = *bound.get(&target.0).unwrap_or_else(|| {
                        panic!("function `{name}`: label {target:?} never bound")
                    });
                    Inst::Br {
                        cond,
                        ra,
                        rb,
                        target: Label(pos),
                    }
                }
                Inst::Jmp { target } => {
                    let pos = *bound.get(&target.0).unwrap_or_else(|| {
                        panic!("function `{name}`: label {target:?} never bound")
                    });
                    Inst::Jmp { target: Label(pos) }
                }
                other => other,
            })
            .collect();
        let id = self.id;
        self.parent.install(id, Function::new(name, insts));
        id
    }
}

/// A 64-bit immediate accepted from several integer types.
///
/// Exists so builder methods accept `i32`, `u64`, `usize`, etc. without
/// casts at every call site.
#[derive(Clone, Copy, Debug)]
pub struct ImmVal(pub u64);

macro_rules! imm_from {
    ($($t:ty),*) => {
        $(impl From<$t> for ImmVal {
            fn from(v: $t) -> Self {
                ImmVal(v as i64 as u64)
            }
        })*
    };
}
imm_from!(i8, i16, i32, i64, isize);

macro_rules! imm_from_unsigned {
    ($($t:ty),*) => {
        $(impl From<$t> for ImmVal {
            fn from(v: $t) -> Self {
                ImmVal(v as u64)
            }
        })*
    };
}
imm_from_unsigned!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("loopy");
        let top = f.label();
        let out = f.label();
        f.imm(Reg(1), 0);
        f.bind(top);
        f.addi(Reg(1), Reg(1), 1);
        f.bge_u(Reg(1), Reg(0), out);
        f.jmp(top);
        f.bind(out);
        f.ret();
        f.finish();
        let prog = pb.finish().unwrap();
        let insts = prog.func(FuncId(0)).insts();
        // `jmp top` must point at index 1 (the addi), `bge out` at index 4 (ret).
        assert_eq!(insts[3], Inst::Jmp { target: Label(1) });
        match &insts[2] {
            Inst::Br { target, .. } => assert_eq!(*target, Label(4)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics_at_finish() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("bad");
        let l = f.label();
        f.jmp(l);
        f.ret();
        f.finish();
    }

    #[test]
    fn falls_off_end_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("fall");
        f.imm(Reg(0), 1);
        f.finish();
        assert!(matches!(pb.finish(), Err(ProgramError::FallsOffEnd { .. })));
    }

    #[test]
    fn unknown_callee_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("caller");
        f.call(FuncId(99)).ret();
        f.finish();
        assert!(matches!(
            pb.finish(),
            Err(ProgramError::UnknownCallee { callee: 99, .. })
        ));
    }

    #[test]
    fn bad_register_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("badreg");
        f.imm(Reg(77), 1).ret();
        f.finish();
        assert!(matches!(
            pb.finish(),
            Err(ProgramError::BadRegister { reg: 77, .. })
        ));
    }

    #[test]
    fn too_many_invoke_args_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("fatinvoke");
        let args = [Reg(1), Reg(2), Reg(3), Reg(4), Reg(5)];
        f.invoke(Reg(0), ActionId(0), &args, Location::Dynamic)
            .ret();
        f.finish();
        assert!(matches!(
            pb.finish(),
            Err(ProgramError::TooManyInvokeArgs { count: 5, .. })
        ));
    }

    #[test]
    fn declare_then_define_supports_recursion() {
        let mut pb = ProgramBuilder::new();
        let fid = pb.declare("recurse");
        let mut f = pb.define(fid);
        let done = f.label();
        f.beq(Reg(0), Reg(1), done);
        f.addi(Reg(0), Reg(0), 1);
        f.call(fid); // self-call
        f.bind(done);
        f.ret();
        f.finish();
        assert!(pb.finish().is_ok());
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("dup");
        let l = f.label();
        f.bind(l);
        f.nop();
        f.bind(l);
    }

    #[test]
    fn imm_accepts_signed_and_unsigned() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("imms");
        f.imm(Reg(0), -1i32);
        f.imm(Reg(1), 5usize);
        f.imm(Reg(2), u64::MAX);
        f.ret();
        f.finish();
        let prog = pb.finish().unwrap();
        let insts = prog.func(FuncId(0)).insts();
        assert_eq!(
            insts[0],
            Inst::Imm {
                rd: Reg(0),
                val: u64::MAX
            }
        );
        assert_eq!(insts[1], Inst::Imm { rd: Reg(1), val: 5 });
    }
}
