//! Directory stage: the shared LLC, its in-tag directory, and DRAM
//! fetches.
//!
//! [`Hw::llc_stage`] is the single funnel every private-cache miss flows
//! through (core and engine paths alike): it routes the request to the
//! home bank over the NoC, resolves the line (LLC hit, phantom
//! construction via [`super::phantom`], or DRAM fetch), then enforces
//! coherence against the other tiles' private copies.

use levi_isa::Addr;

use crate::cache::PrivState;
use crate::config::LINE_SHIFT;
use crate::ndc::MorphLevel;
use crate::trace::{TraceCategory, TraceEvent, Track};

use super::{AccessKind, Hw, Walk, CTRL_MSG, DATA_MSG, INVAL_MSG};

impl Hw {
    /// Handles the LLC + directory + DRAM stage. `from_tile` is where the
    /// request physically originates (for NoC routing); `new_sharer` is the
    /// tile whose private caches will hold the line afterwards (None for
    /// LLC-engine accesses, which stay at the bank).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn llc_stage(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        from_tile: u32,
        new_sharer: Option<u32>,
        kind: AccessKind,
        addr: Addr,
        now: u64,
        allow_phantom: bool,
    ) -> Walk {
        let line = addr >> LINE_SHIFT;
        let bank = self.bank_of(addr);
        let mut t = self
            .noc
            .send(from_tile, bank, CTRL_MSG, now, &mut self.stats);
        t += self.cfg.llc.latency;
        self.stats.dir_lookups += 1;

        let hit = self.llc[bank as usize].probe(line).is_some();
        if hit {
            self.stats.llc.hits += 1;
        } else {
            self.stats.llc.misses += 1;
            if let Some(tm) = &self.tenants {
                // Per-tenant interference attribution (cold path only).
                let ten = tm.tenant_of(from_tile) as usize;
                if let Some(c) = self.stats.tenant_llc_misses.get_mut(ten) {
                    *c += 1;
                }
            }
            // LLC miss: phantom construction or DRAM fetch.
            if allow_phantom {
                if let Some(mi) = self.ndc.morph_at(addr) {
                    if self.ndc.morphs[mi].level == MorphLevel::Llc {
                        match self.phantom_fill_llc(mem, bank, mi, addr, t) {
                            Walk::Done { at } => t = at,
                            blocked => return blocked,
                        }
                    } else {
                        // L2-level morph data must never reach the LLC.
                        t = self.dram_fetch_into_llc(mem, from_tile, bank, line, t);
                    }
                } else {
                    t = self.dram_fetch_into_llc(mem, from_tile, bank, line, t);
                }
            } else if kind == AccessKind::Write && self.ndc.is_stream_store(addr) {
                // Streaming store: the line will be fully overwritten, so
                // skip the write-allocate fetch (write-combining).
                let (l, victim) = self.llc_fill(from_tile, bank, line);
                l.dirty = true;
                if let Some(v) = victim {
                    self.handle_llc_victim(mem, bank, v, t);
                }
            } else {
                t = self.dram_fetch_into_llc(mem, from_tile, bank, line, t);
            }
        }

        // Directory actions on the (now-present) line.
        t = self.directory_actions(mem, bank, line, new_sharer, kind, t);

        // Data response back to the requester.
        let t = self.noc.send(bank, from_tile, DATA_MSG, t, &mut self.stats);
        Walk::Done { at: t }
    }

    /// Fetches `line` from DRAM and inserts it into `bank` on behalf of
    /// the requester at `from_tile`, handling the victim. Returns the
    /// completion time.
    pub(super) fn dram_fetch_into_llc(
        &mut self,
        mem: &mut dyn levi_isa::Memory,
        from_tile: u32,
        bank: u32,
        line: u64,
        now: u64,
    ) -> u64 {
        let t = self
            .dram
            .access_cache_line(&self.translator, line, now, &mut self.stats);
        let (_, victim) = self.llc_fill(from_tile, bank, line);
        if let Some(v) = victim {
            self.handle_llc_victim(mem, bank, v, now);
        }
        t
    }

    /// Inserts a demand fill into an LLC bank, honoring the tenant
    /// way-partition when one is configured (the single-tenant path is
    /// the plain [`crate::cache::CacheBank::insert`]).
    fn llc_fill(
        &mut self,
        from_tile: u32,
        bank: u32,
        line: u64,
    ) -> (&mut crate::cache::Line, Option<crate::cache::Line>) {
        match self.tenants {
            Some(tm) if tm.llc_ways_per_tenant > 0 => self.llc[bank as usize].insert_for_tenant(
                line,
                &self.pins,
                tm.tenant_of(from_tile) as u8,
                tm.llc_ways_per_tenant,
            ),
            _ => self.llc[bank as usize].insert(line, &self.pins),
        }
    }

    /// Enforces coherence for a request on a resident LLC line.
    fn directory_actions(
        &mut self,
        _mem: &mut dyn levi_isa::Memory,
        bank: u32,
        line: u64,
        new_sharer: Option<u32>,
        kind: AccessKind,
        now: u64,
    ) -> u64 {
        let b = bank as usize;
        let (owner, sharers) = match self.llc[b].peek(line) {
            Some(l) => (l.owner, l.sharers),
            None => return now,
        };
        let mut t = now;

        if kind.wants_ownership() {
            // Invalidate every other private copy.
            let mut mask = sharers;
            if let Some(o) = owner {
                mask |= 1 << o;
            }
            if let Some(ns) = new_sharer {
                mask &= !(1u64 << ns);
            }
            let mut t_inv = t;
            let mut any = false;
            for s in 0..self.cfg.tiles {
                if mask & (1 << s) == 0 {
                    continue;
                }
                any = true;
                let ta = self.noc.send(bank, s, INVAL_MSG, t, &mut self.stats);
                let dirty = self.invalidate_private(s, line);
                self.stats.invalidations += 1;
                self.stats.trace.record(|| {
                    TraceEvent::instant(
                        ta,
                        TraceCategory::Coherence,
                        "coh.inval",
                        Track::Core(s),
                        &[("line", line), ("dirty", dirty as u64)],
                    )
                });
                let mut tr = ta + self.cfg.l2.latency;
                if dirty {
                    // Dirty data returns with the ack.
                    tr = self.noc.send(s, bank, DATA_MSG, tr, &mut self.stats);
                    if let Some(l) = self.llc[b].peek_mut(line) {
                        l.dirty = true;
                    }
                } else {
                    tr = self.noc.send(s, bank, INVAL_MSG, tr, &mut self.stats);
                }
                t_inv = t_inv.max(tr);
            }
            if owner.is_some() && owner != new_sharer.map(|x| x as u8) {
                self.stats.ownership_transfers += 1;
                let from = owner.unwrap_or(0) as u64;
                self.stats.trace.record(|| {
                    TraceEvent::instant(
                        t,
                        TraceCategory::Coherence,
                        "coh.xfer",
                        Track::Core(bank),
                        &[("line", line), ("from", from)],
                    )
                });
            }
            if any {
                t = t_inv;
            }
            if let Some(l) = self.llc[b].peek_mut(line) {
                l.sharers = new_sharer.map_or(0, |ns| 1u64 << ns);
                l.owner = new_sharer.map(|ns| ns as u8);
                if new_sharer.is_none() {
                    // Engine write at the bank: the LLC copy is the only
                    // copy and is now dirty.
                    l.dirty = true;
                }
            }
        } else {
            // Read: downgrade a remote exclusive owner if present.
            if let Some(o) = owner {
                if Some(o as u32) != new_sharer {
                    let ta = self.noc.send(bank, o as u32, CTRL_MSG, t, &mut self.stats);
                    let tb = ta + self.cfg.l2.latency;
                    let tr = self.noc.send(o as u32, bank, DATA_MSG, tb, &mut self.stats);
                    // Downgrade owner to sharer.
                    if let Some(l) = self.l2[o as usize].peek_mut(line) {
                        l.state = PrivState::Shared;
                    }
                    if let Some(l) = self.l1[o as usize].peek_mut(line) {
                        l.state = PrivState::Shared;
                    }
                    self.stats.ownership_transfers += 1;
                    self.stats.trace.record(|| {
                        TraceEvent::instant(
                            tr,
                            TraceCategory::Coherence,
                            "coh.xfer",
                            Track::Core(bank),
                            &[("line", line), ("from", o as u64)],
                        )
                    });
                    if let Some(l) = self.llc[b].peek_mut(line) {
                        l.dirty = true;
                        l.sharers |= 1 << o;
                        l.owner = None;
                    }
                    t = tr;
                }
            }
            if let Some(ns) = new_sharer {
                if let Some(l) = self.llc[b].peek_mut(line) {
                    l.sharers |= 1u64 << ns;
                    if l.owner == Some(ns as u8) {
                        l.owner = None;
                    }
                }
            }
        }
        t
    }

    /// Invalidates `line` from tile `s`'s L1+L2; returns whether a dirty
    /// copy existed.
    pub(super) fn invalidate_private(&mut self, s: u32, line: u64) -> bool {
        let mut dirty = false;
        if let Some(l) = self.l1[s as usize].invalidate(line) {
            dirty |= l.dirty;
        }
        if let Some(l) = self.l2[s as usize].invalidate(line) {
            dirty |= l.dirty;
        }
        dirty
    }
}
