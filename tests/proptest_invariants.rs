//! Property-based tests on the core data structures and invariants:
//! cache banks, FU windows, the allocator's layout guarantees, the DRAM
//! compaction translation, memory semantics, and the NoC.

use levi_isa::{Memory, PagedMem};
use levi_sim::cache::CacheBank;
use levi_sim::dram::{TranslationEntry, Translator};
use levi_sim::engine::{EngineId, EngineLevel, EngineState, WindowFu};
use levi_sim::{CacheConfig, MachineConfig, Replacement, Stats};
use leviathan::alloc::{padded_size, Allocator, ArraySpec};
use proptest::prelude::*;

proptest! {
    /// PagedMem behaves exactly like a map of bytes.
    #[test]
    fn paged_mem_matches_model(ops in proptest::collection::vec(
        (any::<u32>(), any::<u8>(), any::<bool>()), 1..200)) {
        let mut mem = PagedMem::new();
        let mut model = std::collections::HashMap::new();
        for (addr, val, is_write) in ops {
            let a = addr as u64;
            if is_write {
                mem.write_u8(a, val);
                model.insert(a, val);
            } else {
                let expect = model.get(&a).copied().unwrap_or(0);
                prop_assert_eq!(mem.read_u8(a), expect);
            }
        }
    }

    /// Multi-byte accesses round-trip for every width.
    #[test]
    fn mem_width_round_trip(addr in 0u64..1_000_000, val: u64) {
        use levi_isa::MemWidth::*;
        let mut mem = PagedMem::new();
        for w in [B1, B2, B4, B8] {
            mem.write(addr, val, w);
            prop_assert_eq!(mem.read(addr, w), w.truncate(val));
        }
    }

    /// A cache bank never exceeds its capacity and never loses a line it
    /// did not report evicted.
    #[test]
    fn cache_bank_capacity_and_conservation(
        lines in proptest::collection::vec(0u64..4096, 1..300)) {
        let cfg = CacheConfig {
            size_bytes: 16 * 64, // 16 lines
            ways: 4,
            latency: 1,
            replacement: Replacement::Srrip,
        };
        let mut bank = CacheBank::new(&cfg);
        let mut resident = std::collections::HashSet::new();
        for line in lines {
            if resident.contains(&line) {
                prop_assert!(bank.probe(line).is_some());
                continue;
            }
            let (_, victim) = bank.insert(line, &[]);
            resident.insert(line);
            if let Some(v) = victim {
                prop_assert!(resident.remove(&v.line), "evicted a non-resident line");
            }
            prop_assert!(bank.resident() <= 16);
            prop_assert_eq!(bank.resident(), resident.len());
        }
        for &l in &resident {
            prop_assert!(bank.contains(l), "line {:#x} silently lost", l);
        }
    }

    /// Pinned lines are never chosen as victims.
    #[test]
    fn pinned_lines_survive(fill in proptest::collection::vec(0u64..64, 8..64)) {
        let cfg = CacheConfig {
            size_bytes: 8 * 64, // 2 sets x 4 ways
            ways: 4,
            latency: 1,
            replacement: Replacement::Lru,
        };
        let mut bank = CacheBank::new(&cfg);
        let pinned = 2u64; // set 0
        bank.insert(pinned, &[]);
        for line in fill {
            if !bank.contains(line) {
                bank.insert(line, &[pinned]);
            }
            prop_assert!(bank.contains(pinned), "pinned line evicted");
        }
    }

    /// WindowFu grants at most `limit` slots per cycle.
    #[test]
    fn window_fu_respects_limit(
        times in proptest::collection::vec(0u64..2000, 1..300),
        limit in 1u32..8,
    ) {
        let mut fu = WindowFu::new(limit);
        let mut per_cycle = std::collections::HashMap::new();
        for t in times {
            let got = fu.reserve(t);
            prop_assert!(got >= t.min(got), "grant in the deep past");
            let c = per_cycle.entry(got).or_insert(0u32);
            *c += 1;
            prop_assert!(*c <= limit, "cycle {} over-subscribed", got);
        }
    }

    /// Padded sizes are powers of two (up to the 4-line cap), at least the
    /// object size, and at least 8.
    #[test]
    fn padded_size_properties(obj in 1u64..256) {
        let p = padded_size(obj);
        prop_assert!(p >= obj);
        prop_assert!(p >= 8);
        prop_assert!(p.is_power_of_two());
        prop_assert!(p <= 256);
    }

    /// Allocator layouts: objects never straddle lines when padded, arrays
    /// from one allocator never overlap, and compaction translations map
    /// distinct backed bytes to distinct DRAM bytes.
    #[test]
    fn allocator_layout_invariants(
        sizes in proptest::collection::vec(1u64..300, 1..8),
    ) {
        let mut alloc = Allocator::new();
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for (k, obj) in sizes.iter().enumerate() {
            let layout = alloc.plan_array(&ArraySpec::new(&format!("a{k}"), *obj, 16));
            let arr = &layout.array;
            // No overlap with prior regions.
            for &(b, e) in &regions {
                prop_assert!(arr.bound() <= b || arr.base >= e);
            }
            regions.push((arr.base, arr.bound()));
            // No line straddling for supported sizes.
            if arr.stride <= 256 && arr.stride.is_power_of_two() {
                for i in 0..arr.count {
                    let a = arr.addr(i);
                    let first = a / 64;
                    let last = (a + arr.obj_size.min(arr.stride) - 1) / 64;
                    if arr.stride <= 64 {
                        prop_assert_eq!(first, last, "object {} straddles a line", i);
                    }
                }
            }
            // Translation is injective over backed bytes.
            if let Some(t) = layout.translation {
                let mut seen = std::collections::HashSet::new();
                for i in 0..arr.count {
                    for off in 0..arr.obj_size {
                        let d = t.translate(arr.addr(i) + off).expect("backed byte");
                        prop_assert!(seen.insert(d), "DRAM byte collision");
                    }
                }
            }
        }
    }

    /// The translator maps every backed cache line to at most 4 DRAM lines
    /// and never panics across sizes.
    #[test]
    fn translator_line_mapping_total(obj in 1u64..=128) {
        let padded = padded_size(obj);
        prop_assume!(padded != obj); // only compacted layouts translate
        let mut tr = Translator::new();
        tr.register(TranslationEntry {
            cache_base: 0x10000,
            cache_bound: 0x10000 + padded * 64,
            dram_base: 0x100000,
            padded_size: padded,
            packed_size: obj,
        });
        for line in (0x10000 / 64)..((0x10000 + padded * 64) / 64) {
            let lines = tr.dram_lines_for(line);
            prop_assert!(!lines.as_slice().is_empty());
            prop_assert!(lines.as_slice().len() <= 4);
        }
    }

    /// Engine contexts: reserve/release is balanced and capped.
    #[test]
    fn engine_contexts_balanced(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let cfg = MachineConfig::paper_default().engine;
        let mut e = EngineState::new(
            EngineId { tile: 0, level: EngineLevel::Llc },
            &cfg,
        );
        let cap = e.offload_ctxs_cap;
        let mut held = 0u32;
        for take in ops {
            if take {
                if e.try_reserve_ctx() {
                    held += 1;
                    prop_assert!(held <= cap);
                } else {
                    prop_assert_eq!(held, cap, "NACK only when full");
                }
            } else if held > 0 {
                e.release_ctx();
                held -= 1;
            }
        }
    }

    /// NoC: hop counts are symmetric and bounded by the mesh diameter;
    /// sending never decreases time.
    #[test]
    fn noc_properties(from in 0u32..16, to in 0u32..16, bytes in 1u32..256, now in 0u64..10_000) {
        let cfg = MachineConfig::paper_default();
        let (c, r) = cfg.mesh_dims();
        let mut noc = levi_sim::noc::Noc::new(c, r, cfg.noc);
        prop_assert_eq!(noc.hops(from, to), noc.hops(to, from));
        prop_assert!(noc.hops(from, to) <= (c - 1) + (r - 1));
        let mut stats = Stats::new();
        let t = noc.send(from, to, bytes, now, &mut stats);
        prop_assert!(t >= now);
        if from == to {
            prop_assert_eq!(t, now);
        }
    }
}
