//! Thin wrapper: `cargo bench --bench fig20_hats` dispatches to the `fig20_hats`
//! descriptor in the unified figure registry (`levi_bench::figures`),
//! which `levi-bench run fig20_hats` executes identically.

fn main() {
    levi_bench::runner::bench_main("fig20_hats");
}
