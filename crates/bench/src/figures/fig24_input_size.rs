//! Fig. 24 — sensitivity to input size (hash table).
//!
//! Paper: Leviathan performs well while the table fits the LLC; once the
//! table exceeds the LLC, NoC savings are swamped by DRAM latency and the
//! advantage shrinks.

use levi_workloads::hashtable::{HashtableWorkload, HtScale, HtVariant};
use levi_workloads::Workload;

use crate::runner::{Figure, RunCtx};
use crate::{header, table_report, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "fig24_input_size",
    about: "hash-table sensitivity to total table size vs the LLC (paper Fig. 24)",
    workloads: &["hashtable"],
    run,
};

fn run(ctx: &RunCtx) {
    header(
        "Fig. 24 — hash-table sensitivity to total table size",
        "paper: good while data <= LLC; drops past LLC capacity",
    );
    let w = &HashtableWorkload;
    let base_scale = if ctx.quick {
        HtScale::test(64)
    } else {
        HtScale::paper(64)
    };
    // The 16-tile LLC is 8 MB; sweep the (padded) table across it.
    let sizes_mb: &[u64] = if ctx.quick {
        &[1, 2]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    // Golden checksums depend on the node count, so each size is checked
    // against its own scale's model inside the sweep.
    let mut jobs: Vec<(String, (HtScale, HtVariant))> = Vec::new();
    for &mb in sizes_mb {
        let scale = base_scale.clone().with_table_bytes(mb * 1024 * 1024);
        jobs.push((format!("base {mb}MB"), (scale.clone(), HtVariant::Baseline)));
        jobs.push((format!("lev {mb}MB"), (scale, HtVariant::Leviathan)));
    }
    let env = &ctx.env;
    let mut runs = Sweep::new()
        .variants(jobs.iter().map(|(label, job)| (label.as_str(), job)))
        .run(|label, job| {
            let (scale, v) = (&job.0, job.1);
            let o = w.run(v, scale, &(), env).expect_done(label);
            assert_eq!(
                o.checksum,
                w.golden(v, scale, &()),
                "{label} diverged from the golden model"
            );
            o
        })
        .into_iter();
    let mut rows = Vec::new();
    for &mb in sizes_mb {
        let base = runs.next().unwrap().1;
        let lev = runs.next().unwrap().1;
        crate::progressln!("  ran table={mb}MB");
        rows.push(vec![
            format!("{mb} MB"),
            format!(
                "{:.2}x",
                base.metrics.cycles as f64 / lev.metrics.cycles as f64
            ),
            base.metrics.stats.dram_accesses.to_string(),
            lev.metrics.stats.dram_accesses.to_string(),
        ]);
    }
    table_report(
        "fig24_input_size",
        &["table size", "Leviathan speedup", "base DRAM", "lev DRAM"],
        &rows,
    );
    crate::outln!();
    crate::outln!(
        "(16-tile LLC = 8 MB; expect the advantage to fall once the table no longer fits)"
    );
}
