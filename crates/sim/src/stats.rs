//! Execution statistics.
//!
//! A single [`Stats`] struct accumulates every counter the evaluation
//! needs: per-level cache hits/misses, NoC traffic, DRAM accesses (broken
//! down by workload *phase* for Fig. 21), branch predictor outcomes,
//! instruction counts, and NDC bookkeeping.

use std::fmt;

/// Workload phase tag for phase-attributed counters (e.g. Fig. 21 splits
/// DRAM accesses between PageRank's edge and vertex phases).
pub const MAX_PHASES: usize = 4;

/// Per-cache-level access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines written back out of this level.
    pub writebacks: u64,
}

impl LevelStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in \[0, 1\]; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// All counters accumulated during a run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Final simulated cycle (set when the run finishes).
    pub cycles: u64,
    /// Instructions retired by cores.
    pub core_instrs: u64,
    /// Instructions retired by engines (all contexts + inline actions).
    pub engine_instrs: u64,

    /// L1 data caches (cores).
    pub l1: LevelStats,
    /// Private L2 caches.
    pub l2: LevelStats,
    /// Shared LLC banks.
    pub llc: LevelStats,
    /// Engine L1d caches.
    pub engine_l1: LevelStats,

    /// Directory lookups at the LLC.
    pub dir_lookups: u64,
    /// Invalidation messages sent to private caches.
    pub invalidations: u64,
    /// Cache-to-cache ownership transfers (the "ping-pong" the paper's
    /// task offload eliminates).
    pub ownership_transfers: u64,

    /// NoC messages sent.
    pub noc_messages: u64,
    /// NoC flit-hops (flits × hops), the traffic/energy metric.
    pub noc_flit_hops: u64,

    /// DRAM line accesses (reads + writes), total.
    pub dram_accesses: u64,
    /// DRAM accesses attributed per phase (see [`Stats::set_phase`]).
    pub dram_by_phase: [u64; MAX_PHASES],
    /// Memory-controller FIFO-cache hits (avoided DRAM accesses).
    pub mc_cache_hits: u64,

    /// Conditional branches executed on cores.
    pub branches: u64,
    /// Mispredicted conditional branches on cores.
    pub mispredicts: u64,

    /// Memory fences executed (including fenced atomics' implied fences).
    pub fences: u64,
    /// Atomic RMWs executed by cores.
    pub core_rmws: u64,

    /// Tasks offloaded via `invoke`.
    pub invokes: u64,
    /// Invokes that were NACKed (engine context buffer full) and retried.
    pub invoke_nacks: u64,
    /// Invokes that executed on the local tile due to the 1/32 migrate-up
    /// policy.
    pub invoke_migrations: u64,
    /// Data-triggered constructor actions executed.
    pub ctor_actions: u64,
    /// Data-triggered destructor actions executed.
    pub dtor_actions: u64,
    /// Stream entries pushed by producers.
    pub stream_pushes: u64,
    /// Stream entries popped by consumers.
    pub stream_pops: u64,
    /// Cycles consumer loads stalled waiting for stream data.
    pub stream_stall_cycles: u64,
    /// L2 prefetches issued.
    pub prefetches: u64,

    current_phase: usize,
}

impl Stats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current workload phase for phase-attributed counters.
    ///
    /// # Panics
    /// Panics if `phase >= MAX_PHASES`.
    pub fn set_phase(&mut self, phase: usize) {
        assert!(phase < MAX_PHASES, "phase {phase} out of range");
        self.current_phase = phase;
    }

    /// The current phase index.
    pub fn phase(&self) -> usize {
        self.current_phase
    }

    /// Records one DRAM access in the current phase.
    pub(crate) fn count_dram(&mut self) {
        self.dram_accesses += 1;
        self.dram_by_phase[self.current_phase] += 1;
    }

    /// Branch misprediction rate in \[0, 1\].
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:            {}", self.cycles)?;
        writeln!(f, "core instrs:       {}", self.core_instrs)?;
        writeln!(f, "engine instrs:     {}", self.engine_instrs)?;
        writeln!(
            f,
            "L1  hits/misses:   {}/{} ({:.1}% miss)",
            self.l1.hits,
            self.l1.misses,
            self.l1.miss_ratio() * 100.0
        )?;
        writeln!(
            f,
            "L2  hits/misses:   {}/{} ({:.1}% miss)",
            self.l2.hits,
            self.l2.misses,
            self.l2.miss_ratio() * 100.0
        )?;
        writeln!(
            f,
            "LLC hits/misses:   {}/{} ({:.1}% miss)",
            self.llc.hits,
            self.llc.misses,
            self.llc.miss_ratio() * 100.0
        )?;
        writeln!(f, "DRAM accesses:     {}", self.dram_accesses)?;
        writeln!(f, "MC cache hits:     {}", self.mc_cache_hits)?;
        writeln!(f, "NoC flit-hops:     {}", self.noc_flit_hops)?;
        writeln!(
            f,
            "branches:          {} ({:.2}% mispredicted)",
            self.branches,
            self.mispredict_ratio() * 100.0
        )?;
        writeln!(f, "fences:            {}", self.fences)?;
        writeln!(f, "invokes:           {} ({} NACKed)", self.invokes, self.invoke_nacks)?;
        writeln!(f, "ctor/dtor actions: {}/{}", self.ctor_actions, self.dtor_actions)?;
        write!(f, "stream push/pop:   {}/{}", self.stream_pushes, self.stream_pops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_attribution() {
        let mut s = Stats::new();
        s.count_dram();
        s.set_phase(1);
        s.count_dram();
        s.count_dram();
        assert_eq!(s.dram_accesses, 3);
        assert_eq!(s.dram_by_phase[0], 1);
        assert_eq!(s.dram_by_phase[1], 2);
        assert_eq!(s.phase(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn phase_bounds_checked() {
        Stats::new().set_phase(MAX_PHASES);
    }

    #[test]
    fn ratios() {
        let mut s = Stats::new();
        assert_eq!(s.mispredict_ratio(), 0.0);
        s.branches = 10;
        s.mispredicts = 3;
        assert!((s.mispredict_ratio() - 0.3).abs() < 1e-12);
        let lv = LevelStats {
            hits: 3,
            misses: 1,
            writebacks: 0,
        };
        assert_eq!(lv.accesses(), 4);
        assert!((lv.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_nonempty() {
        let s = Stats::new();
        let text = s.to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("DRAM"));
    }
}
