//! The Leviathan system: machine + allocator + action registry.
//!
//! [`System`] is the top-level entry point of the library: it owns a
//! simulated [`Machine`], the object [`Allocator`], and the action table,
//! and exposes the operations of the paper's programming interface —
//! allocate actors, register actions and Morphs, create streams, spawn
//! threads and long-lived engine tasks, and run.

use std::sync::Arc;

use levi_isa::{ActionId, Addr, FuncId, MemWidth, Memory, Program};
use levi_sim::{
    EngineId, EngineLevel, FaultPlan, Machine, MachineConfig, MorphRegion, RunError, RunResult,
    SimError,
};

use crate::alloc::{Allocator, ArraySpec, Layout, ObjectArray};
use crate::future::{FutureCell, FUTURE_SIZE};
use crate::morph::{MorphHandle, MorphSpec};
use crate::stream::{StreamHandle, StreamSpec};

/// System-level configuration: the machine plus Leviathan feature toggles
/// used to model prior-work baselines.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// The underlying machine configuration (Table V defaults).
    pub machine: MachineConfig,
}

impl SystemConfig {
    /// The paper's 16-tile evaluation system.
    pub fn paper_default() -> Self {
        SystemConfig {
            machine: MachineConfig::paper_default(),
        }
    }

    /// A 4-tile system for fast tests and examples.
    pub fn small() -> Self {
        let mut machine = MachineConfig::with_tiles(4);
        machine.prefetcher = false;
        SystemConfig { machine }
    }

    /// Scales the tile count (Fig. 25).
    pub fn with_tiles(tiles: u32) -> Self {
        SystemConfig {
            machine: MachineConfig::with_tiles(tiles),
        }
    }

    /// Switches the engines to the idealized model (the paper's "Ideal").
    pub fn idealized(mut self) -> Self {
        self.machine = self.machine.idealized();
        self
    }

    /// Installs a deterministic fault-injection plan (engine outages,
    /// invoke-buffer squeezes, NoC link faults, DRAM throttles).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.machine = self.machine.faulted(plan);
        self
    }

    /// Arms the run watchdog: `run()` aborts with `RunError::Watchdog`
    /// once the simulated clock passes `max_cycles`.
    pub fn with_watchdog(mut self, max_cycles: u64) -> Self {
        self.machine = self.machine.watchdog(max_cycles);
        self
    }
}

/// A complete Leviathan system.
pub struct System {
    machine: Machine,
    alloc: Allocator,
    next_action: u32,
    next_morph_name: u32,
}

impl System {
    /// Builds a system, returning a typed error on an invalid machine
    /// configuration.
    pub fn try_new(cfg: SystemConfig) -> Result<Self, levi_sim::SimError> {
        let tiles = cfg.machine.tiles as u64;
        let mut alloc = Allocator::new();
        alloc.set_min_align(tiles * levi_sim::LINE_SIZE);
        Ok(System {
            machine: Machine::try_new(cfg.machine)?,
            alloc,
            next_action: 0,
            next_morph_name: 0,
        })
    }

    /// The underlying machine (stats, energy, memory, NDC state).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the underlying machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Number of tiles/cores.
    pub fn tiles(&self) -> u32 {
        self.machine.config().tiles
    }

    // ---- memory ----

    /// Allocates raw bytes on the simulated heap.
    pub fn alloc_raw(&mut self, bytes: u64, align: u64) -> Addr {
        self.alloc.alloc_raw(bytes, align)
    }

    /// Allocates an object array per the spec, installing any DRAM
    /// compaction translation and LLC bank mapping it requires.
    pub fn alloc_array(&mut self, spec: &ArraySpec) -> ObjectArray {
        let Layout {
            array,
            translation,
            bank_map,
        } = self.alloc.plan_array(spec);
        if let Some(t) = translation {
            self.machine.hw.translator.register(t);
        }
        if let Some(bm) = bank_map {
            self.machine.hw.ndc.bank_maps.push(bm);
        }
        array
    }

    /// Marks `[base, base+len)` as a streaming-store region: write misses
    /// in it skip the write-allocate fetch (the hardware write-combining
    /// path used by e.g. PHI's delta logs).
    pub fn mark_streaming_stores(&mut self, base: Addr, len: u64) {
        self.machine
            .hw
            .ndc
            .stream_store_ranges
            .push((base, base + len));
    }

    /// Marks `[base, base+len)` as memory-side data: engine accesses to
    /// it bypass the LLC and execute at the memory controller (PHI's
    /// in-place update path).
    pub fn mark_mem_side(&mut self, base: Addr, len: u64) {
        self.machine.hw.ndc.mem_side_ranges.push((base, base + len));
    }

    /// Allocates a future cell.
    pub fn alloc_future(&mut self) -> FutureCell {
        FutureCell::at(self.alloc.alloc_raw(FUTURE_SIZE, 16))
    }

    /// Reads a u64 from simulated memory.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.machine.mem().read_u64(addr)
    }

    /// Writes a u64 to simulated memory.
    pub fn write_u64(&mut self, addr: Addr, val: u64) {
        self.machine.mem_mut().write_u64(addr, val);
    }

    /// Reads a value of the given width.
    pub fn read(&self, addr: Addr, width: MemWidth) -> u64 {
        self.machine.mem().read(addr, width)
    }

    /// Writes a value of the given width.
    pub fn write(&mut self, addr: Addr, val: u64, width: MemWidth) {
        self.machine.mem_mut().write(addr, val, width);
    }

    // ---- actions & paradigms ----

    /// Registers a LevIR function as a near-data action; returns its id
    /// (the engines' vtable slot).
    pub fn register_action(&mut self, prog: &Arc<Program>, func: FuncId) -> ActionId {
        let id = ActionId(self.next_action);
        self.next_action += 1;
        self.machine
            .hw
            .ndc
            .actions
            .register(id, Arc::clone(prog), func);
        id
    }

    /// Registers a data-triggered Morph: allocates the phantom actor range
    /// and view, and installs the region. Returns the handle.
    pub fn register_morph(&mut self, spec: &MorphSpec) -> MorphHandle {
        self.next_morph_name += 1;
        let array = self.alloc_array(&ArraySpec {
            name: format!("morph:{}", spec.name),
            obj_size: spec.obj_size,
            count: spec.count,
            pad: true,
            map_banks: true,
            // Phantom data has no DRAM backing at all.
            compact_dram: false,
        });
        let view = self.alloc.alloc_raw(spec.view_bytes.max(8), 64);
        self.machine.hw.ndc.register_morph(MorphRegion {
            base: array.base,
            bound: array.bound(),
            level: spec.level,
            obj_size: array.stride,
            ctor: spec.ctor,
            dtor: spec.dtor,
            view,
            stream: None,
        });
        MorphHandle {
            actors: array,
            view,
            level: spec.level,
            stream: None,
        }
    }

    /// Registers a Morph over an *existing* address range (used by
    /// streams, and by callers that manage their own layout). `stride`
    /// must already be padded.
    pub fn register_morph_over(
        &mut self,
        array: ObjectArray,
        level: levi_sim::MorphLevel,
        ctor: Option<ActionId>,
        dtor: Option<ActionId>,
        view: Addr,
        stream: Option<levi_sim::StreamId>,
    ) -> MorphHandle {
        self.machine.hw.ndc.register_morph(MorphRegion {
            base: array.base,
            bound: array.bound(),
            level,
            obj_size: array.stride,
            ctor,
            dtor,
            view,
            stream,
        });
        MorphHandle {
            actors: array,
            view,
            level,
            stream,
        }
    }

    /// Unregisters a Morph, flushing its range (running destructors for
    /// resident tagged lines) first — the `flush` + `unregister` sequence
    /// of Sec. VI-B2.
    pub fn unregister_morph(&mut self, handle: &MorphHandle) {
        let base = handle.actors.base;
        let len = handle.actors.len_bytes();
        self.machine.flush_morph_range(base, len);
        self.machine.hw.ndc.unregister_morph(base);
    }

    /// Creates a stream: allocates the circular buffer, installs the
    /// consumer-side phantom Morph, and spawns the long-lived producer on
    /// the consumer tile's engine.
    ///
    /// # Errors
    /// Returns [`SimError`] if the spec is rejected by the machine (e.g. a
    /// zero capacity).
    pub fn create_stream(&mut self, spec: &StreamSpec) -> Result<StreamHandle, SimError> {
        let entry_size = 8u64;
        // Place the whole ring on the consumer tile's LLC bank: allocate
        // a power-of-two-sized, self-aligned ring and use the bank-index
        // mapping to treat it as one multi-line object, choosing the slot
        // whose lines land on the consumer's bank (pushes and phantom
        // refills then never cross the mesh).
        let ring_bytes = (spec.capacity * entry_size)
            .next_power_of_two()
            .max(levi_sim::LINE_SIZE);
        let ignore = (ring_bytes / levi_sim::LINE_SIZE).trailing_zeros();
        let tiles = self.tiles() as u64;
        let region = self.alloc.alloc_raw(ring_bytes * tiles, ring_bytes * tiles);
        self.machine.hw.ndc.bank_maps.push(levi_sim::BankMapRange {
            base: region,
            bound: region + ring_bytes * tiles,
            ignore_line_bits: ignore,
        });
        let buffer = (0..tiles)
            .map(|i| region + i * ring_bytes)
            .find(|&b| self.machine.hw.bank_of(b) == spec.consumer)
            .expect("one slot per bank");
        let engine = EngineId {
            tile: spec.consumer,
            level: spec.engine_level,
        };
        let id = self.machine.create_stream(
            buffer,
            entry_size,
            spec.capacity,
            engine,
            spec.consumer,
            spec.mode,
        )?;
        let array = ObjectArray {
            base: buffer,
            obj_size: entry_size,
            stride: entry_size,
            count: spec.capacity,
        };
        self.register_morph_over(array, levi_sim::MorphLevel::L2, None, None, 0, Some(id));
        let mut args = Vec::with_capacity(1 + spec.producer_args.len());
        args.push(id.0 as u64);
        args.extend_from_slice(&spec.producer_args);
        self.machine.spawn_engine_task(
            engine,
            Arc::clone(&spec.producer_prog),
            spec.producer_func,
            &args,
            Some(id),
        );
        Ok(StreamHandle {
            id,
            buffer,
            capacity: spec.capacity,
            entry_size,
        })
    }

    /// Terminates a stream (the paper's `Stream::terminate`, Fig. 12):
    /// marks it closed so blocked consumers unblock; a producer parked on
    /// a full buffer simply never resumes.
    pub fn terminate_stream(&mut self, handle: &StreamHandle) {
        self.machine.close_stream(handle.id);
    }

    /// Spawns a software thread on a core.
    ///
    /// # Errors
    /// Returns [`SimError`] if `core` is out of range or too many arguments
    /// are given.
    pub fn spawn_thread(
        &mut self,
        core: u32,
        prog: &Arc<Program>,
        func: FuncId,
        args: &[u64],
    ) -> Result<levi_sim::ActorId, SimError> {
        self.machine
            .spawn_thread(core, Arc::clone(prog), func, args)
    }

    /// Spawns a long-lived task directly on an engine (the long-lived
    /// workloads paradigm).
    pub fn spawn_long_lived(
        &mut self,
        tile: u32,
        level: EngineLevel,
        prog: &Arc<Program>,
        func: FuncId,
        args: &[u64],
    ) -> levi_sim::ActorId {
        self.machine
            .spawn_engine_task(EngineId { tile, level }, Arc::clone(prog), func, args, None)
    }

    /// Runs until all spawned core threads halt.
    ///
    /// # Errors
    /// Propagates [`RunError`] from the machine: a deadlock, the watchdog
    /// firing, or a fatal simulation fault.
    pub fn run(&mut self) -> Result<RunResult, RunError> {
        self.machine.run()
    }

    /// Current statistics.
    pub fn stats(&self) -> &levi_sim::Stats {
        self.machine.stats()
    }

    /// Energy consumed so far.
    pub fn energy(&self) -> levi_sim::EnergyBreakdown {
        self.machine.energy()
    }

    /// Sets the workload phase tag (Fig. 21's per-phase DRAM accounting).
    pub fn set_phase(&mut self, phase: usize) {
        self.machine.set_phase(phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levi_isa::{Location, ProgramBuilder, Reg, RmwOp};
    use levi_sim::MorphLevel;

    #[test]
    fn alloc_array_installs_translation_and_mapping() {
        let mut sys = System::try_new(SystemConfig::small()).expect("small config is valid");
        let nodes = sys.alloc_array(&ArraySpec::new("nodes", 24, 64));
        assert_eq!(nodes.stride, 32);
        assert_eq!(sys.machine().hw.translator.len(), 1);
        let big = sys.alloc_array(&ArraySpec::new("big", 128, 16));
        assert_eq!(sys.machine().hw.ndc.bank_maps.len(), 1);
        // All lines of a 128B object map to one bank.
        let b0 = sys.machine().hw.bank_of(big.addr(3));
        let b1 = sys.machine().hw.bank_of(big.addr(3) + 64);
        assert_eq!(b0, b1);
    }

    #[test]
    fn offload_updates_counter_near_data() {
        let mut pb = ProgramBuilder::new();
        let action = {
            let mut f = pb.function("add");
            let (actor, amt, old) = (Reg(0), Reg(1), Reg(2));
            f.rmw_relaxed(RmwOp::Add, old, actor, amt, levi_isa::MemWidth::B8);
            f.halt();
            f.finish()
        };
        let main = {
            let mut f = pb.function("main");
            let (actor, amt, i, n) = (Reg(0), Reg(1), Reg(2), Reg(3));
            f.imm(amt, 2).imm(i, 0).imm(n, 10);
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.bge_u(i, n, out);
            f.invoke(actor, ActionId(0), &[amt], Location::Remote);
            f.addi(i, i, 1);
            f.jmp(top);
            f.bind(out);
            f.halt();
            f.finish()
        };
        let prog = Arc::new(pb.finish().unwrap());
        let mut sys = System::try_new(SystemConfig::small()).expect("small config is valid");
        let counter = sys.alloc_raw(8, 8);
        let a = sys.register_action(&prog, action);
        assert_eq!(a, ActionId(0));
        sys.spawn_thread(0, &prog, main, &[counter]).unwrap();
        sys.run().unwrap();
        assert_eq!(sys.read_u64(counter), 20);
        assert_eq!(sys.stats().invokes, 10);
    }

    #[test]
    fn morph_ctor_initializes_phantom_objects() {
        // Phantom u64 actors with a ctor that writes a magic value; an
        // offloaded task reads one actor and reports via future.
        let mut pb = ProgramBuilder::new();
        let ctor = {
            let mut f = pb.function("ctor");
            let (obj, v) = (Reg(0), Reg(2));
            f.imm(v, 4242);
            f.st8(obj, 0, v);
            f.halt();
            f.finish()
        };
        let reader = {
            let mut f = pb.function("reader");
            let (obj, fut, v) = (Reg(0), Reg(1), Reg(2));
            f.ld8(v, obj, 0);
            f.future_send(fut, v);
            f.halt();
            f.finish()
        };
        let main = {
            let mut f = pb.function("main");
            let (obj, fut, v) = (Reg(0), Reg(1), Reg(2));
            f.invoke_future(obj, ActionId(1), &[fut], fut, Location::Remote);
            f.future_wait(v, fut);
            f.mov(Reg(0), v);
            f.halt();
            f.finish()
        };
        let prog = Arc::new(pb.finish().unwrap());
        let mut sys = System::try_new(SystemConfig::small()).expect("small config is valid");
        let ctor_a = sys.register_action(&prog, ctor);
        let _reader_a = sys.register_action(&prog, reader);
        let morph =
            sys.register_morph(&MorphSpec::new("magic", 8, 128, MorphLevel::Llc).with_ctor(ctor_a));
        let fut = sys.alloc_future();
        sys.spawn_thread(0, &prog, main, &[morph.actor(5), fut.addr])
            .unwrap();
        sys.run().unwrap();
        assert_eq!(fut.value(sys.machine().mem()), 4242);
        assert!(sys.stats().ctor_actions >= 1);
        assert_eq!(sys.stats().dram_accesses, 0, "phantom data avoids DRAM");
    }

    #[test]
    fn stream_producer_consumer_end_to_end() {
        let mut pb = ProgramBuilder::new();
        let producer = {
            let mut f = pb.function("gen");
            let (handle, i, n) = (Reg(0), Reg(1), Reg(2));
            f.imm(i, 0).imm(n, 50);
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.bge_u(i, n, out);
            f.push(handle, i);
            f.addi(i, i, 1);
            f.jmp(top);
            f.bind(out);
            f.halt();
            f.finish()
        };
        let consumer = {
            let mut f = pb.function("consume");
            let (handle, base, cap, n) = (Reg(0), Reg(1), Reg(2), Reg(3));
            let (i, idx, addr, v, acc, res) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(8), Reg(9));
            f.imm(i, 0).imm(acc, 0);
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.bge_u(i, n, out);
            f.remu(idx, i, cap);
            f.muli(idx, idx, 8);
            f.add(addr, base, idx);
            f.ld8(v, addr, 0);
            f.pop(handle);
            f.add(acc, acc, v);
            f.addi(i, i, 1);
            f.jmp(top);
            f.bind(out);
            f.imm(res, 0x7777_0000);
            f.st8(res, 0, acc);
            f.halt();
            f.finish()
        };
        let prog = Arc::new(pb.finish().unwrap());
        let mut sys = System::try_new(SystemConfig::small()).expect("small config is valid");
        let spec = StreamSpec::new("nums", 16, 0, &prog, producer);
        let h = sys.create_stream(&spec).unwrap();
        sys.spawn_thread(
            0,
            &prog,
            consumer,
            &[h.reg_value(), h.buffer, h.capacity, 50],
        )
        .unwrap();
        sys.run().unwrap();
        assert_eq!(sys.read_u64(0x7777_0000), (0..50).sum::<u64>());
        assert_eq!(sys.stats().stream_pushes, 50);
        assert_eq!(sys.stats().stream_pops, 50);
    }

    #[test]
    fn long_lived_task_runs_on_engine() {
        let mut pb = ProgramBuilder::new();
        let worker = {
            let mut f = pb.function("background_sum");
            // r0 = src base, r1 = n, r2 = dst
            let (base, n, dst, i, v, acc) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
            f.imm(i, 0).imm(acc, 0);
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.bge_u(i, n, out);
            f.ld8(v, base, 0);
            f.add(acc, acc, v);
            f.addi(base, base, 8);
            f.addi(i, i, 1);
            f.jmp(top);
            f.bind(out);
            f.st8(dst, 0, acc);
            f.halt();
            f.finish()
        };
        let main = {
            let mut f = pb.function("main");
            // The core just spins a bit and exits; the engine task is the
            // long-lived worker. r0 = dst to poll.
            let (dst, v) = (Reg(0), Reg(1));
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.ld8(v, dst, 0);
            f.bne(v, Reg(2), out); // r2 == 0
            f.jmp(top);
            f.bind(out);
            f.halt();
            f.finish()
        };
        let prog = Arc::new(pb.finish().unwrap());
        let mut sys = System::try_new(SystemConfig::small()).expect("small config is valid");
        let src = sys.alloc_raw(8 * 32, 64);
        for k in 0..32u64 {
            sys.write_u64(src + 8 * k, k + 1);
        }
        let dst = sys.alloc_raw(8, 8);
        sys.spawn_long_lived(1, EngineLevel::Llc, &prog, worker, &[src, 32, dst]);
        sys.spawn_thread(0, &prog, main, &[dst]).unwrap();
        sys.run().unwrap();
        assert_eq!(sys.read_u64(dst), (1..=32).sum::<u64>());
        assert!(sys.stats().engine_instrs > 32 * 4);
    }

    use levi_isa::ActionId;
}
