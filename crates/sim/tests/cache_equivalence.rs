//! Randomized equivalence between the flat-slab [`CacheBank`] and the
//! nested-Vec reference model it replaced.
//!
//! The flat layout (parallel `tags`/`rrip`/`lru`/`lines` arrays plus a
//! per-set occupancy count) claims to emulate the old `Vec<Vec<Line>>`
//! push/`swap_remove` discipline *exactly* — way ordering included, since
//! SRRIP's first-match victim scan observes it. This test keeps the old
//! implementation alive as a reference model and drives both through long
//! seeded random op sequences, asserting identical hit/miss, victim,
//! invalidate, and drain outcomes at every step, plus identical residency
//! at the end.

use levi_sim::cache::{CacheBank, Line, PrivState};
use levi_sim::{CacheConfig, Replacement};

/// Line address mask: ops draw from a small pool so sets fill, conflict,
/// and churn.
const LINE_POOL: u64 = 63;

/// The pre-flat reference implementation: one `Vec` per set, lines pushed
/// at the back, removed with `swap_remove`. Logic is copied from the old
/// `cache.rs` (replacement state lived inline in the line then).
struct RefBank {
    sets: Vec<Vec<(Line, u8, u64)>>, // (meta, rrip, lru)
    ways: usize,
    set_mask: u64,
    replacement: Replacement,
    tick: u64,
}

impl RefBank {
    fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        RefBank {
            sets: (0..sets).map(|_| Vec::new()).collect(),
            ways: cfg.ways as usize,
            set_mask: sets - 1,
            replacement: cfg.replacement,
            tick: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    fn probe(&mut self, line: u64) -> Option<&mut Line> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let e = self.sets[set].iter_mut().find(|(l, _, _)| l.line == line)?;
        e.1 = 0;
        e.2 = tick;
        Some(&mut e.0)
    }

    fn insert(&mut self, line: u64, pinned: &[u64]) -> (&mut Line, Option<Line>) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let victim = if self.sets[set].len() >= self.ways {
            let vi = self.pick_victim(set, pinned);
            Some(self.sets[set].swap_remove(vi).0)
        } else {
            None
        };
        let fresh = Line {
            line,
            dirty: false,
            dtor: false,
            state: PrivState::Shared,
            sharers: 0,
            owner: None,
            tenant: 0,
        };
        self.sets[set].push((fresh, 2, tick));
        (&mut self.sets[set].last_mut().unwrap().0, victim)
    }

    fn pick_victim(&mut self, set: usize, pinned: &[u64]) -> usize {
        let ways = &mut self.sets[set];
        match self.replacement {
            Replacement::Lru => ways
                .iter()
                .enumerate()
                .filter(|(_, (l, _, _))| !pinned.contains(&l.line))
                .min_by_key(|(_, (_, _, lru))| *lru)
                .map(|(i, _)| i)
                .expect("every way of the set is pinned"),
            Replacement::Srrip => {
                assert!(
                    ways.iter().any(|(l, _, _)| !pinned.contains(&l.line)),
                    "every way of the set is pinned"
                );
                loop {
                    if let Some(i) = ways
                        .iter()
                        .position(|(l, r, _)| *r >= 3 && !pinned.contains(&l.line))
                    {
                        return i;
                    }
                    for (_, r, _) in ways.iter_mut() {
                        *r += 1;
                    }
                }
            }
        }
    }

    fn invalidate(&mut self, line: u64) -> Option<Line> {
        let set = self.set_of(line);
        let i = self.sets[set].iter().position(|(l, _, _)| l.line == line)?;
        Some(self.sets[set].swap_remove(i).0)
    }

    fn drain_range(&mut self, base: u64, bound: u64) -> Vec<Line> {
        let first = base >> 6;
        let last = (bound + 63) >> 6;
        let mut out = Vec::new();
        for set in self.sets.iter_mut() {
            let mut i = 0;
            while i < set.len() {
                if set[i].0.line >= first && set[i].0.line < last {
                    out.push(set.swap_remove(i).0);
                } else {
                    i += 1;
                }
            }
        }
        out.sort_by_key(|l| l.line);
        out
    }

    /// Residency as `(line, dirty, dtor, sharers, owner)` in set/way order.
    fn dump(&self) -> Vec<(u64, bool, bool, u64, Option<u8>)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .map(|(l, _, _)| (l.line, l.dirty, l.dtor, l.sharers, l.owner))
            .collect()
    }
}

/// xorshift64* — tiny, deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn key(l: &Line) -> (u64, bool, bool, u64, Option<u8>) {
    (l.line, l.dirty, l.dtor, l.sharers, l.owner)
}

fn fuzz(seed: u64, repl: Replacement, ops: usize) {
    // 8 sets × 4 ways; the 64-line pool forces constant conflict churn.
    let cfg = CacheConfig {
        size_bytes: 8 * 4 * 64,
        ways: 4,
        latency: 1,
        replacement: repl,
    };
    let mut flat = CacheBank::new(&cfg);
    let mut model = RefBank::new(&cfg);
    let mut rng = Rng(seed);
    for step in 0..ops {
        let line = rng.next() & LINE_POOL;
        match rng.next() % 10 {
            // Probe (hit path also mutates metadata through the returned
            // reference, so divergent way choices would surface later).
            0..=3 => {
                let a = flat.probe(line);
                let b = model.probe(line);
                match (a, b) {
                    (Some(x), Some(y)) => {
                        assert_eq!(key(x), key(y), "step {step}: hit metadata");
                        let d = rng.next().is_multiple_of(2);
                        x.dirty = d;
                        y.dirty = d;
                        x.sharers |= 1 << (step % 60);
                        y.sharers |= 1 << (step % 60);
                    }
                    (None, None) => {}
                    (x, y) => panic!(
                        "step {step}: probe({line:#x}) diverged: flat={:?} model={:?}",
                        x.map(|l| l.line),
                        y.map(|l| l.line)
                    ),
                }
            }
            // Insert, sometimes with a pinned resident line (MSHR
            // protection): victim choice must match exactly.
            4..=6 => {
                if flat.contains(line) {
                    continue; // insert requires non-resident
                }
                let mut pins = Vec::new();
                if rng.next().is_multiple_of(3) {
                    pins.push(rng.next() & LINE_POOL);
                }
                let (a, va) = flat.insert(line, &pins);
                let (b, vb) = model.insert(line, &pins);
                assert_eq!(
                    va.as_ref().map(key),
                    vb.as_ref().map(key),
                    "step {step}: victim for insert({line:#x})"
                );
                if rng.next().is_multiple_of(2) {
                    a.dtor = true;
                    b.dtor = true;
                }
                if rng.next().is_multiple_of(4) {
                    a.owner = Some((step % 16) as u8);
                    b.owner = Some((step % 16) as u8);
                    a.state = PrivState::Owned;
                    b.state = PrivState::Owned;
                }
            }
            7 => {
                let a = flat.invalidate(line);
                let b = model.invalidate(line);
                assert_eq!(
                    a.as_ref().map(key),
                    b.as_ref().map(key),
                    "step {step}: invalidate({line:#x})"
                );
            }
            8 => {
                let base = (rng.next() & LINE_POOL) << 6;
                let bound = base + (rng.next() % 8 + 1) * 64;
                let a = flat.drain_range(base, bound);
                let b = model.drain_range(base, bound);
                assert_eq!(
                    a.iter().map(key).collect::<Vec<_>>(),
                    b.iter().map(key).collect::<Vec<_>>(),
                    "step {step}: drain_range({base:#x}, {bound:#x})"
                );
            }
            _ => {
                assert_eq!(
                    flat.peek(line).map(key),
                    model.sets[model.set_of(line)]
                        .iter()
                        .find(|(l, _, _)| l.line == line)
                        .map(|(l, _, _)| key(l)),
                    "step {step}: peek({line:#x})"
                );
            }
        }
        assert_eq!(
            flat.resident(),
            model.dump().len(),
            "step {step}: residency"
        );
    }
    // Final residency must match in set/way order — `iter` walks sets then
    // live ways, exactly the model's nested order.
    let final_flat: Vec<_> = flat.iter().map(key).collect();
    assert_eq!(final_flat, model.dump(), "final residency (seed {seed})");
}

#[test]
fn flat_bank_matches_nested_vec_model_lru() {
    for seed in [1, 0xdead_beef, 0x5eed_0001] {
        fuzz(seed, Replacement::Lru, 20_000);
    }
}

#[test]
fn flat_bank_matches_nested_vec_model_srrip() {
    for seed in [2, 0xfeed_face, 0x5eed_0002] {
        fuzz(seed, Replacement::Srrip, 20_000);
    }
}
