//! Shared on-disk framing for the harness's durable line-oriented files.
//!
//! Two subsystems persist records across process lifetimes: the crash
//! journal behind `levi-bench run --resume` ([`crate::journal`]) and the
//! content-addressed result cache behind `levi-bench serve`
//! ([`crate::serve::cache`]). Both need the same physical properties —
//! a self-describing header line, binary payloads that survive a
//! text-file round trip, appends that are synced before they count as
//! durable, and tolerance for the torn final line a kill mid-append
//! leaves behind — so the mechanics live here exactly once:
//!
//! * [`hex_encode`] / [`hex_decode`] — the payload armor. Record blobs
//!   are `levi_isa::codec` bytes hex-armored onto one line, so framing
//!   stays line-oriented no matter what the payload contains.
//! * [`LineStore`] — open-or-create with a header line, enumerate
//!   records with their positions (so callers can apply the torn-tail
//!   policy), and synced appends.
//!
//! The *semantic* layer stays with the callers: the journal treats a
//! malformed final record as a crash artifact and malformed interior
//! records as typed errors, while the cache treats any malformed record
//! as a miss. `LineStore` only reports what is on disk and where.

use std::io::Write as _;

/// Why a [`LineStore`] operation failed. Purely I/O: content problems
/// are the caller's to classify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreError(pub String);

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line store I/O error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

/// One non-blank record line of an existing store file.
#[derive(Clone, Debug)]
pub struct Record {
    /// 1-based line number in the file (for error messages).
    pub line: usize,
    /// The record text, excluding the newline.
    pub text: String,
    /// True when this record is the final line of the file — the only
    /// position where damage is a plausible crash artifact rather than
    /// corruption.
    pub is_last: bool,
}

/// The parsed contents of an existing store file.
#[derive(Clone, Debug)]
pub struct Loaded {
    /// The first line of the file, or `None` for an empty file.
    pub header: Option<String>,
    /// Every non-blank line after the header, in file order.
    pub records: Vec<Record>,
}

/// An append-only line file with a one-line self-describing header.
#[derive(Debug)]
pub struct LineStore {
    path: String,
}

impl LineStore {
    /// Opens `path`. An absent file is created holding just
    /// `fresh_header`; an existing file is read and returned as
    /// [`Loaded`] for the caller to validate (header match, record
    /// parsing, torn-tail policy).
    ///
    /// # Errors
    /// Propagates I/O failures as [`StoreError`].
    pub fn open(path: &str, fresh_header: &str) -> Result<(LineStore, Option<Loaded>), StoreError> {
        let store = LineStore {
            path: path.to_string(),
        };
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let lines: Vec<&str> = text.lines().collect();
                let header = lines.first().map(|l| l.to_string());
                let last = lines.len();
                let records = lines
                    .iter()
                    .enumerate()
                    .skip(1)
                    .filter(|(_, l)| !l.trim().is_empty())
                    .map(|(i, l)| Record {
                        line: i + 1,
                        text: l.to_string(),
                        is_last: i + 1 == last,
                    })
                    .collect();
                Ok((store, Some(Loaded { header, records })))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                store.reset(fresh_header)?;
                Ok((store, None))
            }
            Err(e) => Err(StoreError(format!("{path}: {e}"))),
        }
    }

    /// The file path this store appends to.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Appends one record line and syncs it to disk, so a kill arriving
    /// right after the append cannot lose it.
    ///
    /// # Errors
    /// Propagates I/O failures as [`StoreError`].
    pub fn append(&self, record: &str) -> Result<(), StoreError> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| StoreError(format!("{}: {e}", self.path)))?;
        f.write_all(format!("{record}\n").as_bytes())
            .and_then(|()| f.sync_data())
            .map_err(|e| StoreError(format!("{}: {e}", self.path)))
    }

    /// Truncates the file back to a fresh header. Callers that treat
    /// their store as a disposable cache use this to recover from an
    /// unreadable file.
    ///
    /// # Errors
    /// Propagates I/O failures as [`StoreError`].
    pub fn reset(&self, fresh_header: &str) -> Result<(), StoreError> {
        std::fs::write(&self.path, format!("{fresh_header}\n"))
            .map_err(|e| StoreError(format!("{}: {e}", self.path)))
    }
}

/// Hex-armors a binary payload onto one line.
pub fn hex_encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a [`hex_encode`]d payload.
///
/// # Errors
/// Odd length and non-hex digits are errors (the torn-tail signal).
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    let s = s.trim_end();
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex blob".into());
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        let byte = u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| "bad hex digit")?;
        out.push(byte);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("levi-codec-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("store.lines").to_str().unwrap().to_string()
    }

    #[test]
    fn hex_round_trips_and_rejects_damage() {
        assert_eq!(hex_encode(&[0x00, 0xab, 0xff]), "00abff");
        assert_eq!(hex_decode("00abff").unwrap(), vec![0x00, 0xab, 0xff]);
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("0g").is_err());
        assert!(hex_decode("abc").is_err());
    }

    #[test]
    fn open_creates_with_header_and_reloads_records() {
        let path = temp("create");
        let (store, loaded) = LineStore::open(&path, "test-store v1").unwrap();
        assert!(loaded.is_none(), "fresh file has nothing to load");
        store.append("alpha 1").unwrap();
        store.append("beta 2").unwrap();

        let (_, loaded) = LineStore::open(&path, "test-store v1").unwrap();
        let loaded = loaded.expect("existing file loads");
        assert_eq!(loaded.header.as_deref(), Some("test-store v1"));
        let texts: Vec<&str> = loaded.records.iter().map(|r| r.text.as_str()).collect();
        assert_eq!(texts, ["alpha 1", "beta 2"]);
        assert_eq!(loaded.records[0].line, 2);
        assert!(!loaded.records[0].is_last);
        assert!(loaded.records[1].is_last);
    }

    #[test]
    fn blank_lines_are_skipped_and_last_line_is_flagged() {
        let path = temp("blanks");
        std::fs::write(&path, "hdr\nrec-a\n\nrec-b").unwrap();
        let (_, loaded) = LineStore::open(&path, "hdr").unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.records[0].line, 2);
        assert!(!loaded.records[0].is_last);
        assert_eq!(loaded.records[1].line, 4);
        assert!(loaded.records[1].is_last);
    }

    #[test]
    fn reset_truncates_to_a_fresh_header() {
        let path = temp("reset");
        let (store, _) = LineStore::open(&path, "hdr v1").unwrap();
        store.append("junk").unwrap();
        store.reset("hdr v2").unwrap();
        let (_, loaded) = LineStore::open(&path, "hdr v2").unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(loaded.header.as_deref(), Some("hdr v2"));
        assert!(loaded.records.is_empty());
    }

    #[test]
    fn empty_file_loads_with_no_header() {
        let path = temp("empty");
        std::fs::write(&path, "").unwrap();
        let (_, loaded) = LineStore::open(&path, "hdr").unwrap();
        let loaded = loaded.unwrap();
        assert!(loaded.header.is_none());
        assert!(loaded.records.is_empty());
    }
}
