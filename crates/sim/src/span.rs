//! Causal invoke-lifecycle spans and critical-path attribution.
//!
//! Aggregate histograms (`invoke_rtt`) say *how slow* invokes were; they
//! cannot say *why*. A [`SpanTable`] records, per invoke, the cycle at
//! which it crossed every lifecycle stage — first issue attempt, packet
//! issue, engine arrival, task dispatch, task retire, ACK return — plus
//! the NACKs/retries it absorbed along the way. A monotonically
//! increasing [`SpanId`] is threaded through the invoke path
//! (`invoke.rs` → `noc.rs` → `sched.rs`), so one invoke's stage events
//! in the [`Tracer`](crate::trace::Tracer) are parent-linked by id and
//! exported as Perfetto flow arrows.
//!
//! After a run, [`SpanTable::critical_path`] decomposes each completed
//! invoke's end-to-end latency into per-stage cycles:
//!
//! ```text
//! offload  = issue     - first_attempt   (backpressure, NACK, backoff)
//! noc      = arrival   - issue           (invoke packet transit)
//! queue    = dispatch  - arrival         (engine accept delay)
//! exec     = retired   - dispatch        (action execution)
//! response = ack       - arrival         (ACK transit, overlaps exec)
//! ```
//!
//! and reports stage totals plus the top-k slowest invokes. Recording is
//! observational only and off by default
//! ([`MachineConfig::trace_spans`](crate::MachineConfig::trace_spans)):
//! disabled, every hook is a single branch and outputs are byte-identical
//! to an uninstrumented build.

use std::fmt;

use crate::engine::EngineId;

/// Default number of spans retained when span tracing is enabled.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// Identifies one invoke lifecycle span. Ids are assigned monotonically
/// in issue-attempt order and double as indices into the span table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u32);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Lifecycle cycle marks of one invoke as it flows core → NoC → engine →
/// response. `None` marks a stage the invoke never reached (e.g. `ack`
/// for engine-issued or future-carrying invokes, which are unACKed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvokeSpan {
    /// The span's id (its index in the table).
    pub id: SpanId,
    /// Tile of the issuing context.
    pub src_tile: u32,
    /// The engine the invoke was finally placed on.
    pub target: Option<EngineId>,
    /// Cycle of the first issue attempt — before buffer backpressure,
    /// NACK parks, and fault backoff.
    pub first_attempt: u64,
    /// Cycle the invoke packet was issued onto the NoC.
    pub issued: Option<u64>,
    /// Cycle the packet arrived at the target engine.
    pub arrival: Option<u64>,
    /// Cycle the engine dispatched the task into a context.
    pub dispatch: Option<u64>,
    /// Cycle the task retired (released its context).
    pub retired: Option<u64>,
    /// Cycle the ACK returned to the issuing core.
    pub ack: Option<u64>,
    /// NACKs absorbed (engine context buffer full).
    pub nacks: u32,
    /// Fault-induced backoff retries absorbed.
    pub retries: u32,
    /// True when the invoke fell back to a software handler on the
    /// issuing core (fault path past the retry budget).
    pub fallback: bool,
}

impl InvokeSpan {
    fn new(id: SpanId, src_tile: u32, first_attempt: u64) -> Self {
        InvokeSpan {
            id,
            src_tile,
            target: None,
            first_attempt,
            issued: None,
            arrival: None,
            dispatch: None,
            retired: None,
            ack: None,
            nacks: 0,
            retries: 0,
            fallback: false,
        }
    }

    /// True once the task has retired (the minimal completion criterion;
    /// unACKed invokes never set `ack`).
    pub fn complete(&self) -> bool {
        self.issued.is_some() && self.retired.is_some()
    }

    /// End-to-end latency: first attempt to the later of retire and ACK.
    /// `None` until the span is complete.
    pub fn rtt(&self) -> Option<u64> {
        let retired = self.retired?;
        let end = retired.max(self.ack.unwrap_or(0));
        Some(end.saturating_sub(self.first_attempt))
    }

    /// Per-stage decomposition; `None` until the span is complete.
    pub fn stages(&self) -> Option<StageCycles> {
        let issued = self.issued?;
        let retired = self.retired?;
        let arrival = self.arrival.unwrap_or(issued);
        let dispatch = self.dispatch.unwrap_or(arrival);
        Some(StageCycles {
            offload: issued.saturating_sub(self.first_attempt),
            noc: arrival.saturating_sub(issued),
            queue: dispatch.saturating_sub(arrival),
            exec: retired.saturating_sub(dispatch),
            response: self.ack.map_or(0, |a| a.saturating_sub(arrival)),
        })
    }
}

/// Cycles an invoke spent in each lifecycle stage. `response` overlaps
/// `exec` (the ACK returns while the task runs), so the stage sum can
/// exceed the end-to-end RTT.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCycles {
    /// First attempt → packet issue (backpressure, NACKs, backoff).
    pub offload: u64,
    /// Packet issue → engine arrival (NoC transit).
    pub noc: u64,
    /// Engine arrival → task dispatch.
    pub queue: u64,
    /// Task dispatch → retire (action execution).
    pub exec: u64,
    /// Engine arrival → ACK return (0 for unACKed invokes).
    pub response: u64,
}

impl StageCycles {
    fn add(&mut self, other: &StageCycles) {
        self.offload += other.offload;
        self.noc += other.noc;
        self.queue += other.queue;
        self.exec += other.exec;
        self.response += other.response;
    }
}

impl fmt::Display for StageCycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "offload {} | noc {} | queue {} | exec {} | response {}",
            self.offload, self.noc, self.queue, self.exec, self.response
        )
    }
}

/// One of the top-k slowest invokes reported by
/// [`SpanTable::critical_path`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowInvoke {
    /// The invoke's span id.
    pub id: SpanId,
    /// Issuing tile.
    pub src_tile: u32,
    /// Final placement.
    pub target: Option<EngineId>,
    /// End-to-end latency in cycles.
    pub rtt: u64,
    /// Per-stage decomposition.
    pub stages: StageCycles,
}

/// Post-run critical-path attribution over every completed span.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Per-stage cycle totals summed over completed spans.
    pub totals: StageCycles,
    /// Summed end-to-end RTT over completed spans.
    pub rtt_total: u64,
    /// Number of completed spans.
    pub completed: u64,
    /// Spans that never completed (e.g. still parked when the run ended).
    pub incomplete: u64,
    /// The `k` slowest completed invokes, by descending RTT (ties broken
    /// by ascending id, so the report is deterministic).
    pub slowest: Vec<SlowInvoke>,
}

impl CriticalPath {
    /// The stage with the largest total, as `(name, cycles)` — the
    /// headline answer to "where does invoke latency go?".
    pub fn dominant_stage(&self) -> (&'static str, u64) {
        let t = &self.totals;
        let all = [
            ("offload", t.offload),
            ("noc", t.noc),
            ("queue", t.queue),
            ("exec", t.exec),
            ("response", t.response),
        ];
        all.into_iter().max_by_key(|&(_, v)| v).expect("nonempty")
    }
}

/// The span recorder: a bounded table of [`InvokeSpan`]s.
///
/// Unlike the event ring, spans keep the *first* `capacity` invokes and
/// count the overflow — stage updates address spans by id, so evicting
/// from the front would dangle in-flight ids.
#[derive(Clone, Debug, Default)]
pub struct SpanTable {
    enabled: bool,
    capacity: usize,
    spans: Vec<InvokeSpan>,
    dropped: u64,
}

impl SpanTable {
    /// Creates a span table retaining at most `capacity` spans.
    pub fn new(enabled: bool, capacity: usize) -> Self {
        SpanTable {
            enabled,
            capacity: capacity.max(1),
            spans: Vec::new(),
            dropped: 0,
        }
    }

    /// True when spans are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Invokes not recorded because the table was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The recorded spans, in first-attempt order.
    pub fn spans(&self) -> &[InvokeSpan] {
        &self.spans
    }

    /// Opens a span for an invoke first attempted at `now` on `src_tile`.
    /// Returns `None` when disabled or full (counted in `dropped`).
    pub(crate) fn begin(&mut self, src_tile: u32, now: u64) -> Option<SpanId> {
        if !self.enabled {
            return None;
        }
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return None;
        }
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(InvokeSpan::new(id, src_tile, now));
        Some(id)
    }

    #[inline]
    fn get_mut(&mut self, id: SpanId) -> &mut InvokeSpan {
        &mut self.spans[id.0 as usize]
    }

    /// Records a NACK (engine context buffer full).
    pub(crate) fn note_nack(&mut self, id: SpanId) {
        self.get_mut(id).nacks += 1;
    }

    /// Records a fault-induced backoff retry.
    pub(crate) fn note_retry(&mut self, id: SpanId) {
        self.get_mut(id).retries += 1;
    }

    /// Records the successful packet issue and final placement.
    pub(crate) fn note_issue(&mut self, id: SpanId, now: u64, target: EngineId, fallback: bool) {
        let s = self.get_mut(id);
        s.issued = Some(now);
        s.target = Some(target);
        s.fallback = fallback;
    }

    /// Records the packet's arrival at the target engine.
    pub(crate) fn note_arrival(&mut self, id: SpanId, at: u64) {
        self.get_mut(id).arrival = Some(at);
    }

    /// Records the task's dispatch into an engine context.
    pub(crate) fn note_dispatch(&mut self, id: SpanId, at: u64) {
        self.get_mut(id).dispatch = Some(at);
    }

    /// Records the task's retirement.
    pub(crate) fn note_retire(&mut self, id: SpanId, at: u64) {
        self.get_mut(id).retired = Some(at);
    }

    /// Records the ACK's return to the issuing core.
    pub(crate) fn note_ack(&mut self, id: SpanId, at: u64) {
        self.get_mut(id).ack = Some(at);
    }

    /// Decomposes every completed span into per-stage cycles and selects
    /// the `k` slowest invokes by end-to-end RTT.
    pub fn critical_path(&self, k: usize) -> CriticalPath {
        let mut cp = CriticalPath::default();
        let mut slow: Vec<SlowInvoke> = Vec::new();
        for s in &self.spans {
            let (Some(stages), Some(rtt)) = (s.stages(), s.rtt()) else {
                cp.incomplete += 1;
                continue;
            };
            cp.completed += 1;
            cp.totals.add(&stages);
            cp.rtt_total += rtt;
            slow.push(SlowInvoke {
                id: s.id,
                src_tile: s.src_tile,
                target: s.target,
                rtt,
                stages,
            });
        }
        slow.sort_by_key(|s| (std::cmp::Reverse(s.rtt), s.id));
        slow.truncate(k);
        cp.slowest = slow;
        cp
    }
}

impl SpanTable {
    /// Serializes the span table (see [`crate::snapshot`]).
    pub(crate) fn snap_write(&self, w: &mut levi_isa::codec::Writer) {
        use crate::snapshot::{w_engine_id, w_opt_u64};
        w.bool(self.enabled);
        w.u64(self.capacity as u64);
        w.u64(self.dropped);
        w.u32(self.spans.len() as u32);
        for s in &self.spans {
            w.u32(s.id.0);
            w.u32(s.src_tile);
            match s.target {
                Some(e) => {
                    w.bool(true);
                    w_engine_id(w, e);
                }
                None => w.bool(false),
            }
            w.u64(s.first_attempt);
            w_opt_u64(w, s.issued);
            w_opt_u64(w, s.arrival);
            w_opt_u64(w, s.dispatch);
            w_opt_u64(w, s.retired);
            w_opt_u64(w, s.ack);
            w.u32(s.nacks);
            w.u32(s.retries);
            w.bool(s.fallback);
        }
    }

    /// Restores a table written by [`SpanTable::snap_write`].
    pub(crate) fn snap_read(
        r: &mut levi_isa::codec::Reader,
    ) -> Result<Self, levi_isa::codec::CodecError> {
        use crate::snapshot::{r_engine_id, r_opt_u64};
        let enabled = r.bool()?;
        let capacity = r.u64()? as usize;
        let dropped = r.u64()?;
        let n = r.count(18)?;
        let mut spans = Vec::with_capacity(n);
        for _ in 0..n {
            let id = SpanId(r.u32()?);
            let src_tile = r.u32()?;
            let target = if r.bool()? {
                Some(r_engine_id(r)?)
            } else {
                None
            };
            spans.push(InvokeSpan {
                id,
                src_tile,
                target,
                first_attempt: r.u64()?,
                issued: r_opt_u64(r)?,
                arrival: r_opt_u64(r)?,
                dispatch: r_opt_u64(r)?,
                retired: r_opt_u64(r)?,
                ack: r_opt_u64(r)?,
                nacks: r.u32()?,
                retries: r.u32()?,
                fallback: r.bool()?,
            });
        }
        Ok(SpanTable {
            enabled,
            capacity: capacity.max(1),
            spans,
            dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineLevel;

    fn eng(tile: u32) -> EngineId {
        EngineId {
            tile,
            level: EngineLevel::Llc,
        }
    }

    #[test]
    fn disabled_table_records_nothing() {
        let mut t = SpanTable::default();
        assert!(!t.enabled());
        assert_eq!(t.begin(0, 10), None);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn full_lifecycle_decomposes() {
        let mut t = SpanTable::new(true, 8);
        let id = t.begin(0, 100).expect("enabled");
        t.note_nack(id);
        t.note_issue(id, 110, eng(2), false);
        t.note_arrival(id, 119);
        t.note_dispatch(id, 119);
        t.note_ack(id, 127);
        t.note_retire(id, 150);
        let s = t.spans()[0];
        assert!(s.complete());
        assert_eq!(s.rtt(), Some(50));
        assert_eq!(s.nacks, 1);
        let st = s.stages().unwrap();
        assert_eq!(st.offload, 10);
        assert_eq!(st.noc, 9);
        assert_eq!(st.queue, 0);
        assert_eq!(st.exec, 31);
        assert_eq!(st.response, 8);
    }

    #[test]
    fn incomplete_spans_are_counted_not_decomposed() {
        let mut t = SpanTable::new(true, 8);
        let a = t.begin(0, 0).unwrap();
        t.note_issue(a, 5, eng(1), false);
        t.note_arrival(a, 9);
        t.note_dispatch(a, 9);
        t.note_retire(a, 20);
        let b = t.begin(1, 2).unwrap();
        t.note_issue(b, 4, eng(0), false); // never retired
        let cp = t.critical_path(4);
        assert_eq!(cp.completed, 1);
        assert_eq!(cp.incomplete, 1);
        assert_eq!(cp.slowest.len(), 1);
        assert_eq!(cp.slowest[0].id, a);
        assert_eq!(cp.rtt_total, 20);
    }

    #[test]
    fn capacity_drops_and_counts() {
        let mut t = SpanTable::new(true, 2);
        assert!(t.begin(0, 0).is_some());
        assert!(t.begin(0, 1).is_some());
        assert_eq!(t.begin(0, 2), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn slowest_is_deterministic_under_ties() {
        let mut t = SpanTable::new(true, 8);
        for i in 0..4u64 {
            let id = t.begin(0, i * 100).unwrap();
            t.note_issue(id, i * 100 + 1, eng(1), false);
            t.note_arrival(id, i * 100 + 4);
            t.note_dispatch(id, i * 100 + 4);
            t.note_retire(id, i * 100 + 30); // identical 30-cycle RTTs
        }
        let cp = t.critical_path(2);
        assert_eq!(cp.completed, 4);
        assert_eq!(cp.slowest.len(), 2);
        assert_eq!(cp.slowest[0].id, SpanId(0), "ties break by id");
        assert_eq!(cp.slowest[1].id, SpanId(1));
        assert_eq!(cp.dominant_stage().0, "exec");
    }

    #[test]
    fn unacked_invoke_has_zero_response() {
        let mut t = SpanTable::new(true, 4);
        let id = t.begin(3, 0).unwrap();
        t.note_issue(id, 0, eng(3), false);
        t.note_arrival(id, 0);
        t.note_dispatch(id, 0);
        t.note_retire(id, 12);
        let st = t.spans()[0].stages().unwrap();
        assert_eq!(st.response, 0);
        assert_eq!(st.exec, 12);
        assert_eq!(t.spans()[0].rtt(), Some(12));
    }
}
