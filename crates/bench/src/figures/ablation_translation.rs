//! Ablation — address translation (DESIGN.md §11).
//!
//! NDC evaluations (this paper included) typically assume translation is
//! free. levi-xlat puts a per-tile TLB and a timed radix page walk in
//! front of the probe paths so the assumption can be priced: small pages
//! thrash the TLB on pointer-chasing workloads, huge pages recover most
//! of the ideal-translation performance. Measured on the hash table,
//! whose random probes are the worst case for TLB reach.

use levi_sim::XlatConfig;
use levi_workloads::hashtable::{run_hashtable_with, HtScale, HtVariant};

use crate::runner::{Figure, RunCtx};
use crate::{header, table_report, Sweep};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "ablation_translation",
    about: "TLB + page-walk cost vs. the free-translation baseline",
    workloads: &["hashtable"],
    run,
};

fn run(ctx: &RunCtx) {
    header(
        "Ablation — address translation (TLB + timed page walks)",
        "free translation vs. 4 KiB / 64 KiB / 2 MiB pages on random probes",
    );
    let mut scale = if ctx.quick {
        HtScale::test(24)
    } else {
        HtScale::paper(24)
    };
    // Grow the table past TLB reach so walks actually happen at 4 KiB.
    scale = scale.with_table_bytes(if ctx.quick { 2 << 20 } else { 32 << 20 });

    let jobs: &[(&str, Option<u32>)] = &[
        ("free translation", None),
        ("4 KiB pages", Some(12)),
        ("64 KiB pages", Some(16)),
        ("2 MiB pages", Some(21)),
    ];
    let env = &ctx.env;
    let scale_ref = &scale;
    let results = Sweep::new()
        .variants(jobs.iter().map(|&(name, bits)| (name, bits)))
        .run(|_, &page_bits| {
            run_hashtable_with(HtVariant::Leviathan, scale_ref, |cfg| {
                cfg.machine.xlat = page_bits.map(XlatConfig::with_page_bits);
                env.customize(cfg);
            })
        });
    let mut rows = Vec::new();
    for (name, r) in &results {
        crate::progressln!("  ran {name}");
        let s = &r.metrics.stats;
        let lookups = s.tlb_hits + s.tlb_misses;
        let hit_pct = if lookups == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", s.tlb_hits as f64 / lookups as f64 * 100.0)
        };
        rows.push(vec![
            name.to_string(),
            r.metrics.cycles.to_string(),
            s.tlb_hits.to_string(),
            s.tlb_misses.to_string(),
            hit_pct,
            s.tlb_walk_cycles.to_string(),
        ]);
    }
    table_report(
        "ablation_translation",
        &[
            "config",
            "cycles",
            "TLB hits",
            "TLB misses",
            "hit %",
            "walk cycles",
        ],
        &rows,
    );
    crate::outln!();
    crate::outln!("Walks are charged through the real NoC + DRAM paths; larger pages");
    crate::outln!("stretch TLB reach and converge on the free-translation baseline.");
}
