//! Single-step functional semantics for LevIR.
//!
//! [`step`] executes exactly one instruction of a context against a
//! [`Memory`] and an [`NdcHost`]. It is deliberately *timing-free*: the
//! `levi-sim` crate wraps it with core and engine cycle models, while
//! [`crate::interp`] wraps it into a plain interpreter for tests. Keeping a
//! single copy of the semantics guarantees the timed and functional paths
//! can never disagree.

use std::fmt;

use crate::inst::{Addr, Inst, InstClass, Location, MemOrder, MemWidth, Reg, NUM_REGS};
use crate::mem::Memory;
use crate::program::{ActionId, FuncId, Program};

/// Maximum call depth before [`ExecError::StackOverflow`].
pub const MAX_CALL_DEPTH: usize = 1024;

/// Result of a potentially blocking NDC host operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Poll<T> {
    /// The operation completed with a value.
    Ready(T),
    /// The operation cannot complete yet; the instruction will be retried.
    Pending,
}

/// A decoded `invoke` request handed to the [`NdcHost`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NdcRequest {
    /// Address of the actor (object) the action runs on.
    pub actor: Addr,
    /// Which action to execute.
    pub action: ActionId,
    /// Evaluated argument values (at most 4).
    pub args: Vec<u64>,
    /// Address of the future to fill with the action's return value, if any.
    pub future: Option<Addr>,
    /// Placement directive.
    pub loc: Location,
    /// EXCLUSIVE (write-intent) scheduling hint.
    pub exclusive: bool,
}

/// Host interface for the NDC instructions.
///
/// The Leviathan runtime in the `leviathan` crate implements this for the
/// timed simulation; [`crate::interp::SyncHost`] implements it synchronously
/// for functional tests. Methods that return [`Poll::Pending`] must have no
/// architectural effect, because the instruction will be re-executed.
pub trait NdcHost {
    /// Offload a task. `Pending` models a full invoke buffer.
    fn invoke(&mut self, mem: &mut dyn Memory, req: NdcRequest) -> Poll<()>;

    /// Wait for the future at `fut` to be filled; returns its value.
    fn future_wait(&mut self, mem: &mut dyn Memory, fut: Addr) -> Poll<u64>;

    /// Fill the future at `fut` with `val`, waking any waiter.
    fn future_send(&mut self, mem: &mut dyn Memory, fut: Addr, val: u64);

    /// Append `val` to stream `stream`. `Pending` models a full buffer.
    fn push(&mut self, mem: &mut dyn Memory, stream: u64, val: u64) -> Poll<()>;

    /// Retire one entry from stream `stream` (bump the head pointer).
    fn pop(&mut self, mem: &mut dyn Memory, stream: u64);

    /// Flush `[addr, addr+len)` from the caches.
    fn flush(&mut self, mem: &mut dyn Memory, addr: Addr, len: u64);

    /// Debug trace hook.
    fn trace(&mut self, val: u64) {
        let _ = val;
    }
}

/// An [`NdcHost`] that rejects every NDC instruction. Useful for code that
/// must be NDC-free (e.g. pure kernels under unit test).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoNdc;

impl NdcHost for NoNdc {
    fn invoke(&mut self, _mem: &mut dyn Memory, req: NdcRequest) -> Poll<()> {
        panic!("NDC `invoke` ({:?}) executed under NoNdc host", req.action)
    }
    fn future_wait(&mut self, _mem: &mut dyn Memory, fut: Addr) -> Poll<u64> {
        panic!("NDC `future_wait` at {fut:#x} executed under NoNdc host")
    }
    fn future_send(&mut self, _mem: &mut dyn Memory, fut: Addr, _val: u64) {
        panic!("NDC `future_send` at {fut:#x} executed under NoNdc host")
    }
    fn push(&mut self, _mem: &mut dyn Memory, stream: u64, _val: u64) -> Poll<()> {
        panic!("NDC `push` on stream {stream} executed under NoNdc host")
    }
    fn pop(&mut self, _mem: &mut dyn Memory, stream: u64) {
        panic!("NDC `pop` on stream {stream} executed under NoNdc host")
    }
    fn flush(&mut self, _mem: &mut dyn Memory, _addr: Addr, _len: u64) {
        panic!("NDC `flush` executed under NoNdc host")
    }
}

/// Program counter: a function and an instruction index within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Pc {
    /// Current function.
    pub func: FuncId,
    /// Instruction index within the function.
    pub idx: u32,
}

/// The architectural state of one LevIR execution context (a core thread or
/// an engine task context).
#[derive(Clone, Debug)]
pub struct ExecCtx {
    /// Register file.
    pub regs: [u64; NUM_REGS],
    /// Current program counter.
    pub pc: Pc,
    /// Return-address stack for `call`/`ret`.
    pub callstack: Vec<Pc>,
    /// Set when the context has executed `halt` (or returned from its
    /// entry function).
    pub halted: bool,
    /// Number of instructions retired by this context.
    pub retired: u64,
}

impl ExecCtx {
    /// Creates a context poised at the entry of `func` with `args` loaded
    /// into `r0..`.
    ///
    /// # Panics
    /// Panics if more than 8 arguments are supplied.
    pub fn new(func: FuncId, args: &[u64]) -> Self {
        assert!(args.len() <= 8, "at most 8 arguments (r0..r7)");
        let mut regs = [0u64; NUM_REGS];
        regs[..args.len()].copy_from_slice(args);
        ExecCtx {
            regs,
            pc: Pc { func, idx: 0 },
            callstack: Vec::new(),
            halted: false,
            retired: 0,
        }
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// The context's return value (`r0`), meaningful once halted.
    pub fn ret_val(&self) -> u64 {
        self.regs[0]
    }
}

/// How control transferred during a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Fell through to the next instruction.
    Next,
    /// A conditional branch executed; `taken` records its direction.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
    },
    /// An unconditional jump.
    Jump,
    /// Entered a callee.
    Call,
    /// Returned to a caller.
    Ret,
    /// The context halted.
    Halt,
    /// The instruction is blocked on the NDC host and did not retire; the
    /// PC is unchanged and the step must be retried later.
    Blocked,
}

/// Memory effect of a step, for the timing layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemEffect {
    /// A load from `addr`.
    Load {
        /// Accessed address.
        addr: Addr,
        /// Access width.
        width: MemWidth,
        /// The value read (post extension).
        value: u64,
    },
    /// A store to `addr`.
    Store {
        /// Accessed address.
        addr: Addr,
        /// Access width.
        width: MemWidth,
        /// The value written.
        value: u64,
    },
    /// An atomic read-modify-write on `addr`.
    Rmw {
        /// Accessed address.
        addr: Addr,
        /// Access width.
        width: MemWidth,
        /// Ordering strength (drives fence modeling).
        ordering: MemOrder,
    },
    /// A full fence (no address).
    Fence,
}

/// Information about one executed (or blocked) instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct StepInfo {
    /// PC of the instruction that executed.
    pub pc: Pc,
    /// Timing class of the instruction.
    pub class: InstClass,
    /// Control-flow outcome.
    pub control: Control,
    /// Memory effect, if the instruction touched memory.
    pub mem: Option<MemEffect>,
}

impl StepInfo {
    /// True if the instruction retired (i.e. was not blocked).
    pub fn retired(&self) -> bool {
        self.control != Control::Blocked
    }
}

/// Errors from [`step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The context was already halted.
    Halted,
    /// The PC points outside its function (indicates a builder bug; cannot
    /// happen for validated programs).
    PcOutOfRange(Pc),
    /// Call depth exceeded [`MAX_CALL_DEPTH`].
    StackOverflow(Pc),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Halted => write!(f, "context is halted"),
            ExecError::PcOutOfRange(pc) => write!(f, "pc out of range: {pc:?}"),
            ExecError::StackOverflow(pc) => write!(f, "call stack overflow at {pc:?}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes one instruction of `ctx`.
///
/// On success the returned [`StepInfo`] describes what happened; if the
/// instruction blocked on the host ([`Control::Blocked`]) the PC is
/// unchanged and the caller should retry later.
///
/// # Errors
/// Returns [`ExecError::Halted`] if the context already halted,
/// [`ExecError::PcOutOfRange`] for a malformed PC, and
/// [`ExecError::StackOverflow`] if `call` nesting exceeds
/// [`MAX_CALL_DEPTH`].
pub fn step(
    prog: &Program,
    ctx: &mut ExecCtx,
    mem: &mut dyn Memory,
    host: &mut dyn NdcHost,
) -> Result<StepInfo, ExecError> {
    if ctx.halted {
        return Err(ExecError::Halted);
    }
    let pc = ctx.pc;
    let func = prog.func(pc.func);
    let inst = func
        .insts()
        .get(pc.idx as usize)
        .ok_or(ExecError::PcOutOfRange(pc))?;
    let class = inst.class();

    let mut control = Control::Next;
    let mut mem_effect = None;

    match inst {
        Inst::Imm { rd, val } => ctx.set_reg(*rd, *val),
        Inst::Mov { rd, rs } => {
            let v = ctx.reg(*rs);
            ctx.set_reg(*rd, v);
        }
        Inst::Alu { op, rd, ra, rb } => {
            let v = op.apply(ctx.reg(*ra), ctx.reg(*rb));
            ctx.set_reg(*rd, v);
        }
        Inst::AluI { op, rd, ra, imm } => {
            let v = op.apply(ctx.reg(*ra), *imm);
            ctx.set_reg(*rd, v);
        }
        Inst::Ld {
            rd,
            ra,
            off,
            width,
            sext,
        } => {
            let addr = ctx.reg(*ra).wrapping_add(*off as i64 as u64);
            let raw = mem.read(addr, *width);
            let value = if *sext { width.sign_extend(raw) } else { raw };
            ctx.set_reg(*rd, value);
            mem_effect = Some(MemEffect::Load {
                addr,
                width: *width,
                value,
            });
        }
        Inst::St { rs, ra, off, width } => {
            let addr = ctx.reg(*ra).wrapping_add(*off as i64 as u64);
            let value = width.truncate(ctx.reg(*rs));
            mem.write(addr, value, *width);
            mem_effect = Some(MemEffect::Store {
                addr,
                width: *width,
                value,
            });
        }
        Inst::Br {
            cond,
            ra,
            rb,
            target,
        } => {
            let taken = cond.eval(ctx.reg(*ra), ctx.reg(*rb));
            if taken {
                ctx.pc.idx = target.0;
            } else {
                ctx.pc.idx += 1;
            }
            control = Control::Branch { taken };
        }
        Inst::Jmp { target } => {
            ctx.pc.idx = target.0;
            control = Control::Jump;
        }
        Inst::Call { func: callee } => {
            if ctx.callstack.len() >= MAX_CALL_DEPTH {
                return Err(ExecError::StackOverflow(pc));
            }
            ctx.callstack.push(Pc {
                func: pc.func,
                idx: pc.idx + 1,
            });
            ctx.pc = Pc {
                func: *callee,
                idx: 0,
            };
            control = Control::Call;
        }
        Inst::Ret => match ctx.callstack.pop() {
            Some(ret_pc) => {
                ctx.pc = ret_pc;
                control = Control::Ret;
            }
            None => {
                ctx.halted = true;
                control = Control::Halt;
            }
        },
        Inst::Halt => {
            ctx.halted = true;
            control = Control::Halt;
        }
        Inst::Nop | Inst::Trace { .. } => {
            if let Inst::Trace { rs } = inst {
                host.trace(ctx.reg(*rs));
            }
        }
        Inst::AtomicRmw {
            op,
            rd,
            addr,
            rv,
            width,
            ordering,
        } => {
            let a = ctx.reg(*addr);
            let old = mem.read(a, *width);
            // Sub-word atomics operate on width-truncated operands
            // (RISC-V A-extension semantics).
            let new = width.truncate(op.apply(old, width.truncate(ctx.reg(*rv))));
            mem.write(a, new, *width);
            ctx.set_reg(*rd, old);
            mem_effect = Some(MemEffect::Rmw {
                addr: a,
                width: *width,
                ordering: *ordering,
            });
        }
        Inst::Fence => {
            mem_effect = Some(MemEffect::Fence);
        }
        Inst::Invoke {
            actor,
            action,
            args,
            future,
            loc,
            exclusive,
        } => {
            let req = NdcRequest {
                actor: ctx.reg(*actor),
                action: *action,
                args: args.iter().map(|r| ctx.reg(*r)).collect(),
                future: future.map(|rf| ctx.reg(rf)),
                loc: *loc,
                exclusive: *exclusive,
            };
            match host.invoke(mem, req) {
                Poll::Ready(()) => {}
                Poll::Pending => control = Control::Blocked,
            }
        }
        Inst::FutureWait { rd, rf } => {
            let fut = ctx.reg(*rf);
            match host.future_wait(mem, fut) {
                Poll::Ready(v) => ctx.set_reg(*rd, v),
                Poll::Pending => control = Control::Blocked,
            }
        }
        Inst::FutureSend { rf, rv } => {
            let fut = ctx.reg(*rf);
            let val = ctx.reg(*rv);
            host.future_send(mem, fut, val);
        }
        Inst::Push { stream, rs } => {
            let s = ctx.reg(*stream);
            let v = ctx.reg(*rs);
            match host.push(mem, s, v) {
                Poll::Ready(()) => {}
                Poll::Pending => control = Control::Blocked,
            }
        }
        Inst::Pop { stream } => {
            let s = ctx.reg(*stream);
            host.pop(mem, s);
        }
        Inst::Flush { addr, len } => {
            let a = ctx.reg(*addr);
            let l = ctx.reg(*len);
            host.flush(mem, a, l);
        }
    }

    // Advance the PC for straight-line instructions (control-flow
    // instructions updated it themselves; blocked instructions must not).
    match control {
        Control::Next => ctx.pc.idx += 1,
        Control::Blocked => {}
        _ => {}
    }
    if control != Control::Blocked {
        ctx.retired += 1;
    }

    Ok(StepInfo {
        pc,
        class,
        control,
        mem: mem_effect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::RmwOp;
    use crate::mem::PagedMem;

    fn run_to_halt(prog: &Program, ctx: &mut ExecCtx, mem: &mut PagedMem) {
        let mut host = NoNdc;
        for _ in 0..100_000 {
            if ctx.halted {
                return;
            }
            step(prog, ctx, mem, &mut host).unwrap();
        }
        panic!("did not halt");
    }

    #[test]
    fn arithmetic_and_branches() {
        // Compute 10 * 3 via repeated addition.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("mul_by_add");
        let (acc, i, n, a) = (Reg(2), Reg(3), Reg(1), Reg(0));
        let top = f.label();
        let out = f.label();
        f.imm(acc, 0).imm(i, 0);
        f.bind(top);
        f.bge_u(i, n, out);
        f.add(acc, acc, a);
        f.addi(i, i, 1);
        f.jmp(top);
        f.bind(out);
        f.mov(Reg(0), acc).ret();
        let id = f.finish();
        let prog = pb.finish().unwrap();
        let mut ctx = ExecCtx::new(id, &[10, 3]);
        let mut mem = PagedMem::new();
        run_to_halt(&prog, &mut ctx, &mut mem);
        assert_eq!(ctx.ret_val(), 30);
    }

    #[test]
    fn loads_and_stores() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("swap");
        let (p, q, a, b) = (Reg(0), Reg(1), Reg(2), Reg(3));
        f.ld8(a, p, 0).ld8(b, q, 0);
        f.st8(p, 0, b).st8(q, 0, a);
        f.ret();
        let id = f.finish();
        let prog = pb.finish().unwrap();
        let mut mem = PagedMem::new();
        mem.write_u64(0x10, 111);
        mem.write_u64(0x20, 222);
        let mut ctx = ExecCtx::new(id, &[0x10, 0x20]);
        run_to_halt(&prog, &mut ctx, &mut mem);
        assert_eq!(mem.read_u64(0x10), 222);
        assert_eq!(mem.read_u64(0x20), 111);
    }

    #[test]
    fn signed_load_extension() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("sext");
        f.ld(Reg(0), Reg(0), 0, MemWidth::B1, true).ret();
        let id = f.finish();
        let prog = pb.finish().unwrap();
        let mut mem = PagedMem::new();
        mem.write_u8(0x8, 0xFF);
        let mut ctx = ExecCtx::new(id, &[0x8]);
        run_to_halt(&prog, &mut ctx, &mut mem);
        assert_eq!(ctx.ret_val() as i64, -1);
    }

    #[test]
    fn call_and_ret() {
        let mut pb = ProgramBuilder::new();
        let double = {
            let mut f = pb.function("double");
            f.add(Reg(0), Reg(0), Reg(0)).ret();
            f.finish()
        };
        let mut main = pb.function("main");
        main.imm(Reg(0), 21).call(double).ret();
        let main_id = main.finish();
        let prog = pb.finish().unwrap();
        let mut ctx = ExecCtx::new(main_id, &[]);
        let mut mem = PagedMem::new();
        run_to_halt(&prog, &mut ctx, &mut mem);
        assert_eq!(ctx.ret_val(), 42);
    }

    #[test]
    fn rmw_returns_old_value() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("faa");
        f.rmw_fenced(RmwOp::Add, Reg(0), Reg(0), Reg(1), MemWidth::B8);
        f.ret();
        let id = f.finish();
        let prog = pb.finish().unwrap();
        let mut mem = PagedMem::new();
        mem.write_u64(0x40, 7);
        let mut ctx = ExecCtx::new(id, &[0x40, 5]);
        run_to_halt(&prog, &mut ctx, &mut mem);
        assert_eq!(ctx.ret_val(), 7, "rmw yields the old value");
        assert_eq!(mem.read_u64(0x40), 12);
    }

    #[test]
    fn halted_context_errors() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("h");
        f.halt();
        let id = f.finish();
        let prog = pb.finish().unwrap();
        let mut ctx = ExecCtx::new(id, &[]);
        let mut mem = PagedMem::new();
        let mut host = NoNdc;
        let info = step(&prog, &mut ctx, &mut mem, &mut host).unwrap();
        assert_eq!(info.control, Control::Halt);
        assert!(ctx.halted);
        assert_eq!(
            step(&prog, &mut ctx, &mut mem, &mut host),
            Err(ExecError::Halted)
        );
    }

    #[test]
    fn stack_overflow_detected() {
        let mut pb = ProgramBuilder::new();
        let fid = pb.declare("inf");
        let mut f = pb.define(fid);
        f.call(fid).ret();
        f.finish();
        let prog = pb.finish().unwrap();
        let mut ctx = ExecCtx::new(fid, &[]);
        let mut mem = PagedMem::new();
        let mut host = NoNdc;
        let err = loop {
            match step(&prog, &mut ctx, &mut mem, &mut host) {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, ExecError::StackOverflow(_)));
    }

    #[test]
    fn step_reports_branch_direction() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("b");
        let l = f.label();
        f.beq(Reg(0), Reg(1), l);
        f.bind(l);
        f.ret();
        let id = f.finish();
        let prog = pb.finish().unwrap();
        let mut mem = PagedMem::new();
        let mut host = NoNdc;

        let mut ctx = ExecCtx::new(id, &[1, 1]);
        let info = step(&prog, &mut ctx, &mut mem, &mut host).unwrap();
        assert_eq!(info.control, Control::Branch { taken: true });

        let mut ctx = ExecCtx::new(id, &[1, 2]);
        let info = step(&prog, &mut ctx, &mut mem, &mut host).unwrap();
        assert_eq!(info.control, Control::Branch { taken: false });
    }

    #[test]
    fn entry_ret_halts_context() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("r");
        f.imm(Reg(0), 9).ret();
        let id = f.finish();
        let prog = pb.finish().unwrap();
        let mut ctx = ExecCtx::new(id, &[]);
        let mut mem = PagedMem::new();
        run_to_halt(&prog, &mut ctx, &mut mem);
        assert_eq!(ctx.ret_val(), 9);
        assert_eq!(ctx.retired, 2);
    }
}
