//! A minimal JSON reader for validating `LEVI_BENCH_JSON` report files
//! (`levi-bench check-report`) without pulling a crates.io dependency
//! into the workspace.
//!
//! Supports exactly what the harness emits — objects, arrays, strings
//! with `\\` / `\"` escapes (plus the standard control escapes), numbers,
//! booleans, and null. Not a general-purpose parser: no `\uXXXX`
//! escapes, and numbers are read as `f64`.
//!
//! Because the perf gate (`levi-bench perf compare`) feeds this parser
//! files a human may have hand-edited, it is strict where laxity would
//! corrupt a comparison: duplicate object keys are an error (lookup is
//! first-match, so a duplicate would silently shadow), and nesting depth
//! is capped so a pathological input fails with an error instead of
//! overflowing the parser's recursion.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other values.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Maximum nesting depth (objects + arrays) before the parser bails out.
const MAX_DEPTH: u32 = 128;

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}, found {:?}",
            b as char,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {pos}",
            other.map(|&c| c as char)
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = match bytes.get(*pos) {
                    Some(b'"') => b'"',
                    Some(b'\\') => b'\\',
                    Some(b'/') => b'/',
                    Some(b'n') => b'\n',
                    Some(b't') => b'\t',
                    Some(b'r') => b'\r',
                    other => {
                        return Err(format!(
                            "unsupported escape {:?} at byte {pos}",
                            other.map(|&c| c as char)
                        ))
                    }
                };
                out.push(escaped);
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        if members.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key {key:?} at byte {pos}"));
        }
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {pos}, found {:?}",
                    other.map(|&c| c as char)
                ))
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {pos}, found {:?}",
                    other.map(|&c| c as char)
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_figure_schema() {
        let doc = parse(
            "{\"figure\":\"fig05_phi\",\"rows\":[{\"label\":\"Baseline\",\
             \"cycles\":1091156,\"speedup\":1.0,\"invoke_rtt\":{\"count\":0}}]}",
        )
        .unwrap();
        assert_eq!(doc.get("figure").and_then(Json::as_str), Some("fig05_phi"));
        let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("cycles"), Some(&Json::Num(1091156.0)));
    }

    #[test]
    fn round_trips_escapes_and_rejects_garbage() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\"").unwrap(),
            Json::Str("a\"b\\c".into())
        );
        assert_eq!(
            parse("[true,false,null,-1.5e3]").unwrap(),
            Json::Arr(vec![
                Json::Bool(true),
                Json::Bool(false),
                Json::Null,
                Json::Num(-1500.0),
            ])
        );
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn own_emitters_parse() {
        let table = crate::table_json("t", &["a"], &[vec!["x\"y".into()]]);
        assert!(parse(&table).is_ok(), "{table}");
        let manifest = crate::runner::manifest_json(false);
        assert!(parse(&manifest).is_ok(), "{manifest}");
    }

    #[test]
    fn as_num_extracts_numbers_only() {
        assert_eq!(Json::Num(2.5).as_num(), Some(2.5));
        assert_eq!(Json::Str("2.5".into()).as_num(), None);
        assert_eq!(Json::Null.as_num(), None);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse("{\"a\":1,\"b\":2,\"a\":3}").unwrap_err();
        assert!(err.contains("duplicate key \"a\""), "{err}");
        // Same key in sibling objects is fine.
        assert!(parse("{\"x\":{\"a\":1},\"y\":{\"a\":2}}").is_ok());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Within the cap parses...
        let depth = 100usize;
        let ok = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&ok).is_ok());
        // ...past the cap is an error, not a stack overflow or panic.
        let deep = format!("{}1{}", "[".repeat(400), "]".repeat(400));
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        // Unclosed-but-deep input hits the cap before the EOF error.
        assert!(parse(&"[".repeat(400)).is_err());
        assert!(parse(&"{\"k\":[".repeat(400)).is_err());
    }

    #[test]
    fn every_truncation_of_a_valid_document_errors() {
        let doc = "{\"figure\":\"fig05\",\"rows\":[{\"label\":\"B \\\"q\\\"\",\
                   \"cycles\":1091156,\"speedup\":1.5e0,\"flags\":[true,false,null],\
                   \"hist\":{\"p50\":32}}]}";
        assert!(parse(doc).is_ok());
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let prefix = &doc[..cut];
            assert!(
                parse(prefix).is_err(),
                "strict prefix of len {cut} parsed: {prefix:?}"
            );
        }
    }

    #[test]
    fn seeded_mutations_never_panic() {
        use levi_sim::rng::SmallRng;
        let doc = "{\"perf_report\":{\"version\":1,\"quick\":true,\"profiled\":false,\
                   \"benches\":[{\"id\":\"micro/x\",\"median\":31.25,\
                   \"rounds\":[31.2,-1.0e2]}]}}";
        let mut rng = SmallRng::seed_from_u64(482_850_217);
        for _ in 0..2000 {
            let mut bytes = doc.as_bytes().to_vec();
            // Flip 1-4 bytes to arbitrary values; parse must return
            // Ok or Err, never panic or hang.
            for _ in 0..(1 + rng.bounded(4)) {
                let i = rng.bounded(bytes.len() as u64) as usize;
                bytes[i] = (rng.next_u64() & 0xff) as u8;
            }
            if let Ok(text) = std::str::from_utf8(&bytes) {
                let _ = parse(text);
            }
        }
    }
}
