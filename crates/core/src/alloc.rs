//! Leviathan's object-oriented memory allocator (paper Sec. V-A3).
//!
//! The allocator abstracts the cache microarchitecture away from the
//! programmer. Given an object type's *logical* size, it:
//!
//! 1. **pads** objects to the next power of two so no object straddles a
//!    cache-line boundary (Fig. 8);
//! 2. **maps** multi-line objects to a single LLC bank by arranging for
//!    the bank-index function to ignore the object-offset LSBs
//!    (Sec. VI-A3); and
//! 3. **compacts** objects in DRAM — padded in the cache, densely packed
//!    in memory — via the cache↔DRAM address translation of Fig. 14,
//!    eliminating the fragmentation prior NDCs forced on programmers.
//!
//! Objects above the microarchitectural limit (4 cache lines, Sec. VI-C)
//! fall back to a plain `malloc`-style layout: line-aligned, unpadded in
//! DRAM, no bank mapping — functionally correct, without the NDC locality
//! guarantees.

use levi_isa::Addr;
use levi_sim::dram::TranslationEntry;
use levi_sim::ndc::BankMapRange;
use levi_sim::LINE_SIZE;

/// Largest padded object size with full hardware support (4 cache lines).
pub const MAX_PADDED: u64 = 4 * LINE_SIZE;

/// Specification for an object-array allocation.
#[derive(Clone, Debug)]
pub struct ArraySpec {
    /// Diagnostic name.
    pub name: String,
    /// Logical object size in bytes (what the program reads/writes).
    pub obj_size: u64,
    /// Number of objects.
    pub count: u64,
    /// Pad objects to the next power of two in cache space. Disabling
    /// this models prior NDCs without data-layout support (tākō, Livia).
    pub pad: bool,
    /// Map multi-line objects to a single LLC bank. Disabling this models
    /// prior NDCs that cannot keep large objects on one bank.
    pub map_banks: bool,
    /// Store objects compacted in DRAM (padding exists only in the cache).
    pub compact_dram: bool,
}

impl ArraySpec {
    /// A fully-featured Leviathan allocation.
    pub fn new(name: &str, obj_size: u64, count: u64) -> Self {
        ArraySpec {
            name: name.to_string(),
            obj_size,
            count,
            pad: true,
            map_banks: true,
            compact_dram: true,
        }
    }

    /// Disables padding (models prior work; ablation in Figs. 16/18).
    pub fn without_padding(mut self) -> Self {
        self.pad = false;
        self
    }

    /// Disables LLC bank mapping (ablation in Fig. 18).
    pub fn without_bank_mapping(mut self) -> Self {
        self.map_banks = false;
        self
    }

    /// Disables DRAM compaction.
    pub fn without_compaction(mut self) -> Self {
        self.compact_dram = false;
        self
    }
}

/// A live allocation of `count` objects with a fixed stride.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectArray {
    /// Base (cache-space) address of object 0.
    pub base: Addr,
    /// Logical object size.
    pub obj_size: u64,
    /// Stride between consecutive objects in cache space (= padded size).
    pub stride: u64,
    /// Number of objects.
    pub count: u64,
}

impl ObjectArray {
    /// Address of object `i`.
    ///
    /// # Panics
    /// Panics if `i >= count`.
    pub fn addr(&self, i: u64) -> Addr {
        assert!(
            i < self.count,
            "object index {i} out of bounds ({})",
            self.count
        );
        self.base + i * self.stride
    }

    /// Index of the object containing `addr`.
    pub fn index_of(&self, addr: Addr) -> u64 {
        debug_assert!(addr >= self.base && addr < self.bound());
        (addr - self.base) / self.stride
    }

    /// One past the last byte of the array in cache space.
    pub fn bound(&self) -> Addr {
        self.base + self.count * self.stride
    }

    /// Total cache-space footprint in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.count * self.stride
    }
}

/// A planned allocation: the array plus the hardware registrations it
/// needs. [`crate::System::alloc_array`] applies these to the machine.
#[derive(Clone, Debug)]
pub struct Layout {
    /// The resulting array handle.
    pub array: ObjectArray,
    /// Cache↔DRAM compaction entry to install, if any.
    pub translation: Option<TranslationEntry>,
    /// LLC bank-mapping range to install, if any.
    pub bank_map: Option<BankMapRange>,
}

/// The padded (cache-space) size for a logical object size.
///
/// Power-of-two padding up to [`MAX_PADDED`]; larger objects use the
/// fallback stride (line-rounded, unsupported by the NDC fast paths).
pub fn padded_size(obj_size: u64) -> u64 {
    assert!(obj_size > 0, "zero-sized objects are not allocatable");
    let p = obj_size.next_power_of_two().max(8);
    if p <= MAX_PADDED {
        p
    } else {
        // Fallback for very large objects (Sec. VI-C).
        obj_size.div_ceil(LINE_SIZE) * LINE_SIZE
    }
}

/// Bump allocator over the flat simulated address space.
///
/// Two regions are managed: *cache space* (ordinary addresses the program
/// uses) and a disjoint *DRAM shadow* used as the target of compaction
/// translations, so compacted and identity-mapped lines never collide in
/// the memory controllers.
#[derive(Clone, Debug)]
pub struct Allocator {
    next: Addr,
    dram_next: Addr,
    /// Minimum alignment for object arrays (set to `tiles × line` by the
    /// system so equal offsets in different arrays map to the same LLC
    /// bank — the congruence PHI-style overlays rely on).
    min_align: u64,
}

/// Default base of the general heap.
pub const HEAP_BASE: Addr = 0x1000_0000;
/// Default base of the DRAM shadow region for compacted storage.
pub const DRAM_SHADOW_BASE: Addr = 0x40_0000_0000;

impl Default for Allocator {
    fn default() -> Self {
        Allocator {
            next: HEAP_BASE,
            dram_next: DRAM_SHADOW_BASE,
            min_align: LINE_SIZE,
        }
    }
}

impl Allocator {
    /// Creates an allocator with the default region bases.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the minimum object-array alignment (the system passes
    /// `tiles × line size` for cross-array bank congruence).
    pub fn set_min_align(&mut self, align: u64) {
        assert!(align.is_power_of_two());
        self.min_align = align;
    }

    /// Allocates `bytes` with the given alignment (power of two).
    ///
    /// # Panics
    /// Panics if `align` is not a power of two.
    pub fn alloc_raw(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes.max(1);
        base
    }

    /// Plans an object-array allocation per the spec.
    pub fn plan_array(&mut self, spec: &ArraySpec) -> Layout {
        assert!(spec.count > 0, "empty arrays are not allocatable");
        let stride = if spec.pad {
            padded_size(spec.obj_size)
        } else {
            // Unpadded: dense packing, 8-byte aligned strides so loads
            // stay aligned, but objects may straddle cache lines.
            spec.obj_size.div_ceil(8) * 8
        };
        // Align the base so object boundaries coincide with line-group
        // boundaries (needed by bank mapping and the Morph machinery) and
        // so equal offsets across arrays land on the same LLC bank.
        let align = stride.next_power_of_two().max(self.min_align);
        let base = self.alloc_raw(spec.count * stride, align);
        let array = ObjectArray {
            base,
            obj_size: spec.obj_size,
            stride,
            count: spec.count,
        };

        let multiline = stride > LINE_SIZE;
        let bank_map =
            (spec.pad && spec.map_banks && multiline && stride <= MAX_PADDED).then(|| {
                BankMapRange {
                    base,
                    bound: array.bound(),
                    ignore_line_bits: (stride / LINE_SIZE).trailing_zeros(),
                }
            });

        let packed = spec.obj_size;
        let translation =
            (spec.pad && spec.compact_dram && stride != packed && stride <= MAX_PADDED).then(
                || {
                    let dram_base = self.dram_alloc(spec.count * packed);
                    TranslationEntry {
                        cache_base: base,
                        cache_bound: array.bound(),
                        dram_base,
                        padded_size: stride,
                        packed_size: packed,
                    }
                },
            );

        Layout {
            array,
            translation,
            bank_map,
        }
    }

    fn dram_alloc(&mut self, bytes: u64) -> Addr {
        let base = (self.dram_next + LINE_SIZE - 1) & !(LINE_SIZE - 1);
        self.dram_next = base + bytes;
        base
    }

    /// Total heap bytes allocated so far (cache-space footprint). Note
    /// that compacted arrays occupy `count x packed` bytes of DRAM, not
    /// this padded figure — the fragmentation saving of Sec. VIII-B.
    pub fn heap_used(&self) -> u64 {
        self.next - HEAP_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_sizes_match_paper_examples() {
        assert_eq!(padded_size(6), 8, "6B pixel pads to 8B (Fig. 15)");
        assert_eq!(padded_size(24), 32, "24B node pads to 32B (Fig. 8)");
        assert_eq!(padded_size(64), 64);
        assert_eq!(padded_size(128), 128);
        assert_eq!(padded_size(100), 128);
        assert_eq!(padded_size(256), 256, "4-line maximum");
        assert_eq!(
            padded_size(300),
            320,
            "past the limit: line-rounded fallback"
        );
    }

    #[test]
    fn object_addressing() {
        let a = ObjectArray {
            base: 0x1000,
            obj_size: 24,
            stride: 32,
            count: 10,
        };
        assert_eq!(a.addr(0), 0x1000);
        assert_eq!(a.addr(3), 0x1060);
        assert_eq!(a.index_of(0x1065), 3);
        assert_eq!(a.bound(), 0x1000 + 320);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn object_index_bounds_checked() {
        let a = ObjectArray {
            base: 0,
            obj_size: 8,
            stride: 8,
            count: 1,
        };
        a.addr(1);
    }

    #[test]
    fn padded_array_gets_translation() {
        let mut al = Allocator::new();
        let l = al.plan_array(&ArraySpec::new("nodes", 24, 100));
        assert_eq!(l.array.stride, 32);
        let t = l.translation.expect("24->32 padding compacts in DRAM");
        assert_eq!(t.padded_size, 32);
        assert_eq!(t.packed_size, 24);
        assert_eq!(t.cache_base, l.array.base);
        assert!(t.dram_base >= DRAM_SHADOW_BASE);
        assert!(l.bank_map.is_none(), "single-line objects need no mapping");
    }

    #[test]
    fn multiline_array_gets_bank_map() {
        let mut al = Allocator::new();
        let l = al.plan_array(&ArraySpec::new("big", 128, 16));
        assert_eq!(l.array.stride, 128);
        let bm = l.bank_map.expect("2-line objects get LLC mapping");
        assert_eq!(bm.ignore_line_bits, 1);
        assert!(l.translation.is_none(), "pow2 size needs no compaction");
        // Base alignment keeps each object in one line group.
        assert_eq!(l.array.base % 128, 0);
    }

    #[test]
    fn unpadded_matches_prior_work() {
        let mut al = Allocator::new();
        let l = al.plan_array(&ArraySpec::new("raw", 24, 100).without_padding());
        assert_eq!(l.array.stride, 24, "dense layout straddles lines");
        assert!(l.translation.is_none());
        assert!(l.bank_map.is_none());
    }

    #[test]
    fn ablations_disable_features() {
        let mut al = Allocator::new();
        let l = al.plan_array(&ArraySpec::new("x", 128, 4).without_bank_mapping());
        assert!(l.bank_map.is_none());
        let l = al.plan_array(&ArraySpec::new("y", 24, 4).without_compaction());
        assert!(l.translation.is_none());
        assert_eq!(l.array.stride, 32, "padding still applies");
    }

    #[test]
    fn very_large_objects_fall_back() {
        let mut al = Allocator::new();
        let l = al.plan_array(&ArraySpec::new("huge", 1000, 4));
        assert_eq!(l.array.stride, 1024, "line-rounded fallback stride");
        assert!(l.bank_map.is_none(), "no mapping past 4 lines (Sec. VI-C)");
    }

    #[test]
    fn raw_allocations_are_aligned_and_disjoint() {
        let mut al = Allocator::new();
        let a = al.alloc_raw(100, 64);
        let b = al.alloc_raw(8, 8);
        assert_eq!(a % 64, 0);
        assert!(b >= a + 100);
    }
}
