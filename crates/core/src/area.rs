//! Hardware-overhead (area) model — reproduces Table IV.
//!
//! Leviathan's per-LLC-bank storage additions: extra LLC tag bits, the
//! translation buffer, the engine's L1d/TLB/rTLB, the data-triggered actor
//! buffer, and the dataflow fabric itself, compared against the data array
//! of one LLC bank.

use levi_sim::MachineConfig;

/// One row of the area table.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaRow {
    /// Component name.
    pub component: String,
    /// The sizing formula, printed for the table.
    pub formula: String,
    /// Bytes per LLC bank.
    pub bytes: f64,
}

/// The complete per-bank area report.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaReport {
    /// Component rows.
    pub rows: Vec<AreaRow>,
    /// Total added bytes per bank.
    pub total_bytes: f64,
    /// LLC bank data-array bytes (the comparison base).
    pub llc_bank_bytes: f64,
}

impl AreaReport {
    /// Overhead as a fraction of the LLC bank (paper: ≈6.4%).
    pub fn overhead_fraction(&self) -> f64 {
        self.total_bytes / self.llc_bank_bytes
    }
}

/// Table IV's fixed parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    /// Extra LLC tag bits per line (morph/dtor/object-size bits).
    pub tag_bits_per_line: u32,
    /// Translation-buffer entries.
    pub translation_entries: u32,
    /// Bytes per translation entry.
    pub translation_entry_bytes: u32,
    /// Engine TLB bytes.
    pub tlb_bytes: u64,
    /// Engine rTLB bytes.
    pub rtlb_bytes: u64,
    /// Data-triggered actor-buffer entries.
    pub actor_buffer_entries: u32,
    /// Bytes per actor-buffer entry (max object size).
    pub actor_entry_bytes: u32,
    /// Dataflow-fabric state in bytes (from Repetti et al. \[60\] via
    /// tākō \[66\]).
    pub fabric_bytes: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            tag_bits_per_line: 3,
            translation_entries: 8,
            translation_entry_bytes: 25,
            tlb_bytes: 2 * 1024,
            rtlb_bytes: 2 * 1024,
            actor_buffer_entries: 16,
            actor_entry_bytes: 256,
            fabric_bytes: 13.6 * 1024.0,
        }
    }
}

impl AreaModel {
    /// Computes the per-bank report for a machine configuration.
    pub fn report(&self, cfg: &MachineConfig) -> AreaReport {
        let llc_lines = cfg.llc.lines();
        let tag_bytes = (llc_lines * self.tag_bits_per_line as u64) as f64 / 8.0;
        let tb_bytes = (self.translation_entries * self.translation_entry_bytes) as f64;
        let engine_bytes = (cfg.engine.l1d_bytes + self.tlb_bytes + self.rtlb_bytes) as f64;
        let dt_bytes = (self.actor_buffer_entries * self.actor_entry_bytes) as f64;

        let rows = vec![
            AreaRow {
                component: "LLC tags".into(),
                formula: format!(
                    "{}K lines x {} bits",
                    llc_lines / 1024,
                    self.tag_bits_per_line
                ),
                bytes: tag_bytes,
            },
            AreaRow {
                component: "LLC translation buffer".into(),
                formula: format!(
                    "{} entries x {} B",
                    self.translation_entries, self.translation_entry_bytes
                ),
                bytes: tb_bytes,
            },
            AreaRow {
                component: "Engine L1d, TLB, rTLB".into(),
                formula: format!(
                    "{} KB + {} KB + {} KB",
                    cfg.engine.l1d_bytes / 1024,
                    self.tlb_bytes / 1024,
                    self.rtlb_bytes / 1024
                ),
                bytes: engine_bytes,
            },
            AreaRow {
                component: "Data-triggered buffer".into(),
                formula: format!(
                    "{} objects x {} B",
                    self.actor_buffer_entries, self.actor_entry_bytes
                ),
                bytes: dt_bytes,
            },
            AreaRow {
                component: "Dataflow fabric [66]".into(),
                formula: "13.6 KB".into(),
                bytes: self.fabric_bytes,
            },
        ];
        let total_bytes = rows.iter().map(|r| r.bytes).sum();
        AreaReport {
            rows,
            total_bytes,
            llc_bank_bytes: cfg.llc.size_bytes as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_iv() {
        let cfg = MachineConfig::paper_default();
        let report = AreaModel::default().report(&cfg);
        // Row checks.
        assert_eq!(report.rows[0].bytes, 3072.0, "8K lines x 3 bits = 3 KB");
        assert_eq!(report.rows[1].bytes, 200.0, "8 x 25 B");
        assert_eq!(report.rows[2].bytes, 12.0 * 1024.0, "8+2+2 KB");
        assert_eq!(report.rows[3].bytes, 4096.0, "16 x 256 B");
        // Total ~32.8 KB; overhead ~6.4% of a 512 KB bank.
        let total_kb = report.total_bytes / 1024.0;
        assert!(
            (total_kb - 32.8).abs() < 0.1,
            "total per bank = {total_kb:.1} KB (paper: 32.8 KB)"
        );
        let pct = report.overhead_fraction() * 100.0;
        assert!(
            (pct - 6.4).abs() < 0.1,
            "overhead = {pct:.1}% (paper: 6.4%)"
        );
    }

    #[test]
    fn scales_with_llc_size() {
        let mut cfg = MachineConfig::paper_default();
        cfg.llc.size_bytes *= 2;
        let report = AreaModel::default().report(&cfg);
        let pct = report.overhead_fraction() * 100.0;
        assert!(pct < 6.4, "bigger bank dilutes the overhead: {pct:.2}%");
    }
}
