//! Data-triggered decompression (the paper's Fig. 15/16 case study).
//!
//! Pixels live compressed in memory (a shared base plus per-pixel
//! mantissa/exponent deltas). A `Morph` registers a phantom range of 6 B
//! pixel actors at the L2: whenever the core touches a pixel whose line is
//! not cached, the engine runs the constructor, which decompresses the
//! whole line's pixels in place. The core then reuses decompressed pixels
//! from L1/L2 — no per-access decompression, no manual padding.
//!
//! Run with: `cargo run --release --example decompress_morph`

use levi_workloads::decompress::{run_decompress, DecompressScale, DecompressVariant};

fn main() {
    let scale = DecompressScale {
        pixels: 4096,
        accesses: 8192,
        tiles: 4,
        theta: 0.99,
        seed: 7,
    };
    println!(
        "decompressing {} six-byte pixels, {} Zipf accesses, {} threads",
        scale.pixels, scale.accesses, scale.tiles
    );
    println!();

    let base = run_decompress(DecompressVariant::Baseline, &scale).expect("baseline always runs");
    let lev = run_decompress(DecompressVariant::Leviathan, &scale).expect("leviathan always runs");
    assert_eq!(base.access_sum, lev.access_sum, "identical results");

    println!("software decompression:  {:>9} cycles", base.metrics.cycles);
    println!(
        "Leviathan (Morph):       {:>9} cycles  ({:.2}x speedup)",
        lev.metrics.cycles,
        lev.metrics.speedup_vs(&base.metrics)
    );
    println!(
        "constructors ran for {} lines; the other {} accesses reused",
        lev.metrics.stats.ctor_actions / 8,
        scale.accesses - lev.metrics.stats.ctor_actions / 8
    );
    println!();
    println!("Note: 6 B does not divide a 64 B line. Prior NDCs make the");
    println!("programmer pad manually (or simply cannot run this); Leviathan's");
    println!("allocator pads to 8 B in cache and stores 6 B in DRAM.");

    if run_decompress(DecompressVariant::NoPadding, &scale).is_none() {
        println!("(no-padding prior work: unsupported, as the paper observes)");
    }
}
