//! A minimal JSON reader for validating `LEVI_BENCH_JSON` report files
//! (`levi-bench check-report`) without pulling a crates.io dependency
//! into the workspace.
//!
//! Supports exactly what the harness emits — objects, arrays, strings
//! with `\\` / `\"` escapes (plus the standard control escapes), numbers,
//! booleans, and null. Not a general-purpose parser: no `\uXXXX`
//! escapes, and numbers are read as `f64`.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other values.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}, found {:?}",
            b as char,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {pos}",
            other.map(|&c| c as char)
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = match bytes.get(*pos) {
                    Some(b'"') => b'"',
                    Some(b'\\') => b'\\',
                    Some(b'/') => b'/',
                    Some(b'n') => b'\n',
                    Some(b't') => b'\t',
                    Some(b'r') => b'\r',
                    other => {
                        return Err(format!(
                            "unsupported escape {:?} at byte {pos}",
                            other.map(|&c| c as char)
                        ))
                    }
                };
                out.push(escaped);
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {pos}, found {:?}",
                    other.map(|&c| c as char)
                ))
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {pos}, found {:?}",
                    other.map(|&c| c as char)
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_figure_schema() {
        let doc = parse(
            "{\"figure\":\"fig05_phi\",\"rows\":[{\"label\":\"Baseline\",\
             \"cycles\":1091156,\"speedup\":1.0,\"invoke_rtt\":{\"count\":0}}]}",
        )
        .unwrap();
        assert_eq!(doc.get("figure").and_then(Json::as_str), Some("fig05_phi"));
        let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("cycles"), Some(&Json::Num(1091156.0)));
    }

    #[test]
    fn round_trips_escapes_and_rejects_garbage() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\"").unwrap(),
            Json::Str("a\"b\\c".into())
        );
        assert_eq!(
            parse("[true,false,null,-1.5e3]").unwrap(),
            Json::Arr(vec![
                Json::Bool(true),
                Json::Bool(false),
                Json::Null,
                Json::Num(-1500.0),
            ])
        );
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn own_emitters_parse() {
        let table = crate::table_json("t", &["a"], &[vec!["x\"y".into()]]);
        assert!(parse(&table).is_ok(), "{table}");
        let manifest = crate::runner::manifest_json(false);
        assert!(parse(&manifest).is_ok(), "{manifest}");
    }
}
