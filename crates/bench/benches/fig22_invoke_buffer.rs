//! Fig. 22 — sensitivity to the invoke-buffer size (PHI).
//!
//! Paper: 1–2 entries slow Leviathan through queueing backpressure;
//! performance plateaus at 4 entries.

use levi_bench::{header, quick_mode, table};
use levi_workloads::phi::{phi_graph, run_phi_on, PhiScale, PhiVariant};

fn main() {
    let mut scale = PhiScale::paper();
    if quick_mode() {
        scale = PhiScale::test();
    }
    header(
        "Fig. 22 — PHI sensitivity to invoke-buffer entries",
        "paper: slow at 1-2 entries, plateau at >= 4",
    );
    let graph = phi_graph(&scale);
    let mut rows = Vec::new();
    let mut best = u64::MAX;
    let mut cycles_at = Vec::new();
    for entries in [1u32, 2, 4, 8, 16] {
        let mut s = scale.clone();
        s.invoke_buffer = entries;
        let r = run_phi_on(PhiVariant::Leviathan, &s, &graph);
        eprintln!("  ran buffer={entries}");
        best = best.min(r.metrics.cycles);
        cycles_at.push((entries, r.metrics.cycles));
        rows.push(vec![
            entries.to_string(),
            r.metrics.cycles.to_string(),
            r.metrics.stats.invoke_nacks.to_string(),
        ]);
    }
    // Normalize to the plateau.
    for (row, (_, c)) in rows.iter_mut().zip(&cycles_at) {
        row.push(format!("{:.2}x", best as f64 / *c as f64));
    }
    table(&["entries", "cycles", "NACKs", "rel. perf"], &rows);
}
