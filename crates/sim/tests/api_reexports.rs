//! Compile-time pin of the crate's public surface across the module
//! split. `Machine` became a facade over `sched` / `core_pipe` /
//! `ndc_host` / `invoke` / `hw/*`; every name below was importable from
//! the crate root before the split and must remain so. A removal or
//! rename breaks this file at compile time — no assertions needed, but a
//! handful of usages keep the imports from being optimized into
//! "unused" warnings.

#![allow(clippy::assertions_on_constants)]

use levi_sim::{
    AccessKind, ActorId, BankMapRange, CacheConfig, CycleWindow, DramFault, EnergyBreakdown,
    EnergyConfig, EngineFault, EngineId, EngineLevel, FaultPlan, FaultState, Histogram, Hw,
    InvokeSqueeze, LinkFault, LinkFaultKind, Machine, MachineConfig, MorphLevel, MorphRegion,
    ParkOwner, ParkedActor, Replacement, RunError, RunResult, Sample, SimError, Stats, StreamId,
    StreamMode, StreamState, TimeSeries, TraceCategory, TraceEvent, Tracer, Track, Walk, LINE_SIZE,
};

// Machine-associated types flow through the facade's re-export path too.
use levi_sim::machine::{
    ActorId as MachineActorId, ParkOwner as MachineParkOwner, RunError as MachineRunError,
};

#[test]
fn public_api_names_resolve() {
    // Type-position usages: each alias must name a real, nameable type.
    #[allow(clippy::too_many_arguments)]
    fn _takes(
        _: Option<&Machine>,
        _: Option<&Hw>,
        _: Option<&Stats>,
        _: Option<&Tracer>,
        _: Option<&Histogram>,
        _: Option<&TimeSeries>,
        _: Option<&EnergyBreakdown>,
        _: Option<&FaultState>,
        _: Option<&StreamState>,
        _: Option<&MorphRegion>,
        _: Option<&BankMapRange>,
        _: Option<&ParkedActor>,
        _: Option<&RunResult>,
        _: Option<&TraceEvent>,
        _: Option<&Sample>,
        _: Option<(DramFault, EngineFault, LinkFault, InvokeSqueeze)>,
        _: Option<(CacheConfig, EnergyConfig, Replacement)>,
    ) {
    }

    let aid: ActorId = 0;
    let _: MachineActorId = aid;
    let _: fn(MachineConfig) -> Result<Machine, SimError> = Machine::try_new;

    assert_eq!(LINE_SIZE, 64);
    assert_eq!(TraceCategory::Sched.as_str(), "sched");
    assert!(matches!(Track::Core(0), Track::Core(0)));
    assert!(matches!(AccessKind::Read, AccessKind::Read));
    assert!(matches!(Walk::Done { at: 3 }, Walk::Done { at: 3 }));
    assert!(matches!(StreamMode::RunAhead, StreamMode::RunAhead));
    assert!(matches!(MorphLevel::L2, MorphLevel::L2));
    assert!(matches!(
        LinkFaultKind::Slowdown { extra: 2 },
        LinkFaultKind::Slowdown { extra: 2 }
    ));
    assert!(matches!(ParkOwner::Core(1), MachineParkOwner::Core(1)));
    assert!(matches!(
        RunError::Watchdog { limit: 1, at: 2 },
        MachineRunError::Watchdog { limit: 1, at: 2 }
    ));

    let _ = StreamId(0);
    let _ = EngineId {
        tile: 0,
        level: EngineLevel::Llc,
    };
    let _ = CycleWindow::new(0, 10);
    let _ = FaultPlan::new(1);
}
