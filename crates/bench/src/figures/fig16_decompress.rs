//! Fig. 16 — near-cache data transformation (decompression of 6 B pixels).
//!
//! Paper: Leviathan 2.4×, −65% energy, within 1.6% of Ideal; offload (OL)
//! is 2.8× *worse* than baseline; no-padding prior work fails outright.

use levi_workloads::decompress::DecompressWorkload;
use levi_workloads::Workload;

use crate::header;
use crate::runner::{report_figure, sweep_variants, Figure, RunCtx};

/// The figure descriptor.
pub const FIG: Figure = Figure {
    id: "fig16_decompress",
    about: "6 B pixel decompression via Morph ctors vs offload (paper Fig. 16)",
    workloads: &["decompress"],
    run,
};

fn run(ctx: &RunCtx) {
    let w = &DecompressWorkload;
    let scale = w.scale(ctx.kind());
    header(
        "Fig. 16 — decompressing 6 B pixels (base+delta, Zipf accesses)",
        &format!(
            "{} pixels, {} accesses (theta={}), {} tiles",
            scale.pixels, scale.accesses, scale.theta, scale.tiles
        ),
    );

    let outcomes = sweep_variants(w, &scale, ctx);
    report_figure(
        "fig16_decompress",
        &outcomes,
        &[
            ("Baseline", Some(1.0), Some(1.0)),
            ("Offload (OL)", Some(1.0 / 2.8), None),
            ("No padding (tako)", None, None),
            ("Leviathan", Some(2.4), Some(0.35)),
            ("Ideal", Some(2.44), Some(0.345)),
        ],
    );

    let (Some(lev), Some(ideal)) = (outcomes.get("Leviathan"), outcomes.get("Ideal")) else {
        return;
    };
    crate::outln!();
    crate::outln!(
        "gap to idealized engine: {:.1}%  (paper: 1.6%)",
        (lev.metrics.cycles as f64 / ideal.metrics.cycles as f64 - 1.0) * 100.0
    );
    crate::outln!(
        "line fills (ctor groups): {}  — decompressed pixels reused from L1/L2",
        lev.metrics.stats.ctor_actions / 8
    );
}
